//! Property-based tests for the flow simulator over the calibrated fabric.

use numa_engine::{FlowSpec, Simulation};
use numa_fabric::calibration::dl585_fabric;
use numa_fabric::Fabric;
use numa_topology::NodeId;
use proptest::prelude::*;

fn arb_flows() -> impl Strategy<Value = Vec<(u16, u16, f64)>> {
    proptest::collection::vec((0u16..8, 0u16..8, 1.0f64..200.0), 1..10)
}

fn build<'a>(fabric: &'a Fabric, flows: &[(u16, u16, f64)]) -> Simulation<'a> {
    let mut sim = Simulation::new(fabric);
    for &(s, d, v) in flows {
        sim.add_flow(FlowSpec::dma(NodeId(s), NodeId(d)).gbits(v));
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_flows_finish_and_totals_add_up(flows in arb_flows()) {
        let fabric = dl585_fabric();
        let report = build(&fabric, &flows).run().unwrap();
        prop_assert_eq!(report.flows.len(), flows.len());
        let expect_total: f64 = flows.iter().map(|f| f.2).sum();
        prop_assert!((report.total_gbit - expect_total).abs() < 1e-9);
        for (fr, &(_, _, v)) in report.flows.iter().zip(&flows) {
            prop_assert!(fr.finish_s > 0.0);
            prop_assert!((fr.volume_gbit - v).abs() < 1e-9);
            prop_assert!(fr.finish_s <= report.makespan_s + 1e-9);
        }
    }

    #[test]
    fn no_flow_beats_its_uncontended_path(flows in arb_flows()) {
        let fabric = dl585_fabric();
        let report = build(&fabric, &flows).run().unwrap();
        for (fr, &(s, d, _)) in report.flows.iter().zip(&flows) {
            let solo = fabric.dma_path_bandwidth(NodeId(s), NodeId(d));
            prop_assert!(fr.mean_gbps <= solo + 1e-6,
                "flow {s}->{d}: {} > {}", fr.mean_gbps, solo);
        }
    }

    #[test]
    fn contention_never_helps_the_makespan(flows in arb_flows()) {
        // Running any single flow alone is at least as fast as inside the
        // full mix.
        let fabric = dl585_fabric();
        let full = build(&fabric, &flows).run().unwrap();
        let (s, d, v) = flows[0];
        let solo = build(&fabric, &[(s, d, v)]).run().unwrap();
        prop_assert!(solo.flows[0].finish_s <= full.flows[0].finish_s + 1e-9);
    }

    #[test]
    fn simulation_is_deterministic(flows in arb_flows()) {
        let fabric = dl585_fabric();
        let a = build(&fabric, &flows).run().unwrap();
        let b = build(&fabric, &flows).run().unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn steady_rates_are_feasible_per_flow(flows in arb_flows()) {
        let fabric = dl585_fabric();
        let rates = build(&fabric, &flows).steady_rates();
        for (&rate, &(s, d, _)) in rates.iter().zip(&flows) {
            let solo = fabric.dma_path_bandwidth(NodeId(s), NodeId(d));
            prop_assert!(rate <= solo + 1e-6);
            prop_assert!(rate >= 0.0);
        }
    }

    #[test]
    fn equal_twin_flows_tie(s in 0u16..8, d in 0u16..8, v in 1.0f64..100.0) {
        let fabric = dl585_fabric();
        let report = build(&fabric, &[(s, d, v), (s, d, v)]).run().unwrap();
        prop_assert!((report.flows[0].finish_s - report.flows[1].finish_s).abs() < 1e-9);
        prop_assert!((report.flows[0].mean_gbps - report.flows[1].mean_gbps).abs() < 1e-9);
    }
}
