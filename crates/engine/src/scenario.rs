//! The unified scenario API.
//!
//! [`Scenario`] is the one front door to the engine: pick a fabric,
//! attach a [`Workload`] (or explicit flows), optionally arm faults and
//! observability, and run. It replaced the grown-by-accretion
//! `Simulation::{with_obs, ...}` entry points and the per-crate
//! `run_observed` variants; those shims served their one deprecation
//! release and are gone.
//!
//! ```
//! use numa_engine::{FlowSpec, Scenario, Workload};
//! use numa_fabric::calibration::dl585_fabric;
//! use numa_topology::NodeId;
//!
//! let fabric = dl585_fabric();
//! // 50 small transfers arriving open-loop at 100 flows/s.
//! let template = FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0).label("open");
//! let report = Scenario::on(&fabric)
//!     .workload(Workload::poisson(vec![template], 50, 100.0, 42))
//!     .run()
//!     .unwrap();
//! assert_eq!(report.flows.len(), 50);
//! assert!(report.fct_p99_s >= report.fct_p50_s);
//! ```

use crate::flow::{FlowId, FlowSpec};
use crate::jitter::JitterCfg;
use crate::resources::{ResourceHandle, ResourceKey};
use crate::sim::{SimError, SimReport, Simulation};
use crate::trace::Trace;
use crate::workload::Workload;
use numa_fabric::Fabric;

/// Why a scenario could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The underlying simulation failed.
    Sim(SimError),
    /// A fault source could not arm its plan against the simulation.
    Faults {
        /// What the fault layer reported.
        reason: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Sim(e) => write!(f, "scenario simulation failed: {e}"),
            ScenarioError::Faults { reason } => write!(f, "scenario fault plan failed: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Sim(e) => Some(e),
            ScenarioError::Faults { .. } => None,
        }
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}

/// Something that can arm fault timelines on a simulation — implemented
/// by `numa_faults::{FaultPlan, FaultInjector}`. The engine defines the
/// trait (rather than naming a fault type) so the dependency keeps
/// pointing from faults to engine.
pub trait FaultSource {
    /// Schedule this source's capacity events on `sim` (whose fabric is
    /// reachable via [`Simulation::fabric`]). Returns how many events
    /// were armed.
    fn arm_scenario(&self, sim: &mut Simulation<'_>) -> Result<usize, String>;
}

/// A composable simulation scenario over one fabric.
pub struct Scenario<'f> {
    sim: Simulation<'f>,
    workloads: Vec<Workload>,
    faults: Vec<Box<dyn FaultSource + 'f>>,
}

impl<'f> Scenario<'f> {
    /// Start an empty scenario on `fabric`.
    pub fn on(fabric: &'f Fabric) -> Self {
        Scenario::from_simulation(Simulation::new(fabric))
    }

    /// Wrap a pre-built [`Simulation`] — the adapter for harnesses (like
    /// the fio runner) that lower their own flow sets and resources
    /// before handing control to the scenario layer.
    pub fn from_simulation(sim: Simulation<'f>) -> Self {
        Scenario { sim, workloads: Vec::new(), faults: Vec::new() }
    }

    /// Attach a workload; its flows are materialized (arrival times
    /// stamped) when the scenario runs. May be called repeatedly —
    /// workloads append in order.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workloads.push(w);
        self
    }

    /// Add explicit flows (closed-loop unless their specs carry
    /// arrival times).
    pub fn flows(mut self, flows: impl IntoIterator<Item = FlowSpec>) -> Self {
        for f in flows {
            self.sim.add_flow(f);
        }
        self
    }

    /// Add one flow; returns its id (ids are assigned before workload
    /// flows, which materialize at run time).
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.sim.add_flow(spec)
    }

    /// Enable rate jitter.
    pub fn jitter(mut self, cfg: JitterCfg) -> Self {
        self.sim = self.sim.with_jitter(cfg);
        self
    }

    /// Attach an observability handle: the run emits `alloc_round` /
    /// `flow_arrived` / `flow_finished` / `jitter_refresh` events and
    /// feeds the `numio_*` engine metric series (including the
    /// `numio_fct_seconds` histogram).
    pub fn observe(mut self, obs: numa_obs::Obs) -> Self {
        self.sim.set_obs(obs);
        self
    }

    /// Arm a fault source (a `numa_faults::FaultPlan` or anything else
    /// implementing [`FaultSource`]) when the scenario runs.
    pub fn faults(mut self, source: impl FaultSource + 'f) -> Self {
        self.faults.push(Box::new(source));
        self
    }

    /// Register (or fetch) a shared resource on the underlying
    /// simulation (device ports, CPU budgets, ...).
    pub fn register(&mut self, key: ResourceKey, cap: f64) -> ResourceHandle {
        self.sim.register(key, cap)
    }

    /// Schedule a capacity change at a fixed simulation time.
    pub fn schedule_capacity(&mut self, h: ResourceHandle, at_s: f64, cap: f64) {
        self.sim.schedule_capacity(h, at_s, cap);
    }

    /// Direct access to the wrapped simulation, for the rare setup step
    /// the builder does not cover.
    pub fn simulation_mut(&mut self) -> &mut Simulation<'f> {
        &mut self.sim
    }

    /// Materialize workloads and arm fault sources, yielding the final
    /// runnable simulation.
    fn prepare(mut self) -> Result<Simulation<'f>, ScenarioError> {
        for w in &self.workloads {
            for flow in w.materialize() {
                self.sim.add_flow(flow);
            }
        }
        for f in &self.faults {
            f.arm_scenario(&mut self.sim)
                .map_err(|reason| ScenarioError::Faults { reason })?;
        }
        Ok(self.sim)
    }

    /// Run to completion.
    pub fn run(self) -> Result<SimReport, ScenarioError> {
        Ok(self.prepare()?.run()?)
    }

    /// Run to completion, recording an event [`Trace`].
    pub fn run_traced(self) -> Result<(SimReport, Trace), ScenarioError> {
        Ok(self.prepare()?.run_traced()?)
    }

    /// Instantaneous max-min rates with all flows (explicit and
    /// workload-generated) active — the steady-state allocation.
    pub fn steady_rates(self) -> Result<Vec<f64>, ScenarioError> {
        Ok(self.prepare()?.steady_rates())
    }

    /// Steady-state resource utilization, most-loaded first (see
    /// [`Simulation::bottlenecks`]).
    pub fn bottlenecks(self) -> Result<Vec<(ResourceKey, f64, f64, f64)>, ScenarioError> {
        Ok(self.prepare()?.bottlenecks())
    }
}

impl std::fmt::Debug for Scenario<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("flows", &self.sim.num_flows())
            .field("workloads", &self.workloads)
            .field("fault_sources", &self.faults.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_fabric::calibration::dl585_fabric;
    use numa_topology::NodeId;

    #[test]
    fn batch_scenario_matches_legacy_simulation_bitwise() {
        let f = dl585_fabric();
        let specs = vec![
            FlowSpec::dma(NodeId(4), NodeId(7)).gbits(23.25).label("a"),
            FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5).label("b"),
        ];
        let mut sim = Simulation::new(&f);
        for s in &specs {
            sim.add_flow(s.clone());
        }
        let legacy = sim.run().unwrap();
        let scenario = Scenario::on(&f)
            .workload(Workload::batch(specs))
            .run()
            .unwrap();
        assert_eq!(legacy, scenario, "new front door, same bits");
        assert_eq!(legacy.fct_digest(), scenario.fct_digest());
    }

    #[test]
    fn arrivals_stagger_completion() {
        let f = dl585_fabric();
        // Two identical flows over the 6->7 edge (46.5): the second
        // arrives exactly when the first finishes, so neither ever
        // shares the edge.
        let report = Scenario::on(&f)
            .flows([
                FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5),
                FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5).arrival(1.0),
            ])
            .run()
            .unwrap();
        assert!((report.flows[0].finish_s - 1.0).abs() < 1e-9, "{:?}", report.flows[0]);
        assert!((report.flows[1].finish_s - 2.0).abs() < 1e-9, "{:?}", report.flows[1]);
        assert!((report.flows[1].fct_s - 1.0).abs() < 1e-9);
        assert!((report.flows[1].start_s - 1.0).abs() < 1e-12);
        // Full rate both times: no contention, slowdown 1.0.
        assert!((report.flows[1].mean_gbps - 46.5).abs() < 1e-6);
        assert!((report.mean_slowdown - 1.0).abs() < 1e-9, "{}", report.mean_slowdown);
        assert!((report.makespan_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn contended_batch_reports_slowdown() {
        let f = dl585_fabric();
        // Two equal flows sharing the 6->7 edge: each takes twice its
        // isolated time.
        let report = Scenario::on(&f)
            .flows([
                FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5),
                FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5),
            ])
            .run()
            .unwrap();
        assert!((report.mean_slowdown - 2.0).abs() < 1e-9, "{}", report.mean_slowdown);
        assert!((report.fct_p50_s - 2.0).abs() < 1e-9);
        assert!((report.fct_p99_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_open_loop_is_bit_identical() {
        let f = dl585_fabric();
        let run = || {
            let template = FlowSpec::dma(NodeId(6), NodeId(7)).gbits(2.0).label("w");
            Scenario::on(&f)
                .workload(Workload::poisson(vec![template], 200, 50.0, 42))
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.fct_digest(), b.fct_digest());
        assert_eq!(a.flows.len(), 200);
    }

    #[test]
    fn observe_emits_arrival_events() {
        let f = dl585_fabric();
        let obs = numa_obs::Obs::new();
        let template = FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0).label("open");
        Scenario::on(&f)
            .workload(Workload::poisson(vec![template], 5, 100.0, 1))
            .observe(obs.clone())
            .run()
            .unwrap();
        assert_eq!(
            obs.counter("numio_flow_arrivals_total", &[("component", "engine")]).get(),
            5
        );
        assert_eq!(
            obs.counter("numio_flow_completions_total", &[("component", "engine")]).get(),
            5
        );
        assert!(obs.jsonl().contains("\"ev\":\"flow_arrived\""));
    }

    #[test]
    fn traced_open_loop_records_arrivals() {
        let f = dl585_fabric();
        let template = FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0);
        let (report, trace) = Scenario::on(&f)
            .workload(Workload::poisson(vec![template], 3, 100.0, 9))
            .run_traced()
            .unwrap();
        let arrivals = trace
            .events()
            .iter()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Arrival { .. }))
            .count();
        assert_eq!(arrivals, 3);
        assert_eq!(report.flows.len(), 3);
    }

    #[test]
    fn empty_scenario_is_a_sim_error() {
        let f = dl585_fabric();
        assert_eq!(
            Scenario::on(&f).run().unwrap_err(),
            ScenarioError::Sim(SimError::NoFlows)
        );
    }

    #[test]
    fn failing_fault_source_is_typed() {
        struct Broken;
        impl FaultSource for Broken {
            fn arm_scenario(&self, _sim: &mut Simulation<'_>) -> Result<usize, String> {
                Err("no such device".to_string())
            }
        }
        let f = dl585_fabric();
        let err = Scenario::on(&f)
            .flows([FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0)])
            .faults(Broken)
            .run()
            .unwrap_err();
        assert_eq!(err, ScenarioError::Faults { reason: "no such device".to_string() });
        assert!(err.to_string().contains("no such device"));
    }

    #[test]
    fn working_fault_source_schedules_capacity_events() {
        struct Throttle;
        impl FaultSource for Throttle {
            fn arm_scenario(&self, sim: &mut Simulation<'_>) -> Result<usize, String> {
                let e = numa_topology::DirectedEdge::new(NodeId(6), NodeId(7));
                let cap = sim.fabric().edge_capacity(e, numa_fabric::TrafficClass::Dma);
                let h = sim.register(ResourceKey::Edge(e), cap);
                sim.schedule_capacity(h, 1.0, cap / 2.0);
                Ok(1)
            }
        }
        let f = dl585_fabric();
        // 93 Gbit over 6->7: 46.5 for 1 s, then 23.25 => done at 3 s.
        let report = Scenario::on(&f)
            .flows([FlowSpec::dma(NodeId(6), NodeId(7)).gbits(93.0)])
            .faults(Throttle)
            .run()
            .unwrap();
        assert!((report.makespan_s - 3.0).abs() < 1e-9, "{}", report.makespan_s);
    }

    #[test]
    fn steady_rates_and_bottlenecks_cover_workload_flows() {
        let f = dl585_fabric();
        let flows = vec![
            FlowSpec::dma(NodeId(4), NodeId(7)).gbits(10.0),
            FlowSpec::dma(NodeId(6), NodeId(7)).gbits(10.0),
        ];
        let rates = Scenario::on(&f)
            .workload(Workload::batch(flows.clone()))
            .steady_rates()
            .unwrap();
        assert!((rates[0] - 23.25).abs() < 1e-6, "{rates:?}");
        let report = Scenario::on(&f)
            .workload(Workload::batch(flows))
            .bottlenecks()
            .unwrap();
        let (key, _, _, util) = report[0];
        assert_eq!(
            key,
            ResourceKey::Edge(numa_topology::DirectedEdge::new(NodeId(6), NodeId(7)))
        );
        assert!((util - 1.0).abs() < 1e-9);
    }
}
