//! Flow-completion-time distributions.
//!
//! FCT — how long each flow took from arrival to completion — is the
//! comparison currency for open-loop scenarios: aggregate bandwidth
//! hides tail pain, but a p99 FCT does not. [`FctStats`] summarizes a
//! completed flow set with nearest-rank percentiles, the mean slowdown
//! against each flow's isolated lower bound, and a per-label breakdown;
//! [`fct_digest`] folds the exact FCT bit patterns into one `u64` so a
//! seeded scenario's determinism can be pinned by a single value.

use crate::flow::FlowResult;
use serde::{Deserialize, Serialize};

/// Summary of a flow-completion-time distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FctStats {
    /// Number of completed flows summarized.
    pub count: usize,
    /// Mean FCT, seconds.
    pub mean_s: f64,
    /// Median FCT (nearest-rank), seconds.
    pub p50_s: f64,
    /// 90th percentile (nearest-rank), seconds.
    pub p90_s: f64,
    /// 99th percentile (nearest-rank), seconds.
    pub p99_s: f64,
    /// 99.9th percentile (nearest-rank), seconds.
    pub p999_s: f64,
    /// Mean of per-flow slowdowns (FCT over isolated-run time); 1.0
    /// means the fabric was effectively uncontended.
    pub mean_slowdown: f64,
}

impl FctStats {
    /// The all-zero summary of an empty flow set (same family as
    /// `Summary::empty`: no NaN from a zero-length division).
    pub fn empty() -> Self {
        FctStats {
            count: 0,
            mean_s: 0.0,
            p50_s: 0.0,
            p90_s: 0.0,
            p99_s: 0.0,
            p999_s: 0.0,
            mean_slowdown: 0.0,
        }
    }

    /// Summarize a completed flow set.
    pub fn from_flows(flows: &[FlowResult]) -> Self {
        if flows.is_empty() {
            return FctStats::empty();
        }
        let mut fct: Vec<f64> = flows.iter().map(|f| f.fct_s).collect();
        fct.sort_by(|a, b| a.total_cmp(b));
        let n = flows.len() as f64;
        FctStats {
            count: flows.len(),
            mean_s: fct.iter().sum::<f64>() / n,
            p50_s: nearest_rank(&fct, 0.50),
            p90_s: nearest_rank(&fct, 0.90),
            p99_s: nearest_rank(&fct, 0.99),
            p999_s: nearest_rank(&fct, 0.999),
            mean_slowdown: flows.iter().map(|f| f.slowdown).sum::<f64>() / n,
        }
    }

    /// Per-label breakdown: one [`FctStats`] per distinct label, sorted
    /// by label so the output is deterministic. Flows sharing a template
    /// label (one workload class) group together.
    pub fn by_label(flows: &[FlowResult]) -> Vec<(String, FctStats)> {
        let mut labels: Vec<&str> = flows.iter().map(|f| f.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
            .into_iter()
            .map(|l| {
                let group: Vec<FlowResult> =
                    flows.iter().filter(|f| f.label == l).cloned().collect();
                (l.to_string(), FctStats::from_flows(&group))
            })
            .collect()
    }

    /// Render a compact single-distribution table.
    pub fn render(&self) -> String {
        format!(
            "flows {}  mean {:.4}s  p50 {:.4}s  p90 {:.4}s  p99 {:.4}s  p99.9 {:.4}s  slowdown {:.2}x",
            self.count, self.mean_s, self.p50_s, self.p90_s, self.p99_s, self.p999_s,
            self.mean_slowdown
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice: the value at
/// rank `ceil(q * n)` (1-based), clamped to the first element.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Order-sensitive FNV-1a digest over the exact FCT bit patterns, in
/// flow order. Two runs produce the same digest iff every flow's FCT is
/// bit-identical — the anchor the determinism gates compare.
pub fn fct_digest(flows: &[FlowResult]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for f in flows {
        for b in f.fct_s.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;

    fn flow(i: u32, fct: f64, slowdown: f64, label: &str) -> FlowResult {
        FlowResult {
            id: FlowId(i),
            label: label.to_string(),
            volume_gbit: 1.0,
            start_s: 0.0,
            finish_s: fct,
            fct_s: fct,
            mean_gbps: if fct > 0.0 { 1.0 / fct } else { 0.0 },
            slowdown,
        }
    }

    #[test]
    fn empty_is_all_zero_not_nan() {
        let s = FctStats::from_flows(&[]);
        assert_eq!(s, FctStats::empty());
        assert_eq!(s.mean_s, 0.0);
        assert_eq!(s.mean_slowdown, 0.0);
    }

    #[test]
    fn nearest_rank_percentiles_match_hand_computation() {
        // 1..=100 seconds: p50 = 50, p90 = 90, p99 = 99, p99.9 = 100.
        let flows: Vec<FlowResult> =
            (1..=100).map(|i| flow(i as u32, i as f64, 1.0, "x")).collect();
        let s = FctStats::from_flows(&flows);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p90_s, 90.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.p999_s, 100.0);
        assert_eq!(s.mean_s, 50.5);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = FctStats::from_flows(&[flow(0, 2.5, 1.5, "only")]);
        assert_eq!(s.p50_s, 2.5);
        assert_eq!(s.p999_s, 2.5);
        assert_eq!(s.mean_slowdown, 1.5);
    }

    #[test]
    fn by_label_groups_and_sorts() {
        let flows = vec![
            flow(0, 1.0, 1.0, "b"),
            flow(1, 3.0, 2.0, "a"),
            flow(2, 2.0, 1.0, "b"),
        ];
        let groups = FctStats::by_label(&flows);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "a");
        assert_eq!(groups[0].1.count, 1);
        assert_eq!(groups[1].0, "b");
        assert_eq!(groups[1].1.count, 2);
        assert_eq!(groups[1].1.p50_s, 1.0);
    }

    #[test]
    fn digest_is_order_and_bit_sensitive() {
        let a = vec![flow(0, 1.0, 1.0, ""), flow(1, 2.0, 1.0, "")];
        let b = vec![flow(0, 2.0, 1.0, ""), flow(1, 1.0, 1.0, "")];
        assert_eq!(fct_digest(&a), fct_digest(&a));
        assert_ne!(fct_digest(&a), fct_digest(&b), "order matters");
        let c = vec![flow(0, 1.0 + 1e-15, 1.0, ""), flow(1, 2.0, 1.0, "")];
        assert_ne!(fct_digest(&a), fct_digest(&c), "one ulp flips the digest");
        assert_ne!(fct_digest(&a), fct_digest(&[]), "empty digests differ");
    }
}
