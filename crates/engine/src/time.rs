//! Integer simulation time.
//!
//! The event calendar keys on an integer clock so event ordering never
//! depends on floating-point rounding: two events scheduled at the same
//! nanosecond compare equal on every platform, and ties break on the
//! deterministic `(kind, sequence)` order the [`crate::schedule::Schedule`]
//! maintains. One tick is one nanosecond — fine enough that the paper's
//! multi-second 400 GB transfers span billions of ticks, coarse enough
//! that a `u64` holds ~584 years of simulated time.
//!
//! The fluid integrator still advances in `f64` seconds (rate × time
//! products want the full mantissa); [`Time`] is the *ordering* domain,
//! seconds are the *arithmetic* domain, and [`Time::from_seconds`] is the
//! single, deterministic bridge between them.

use serde::{Deserialize, Serialize};

/// Ticks per simulated second (nanosecond resolution).
pub const TICKS_PER_SECOND: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in integer nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

impl Time {
    /// The start of simulated time.
    pub const ZERO: Time = Time(0);

    /// Largest representable instant (used as an "never" sentinel).
    pub const MAX: Time = Time(u64::MAX);

    /// Quantize a non-negative time in seconds onto the tick clock,
    /// rounding to the nearest tick. Deterministic: the same `f64` input
    /// always maps to the same tick on every platform.
    pub fn from_seconds(s: f64) -> Time {
        debug_assert!(s >= 0.0 && s.is_finite(), "time must be finite and >= 0: {s}");
        Time((s * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// This instant in seconds (for rendering; the integrator keeps its
    /// own exact `f64` timeline).
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// The instant `d` after this one, saturating at [`Time::MAX`].
    pub fn after(self, d: Delta) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// Elapsed ticks since `earlier` (saturating at zero).
    pub fn since(self, earlier: Time) -> Delta {
        Delta(self.0.saturating_sub(earlier.0))
    }
}

/// A span between two instants, in integer nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Delta(pub u64);

impl Delta {
    /// Zero-length span.
    pub const ZERO: Delta = Delta(0);

    /// Quantize a non-negative duration in seconds (nearest tick).
    pub fn from_seconds(s: f64) -> Delta {
        debug_assert!(s >= 0.0 && s.is_finite(), "delta must be finite and >= 0: {s}");
        Delta((s * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// This span in seconds.
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip_at_tick_resolution() {
        let t = Time::from_seconds(1.25);
        assert_eq!(t, Time(1_250_000_000));
        assert_eq!(t.as_seconds(), 1.25);
        assert_eq!(Delta::from_seconds(0.5), Delta(500_000_000));
    }

    #[test]
    fn ordering_is_integer_exact() {
        // Two f64 values closer than a tick land on the same instant.
        let a = Time::from_seconds(1.0);
        let b = Time::from_seconds(1.0 + 1e-13);
        assert_eq!(a, b);
        assert!(Time::from_seconds(1.0) < Time::from_seconds(1.0 + 1e-8));
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Time::MAX.after(Delta(1)), Time::MAX);
        assert_eq!(Time::ZERO.since(Time(5)), Delta::ZERO);
        assert_eq!(Time(7).since(Time(2)), Delta(5));
        assert_eq!(Time(3).after(Delta(4)), Time(7));
    }
}
