//! The event calendar: a binary-heap schedule of typed events.
//!
//! Every exogenous event the simulation must react to — a flow arriving,
//! a scheduled capacity change (fault injection / healing), a jitter
//! refresh tick — lives in one min-heap keyed by integer [`Time`]. Flow
//! *completions* are endogenous: the fluid integrator derives them from
//! `remaining / rate` each round (a completion time moves whenever the
//! allocation changes, so it cannot be pinned in the calendar ahead of
//! time); the [`Event::FlowCompletion`] variant exists for layers that
//! want to post a known completion into a calendar of their own.
//!
//! Ordering is fully deterministic: `(tick, exact seconds, kind rank,
//! insertion sequence)`. The integer tick decides almost every
//! comparison; the exact `f64` timestamp breaks sub-tick ties so the
//! integrator (which advances in seconds) and the calendar never
//! disagree about which event is next; the kind rank fixes the
//! same-instant convention (jitter refresh before arrivals before
//! capacity changes — the order the pre-calendar event loop applied
//! them); and the sequence number preserves insertion order within a
//! kind, which is what lets seeded fault plans replay exactly.

use crate::flow::FlowId;
use crate::resources::ResourceHandle;
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A typed calendar event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Jitter multipliers refresh at this instant.
    JitterTick,
    /// A flow becomes active and starts competing for bandwidth.
    FlowArrival {
        /// The arriving flow.
        flow: FlowId,
    },
    /// A flow finished (posted by layers that know a completion time;
    /// the engine itself derives completions from the fluid model).
    FlowCompletion {
        /// The completed flow.
        flow: FlowId,
    },
    /// A resource's capacity is reset (fault injection, healing,
    /// planned maintenance windows).
    CapacityChange {
        /// The affected resource.
        resource: ResourceHandle,
        /// New capacity, Gbit/s (0.0 takes the resource offline).
        cap_gbps: f64,
        /// Obs event name fired when the change applies
        /// (`capacity_change`, `fault_injected`, `fault_healed`, ...).
        tag: String,
    },
}

impl Event {
    /// Same-instant processing rank (lower fires first). Mirrors the
    /// pre-calendar loop: jitter refresh, then arrivals, then capacity
    /// changes.
    fn rank(&self) -> u8 {
        match self {
            Event::JitterTick => 0,
            Event::FlowArrival { .. } => 1,
            Event::FlowCompletion { .. } => 2,
            Event::CapacityChange { .. } => 3,
        }
    }
}

/// One scheduled entry: an [`Event`] pinned to an instant.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Integer instant — the primary heap key.
    pub at: Time,
    /// The exact timestamp in seconds, as scheduled. The integrator
    /// advances in seconds, so this is the value it steps to.
    pub at_s: f64,
    /// Tie-break sequence (insertion order).
    seq: u64,
    /// The event payload.
    pub event: Event,
}

impl Entry {
    fn key(&self) -> (Time, f64, u8, u64) {
        (self.at, self.at_s, self.event.rank(), self.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, the calendar wants min-first.
        let (ta, sa, ka, qa) = self.key();
        let (tb, sb, kb, qb) = other.key();
        tb.cmp(&ta)
            .then_with(|| sb.total_cmp(&sa))
            .then_with(|| kb.cmp(&ka))
            .then_with(|| qb.cmp(&qa))
    }
}

/// A deterministic min-first event calendar.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl Schedule {
    /// Empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at `at_s` seconds. Times must be finite and
    /// non-negative; equal-time entries fire in the documented
    /// `(kind, insertion)` order.
    pub fn push(&mut self, at_s: f64, event: Event) {
        assert!(at_s.is_finite() && at_s >= 0.0, "event time must be finite and >= 0");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at: Time::from_seconds(at_s), at_s, seq, event });
    }

    /// The next entry's exact timestamp in seconds, if any.
    pub fn peek_s(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at_s)
    }

    /// The next entry's integer instant, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next entry if its timestamp is at or before `t_s`
    /// (inclusive within the integrator's `eps` slack).
    pub fn pop_due(&mut self, t_s: f64, eps: f64) -> Option<Entry> {
        if self.heap.peek().is_some_and(|e| e.at_s <= t_s + eps) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Pop the next entry unconditionally.
    pub fn pop(&mut self) -> Option<Entry> {
        self.heap.pop()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Schedule::new();
        s.push(2.0, Event::FlowArrival { flow: FlowId(1) });
        s.push(0.5, Event::FlowArrival { flow: FlowId(0) });
        s.push(1.0, Event::JitterTick);
        let order: Vec<f64> = std::iter::from_fn(|| s.pop().map(|e| e.at_s)).collect();
        assert_eq!(order, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn same_instant_orders_by_kind_then_insertion() {
        let mut s = Schedule::new();
        let h = ResourceHandle(0);
        s.push(1.0, Event::CapacityChange { resource: h, cap_gbps: 5.0, tag: "a".into() });
        s.push(1.0, Event::CapacityChange { resource: h, cap_gbps: 9.0, tag: "b".into() });
        s.push(1.0, Event::FlowArrival { flow: FlowId(3) });
        s.push(1.0, Event::JitterTick);
        assert!(matches!(s.pop().unwrap().event, Event::JitterTick));
        assert!(matches!(s.pop().unwrap().event, Event::FlowArrival { flow: FlowId(3) }));
        // Capacity ties keep insertion order — the replay guarantee
        // seeded fault plans rely on.
        match s.pop().unwrap().event {
            Event::CapacityChange { tag, .. } => assert_eq!(tag, "a"),
            other => panic!("unexpected {other:?}"),
        }
        match s.pop().unwrap().event {
            Event::CapacityChange { tag, .. } => assert_eq!(tag, "b"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.is_empty());
    }

    #[test]
    fn sub_tick_ties_break_on_exact_seconds() {
        // Closer than a nanosecond: same integer tick, but the exact
        // f64 timestamps still order the entries.
        let mut s = Schedule::new();
        s.push(1.0 + 2e-13, Event::FlowArrival { flow: FlowId(1) });
        s.push(1.0, Event::FlowArrival { flow: FlowId(0) });
        assert_eq!(s.peek_time(), Some(Time::from_seconds(1.0)));
        assert!(matches!(s.pop().unwrap().event, Event::FlowArrival { flow: FlowId(0) }));
        assert!(matches!(s.pop().unwrap().event, Event::FlowArrival { flow: FlowId(1) }));
    }

    #[test]
    fn pop_due_respects_epsilon() {
        let mut s = Schedule::new();
        s.push(1.0, Event::FlowCompletion { flow: FlowId(0) });
        assert!(s.pop_due(0.5, 1e-12).is_none());
        assert_eq!(s.len(), 1);
        let e = s.pop_due(1.0 - 1e-13, 1e-12).unwrap();
        assert!(matches!(e.event, Event::FlowCompletion { flow: FlowId(0) }));
        assert!(s.pop_due(10.0, 0.0).is_none());
    }
}
