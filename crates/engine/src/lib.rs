#![warn(missing_docs)]
//! # numa-engine
//!
//! A discrete-event simulator for concurrent bulk transfers over a
//! [`numa_fabric::Fabric`].
//!
//! Transfers are modelled as fluid **flows**: at any instant every active
//! flow receives the max-min fair rate given the hardware it crosses
//! (directed links, memory controllers, plus caller-registered resources
//! such as device ports and per-node CPU budgets). The event loop advances
//! from completion to completion (and jitter refresh to jitter refresh),
//! integrating transferred bytes exactly between events.
//!
//! This is the substrate under the paper's measurements: the fio runs of
//! Figs. 5–7 (multi-stream TCP/RDMA/SSD), the `memcpy` probes of the
//! proposed methodology (Fig. 10), and the Eq. 1 mixed-class validation all
//! lower to flow sets simulated here.
//!
//! Flows carry **arrival times**: the run loop is a true event calendar
//! ([`Time`]/[`Delta`], a binary-heap [`Schedule`] of typed events), so
//! open-loop traffic — seeded Poisson or bounded-Pareto interarrivals from
//! a [`Workload`] — runs next to the closed-loop batches the paper
//! measured, and every completion yields a flow-completion-time record
//! summarized by [`FctStats`].
//!
//! ## Example
//!
//! [`Scenario`] is the front door:
//!
//! ```
//! use numa_engine::{Scenario, FlowSpec};
//! use numa_fabric::calibration::dl585_fabric;
//! use numa_topology::NodeId;
//!
//! let fabric = dl585_fabric();
//! // Two concurrent copies into node 7: one from node 6 (fast path) and
//! // one from node 3 (the narrow Table IV class-3 path).
//! let report = Scenario::on(&fabric)
//!     .flows([
//!         FlowSpec::dma(NodeId(6), NodeId(7)).gbytes(40.0),
//!         FlowSpec::dma(NodeId(3), NodeId(7)).gbytes(40.0),
//!     ])
//!     .run()
//!     .unwrap();
//! // The class-3 flow finishes last and at a lower average rate.
//! assert!(report.flows[0].mean_gbps > report.flows[1].mean_gbps);
//! ```

pub mod fct;
pub mod flow;
pub mod jitter;
pub mod resources;
pub mod scenario;
pub mod schedule;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
pub mod workload;

pub use fct::{fct_digest, FctStats};
pub use flow::{FlowId, FlowResult, FlowSpec};
pub use jitter::JitterCfg;
pub use resources::{ResourceHandle, ResourceKey};
pub use scenario::{FaultSource, Scenario, ScenarioError};
pub use schedule::{Event, Schedule};
pub use sim::{SimError, SimReport, Simulation};
pub use stats::Summary;
pub use time::{Delta, Time};
pub use trace::{Trace, TraceEvent};
pub use workload::{Arrivals, Workload};
