//! The discrete-event simulation loop.

use crate::flow::{FlowId, FlowResult, FlowSpec};
use crate::jitter::{JitterCfg, JitterState};
use crate::resources::{ResourceHandle, ResourceKey, ResourceRegistry};
use numa_fabric::{Fabric, MaxMinSolver, TrafficClass};
use serde::{Deserialize, Serialize};

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No flows were added.
    NoFlows,
    /// A flow can never make progress (zero-capacity path or zero ceiling).
    Starved {
        /// The stuck flow.
        flow: FlowId,
    },
    /// Safety valve: more events than `MAX_EVENTS` (runaway jitter loop).
    EventLimit,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoFlows => write!(f, "simulation has no flows"),
            SimError::Starved { flow } => write!(f, "flow {flow:?} is starved"),
            SimError::EventLimit => write!(f, "event limit exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// Hard cap on processed events.
pub const MAX_EVENTS: usize = 1_000_000;

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-flow outcomes, ordered by [`FlowId`].
    pub flows: Vec<FlowResult>,
    /// Time until the last flow finished, seconds.
    pub makespan_s: f64,
    /// Total volume divided by makespan — the "average aggregate
    /// performance" the paper reports for its 400 GB runs.
    pub aggregate_gbps: f64,
    /// Total volume, gigabits.
    pub total_gbit: f64,
    /// Median flow completion time, seconds (nearest-rank). Defaults to
    /// 0.0 when deserializing pre-arrival reports.
    #[serde(default)]
    pub fct_p50_s: f64,
    /// 99th-percentile flow completion time, seconds (nearest-rank).
    #[serde(default)]
    pub fct_p99_s: f64,
    /// Mean slowdown over all flows: each flow's FCT divided by the time
    /// it would take alone on an idle fabric (its isolated lower bound).
    /// 1.0 means no contention at all.
    #[serde(default)]
    pub mean_slowdown: f64,
}

impl SimReport {
    /// Mean of the per-flow mean rates (0.0 for an empty report).
    pub fn mean_flow_gbps(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        self.flows.iter().map(|f| f.mean_gbps).sum::<f64>() / self.flows.len() as f64
    }

    /// Full FCT distribution summary over this report's flows.
    pub fn fct_stats(&self) -> crate::fct::FctStats {
        crate::fct::FctStats::from_flows(&self.flows)
    }

    /// Order-sensitive digest of the FCT vector — the bit-identity
    /// anchor for seeded scenarios (see [`crate::fct::fct_digest`]).
    pub fn fct_digest(&self) -> u64 {
        crate::fct::fct_digest(&self.flows)
    }

    /// Render an fio-style per-flow table plus the aggregate line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>12} {:>10} {:>10}  label",
            "flow", "volume(Gbit)", "finish(s)", "mean(Gbps)"
        );
        for f in &self.flows {
            let _ = writeln!(
                out,
                "F{:<5} {:>12.1} {:>10.2} {:>10.2}  {}",
                f.id.0, f.volume_gbit, f.finish_s, f.mean_gbps, f.label
            );
        }
        let _ = writeln!(
            out,
            "aggregate: {:.2} Gbit/s over {:.2} s ({:.1} Gbit total)",
            self.aggregate_gbps, self.makespan_s, self.total_gbit
        );
        out
    }
}

/// A capacity change applied to one resource at a fixed simulation time —
/// the mechanism behind fault injection (link throttles, IRQ storms,
/// device stalls) and healing.
#[derive(Debug, Clone)]
struct CapEvent {
    at_s: f64,
    h: ResourceHandle,
    cap: f64,
    /// Event name emitted through the obs handle when the change fires
    /// (e.g. `fault_injected` / `fault_healed`).
    tag: String,
}

/// A configured simulation over one fabric.
#[derive(Debug, Clone)]
pub struct Simulation<'f> {
    fabric: &'f Fabric,
    registry: ResourceRegistry,
    flows: Vec<FlowSpec>,
    jitter: JitterCfg,
    obs: Option<numa_obs::Obs>,
    cap_events: Vec<CapEvent>,
}

impl<'f> Simulation<'f> {
    /// New simulation with no jitter.
    pub fn new(fabric: &'f Fabric) -> Self {
        Simulation {
            fabric,
            registry: ResourceRegistry::new(),
            flows: Vec::new(),
            jitter: JitterCfg::none(),
            obs: None,
            cap_events: Vec::new(),
        }
    }

    /// Enable jitter.
    pub fn with_jitter(mut self, cfg: JitterCfg) -> Self {
        self.jitter = cfg;
        self
    }

    /// Internal obs attach used by [`crate::scenario::Scenario::observe`]:
    /// the run emits `alloc_round` / `flow_finished` / `jitter_refresh`
    /// events (timestamped with simulation time, so seeded runs trace
    /// identically) and feeds the `numio_*` engine metric series.
    pub(crate) fn set_obs(&mut self, obs: numa_obs::Obs) {
        self.obs = Some(obs);
    }

    /// The fabric this simulation runs over. The returned reference
    /// carries the fabric's own lifetime, so fault layers can hold it
    /// while mutating the simulation.
    pub fn fabric(&self) -> &'f Fabric {
        self.fabric
    }

    /// Register (or fetch) a shared resource, e.g. a device port or a
    /// node's CPU protocol budget.
    pub fn register(&mut self, key: ResourceKey, cap: f64) -> ResourceHandle {
        self.registry.ensure(key, cap)
    }

    /// Overwrite a registered resource's capacity (e.g. derate node 7's
    /// CPU for interrupt handling).
    pub fn set_capacity(&mut self, h: ResourceHandle, cap: f64) {
        self.registry.set_capacity(h, cap);
    }

    /// Look up an already-registered resource by key. Fault injectors use
    /// this to find the handles lowered by higher layers (device ports,
    /// CPU budgets) without re-registering them at a different capacity.
    pub fn resource(&self, key: ResourceKey) -> Option<ResourceHandle> {
        self.registry.get(key)
    }

    /// Current capacity of a registered resource, Gbit/s.
    pub fn capacity(&self, h: ResourceHandle) -> f64 {
        self.registry.capacity(h)
    }

    /// Schedule a capacity change: at simulation time `at_s`, resource `h`
    /// is reset to `cap` Gbit/s (0.0 takes it offline). Events fire in
    /// time order; ties resolve in insertion order, so seeded plans replay
    /// deterministically. A flow stalled at zero rate waits for the next
    /// scheduled change instead of erroring as starved.
    pub fn schedule_capacity(&mut self, h: ResourceHandle, at_s: f64, cap: f64) {
        self.schedule_capacity_as(h, at_s, cap, "capacity_change");
    }

    /// [`Self::schedule_capacity`] with an explicit obs event name, so
    /// fault layers can tag changes as `fault_injected` / `fault_healed`.
    pub fn schedule_capacity_as(&mut self, h: ResourceHandle, at_s: f64, cap: f64, event: &str) {
        assert!(at_s.is_finite() && at_s >= 0.0, "capacity event time must be finite and >= 0");
        assert!(cap >= 0.0, "capacity must be non-negative");
        self.cap_events.push(CapEvent { at_s, h, cap, tag: event.to_string() });
    }

    /// Number of scheduled capacity events.
    pub fn num_capacity_events(&self) -> usize {
        self.cap_events.len()
    }

    /// Add a flow; returns its id. The flow becomes active at its
    /// [`FlowSpec::arrival_s`] (0.0 — the closed-loop default — means it
    /// competes from simulation start).
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(spec.volume_gbit > 0.0, "flow volume must be positive");
        assert!(
            spec.arrival_s.is_finite() && spec.arrival_s >= 0.0,
            "flow arrival must be finite and >= 0"
        );
        self.flows.push(spec);
        FlowId(self.flows.len() as u32 - 1)
    }

    /// Number of flows added so far.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Materialize resource lists and base ceilings for every flow.
    fn lower_flows(&mut self) -> (Vec<Vec<usize>>, Vec<f64>) {
        let mut resource_lists = Vec::with_capacity(self.flows.len());
        let mut base_ceilings = Vec::with_capacity(self.flows.len());
        // Split borrows: the fabric reference is independent of registry.
        let fabric = self.fabric;
        for spec in &self.flows {
            let mut rs: Vec<usize> = Vec::new();
            match spec.class {
                TrafficClass::Dma => {
                    // Shared hardware carries the constraint; a lone flow
                    // naturally converges to the route min-cut.
                    if spec.dst == spec.src {
                        // Local transfer: the node's controller is charged
                        // once as long as either endpoint is host memory.
                        if spec.charge_src_copy || spec.charge_dst_copy {
                            let copy = self.registry.ensure(
                                ResourceKey::NodeCopy(spec.src),
                                fabric.node_copy_cap(spec.src),
                            );
                            rs.push(copy.index());
                        }
                    } else {
                        if spec.charge_src_copy {
                            let copy_src = self.registry.ensure(
                                ResourceKey::NodeCopy(spec.src),
                                fabric.node_copy_cap(spec.src),
                            );
                            rs.push(copy_src.index());
                        }
                        if spec.charge_dst_copy {
                            let copy_dst = self.registry.ensure(
                                ResourceKey::NodeCopy(spec.dst),
                                fabric.node_copy_cap(spec.dst),
                            );
                            rs.push(copy_dst.index());
                        }
                        for e in fabric.routes().route(spec.src, spec.dst).edges() {
                            let h = self.registry.ensure(
                                ResourceKey::Edge(e),
                                fabric.edge_capacity(e, TrafficClass::Dma),
                            );
                            rs.push(h.index());
                        }
                    }
                    // Degenerate but legal: a fully device-side flow with
                    // no shared resources and no finite ceiling still needs
                    // a bound for the allocator's invariant.
                    if rs.is_empty()
                        && spec.extra_resources.is_empty()
                        && spec.ceiling_gbps.is_infinite()
                    {
                        base_ceilings.push(fabric.dma_path_bandwidth(spec.src, spec.dst));
                    } else {
                        base_ceilings.push(spec.ceiling_gbps);
                    }
                }
                TrafficClass::Pio => {
                    // The PIO model is a pairwise table, not a link property:
                    // it becomes the flow ceiling, while the memory
                    // controller and links still arbitrate contention.
                    let copy_dst = self.registry.ensure(
                        ResourceKey::NodeCopy(spec.dst),
                        fabric.node_copy_cap(spec.dst),
                    );
                    rs.push(copy_dst.index());
                    if spec.dst != spec.src {
                        for e in fabric.routes().route(spec.src, spec.dst).edges() {
                            let h = self.registry.ensure(
                                ResourceKey::Edge(e),
                                fabric.edge_capacity(e, TrafficClass::Dma),
                            );
                            rs.push(h.index());
                        }
                    }
                    let pio = fabric.pio_bandwidth(spec.src, spec.dst);
                    base_ceilings.push(spec.ceiling_gbps.min(pio));
                }
            }
            for h in &spec.extra_resources {
                rs.push(h.index());
            }
            // Canonicalize: the solver charges a resource once per
            // listing, so a handle passed to `charge` twice (or
            // duplicating a route resource) would silently double-bill.
            // Within the engine "uses the resource" is a set property;
            // keep the first occurrence of each index.
            let mut canon = Vec::with_capacity(rs.len());
            for r in rs {
                if !canon.contains(&r) {
                    canon.push(r);
                }
            }
            resource_lists.push(canon);
        }
        (resource_lists, base_ceilings)
    }

    /// Build a validated solver over the current registry capacities and
    /// the lowered flow set. Shared by the event loop (which retunes
    /// ceilings between solves) and the one-shot analysis views.
    fn solver_for(&self, resource_lists: &[Vec<usize>], base_ceilings: &[f64]) -> MaxMinSolver {
        let mut solver = MaxMinSolver::new(self.registry.capacities().to_vec());
        for ((rs, &c), spec) in resource_lists.iter().zip(base_ceilings).zip(&self.flows) {
            solver.add_flow(rs, c, spec.weight);
        }
        solver.validate();
        solver
    }

    /// Jitter needs a finite scale even for uncapped flows; use the
    /// uncontended path bandwidth.
    fn jitter_base(&self, i: usize, base_ceiling: f64) -> f64 {
        if base_ceiling.is_finite() {
            base_ceiling
        } else {
            let s = &self.flows[i];
            self.fabric.path_bandwidth(s.src, s.dst, s.class)
        }
    }

    /// Instantaneous max-min rates with all flows active (no volumes, no
    /// jitter) — the steady-state allocation.
    pub fn steady_rates(&mut self) -> Vec<f64> {
        let (resource_lists, base_ceilings) = self.lower_flows();
        let mut solver = self.solver_for(&resource_lists, &base_ceilings);
        solver.solve().to_vec()
    }

    /// Steady-state resource utilization: for every registered resource,
    /// `(key, used Gbit/s, capacity, utilization)` with all flows active,
    /// sorted most-loaded first. The contention-analysis view: the top
    /// entries are the hardware a placement change must relieve.
    pub fn bottlenecks(&mut self) -> Vec<(ResourceKey, f64, f64, f64)> {
        // Lower once; the same lists feed both the solve and the
        // per-resource usage sums.
        let (resource_lists, base_ceilings) = self.lower_flows();
        let mut solver = self.solver_for(&resource_lists, &base_ceilings);
        let rates = solver.solve().to_vec();
        let mut used = vec![0.0_f64; self.registry.len()];
        for (rs, &rate) in resource_lists.iter().zip(&rates) {
            for &r in rs {
                used[r] += rate;
            }
        }
        let mut report: Vec<(ResourceKey, f64, f64, f64)> = (0..self.registry.len())
            .map(|i| {
                let h = ResourceHandle(i);
                let cap = self.registry.capacity(h);
                let util = if cap > 0.0 { used[i] / cap } else { 0.0 };
                (self.registry.key(h), used[i], cap, util)
            })
            .collect();
        report.sort_by(|a, b| b.3.total_cmp(&a.3));
        report
    }

    /// Run to completion.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run_impl(None).map(|(report, _)| report)
    }

    /// Run to completion, recording an event [`Trace`].
    pub fn run_traced(self) -> Result<(SimReport, crate::trace::Trace), SimError> {
        self.run_impl(Some(crate::trace::Trace::new()))
            .map(|(report, trace)| (report, trace.expect("trace requested")))
    }

    fn run_impl(
        mut self,
        mut trace: Option<crate::trace::Trace>,
    ) -> Result<(SimReport, Option<crate::trace::Trace>), SimError> {
        use crate::schedule::{Event, Schedule};

        if self.flows.is_empty() {
            return Err(SimError::NoFlows);
        }
        let (resource_lists, base_ceilings) = self.lower_flows();
        let n = self.flows.len();
        // Lower into the solver once; between rounds only ceilings move
        // (jitter multipliers, 0.0 for completed or not-yet-arrived flows
        // — the active mask), so every round after the first solves with
        // zero heap allocation instead of rebuilding a MaxMinProblem.
        let mut solver = self.solver_for(&resource_lists, &base_ceilings);
        let mut remaining: Vec<f64> = self.flows.iter().map(|f| f.volume_gbit).collect();
        let mut finish = vec![0.0_f64; n];
        let mut active: Vec<bool> = vec![true; n];
        let mut jitter = JitterState::new(self.jitter, n);
        let jitter_enabled = !self.jitter.is_none();
        // Jitter scales are fixed per flow; compute them once.
        let jitter_bases: Vec<f64> = if jitter_enabled {
            (0..n).map(|i| self.jitter_base(i, base_ceilings[i])).collect()
        } else {
            Vec::new()
        };

        // The event calendar holds every exogenous event: flow arrivals,
        // scheduled capacity changes, jitter ticks. Completions stay
        // endogenous (derived from `remaining / rate` each round, since a
        // completion time moves whenever the allocation changes).
        let mut calendar = Schedule::new();
        // A flow with a future arrival is lowered into the solver up
        // front but held at a zero ceiling — the same deactivation used
        // for completed flows — until its arrival event fires.
        let mut arrived: Vec<bool> = vec![true; n];
        for i in 0..n {
            if self.flows[i].arrival_s > 0.0 {
                arrived[i] = false;
                solver.set_ceiling(i, 0.0);
                calendar.push(self.flows[i].arrival_s, Event::FlowArrival { flow: FlowId(i as u32) });
            }
        }
        // Scheduled capacity changes go into the same calendar; same-time
        // entries keep insertion order, so seeded fault plans replay
        // exactly.
        for ev in std::mem::take(&mut self.cap_events) {
            calendar.push(
                ev.at_s,
                Event::CapacityChange { resource: ev.h, cap_gbps: ev.cap, tag: ev.tag },
            );
        }
        if jitter_enabled {
            calendar.push(jitter.refresh_s(), Event::JitterTick);
        }

        let mut t = 0.0_f64;

        for _event in 0..MAX_EVENTS {
            if !active.iter().any(|&a| a) {
                break;
            }
            // Allocate rates for the arrived active set.
            if jitter_enabled {
                for i in 0..n {
                    if active[i] && arrived[i] {
                        solver.set_ceiling(i, jitter_bases[i] * jitter.multiplier(i));
                    }
                }
            }
            let alloc_span = self.obs.as_ref().map(|o| o.span("engine.alloc_round"));
            let rates = solver.solve();
            drop(alloc_span);
            if let Some(o) = &self.obs {
                let n_active =
                    (0..n).filter(|&i| active[i] && arrived[i]).count();
                o.counter("numio_alloc_rounds_total", &[("component", "engine")]).inc();
                o.event(
                    "alloc_round",
                    t,
                    &[
                        ("component", "engine".into()),
                        ("flows", numa_obs::Value::from(n_active)),
                    ],
                );
            }
            if let Some(tr) = trace.as_mut() {
                tr.push(crate::trace::TraceEvent::Rates {
                    time_s: t,
                    rates: (0..n)
                        .filter(|&i| active[i] && arrived[i])
                        .map(|i| (FlowId(i as u32), rates[i]))
                        .collect(),
                });
            }

            // Time to the next completion.
            let mut dt_complete = f64::INFINITY;
            for i in 0..n {
                if active[i] && rates[i] > 1e-12 {
                    dt_complete = dt_complete.min(remaining[i] / rates[i]);
                }
            }
            // The calendar's head is the earliest of every pending jitter
            // tick, arrival, and capacity change.
            let next_event = calendar.peek_s().unwrap_or(f64::INFINITY);
            // A flow at zero rate is only starved if nothing scheduled can
            // still change the allocation — a pending heal event means the
            // flow is waiting, not dead.
            if dt_complete.is_infinite() && next_event.is_infinite() {
                let stuck = (0..n).find(|&i| active[i]).unwrap();
                return Err(SimError::Starved { flow: FlowId(stuck as u32) });
            }
            let dt = dt_complete.min(next_event - t).max(0.0);

            // Integrate.
            for i in 0..n {
                if active[i] {
                    remaining[i] -= rates[i] * dt;
                }
            }
            t += dt;
            for i in 0..n {
                if active[i] && arrived[i] && remaining[i] <= 1e-9 {
                    active[i] = false;
                    remaining[i] = 0.0;
                    finish[i] = t;
                    // Completed flows drop out of the allocation: a zero
                    // ceiling deactivates the flow in the solver.
                    solver.set_ceiling(i, 0.0);
                    if let Some(o) = &self.obs {
                        o.counter("numio_flow_completions_total", &[("component", "engine")])
                            .inc();
                        o.event(
                            "flow_finished",
                            t,
                            &[
                                ("flow", numa_obs::Value::from(i)),
                                ("label", self.flows[i].label.clone().into()),
                            ],
                        );
                        o.histogram(
                            "numio_fct_seconds",
                            &[("component", "engine")],
                            numa_obs::buckets::FCT_SECONDS,
                        )
                        .observe(t - self.flows[i].arrival_s);
                    }
                    if let Some(tr) = trace.as_mut() {
                        tr.push(crate::trace::TraceEvent::Finished {
                            time_s: t,
                            flow: FlowId(i as u32),
                        });
                    }
                }
            }
            // Fire every calendar entry due at (or before) the new time,
            // in deterministic `(time, kind, insertion)` order.
            while let Some(entry) = calendar.pop_due(t, 1e-12) {
                match entry.event {
                    Event::JitterTick => {
                        jitter.refresh();
                        calendar.push(entry.at_s + jitter.refresh_s(), Event::JitterTick);
                        if let Some(o) = &self.obs {
                            o.event("jitter_refresh", t, &[]);
                        }
                        if let Some(tr) = trace.as_mut() {
                            tr.push(crate::trace::TraceEvent::JitterRefresh { time_s: t });
                        }
                    }
                    Event::FlowArrival { flow } => {
                        let i = flow.index();
                        arrived[i] = true;
                        // Reactivate at the base ceiling; a jitter-enabled
                        // run retunes it at the top of the next round.
                        solver.set_ceiling(i, base_ceilings[i]);
                        if let Some(o) = &self.obs {
                            o.counter("numio_flow_arrivals_total", &[("component", "engine")])
                                .inc();
                            o.event(
                                "flow_arrived",
                                t,
                                &[
                                    ("flow", numa_obs::Value::from(i)),
                                    ("label", self.flows[i].label.clone().into()),
                                ],
                            );
                        }
                        if let Some(tr) = trace.as_mut() {
                            tr.push(crate::trace::TraceEvent::Arrival { time_s: t, flow });
                        }
                    }
                    // The engine derives completions from the fluid model;
                    // a posted completion is already recorded above.
                    Event::FlowCompletion { .. } => {}
                    Event::CapacityChange { resource, cap_gbps, tag } => {
                        // Apply to both the registry (analysis views) and
                        // the solver, which retunes incrementally without
                        // a rebuild.
                        self.registry.set_capacity(resource, cap_gbps);
                        solver.set_capacity(resource.index(), cap_gbps);
                        if let Some(o) = &self.obs {
                            o.counter("numio_capacity_events_total", &[("component", "engine")])
                                .inc();
                            o.event(
                                &tag,
                                t,
                                &[
                                    (
                                        "resource",
                                        format!("{:?}", self.registry.key(resource)).into(),
                                    ),
                                    ("cap_gbps", numa_obs::Value::from(cap_gbps)),
                                ],
                            );
                        }
                    }
                }
            }
        }
        if active.iter().any(|&a| a) {
            return Err(SimError::EventLimit);
        }

        let total_gbit: f64 = self.flows.iter().map(|f| f.volume_gbit).sum();
        let makespan = finish.iter().cloned().fold(0.0, f64::max);
        let flows: Vec<FlowResult> = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let fct = finish[i] - f.arrival_s;
                // Isolated lower bound: the rate the flow would see alone
                // on an idle fabric (finite ceiling, else the path
                // min-cut) — the denominator of the slowdown metric.
                let ideal = self.jitter_base(i, base_ceilings[i]);
                FlowResult {
                    id: FlowId(i as u32),
                    label: f.label.clone(),
                    volume_gbit: f.volume_gbit,
                    start_s: f.arrival_s,
                    finish_s: finish[i],
                    fct_s: fct,
                    mean_gbps: if fct > 0.0 { f.volume_gbit / fct } else { 0.0 },
                    slowdown: if fct > 0.0 && ideal > 0.0 && ideal.is_finite() {
                        fct / (f.volume_gbit / ideal)
                    } else {
                        1.0
                    },
                }
            })
            .collect();
        let fct = crate::fct::FctStats::from_flows(&flows);
        Ok((
            SimReport {
                flows,
                makespan_s: makespan,
                aggregate_gbps: if makespan > 0.0 { total_gbit / makespan } else { 0.0 },
                total_gbit,
                fct_p50_s: fct.p50_s,
                fct_p99_s: fct.p99_s,
                mean_slowdown: fct.mean_slowdown,
            },
            trace,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_fabric::calibration::dl585_fabric;
    use numa_topology::NodeId;

    fn fabric() -> Fabric {
        dl585_fabric()
    }

    #[test]
    fn single_flow_runs_at_min_cut() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(3), NodeId(7)).gbytes(26.0));
        let r = sim.run().unwrap();
        // Table IV: node 3 writes at the 26.0 Gbps min-cut.
        assert!((r.aggregate_gbps - 26.0).abs() < 1e-6, "{}", r.aggregate_gbps);
        assert!((r.makespan_s - 8.0).abs() < 1e-6); // 208 Gbit / 26 Gbps
    }

    #[test]
    fn local_flow_uses_node_copy_cap() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(7), NodeId(7)).gbits(53.5));
        let r = sim.run().unwrap();
        assert!((r.aggregate_gbps - 53.5).abs() < 1e-6);
        assert!((r.makespan_s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_a_common_edge() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        // Both 4->7 and 6->7 traverse edge 6->7 (46.5).
        sim.add_flow(FlowSpec::dma(NodeId(4), NodeId(7)).gbits(100.0));
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(100.0));
        let rates = sim.steady_rates();
        assert!((rates[0] - 23.25).abs() < 1e-6, "{rates:?}");
        assert!((rates[1] - 23.25).abs() < 1e-6);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(3), NodeId(7)).gbits(100.0)); // 26.0 path
        sim.add_flow(FlowSpec::dma(NodeId(0), NodeId(1)).gbits(100.0)); // intra-package
        let rates = sim.steady_rates();
        assert!((rates[0] - 26.0).abs() < 1e-6);
        assert!((rates[1] - 51.2).abs() < 1e-6);
    }

    #[test]
    fn ceiling_caps_flow() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(10.0).ceiling(5.0));
        let r = sim.run().unwrap();
        assert!((r.aggregate_gbps - 5.0).abs() < 1e-6);
    }

    #[test]
    fn custom_resource_shared_by_flows() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        let port = sim.register(ResourceKey::Custom(0), 20.0);
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(100.0).charge(port));
        sim.add_flow(FlowSpec::dma(NodeId(5), NodeId(7)).gbits(100.0).charge(port));
        let rates = sim.steady_rates();
        assert!((rates[0] + rates[1] - 20.0).abs() < 1e-6, "{rates:?}");
    }

    #[test]
    fn duplicate_extra_charges_count_once() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        let port = sim.register(ResourceKey::Custom(0), 20.0);
        // The same handle charged twice: lowering canonicalizes the
        // resource list, so the flow is billed once per unit of rate
        // (the raw solver contract is charge-per-listing).
        sim.add_flow(
            FlowSpec::dma(NodeId(6), NodeId(7)).gbits(100.0).charge(port).charge(port),
        );
        let rates = sim.steady_rates();
        assert!((rates[0] - 20.0).abs() < 1e-9, "{rates:?}");
        // The usage report agrees: the port is exactly saturated, not
        // accounted at twice the flow rate.
        let report = sim.bottlenecks();
        let (key, used, cap, util) = report[0];
        assert_eq!(key, ResourceKey::Custom(0));
        assert!((used - 20.0).abs() < 1e-9);
        assert!((cap - 20.0).abs() < 1e-9);
        assert!((util - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pio_flow_obeys_matrix_ceiling() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::pio(NodeId(7), NodeId(4)).gbits(21.34));
        let r = sim.run().unwrap();
        assert!((r.aggregate_gbps - 21.34).abs() < 1e-6);
        assert!((r.makespan_s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn staggered_completion_changes_rates() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        // Same shared edge 6->7; first flow is half the size, so after it
        // finishes, the second speeds up.
        sim.add_flow(FlowSpec::dma(NodeId(4), NodeId(7)).gbits(23.25));
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5));
        let r = sim.run().unwrap();
        // Flow 0 finishes at t=1 (23.25 Gbps fair share). Flow 1 then has
        // 23.25 Gbit left, running alone at 46.5 => finishes at 1.5.
        assert!((r.flows[0].finish_s - 1.0).abs() < 1e-6, "{:?}", r.flows[0]);
        assert!((r.flows[1].finish_s - 1.5).abs() < 1e-6, "{:?}", r.flows[1]);
        assert!((r.aggregate_gbps - 46.5).abs() < 1e-6);
    }

    #[test]
    fn no_flows_is_an_error() {
        let f = fabric();
        let sim = Simulation::new(&f);
        assert_eq!(sim.run().unwrap_err(), SimError::NoFlows);
    }

    #[test]
    fn starved_flow_is_detected() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        let dead = sim.register(ResourceKey::Custom(9), 0.0);
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0).charge(dead));
        assert!(matches!(sim.run().unwrap_err(), SimError::Starved { .. }));
    }

    #[test]
    fn jitter_is_reproducible_and_bounded() {
        let f = fabric();
        let run = |seed| {
            let mut sim =
                Simulation::new(&f).with_jitter(JitterCfg { amplitude: 0.05, refresh_s: 0.5, seed });
            sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(100.0));
            sim.run().unwrap().aggregate_gbps
        };
        let a = run(1);
        let b = run(1);
        let c = run(2);
        assert_eq!(a, b, "same seed, same result");
        assert_ne!(a, c, "different seed perturbs");
        // Bounded around the no-jitter value 46.5.
        assert!((a - 46.5).abs() < 46.5 * 0.06, "{a}");
    }

    #[test]
    #[should_panic(expected = "volume must be positive")]
    fn zero_volume_rejected() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(0), NodeId(1)).gbits(0.0));
    }

    #[test]
    fn bottleneck_report_finds_the_shared_edge() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        // Both flows cross edge 6->7 (46.5): it saturates; their private
        // first hops do not.
        sim.add_flow(FlowSpec::dma(NodeId(4), NodeId(7)).gbits(10.0));
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(10.0));
        let report = sim.bottlenecks();
        let (key, used, cap, util) = report[0];
        assert_eq!(
            key,
            ResourceKey::Edge(numa_topology::DirectedEdge::new(NodeId(6), NodeId(7)))
        );
        assert!((used - 46.5).abs() < 1e-6);
        assert!((cap - 46.5).abs() < 1e-6);
        assert!((util - 1.0).abs() < 1e-9);
        // Every other resource is strictly below saturation.
        for &(_, _, _, u) in &report[1..] {
            assert!(u < 1.0 - 1e-9, "{report:?}");
        }
    }

    #[test]
    fn traced_run_records_rounds_and_finishes() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        let id0 = sim.add_flow(FlowSpec::dma(NodeId(4), NodeId(7)).gbits(23.25));
        let id1 = sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5));
        let (report, trace) = sim.run_traced().unwrap();
        // Two allocation rounds: both active, then flow 1 alone.
        assert_eq!(trace.rounds(), 2);
        assert_eq!(trace.finish_of(id0), Some(report.flows[0].finish_s));
        assert_eq!(trace.finish_of(id1), Some(report.flows[1].finish_s));
        // Fair share while contended, full rate after.
        assert!((trace.rate_at(id1, 0.5).unwrap() - 23.25).abs() < 1e-9);
        assert!((trace.rate_at(id1, 1.2).unwrap() - 46.5).abs() < 1e-9);
        assert!(trace.render().contains("finish"));
    }

    #[test]
    fn observed_run_emits_events_and_metrics() {
        let f = fabric();
        let obs = numa_obs::Obs::new();
        let mut sc = crate::scenario::Scenario::on(&f).observe(obs.clone());
        sc.add_flow(FlowSpec::dma(NodeId(4), NodeId(7)).gbits(23.25).label("a"));
        sc.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5).label("b"));
        let r = sc.run().unwrap();
        assert_eq!(
            obs.counter("numio_alloc_rounds_total", &[("component", "engine")]).get(),
            2
        );
        assert_eq!(
            obs.counter("numio_flow_completions_total", &[("component", "engine")]).get(),
            2
        );
        let jsonl = obs.jsonl();
        assert!(jsonl.contains("\"ev\":\"alloc_round\""), "{jsonl}");
        assert!(jsonl.contains("\"label\":\"b\""), "{jsonl}");
        // Event timestamps are simulation time, not wall time.
        let last = obs.events().last().unwrap().clone();
        assert_eq!(last.name, "flow_finished");
        assert!((last.time_s - r.makespan_s).abs() < 1e-9);
        // Profiling off by default: no wall-clock series pollute the snapshot.
        assert!(!obs.prometheus().contains("numio_op_seconds"));
    }

    #[test]
    fn observed_run_matches_unobserved() {
        let f = fabric();
        let build = || {
            let mut sim = Simulation::new(&f);
            sim.add_flow(FlowSpec::dma(NodeId(0), NodeId(7)).gbits(30.0));
            sim.add_flow(FlowSpec::dma(NodeId(3), NodeId(7)).gbits(30.0));
            sim
        };
        let plain = build().run().unwrap();
        let observed = crate::scenario::Scenario::from_simulation(build())
            .observe(numa_obs::Obs::new())
            .run()
            .unwrap();
        assert_eq!(plain, observed);
    }

    #[test]
    fn traced_and_untraced_agree() {
        let f = fabric();
        let build = || {
            let mut sim = Simulation::new(&f);
            sim.add_flow(FlowSpec::dma(NodeId(0), NodeId(7)).gbits(30.0));
            sim.add_flow(FlowSpec::dma(NodeId(3), NodeId(7)).gbits(30.0));
            sim
        };
        let plain = build().run().unwrap();
        let (traced, _) = build().run_traced().unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn fully_device_side_flow_is_bounded_by_its_path() {
        // Both endpoints marked device-side with no extra resources and no
        // ceiling: the engine falls back to the path min-cut so the
        // allocator's no-unbounded-flow invariant holds.
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(
            FlowSpec::dma(NodeId(3), NodeId(7))
                .gbits(26.0)
                .device_src()
                .device_dst(),
        );
        let r = sim.run().unwrap();
        assert!((r.aggregate_gbps - 26.0).abs() < 1e-9, "{}", r.aggregate_gbps);
    }

    #[test]
    fn weighted_flows_split_shared_hardware_proportionally() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        // Two flows over the same 6->7 edge (46.5): weight 3 vs weight 1.
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(100.0).weight(3.0));
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(100.0));
        let rates = sim.steady_rates();
        assert!((rates[0] - 34.875).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 11.625).abs() < 1e-9);
        assert!((rates[0] / rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn non_positive_weight_rejected_at_build() {
        let _ = FlowSpec::dma(NodeId(0), NodeId(1)).weight(0.0);
    }

    #[test]
    fn scheduled_throttle_changes_completion_time() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        let e = numa_topology::DirectedEdge::new(NodeId(6), NodeId(7));
        let h = sim.register(ResourceKey::Edge(e), 46.5);
        // Full rate for 1 s (46.5 Gbit done), then half rate for the
        // remaining 46.5 Gbit => finishes at 3 s.
        sim.schedule_capacity(h, 1.0, 23.25);
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(93.0));
        let r = sim.run().unwrap();
        assert!((r.makespan_s - 3.0).abs() < 1e-9, "{}", r.makespan_s);
    }

    #[test]
    fn scheduled_heal_revives_stalled_flow() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        let dead = sim.register(ResourceKey::Custom(9), 0.0);
        sim.schedule_capacity_as(dead, 2.0, 10.0, "fault_healed");
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(10.0).charge(dead));
        // Stalled until the heal at t=2, then 10 Gbit at 10 Gbps.
        let r = sim.run().unwrap();
        assert!((r.makespan_s - 3.0).abs() < 1e-9, "{}", r.makespan_s);
    }

    #[test]
    fn unhealed_zero_capacity_still_starves() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        let dead = sim.register(ResourceKey::Custom(9), 0.0);
        // The only event is another throttle, not a heal: still starved
        // once the schedule drains.
        sim.schedule_capacity(dead, 1.0, 0.0);
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0).charge(dead));
        assert!(matches!(sim.run().unwrap_err(), SimError::Starved { .. }));
    }

    #[test]
    fn capacity_events_emit_tagged_obs_events() {
        let f = fabric();
        let obs = numa_obs::Obs::new();
        let mut sc = crate::scenario::Scenario::on(&f).observe(obs.clone());
        let e = numa_topology::DirectedEdge::new(NodeId(6), NodeId(7));
        let h = sc.register(ResourceKey::Edge(e), 46.5);
        sc.simulation_mut().schedule_capacity_as(h, 0.5, 10.0, "fault_injected");
        sc.simulation_mut().schedule_capacity_as(h, 1.5, 46.5, "fault_healed");
        sc.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(60.0));
        sc.run().unwrap();
        assert_eq!(
            obs.counter("numio_capacity_events_total", &[("component", "engine")]).get(),
            2
        );
        let jsonl = obs.jsonl();
        assert!(jsonl.contains("\"ev\":\"fault_injected\""), "{jsonl}");
        assert!(jsonl.contains("\"ev\":\"fault_healed\""), "{jsonl}");
    }

    #[test]
    fn scheduled_runs_are_deterministic() {
        let f = fabric();
        let run = || {
            let mut sim = Simulation::new(&f);
            let e = numa_topology::DirectedEdge::new(NodeId(6), NodeId(7));
            let h = sim.register(ResourceKey::Edge(e), 46.5);
            sim.schedule_capacity(h, 0.75, 20.0);
            sim.schedule_capacity(h, 2.0, 46.5);
            sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(80.0));
            sim.add_flow(FlowSpec::dma(NodeId(4), NodeId(7)).gbits(40.0));
            sim.run().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn resource_lookup_finds_registered_keys() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        let h = sim.register(ResourceKey::Custom(3), 5.0);
        assert_eq!(sim.resource(ResourceKey::Custom(3)), Some(h));
        assert_eq!(sim.resource(ResourceKey::Custom(4)), None);
    }

    #[test]
    fn report_renders_flows_and_aggregate() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(3), NodeId(7)).gbits(26.0).label("slowpath"));
        let r = sim.run().unwrap();
        let s = r.render();
        assert!(s.contains("slowpath"));
        assert!(s.contains("aggregate: 26.00 Gbit/s"));
        assert!(s.contains("F0"));
    }

    #[test]
    fn empty_report_mean_flow_gbps_is_zero_not_nan() {
        // Regression (same family as the Summary::empty fix): an empty
        // report used to divide by zero and yield NaN.
        let r = SimReport {
            flows: Vec::new(),
            makespan_s: 0.0,
            aggregate_gbps: 0.0,
            total_gbit: 0.0,
            fct_p50_s: 0.0,
            fct_p99_s: 0.0,
            mean_slowdown: 0.0,
        };
        assert_eq!(r.mean_flow_gbps(), 0.0);
        assert!(!r.mean_flow_gbps().is_nan());
        assert_eq!(r.fct_stats(), crate::fct::FctStats::empty());
    }

    #[test]
    fn report_carries_fct_percentiles_and_digest() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(4), NodeId(7)).gbits(23.25));
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(46.5));
        let r = sim.run().unwrap();
        // Finishes at 1.0 and 1.5 s (staggered completion case): the
        // nearest-rank p50 over {1.0, 1.5} is 1.0, p99 is 1.5.
        assert!((r.fct_p50_s - 1.0).abs() < 1e-9, "{}", r.fct_p50_s);
        assert!((r.fct_p99_s - 1.5).abs() < 1e-9, "{}", r.fct_p99_s);
        assert!(r.mean_slowdown >= 1.0);
        assert_eq!(r.fct_digest(), crate::fct::fct_digest(&r.flows));
    }

    #[test]
    fn report_totals_consistent() {
        let f = fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(5), NodeId(7)).gbytes(1.0).label("a"));
        sim.add_flow(FlowSpec::dma(NodeId(3), NodeId(7)).gbytes(2.0).label("b"));
        let r = sim.run().unwrap();
        assert_eq!(r.total_gbit, 24.0);
        assert_eq!(r.flows.len(), 2);
        assert_eq!(r.flows[0].label, "a");
        let slowest = r.flows.iter().map(|x| x.finish_s).fold(0.0, f64::max);
        assert_eq!(r.makespan_s, slowest);
        assert!(r.mean_flow_gbps() > 0.0);
    }
}
