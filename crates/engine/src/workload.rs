//! Workload generators: closed-loop batches and seeded open-loop
//! arrival processes.
//!
//! A [`Workload`] turns a small set of template flows into the full flow
//! list a [`crate::Scenario`] runs: either a closed-loop **batch** (every
//! flow present from t=0 — exactly the engine's historical behavior) or
//! an **open-loop** process where flow `i` arrives after a seeded random
//! interarrival gap (Poisson/exponential, or bounded-Pareto for
//! heavy-tailed bursts). Interarrival streams come from a splitmix64
//! generator, so the same seed produces the same arrival sequence on
//! every platform — the determinism contract the whole repo keeps.
//!
//! The [`Workload::parse`] grammar gives the CLI and the serve wire
//! protocol one shared spec syntax:
//!
//! ```text
//! poisson:rate=200,n=1000,seed=42,src=6,dst=7,gbit=1.0
//! pareto:alpha=1.5,min=0.001,max=0.5,n=500,seed=7,src=3,dst=7,gbit=2.0
//! batch:n=8,src=6,dst=7,gbit=40.0
//! ```

use crate::flow::FlowSpec;
use numa_topology::NodeId;

/// How flow arrival times are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrivals {
    /// Closed loop: every flow arrives at t=0 (the historical batch
    /// behavior).
    Batch,
    /// Open loop: exponential interarrivals at `rate_hz` flows/second,
    /// from a splitmix64 stream seeded with `seed`.
    Poisson {
        /// Mean arrival rate, flows per second.
        rate_hz: f64,
        /// Stream seed; same seed, same arrival sequence.
        seed: u64,
    },
    /// Open loop: bounded-Pareto interarrivals in `[min_s, max_s]` with
    /// tail index `alpha` — heavy-tailed bursts with a finite worst gap.
    BoundedPareto {
        /// Tail index (smaller = heavier tail). Must be positive.
        alpha: f64,
        /// Smallest possible gap, seconds.
        min_s: f64,
        /// Largest possible gap, seconds.
        max_s: f64,
        /// Stream seed.
        seed: u64,
    },
}

/// A flow-list generator: templates cycled round-robin across `count`
/// flows, with arrival times from an [`Arrivals`] process.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    templates: Vec<FlowSpec>,
    count: usize,
    arrivals: Arrivals,
}

impl Workload {
    /// Closed-loop batch of exactly these flows (arrival times kept as
    /// set on each spec — today's behavior, verbatim).
    pub fn batch(flows: Vec<FlowSpec>) -> Self {
        let count = flows.len();
        Workload { templates: flows, count, arrivals: Arrivals::Batch }
    }

    /// Open-loop Poisson process: `count` flows cycled round-robin over
    /// `templates`, arriving at `rate_hz` flows/second.
    pub fn poisson(templates: Vec<FlowSpec>, count: usize, rate_hz: f64, seed: u64) -> Self {
        assert!(rate_hz > 0.0, "arrival rate must be positive");
        assert!(!templates.is_empty(), "open-loop workload needs a template flow");
        Workload { templates, count, arrivals: Arrivals::Poisson { rate_hz, seed } }
    }

    /// Open-loop bounded-Pareto process: heavy-tailed gaps in
    /// `[min_s, max_s]` with tail index `alpha`.
    pub fn bounded_pareto(
        templates: Vec<FlowSpec>,
        count: usize,
        alpha: f64,
        min_s: f64,
        max_s: f64,
        seed: u64,
    ) -> Self {
        assert!(alpha > 0.0, "pareto alpha must be positive");
        assert!(0.0 < min_s && min_s < max_s, "need 0 < min_s < max_s");
        assert!(!templates.is_empty(), "open-loop workload needs a template flow");
        Workload {
            templates,
            count,
            arrivals: Arrivals::BoundedPareto { alpha, min_s, max_s, seed },
        }
    }

    /// Number of flows this workload materializes.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The arrival process.
    pub fn arrivals(&self) -> &Arrivals {
        &self.arrivals
    }

    /// Generate the concrete flow list: template `i % templates` with
    /// the process's arrival time stamped on. Deterministic for a given
    /// workload value.
    pub fn materialize(&self) -> Vec<FlowSpec> {
        match self.arrivals {
            Arrivals::Batch => self.templates.clone(),
            Arrivals::Poisson { rate_hz, seed } => {
                let mut rng = Splitmix64::new(seed);
                let mut t = 0.0_f64;
                (0..self.count)
                    .map(|i| {
                        t += -rng.u01().ln() / rate_hz;
                        self.templates[i % self.templates.len()].clone().arrival(t)
                    })
                    .collect()
            }
            Arrivals::BoundedPareto { alpha, min_s, max_s, seed } => {
                let mut rng = Splitmix64::new(seed);
                // Inverse CDF of the bounded Pareto on [L, H]:
                // x = L * (1 - u * (1 - (L/H)^a))^(-1/a).
                let k = 1.0 - (min_s / max_s).powf(alpha);
                let mut t = 0.0_f64;
                (0..self.count)
                    .map(|i| {
                        t += min_s * (1.0 - rng.u01() * k).powf(-1.0 / alpha);
                        self.templates[i % self.templates.len()].clone().arrival(t)
                    })
                    .collect()
            }
        }
    }

    /// Parse the shared CLI/wire workload grammar:
    /// `kind:key=value,key=value,...` where kind is `poisson`, `pareto`,
    /// or `batch`. Keys: `n` (flows, default 100), `seed` (default 42),
    /// `src`/`dst` (nodes, default 6/7), `gbit` (volume per flow,
    /// default 1.0), plus `rate` (poisson, flows/s, default 100) and
    /// `alpha`/`min`/`max` (pareto, defaults 1.5/0.001/1.0).
    pub fn parse(spec: &str) -> Result<Workload, String> {
        let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
        let mut n = 100usize;
        let mut seed = 42u64;
        let mut src = 6usize;
        let mut dst = 7usize;
        let mut gbit = 1.0f64;
        let mut rate = 100.0f64;
        let mut alpha = 1.5f64;
        let mut min_s = 1e-3f64;
        let mut max_s = 1.0f64;
        for pair in rest.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("workload option '{pair}' is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("workload option '{key}': {e}");
            match key {
                "n" => n = value.parse().map_err(|e| bad(&e))?,
                "seed" => seed = value.parse().map_err(|e| bad(&e))?,
                "src" => src = value.parse().map_err(|e| bad(&e))?,
                "dst" => dst = value.parse().map_err(|e| bad(&e))?,
                "gbit" => gbit = value.parse().map_err(|e| bad(&e))?,
                "rate" => rate = value.parse().map_err(|e| bad(&e))?,
                "alpha" => alpha = value.parse().map_err(|e| bad(&e))?,
                "min" => min_s = value.parse().map_err(|e| bad(&e))?,
                "max" => max_s = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown workload option '{other}'")),
            }
        }
        if n == 0 {
            return Err("workload needs n >= 1".to_string());
        }
        if !(gbit > 0.0) {
            return Err("workload needs gbit > 0".to_string());
        }
        let template = FlowSpec::dma(NodeId::new(src), NodeId::new(dst))
            .gbits(gbit)
            .label(format!("{kind} {src}->{dst}"));
        match kind {
            "batch" => Ok(Workload::batch(vec![template; n])),
            "poisson" => {
                if !(rate > 0.0) {
                    return Err("poisson needs rate > 0".to_string());
                }
                Ok(Workload::poisson(vec![template], n, rate, seed))
            }
            "pareto" => {
                if !(alpha > 0.0 && 0.0 < min_s && min_s < max_s) {
                    return Err("pareto needs alpha > 0 and 0 < min < max".to_string());
                }
                Ok(Workload::bounded_pareto(vec![template], n, alpha, min_s, max_s, seed))
            }
            other => Err(format!(
                "unknown workload kind '{other}' (expected poisson|pareto|batch)"
            )),
        }
    }
}

/// The splitmix64 generator (Steele/Lea/Flood): one 64-bit state, a
/// fixed-increment Weyl sequence through a finalizer. Deterministic,
/// platform-independent, and cheap — exactly what seeded interarrival
/// streams need.
#[derive(Debug, Clone)]
pub(crate) struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Splitmix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in the open interval (0, 1): the high 53 bits plus a half
    /// tick, so `ln(u)` never sees 0.
    pub(crate) fn u01(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 (Vigna's splitmix64.c).
        let mut rng = Splitmix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
        let mut again = Splitmix64::new(1234567);
        assert_eq!(again.next_u64(), 6457827717110365317, "same seed, same stream");
        let mut other = Splitmix64::new(1234568);
        assert_ne!(other.next_u64(), 6457827717110365317);
    }

    #[test]
    fn u01_is_open_interval() {
        let mut rng = Splitmix64::new(9);
        for _ in 0..10_000 {
            let u = rng.u01();
            assert!(u > 0.0 && u < 1.0, "{u}");
        }
    }

    #[test]
    fn poisson_arrivals_are_increasing_and_seed_deterministic() {
        let t = FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0);
        let w = Workload::poisson(vec![t.clone()], 100, 50.0, 42);
        let a = w.materialize();
        let b = w.materialize();
        assert_eq!(a, b, "same workload value, same flows");
        assert_eq!(a.len(), 100);
        let mut last = 0.0;
        for f in &a {
            assert!(f.arrival_s > last, "strictly increasing arrivals");
            last = f.arrival_s;
        }
        // Mean gap should be in the ballpark of 1/rate.
        let mean_gap = last / 100.0;
        assert!((mean_gap - 0.02).abs() < 0.01, "{mean_gap}");
        let c = Workload::poisson(vec![t], 100, 50.0, 43).materialize();
        assert_ne!(a, c, "seed changes the sequence");
    }

    #[test]
    fn bounded_pareto_gaps_respect_bounds() {
        let t = FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0);
        let w = Workload::bounded_pareto(vec![t], 200, 1.5, 0.01, 0.5, 7);
        let flows = w.materialize();
        let mut last = 0.0;
        for f in &flows {
            let gap = f.arrival_s - last;
            assert!(gap >= 0.01 - 1e-12 && gap <= 0.5 + 1e-12, "{gap}");
            last = f.arrival_s;
        }
    }

    #[test]
    fn batch_keeps_flows_verbatim() {
        let flows = vec![
            FlowSpec::dma(NodeId(3), NodeId(7)).gbits(5.0).label("a"),
            FlowSpec::dma(NodeId(6), NodeId(7)).gbits(6.0).label("b"),
        ];
        let w = Workload::batch(flows.clone());
        assert_eq!(w.materialize(), flows);
        assert_eq!(w.count(), 2);
    }

    #[test]
    fn round_robin_cycles_templates() {
        let a = FlowSpec::dma(NodeId(3), NodeId(7)).gbits(1.0).label("a");
        let b = FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0).label("b");
        let flows = Workload::poisson(vec![a, b], 4, 100.0, 1).materialize();
        assert_eq!(flows[0].label, "a");
        assert_eq!(flows[1].label, "b");
        assert_eq!(flows[2].label, "a");
        assert_eq!(flows[3].label, "b");
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let w = Workload::parse("poisson:rate=200,n=10,seed=7,src=3,dst=7,gbit=2.0").unwrap();
        assert_eq!(w.count(), 10);
        assert_eq!(w.arrivals(), &Arrivals::Poisson { rate_hz: 200.0, seed: 7 });
        let flows = w.materialize();
        assert_eq!(flows[0].volume_gbit, 2.0);
        assert_eq!(flows[0].src, NodeId(3));

        let w = Workload::parse("pareto:alpha=2.0,min=0.01,max=0.1,n=5").unwrap();
        assert_eq!(w.count(), 5);

        let w = Workload::parse("batch:n=3,gbit=40.0").unwrap();
        assert_eq!(w.arrivals(), &Arrivals::Batch);
        assert_eq!(w.materialize().len(), 3);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(Workload::parse("uniform:n=3").is_err());
        assert!(Workload::parse("poisson:rate").is_err());
        assert!(Workload::parse("poisson:rate=0").is_err());
        assert!(Workload::parse("poisson:bogus=1").is_err());
        assert!(Workload::parse("batch:n=0").is_err());
        assert!(Workload::parse("pareto:min=2.0,max=1.0").is_err());
    }
}
