//! Shared-resource registry for a simulation.
//!
//! The fabric contributes link and memory-controller resources
//! automatically; callers register additional ones (NIC ports, SSD channel
//! budgets, per-node CPU protocol-processing capacity, IRQ overhead) and
//! attach them to flows via [`ResourceHandle`].

use numa_topology::{DeviceId, DirectedEdge, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Semantic identity of a shared resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKey {
    /// One direction of an interconnect link (DMA/PIO bytes on the wire).
    Edge(DirectedEdge),
    /// A node's memory-controller copy bandwidth.
    NodeCopy(NodeId),
    /// A node's aggregate CPU budget for protocol processing (TCP stacks,
    /// interrupt handling). Unit: Gbit/s of payload the node can shepherd.
    NodeCpu(NodeId),
    /// A device port in one direction.
    DevicePort {
        /// Which device.
        dev: DeviceId,
        /// `true` = host-to-device (write/send), `false` = device-to-host.
        to_device: bool,
    },
    /// Caller-defined.
    Custom(u32),
}

/// Opaque index of a registered resource (stable within one simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceHandle(pub(crate) usize);

impl ResourceHandle {
    /// Dense index into the capacity vector.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Registry mapping semantic keys to dense indices with capacities.
#[derive(Debug, Clone, Default)]
pub struct ResourceRegistry {
    keys: Vec<ResourceKey>,
    caps: Vec<f64>,
    by_key: HashMap<ResourceKey, ResourceHandle>,
}

impl ResourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a resource; the capacity of an existing key is
    /// left unchanged.
    pub fn ensure(&mut self, key: ResourceKey, cap: f64) -> ResourceHandle {
        if let Some(&h) = self.by_key.get(&key) {
            return h;
        }
        let h = ResourceHandle(self.keys.len());
        self.keys.push(key);
        self.caps.push(cap);
        self.by_key.insert(key, h);
        h
    }

    /// Look up an existing resource.
    pub fn get(&self, key: ResourceKey) -> Option<ResourceHandle> {
        self.by_key.get(&key).copied()
    }

    /// Capacity of a resource.
    pub fn capacity(&self, h: ResourceHandle) -> f64 {
        self.caps[h.0]
    }

    /// Overwrite a capacity (e.g. derate a node's CPU for IRQ handling).
    pub fn set_capacity(&mut self, h: ResourceHandle, cap: f64) {
        self.caps[h.0] = cap;
    }

    /// All capacities as a dense vector for the allocator.
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Key of a handle.
    pub fn key(&self, h: ResourceHandle) -> ResourceKey {
        self.keys[h.0]
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_idempotent() {
        let mut r = ResourceRegistry::new();
        let a = r.ensure(ResourceKey::Custom(1), 10.0);
        let b = r.ensure(ResourceKey::Custom(1), 99.0);
        assert_eq!(a, b);
        assert_eq!(r.capacity(a), 10.0, "existing capacity is kept");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_handles() {
        let mut r = ResourceRegistry::new();
        let a = r.ensure(ResourceKey::NodeCpu(NodeId(1)), 20.0);
        let b = r.ensure(ResourceKey::NodeCopy(NodeId(1)), 50.0);
        assert_ne!(a, b);
        assert_eq!(r.key(a), ResourceKey::NodeCpu(NodeId(1)));
        assert_eq!(r.capacities(), &[20.0, 50.0]);
    }

    #[test]
    fn set_capacity_overwrites() {
        let mut r = ResourceRegistry::new();
        let a = r.ensure(ResourceKey::Custom(0), 10.0);
        r.set_capacity(a, 7.5);
        assert_eq!(r.capacity(a), 7.5);
    }

    #[test]
    fn device_port_directions_are_distinct() {
        let mut r = ResourceRegistry::new();
        let w = r.ensure(ResourceKey::DevicePort { dev: DeviceId(0), to_device: true }, 23.3);
        let rd = r.ensure(ResourceKey::DevicePort { dev: DeviceId(0), to_device: false }, 22.0);
        assert_ne!(w, rd);
    }

    #[test]
    fn get_finds_registered_only() {
        let mut r = ResourceRegistry::new();
        assert!(r.get(ResourceKey::Custom(5)).is_none());
        let h = r.ensure(ResourceKey::Custom(5), 1.0);
        assert_eq!(r.get(ResourceKey::Custom(5)), Some(h));
        assert!(!r.is_empty());
    }
}
