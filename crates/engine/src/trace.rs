//! Event traces: what the simulator decided, when.
//!
//! A [`Trace`] records every allocation round (the rates handed to each
//! flow) and every completion, which makes contention dynamics inspectable:
//! "who slowed down when the class-3 stream joined" becomes a query instead
//! of a guess.

use crate::flow::FlowId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The allocator assigned these instantaneous rates (active flows
    /// only), at `time_s`.
    Rates {
        /// Simulation time.
        time_s: f64,
        /// `(flow, Gbit/s)` for each active flow.
        rates: Vec<(FlowId, f64)>,
    },
    /// A flow finished at `time_s`.
    Finished {
        /// Simulation time.
        time_s: f64,
        /// The completed flow.
        flow: FlowId,
    },
    /// A flow arrived (started competing) at `time_s`.
    Arrival {
        /// Simulation time.
        time_s: f64,
        /// The arriving flow.
        flow: FlowId,
    },
    /// Jitter multipliers were refreshed at `time_s`.
    JitterRefresh {
        /// Simulation time.
        time_s: f64,
    },
}

impl TraceEvent {
    /// Event timestamp.
    pub fn time_s(&self) -> f64 {
        match self {
            TraceEvent::Rates { time_s, .. }
            | TraceEvent::Finished { time_s, .. }
            | TraceEvent::Arrival { time_s, .. }
            | TraceEvent::JitterRefresh { time_s } => *time_s,
        }
    }
}

/// An ordered event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (times must be non-decreasing).
    pub fn push(&mut self, e: TraceEvent) {
        if let Some(last) = self.events.last() {
            debug_assert!(e.time_s() >= last.time_s() - 1e-12, "trace must be ordered");
        }
        self.events.push(e);
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The rate a flow held at time `t` (the most recent assignment at or
    /// before `t`), if any.
    pub fn rate_at(&self, flow: FlowId, t: f64) -> Option<f64> {
        self.events
            .iter()
            .take_while(|e| e.time_s() <= t + 1e-12)
            .filter_map(|e| match e {
                TraceEvent::Rates { rates, .. } => {
                    rates.iter().find(|(f, _)| *f == flow).map(|(_, r)| *r)
                }
                _ => None,
            })
            .last()
    }

    /// Completion time of a flow, if it finished.
    pub fn finish_of(&self, flow: FlowId) -> Option<f64> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Finished { time_s, flow: f } if *f == flow => Some(*time_s),
            _ => None,
        })
    }

    /// Number of allocation rounds.
    pub fn rounds(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Rates { .. }))
            .count()
    }

    /// Replay this trace into an observability handle as structured
    /// events — the thin adapter that gives legacy traces the shared
    /// `numa-obs` vocabulary (`alloc_round` / `flow_finished` /
    /// `jitter_refresh`).
    pub fn emit_to(&self, obs: &numa_obs::Obs) {
        for e in &self.events {
            match e {
                TraceEvent::Rates { time_s, rates } => obs.event(
                    "alloc_round",
                    *time_s,
                    &[
                        ("component", "engine".into()),
                        ("flows", numa_obs::Value::from(rates.len())),
                    ],
                ),
                TraceEvent::Finished { time_s, flow } => obs.event(
                    "flow_finished",
                    *time_s,
                    &[("flow", numa_obs::Value::from(flow.0))],
                ),
                TraceEvent::Arrival { time_s, flow } => obs.event(
                    "flow_arrived",
                    *time_s,
                    &[("flow", numa_obs::Value::from(flow.0))],
                ),
                TraceEvent::JitterRefresh { time_s } => obs.event("jitter_refresh", *time_s, &[]),
            }
        }
    }

    /// Render a compact timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                TraceEvent::Rates { time_s, rates } => {
                    let cells: Vec<String> = rates
                        .iter()
                        .map(|(f, r)| format!("F{}={r:.2}", f.0))
                        .collect();
                    let _ = writeln!(out, "t={time_s:>8.3}s  rates  {}", cells.join(" "));
                }
                TraceEvent::Finished { time_s, flow } => {
                    let _ = writeln!(out, "t={time_s:>8.3}s  finish F{}", flow.0);
                }
                TraceEvent::Arrival { time_s, flow } => {
                    let _ = writeln!(out, "t={time_s:>8.3}s  arrive F{}", flow.0);
                }
                TraceEvent::JitterRefresh { time_s } => {
                    let _ = writeln!(out, "t={time_s:>8.3}s  jitter refresh");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::Rates {
            time_s: 0.0,
            rates: vec![(FlowId(0), 10.0), (FlowId(1), 5.0)],
        });
        t.push(TraceEvent::Rates { time_s: 2.0, rates: vec![(FlowId(1), 15.0)] });
        t.push(TraceEvent::Finished { time_s: 2.0, flow: FlowId(0) });
        t
    }

    #[test]
    fn rate_queries_pick_latest_assignment() {
        let t = sample();
        assert_eq!(t.rate_at(FlowId(1), 0.5), Some(5.0));
        assert_eq!(t.rate_at(FlowId(1), 2.5), Some(15.0));
        assert_eq!(t.rate_at(FlowId(0), 1.0), Some(10.0));
        assert_eq!(t.rate_at(FlowId(9), 1.0), None);
    }

    #[test]
    fn finish_lookup() {
        let t = sample();
        assert_eq!(t.finish_of(FlowId(0)), Some(2.0));
        assert_eq!(t.finish_of(FlowId(1)), None);
    }

    #[test]
    fn emit_to_adapts_trace_to_obs_events() {
        let t = sample();
        let obs = numa_obs::Obs::new();
        t.emit_to(&obs);
        let events = obs.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "alloc_round");
        assert_eq!(events[2].name, "flow_finished");
        assert_eq!(events[2].time_s, 2.0);
        assert!(obs.jsonl().contains("\"flows\":2"));
    }

    #[test]
    fn rounds_counted_and_rendered() {
        let t = sample();
        assert_eq!(t.rounds(), 2);
        let s = t.render();
        assert!(s.contains("finish F0"));
        assert!(s.contains("F1=5.00"));
    }
}
