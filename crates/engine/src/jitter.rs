//! Deterministic run-to-run noise.
//!
//! Real measurements wobble: the paper reports ranges, takes the max of 100
//! STREAM runs, and observes "unexpected behavior" once more than four TCP
//! streams contend (§IV-B1). We reproduce that texture with seeded
//! multiplicative jitter on per-flow ceilings, refreshed at a fixed period,
//! so every experiment is exactly reproducible from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Jitter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterCfg {
    /// Relative amplitude: multipliers are drawn uniformly from
    /// `[1 - amplitude, 1 + amplitude]`.
    pub amplitude: f64,
    /// How often multipliers are re-drawn, in simulated seconds.
    pub refresh_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl JitterCfg {
    /// No jitter at all.
    pub fn none() -> Self {
        JitterCfg { amplitude: 0.0, refresh_s: f64::INFINITY, seed: 0 }
    }

    /// Mild measurement noise (±2%), refreshed every simulated second.
    pub fn measurement(seed: u64) -> Self {
        JitterCfg { amplitude: 0.02, refresh_s: 1.0, seed }
    }

    /// Heavy contention noise (±8%) as seen with >4 TCP streams.
    pub fn contention(seed: u64) -> Self {
        JitterCfg { amplitude: 0.08, refresh_s: 1.0, seed }
    }

    /// Is jitter disabled?
    pub fn is_none(&self) -> bool {
        self.amplitude == 0.0
    }
}

/// Stateful multiplier source for one simulation.
#[derive(Debug, Clone)]
pub struct JitterState {
    cfg: JitterCfg,
    rng: StdRng,
    multipliers: Vec<f64>,
}

impl JitterState {
    /// Create with one multiplier per flow, drawn immediately.
    pub fn new(cfg: JitterCfg, num_flows: usize) -> Self {
        let mut s = JitterState {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            multipliers: vec![1.0; num_flows],
        };
        s.refresh();
        s
    }

    /// Redraw all multipliers.
    pub fn refresh(&mut self) {
        if self.cfg.is_none() {
            return;
        }
        let a = self.cfg.amplitude;
        for m in &mut self.multipliers {
            *m = 1.0 + self.rng.gen_range(-a..=a);
        }
    }

    /// Current multiplier of flow `i`.
    pub fn multiplier(&self, i: usize) -> f64 {
        if self.multipliers.is_empty() {
            1.0
        } else {
            self.multipliers[i]
        }
    }

    /// Refresh period (infinite when disabled).
    pub fn refresh_s(&self) -> f64 {
        self.cfg.refresh_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let s = JitterState::new(JitterCfg::none(), 4);
        for i in 0..4 {
            assert_eq!(s.multiplier(i), 1.0);
        }
        assert!(s.refresh_s().is_infinite());
    }

    #[test]
    fn multipliers_stay_in_band() {
        let mut s = JitterState::new(JitterCfg::measurement(42), 16);
        for _ in 0..50 {
            s.refresh();
            for i in 0..16 {
                let m = s.multiplier(i);
                assert!((0.98..=1.02).contains(&m), "{m}");
            }
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = JitterState::new(JitterCfg::contention(7), 8);
        let mut b = JitterState::new(JitterCfg::contention(7), 8);
        for _ in 0..10 {
            a.refresh();
            b.refresh();
            for i in 0..8 {
                assert_eq!(a.multiplier(i), b.multiplier(i));
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = JitterState::new(JitterCfg::contention(1), 8);
        let b = JitterState::new(JitterCfg::contention(2), 8);
        let same = (0..8).all(|i| a.multiplier(i) == b.multiplier(i));
        assert!(!same);
    }
}
