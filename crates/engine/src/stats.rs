//! Small summary statistics used across reports.

use serde::{Deserialize, Serialize};

/// Five-number-ish summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Summary {
    /// The summary of zero samples: `n == 0` and all moments zero.
    pub fn empty() -> Self {
        Summary { n: 0, min: 0.0, max: 0.0, mean: 0.0, std: 0.0 }
    }

    /// Summarize a slice. An empty slice yields [`Summary::empty`]
    /// rather than panicking, so callers aggregating filtered sample
    /// sets (e.g. a probe run that produced no samples) stay total.
    pub fn from(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary::empty();
        }
        let n = samples.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        let mean = sum / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        Summary { n, min, max, mean, std: var.sqrt() }
    }

    /// Relative spread `(max - min) / mean`; 0 for constant samples.
    pub fn rel_spread(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.mean
        }
    }

    /// Render as the paper's "Range / Avg" table cell pair.
    pub fn range_avg(&self) -> String {
        format!("{:.1} – {:.1} / {:.1}", self.min, self.max, self.mean)
    }
}

/// Relative error `|predicted - measured| / measured`, as used in the
/// paper's Eq. 1 validation (§V-B).
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    (predicted - measured).abs() / measured.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::from(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert!((s.rel_spread() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let s = Summary::from(&[5.0; 10]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.rel_spread(), 0.0);
    }

    #[test]
    fn empty_input_yields_well_defined_summary() {
        // Regression: this used to panic, taking down any caller that
        // summarized a filtered-to-nothing sample set.
        let s = Summary::from(&[]);
        assert_eq!(s, Summary::empty());
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.rel_spread(), 0.0);
        assert_eq!(s.range_avg(), "0.0 – 0.0 / 0.0");
    }

    #[test]
    fn paper_relative_error_reproduces() {
        // |20.017 - 19.415| / 19.415 = 3.1%
        let e = relative_error(20.017, 19.415);
        assert!((e - 0.031).abs() < 5e-4, "{e}");
    }

    #[test]
    fn range_avg_formats() {
        let s = Summary::from(&[26.0, 27.3]);
        assert_eq!(s.range_avg(), "26.0 – 27.3 / 26.6");
    }
}
