//! Flow descriptions and per-flow results.

use crate::resources::ResourceHandle;
use numa_fabric::TrafficClass;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Index of a flow within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A transfer to simulate: `volume_gbit` of data moving from memory on
/// `src` to memory on `dst` as `class` traffic, optionally capped and
/// optionally charging extra caller-registered resources (device ports,
/// CPU budgets, IRQ overhead).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Source memory node.
    pub src: NodeId,
    /// Destination memory node.
    pub dst: NodeId,
    /// Traffic class (PIO rides the STREAM model, DMA the link min-cut).
    pub class: TrafficClass,
    /// Transfer volume in gigabits.
    pub volume_gbit: f64,
    /// Per-flow ceiling in Gbit/s (protocol or per-stream CPU limit);
    /// `INFINITY` if only shared hardware binds.
    pub ceiling_gbps: f64,
    /// Additional shared resources this flow charges.
    pub extra_resources: Vec<ResourceHandle>,
    /// Charge the source node's memory controller? `false` when the source
    /// is a device buffer (device DMA does not consume host DRAM bandwidth
    /// on the hub node — it enters the fabric straight from the I/O hub).
    pub charge_src_copy: bool,
    /// Charge the destination node's memory controller? (see above)
    pub charge_dst_copy: bool,
    /// Fairness weight (weighted max-min): a weight-2 flow gets twice the
    /// share of any contended resource. QoS knob; 1.0 = plain fairness.
    pub weight: f64,
    /// Arrival time, seconds from simulation start. 0.0 (the closed-loop
    /// default) means the flow competes from the first instant; a later
    /// arrival posts a `FlowArrival` event on the calendar and the flow
    /// sits idle until it fires.
    pub arrival_s: f64,
    /// Free-form label for reports ("tcp-send n5 s3", ...).
    pub label: String,
}

impl FlowSpec {
    /// A DMA-class flow (device transfers and the paper's pinned-`memcpy`
    /// probes).
    pub fn dma(src: NodeId, dst: NodeId) -> Self {
        FlowSpec {
            src,
            dst,
            class: TrafficClass::Dma,
            volume_gbit: 8.0 * 400.0, // paper default: 400 GBytes per stream
            ceiling_gbps: f64::INFINITY,
            extra_resources: Vec::new(),
            charge_src_copy: true,
            charge_dst_copy: true,
            weight: 1.0,
            arrival_s: 0.0,
            label: String::new(),
        }
    }

    /// A PIO-class flow (STREAM-style CPU copies). `src` is the CPU node,
    /// `dst` the memory node.
    pub fn pio(cpu: NodeId, mem: NodeId) -> Self {
        FlowSpec { class: TrafficClass::Pio, ..FlowSpec::dma(cpu, mem) }
    }

    /// Set the volume in gigabytes.
    pub fn gbytes(mut self, gb: f64) -> Self {
        self.volume_gbit = gb * 8.0;
        self
    }

    /// Set the volume in gigabits.
    pub fn gbits(mut self, gbit: f64) -> Self {
        self.volume_gbit = gbit;
        self
    }

    /// Cap the flow's rate (Gbit/s).
    pub fn ceiling(mut self, gbps: f64) -> Self {
        self.ceiling_gbps = gbps;
        self
    }

    /// Charge an extra shared resource.
    pub fn charge(mut self, r: ResourceHandle) -> Self {
        self.extra_resources.push(r);
        self
    }

    /// Attach a label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Mark the source endpoint as a device buffer: its node's memory
    /// controller is not charged.
    pub fn device_src(mut self) -> Self {
        self.charge_src_copy = false;
        self
    }

    /// Mark the destination endpoint as a device buffer.
    pub fn device_dst(mut self) -> Self {
        self.charge_dst_copy = false;
        self
    }

    /// Set the fairness weight (must be positive).
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "weight must be positive");
        self.weight = weight;
        self
    }

    /// Set the arrival time, seconds from simulation start (must be
    /// finite and non-negative).
    pub fn arrival(mut self, at_s: f64) -> Self {
        assert!(at_s.is_finite() && at_s >= 0.0, "arrival must be finite and >= 0");
        self.arrival_s = at_s;
        self
    }
}

/// Outcome of one flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// The flow's id.
    pub id: FlowId,
    /// Label copied from the spec.
    pub label: String,
    /// Volume transferred, gigabits.
    pub volume_gbit: f64,
    /// When the flow started competing, seconds from simulation start
    /// (its arrival time). Defaults to 0.0 for pre-arrival reports.
    #[serde(default)]
    pub start_s: f64,
    /// Completion time from simulation start, seconds.
    pub finish_s: f64,
    /// Flow completion time: `finish_s - start_s`. Defaults to 0.0 for
    /// pre-arrival reports.
    #[serde(default)]
    pub fct_s: f64,
    /// Mean rate while the flow ran: volume / FCT. This is what fio
    /// reports per job (it averages over the job's lifetime).
    pub mean_gbps: f64,
    /// FCT divided by the flow's isolated-run time on an idle fabric.
    /// 1.0 means no contention. Defaults for pre-arrival reports.
    #[serde(default = "default_slowdown")]
    pub slowdown: f64,
}

fn default_slowdown() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let f = FlowSpec::dma(NodeId(0), NodeId(7))
            .gbytes(10.0)
            .ceiling(5.0)
            .label("x");
        assert_eq!(f.volume_gbit, 80.0);
        assert_eq!(f.ceiling_gbps, 5.0);
        assert_eq!(f.label, "x");
        assert_eq!(f.class, TrafficClass::Dma);
    }

    #[test]
    fn default_volume_matches_paper() {
        // Table III: 400 GBytes per test process.
        let f = FlowSpec::dma(NodeId(0), NodeId(7));
        assert_eq!(f.volume_gbit, 3200.0);
    }

    #[test]
    fn pio_swaps_class() {
        let f = FlowSpec::pio(NodeId(1), NodeId(2)).gbits(1.5);
        assert_eq!(f.class, TrafficClass::Pio);
        assert_eq!(f.volume_gbit, 1.5);
    }
}
