//! Criterion bench: route-table construction and path-bandwidth queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use numa_fabric::calibration::{dl585_fabric, generic_fabric};
use numa_topology::{presets, NodeId, RouteTable};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for topo in [presets::dl585_testbed(), presets::blade32()] {
        let name = topo.name().to_string();
        group.bench_function(format!("bfs_table_{name}"), |b| {
            b.iter(|| RouteTable::bfs(black_box(&topo)))
        });
    }
    let fabric = dl585_fabric();
    group.bench_function("dma_matrix_dl585", |b| b.iter(|| black_box(&fabric).dma_matrix()));
    let big = generic_fabric(presets::blade32());
    group.bench_function("dma_matrix_blade32", |b| b.iter(|| black_box(&big).dma_matrix()));
    group.bench_function("single_path_query", |b| {
        b.iter(|| black_box(&fabric).dma_path_bandwidth(NodeId(0), NodeId(7)))
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
