//! Criterion bench: Algorithm 1 end-to-end (probe + classify).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_fabric::calibration::generic_fabric;
use numa_topology::{presets, NodeId};
use numio_core::{IoModeler, SimPlatform, TransferMode};

fn bench_modeler(c: &mut Criterion) {
    let mut group = c.benchmark_group("iomodeler");
    let dl585 = SimPlatform::dl585();
    for reps in [10u32, 100] {
        group.bench_with_input(BenchmarkId::new("dl585_write", reps), &reps, |b, &reps| {
            b.iter(|| {
                IoModeler::new().reps(reps).characterize(
                    black_box(&dl585),
                    NodeId(7),
                    TransferMode::Write,
                )
            })
        });
    }
    let blade = SimPlatform::new(generic_fabric(presets::blade32()));
    group.bench_function("blade32_read_100reps", |b| {
        b.iter(|| {
            IoModeler::new().characterize(black_box(&blade), NodeId(0), TransferMode::Read)
        })
    });
    group.bench_function("characterize_all_dl585", |b| {
        b.iter(|| IoModeler::new().reps(10).characterize_all(black_box(&dl585)))
    });
    group.finish();
}

criterion_group!(benches, bench_modeler);
criterion_main!(benches);
