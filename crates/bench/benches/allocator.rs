//! Criterion bench: max-min fair water-filling scaling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_fabric::{solve_max_min, FlowSpec, MaxMinProblem};

/// Deterministic pseudo-random problem of `n` flows over `r` resources.
fn problem(n: usize, r: usize) -> MaxMinProblem {
    let mut state = 0x1234_5678_9abc_def0_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let capacities: Vec<f64> = (0..r).map(|_| 10.0 + (next() % 90) as f64).collect();
    let flows = (0..n)
        .map(|_| {
            let k = 1 + (next() as usize % 4).min(r - 1);
            let resources: Vec<usize> = (0..k).map(|_| next() as usize % r).collect();
            let ceiling = if next() % 3 == 0 { 5.0 + (next() % 40) as f64 } else { f64::INFINITY };
            FlowSpec { resources, ceiling, weight: 1.0 }
        })
        .collect();
    MaxMinProblem { capacities, flows }
}

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_min_allocator");
    for (flows, resources) in [(8, 16), (64, 64), (256, 128), (1024, 256)] {
        let p = problem(flows, resources);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{flows}f_{resources}r")),
            &p,
            |b, p| b.iter(|| solve_max_min(black_box(p))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
