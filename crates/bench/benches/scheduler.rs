//! Criterion bench: online scheduling episodes and two-host matrices.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_fabric::calibration::dl585_fabric;
use numa_iodev::{NicOp, TwoHostPath};
use numa_sched::policy::{LocalOnly, ModelDriven};
use numa_sched::{trace, Scheduler};
use numio_core::SimPlatform;

fn bench_scheduler(c: &mut Criterion) {
    let platform = SimPlatform::dl585();
    let mut group = c.benchmark_group("scheduler");
    for n in [4usize, 12, 24] {
        let tasks = trace::poisson(n, 1.0, trace::MixProfile::Uniform, 7);
        group.bench_with_input(BenchmarkId::new("local_only", n), &tasks, |b, tasks| {
            b.iter(|| {
                Scheduler::new(black_box(&platform))
                    .run(tasks.clone(), LocalOnly::new())
                    .unwrap()
            })
        });
    }
    let tasks = trace::burst(12, trace::MixProfile::Ingest, 3);
    let policy_template = ModelDriven::from_platform(&platform);
    group.bench_function("model_driven_burst_12", |b| {
        b.iter(|| {
            Scheduler::new(black_box(&platform))
                .run(tasks.clone(), policy_template.clone())
                .unwrap()
        })
    });
    group.bench_function("policy_construction", |b| {
        b.iter(|| ModelDriven::from_platform(black_box(&platform)))
    });

    let local = dl585_fabric();
    let remote = dl585_fabric();
    let path = TwoHostPath::paper();
    group.bench_function("two_host_matrix_8x8", |b| {
        b.iter(|| path.matrix(NicOp::TcpSend, black_box(&local), black_box(&remote)))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
