//! Criterion bench: STREAM matrix generation and the fio sweep harness.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use numa_fabric::calibration::dl585_fabric;
use numa_fio::{sweep, Workload};
use numa_iodev::NicOp;
use numa_memsys::{StreamBench, StreamOp};
use numa_topology::NodeId;

fn bench_stream(c: &mut Criterion) {
    let fabric = dl585_fabric();
    let mut group = c.benchmark_group("stream_and_sweeps");
    group.bench_function("stream_matrix_8x8_100reps", |b| {
        b.iter(|| StreamBench::paper().matrix(black_box(&fabric)))
    });
    group.bench_function("stream_single_cell", |b| {
        let bench = StreamBench::paper();
        b.iter(|| bench.run(black_box(&fabric), NodeId(7), NodeId(4)))
    });
    group.bench_function("stream_all_kernels_local", |b| {
        b.iter(|| {
            StreamOp::ALL.map(|op| {
                StreamBench { op, ..StreamBench::paper() }
                    .run(black_box(&fabric), NodeId(0), NodeId(0))
                    .max_gbps
            })
        })
    });
    group.bench_function("fio_rdma_sweep_8nodes_2counts", |b| {
        b.iter(|| {
            sweep::sweep(
                black_box(&fabric),
                &Workload::Nic(NicOp::RdmaWrite),
                &sweep::paper_nodes(),
                &[1, 2],
                2.0,
                5,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
