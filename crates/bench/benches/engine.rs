//! Criterion bench: discrete-event flow simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_engine::{FlowSpec, JitterCfg, Simulation};
use numa_fabric::calibration::dl585_fabric;
use numa_topology::NodeId;

fn bench_engine(c: &mut Criterion) {
    let fabric = dl585_fabric();
    let mut group = c.benchmark_group("engine");
    for flows in [4usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("run", flows), &flows, |b, &flows| {
            b.iter(|| {
                let mut sim = Simulation::new(black_box(&fabric));
                for i in 0..flows {
                    let src = NodeId((i % 8) as u16);
                    let dst = NodeId(((i / 8 + 1) % 8) as u16);
                    let (src, dst) = if src == dst { (src, NodeId((src.0 + 1) % 8)) } else { (src, dst) };
                    sim.add_flow(FlowSpec::dma(src, dst).gbits(10.0 + i as f64));
                }
                sim.run().unwrap()
            })
        });
    }
    group.bench_function("run_with_jitter_16_flows", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(black_box(&fabric))
                .with_jitter(JitterCfg { amplitude: 0.05, refresh_s: 0.25, seed: 7 });
            for i in 0..16u16 {
                sim.add_flow(FlowSpec::dma(NodeId(i % 8), NodeId(7)).gbits(50.0));
            }
            sim.run().unwrap()
        })
    });
    group.bench_function("steady_rates_64_flows", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(black_box(&fabric));
            for i in 0..64u16 {
                sim.add_flow(FlowSpec::dma(NodeId(i % 8), NodeId((i + 3) % 8)).gbits(1.0));
            }
            sim.steady_rates()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
