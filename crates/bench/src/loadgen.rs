//! Closed-loop load generator for the serving layer.
//!
//! N concurrent clients each replay a *deterministic* request mix against
//! a loopback [`numa_serve`] server: the mix is generated up front from
//! `(seed, client index)`, so two same-seed runs issue byte-identical
//! request lines (pinned by the `mix_digest` in the report), while the
//! measured throughput and latency percentiles track the machine. This is
//! the measurement harness `BENCH_7.json` and the `serve_throughput` CI
//! smoke run on — req/s plus p50/p90/p99 per PR instead of anecdotes.
//!
//! The timed loop runs against a *warmed* cache (the write and read
//! models of the default target are characterized before any client
//! starts), so the numbers describe the steady state a placement query
//! pays, and `cache_misses == WARMED_MODELS` doubles as a determinism
//! check: a miss mid-loop means the request mix escaped the warmed view.
//!
//! The server under load is the worker-pool core
//! ([`numa_serve::spawn_with`]); [`LoadConfig::workers`] and
//! [`LoadConfig::queue_depth`]
//! pass straight through to [`numa_serve::ServeConfig`], and
//! [`LoadConfig::batch`] switches the mix to one that interleaves
//! `predict_batch` bursts — `batch == 0` keeps the original PR-6 mix
//! byte-identical, so recorded `mix_digest`s stay comparable.

use numa_serve::{proto, Client, ModelService, Request, WireMode};
use numio_core::{IoModeler, SimPlatform};
use std::sync::Arc;
use std::time::Instant;

/// Models characterized before the timed loop: the default target's
/// write and read directions — everything the generated mix touches.
pub const WARMED_MODELS: u64 = 2;

/// Knobs of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Mix seed: same seed, same request lines.
    pub seed: u64,
    /// Modeler probe reps for the (warmed) characterization.
    pub reps: usize,
    /// Mixes per `predict_batch` request. `0` (the default) keeps the
    /// original PR-6 mix — no batch ops, byte-identical request lines and
    /// therefore byte-identical `mix_digest` — while any positive value
    /// switches to the batch-aware mix with this many mixes per batch.
    pub batch: usize,
    /// Server worker-pool size; `0` resolves to the serve default.
    pub workers: usize,
    /// Per-worker run-queue depth; `0` resolves to the serve default.
    pub queue_depth: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 64,
            seed: 42,
            reps: 3,
            batch: 0,
            workers: 0,
            queue_depth: 0,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Clients that ran.
    pub clients: usize,
    /// Resolved server worker-pool size the run was served by.
    pub workers: usize,
    /// Total requests issued (and answered).
    pub requests: usize,
    /// `error` replies received (0 on a healthy run).
    pub errors: usize,
    /// Wall-clock duration of the timed loop, seconds.
    pub elapsed_s: f64,
    /// Aggregate throughput, requests per second.
    pub req_per_s: f64,
    /// Mean per-request latency, seconds.
    pub mean_s: f64,
    /// Median per-request latency, seconds.
    pub p50_s: f64,
    /// 90th-percentile per-request latency, seconds.
    pub p90_s: f64,
    /// 99th-percentile per-request latency, seconds.
    pub p99_s: f64,
    /// FNV-1a digest over every generated request line, in client order —
    /// byte-stable across same-seed runs.
    pub mix_digest: u64,
    /// Cache hits during the run.
    pub cache_hits: u64,
    /// Cache misses during the run (the warm-up's [`WARMED_MODELS`]).
    pub cache_misses: u64,
}

/// Stable FNV-1a (the same function the serve cache keys with, local so
/// the bench crate never grows an obs dependency for one hash).
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64-seeded xorshift, so nearby `(seed, client)` pairs produce
/// unrelated streams.
fn rng_state(seed: u64, client: u64) -> u64 {
    let mut z = seed ^ client.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic request mix one client replays: 60% write predicts,
/// 20% read predicts, 15% classifies, 5% stats — all against the default
/// target, so a warmed write+read view answers everything from cache.
pub fn generate_requests(seed: u64, client: u64, n: usize) -> Vec<String> {
    let mut state = rng_state(seed, client).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let roll = next() % 100;
            let req = if roll < 80 {
                let mode = if roll < 60 {
                    WireMode::Write
                } else {
                    WireMode::Read
                };
                let entries = 1 + (next() % 3) as usize;
                let mut mix: Vec<(u16, u32)> = (0..entries)
                    .map(|_| ((next() % 8) as u16, 1 + (next() % 4) as u32))
                    .collect();
                mix.sort();
                mix.dedup_by_key(|e| e.0);
                Request::Predict {
                    device: None,
                    target: 7,
                    mode,
                    mix,
                }
            } else if roll < 95 {
                Request::Classify {
                    device: None,
                    node: (next() % 8) as u16,
                    target: 7,
                    mode: WireMode::Write,
                }
            } else {
                Request::Stats
            };
            proto::encode(&req).expect("requests always encode")
        })
        .collect()
}

/// The batch-aware deterministic mix: 55% write predicts, 20% read
/// predicts, 10% `predict_batch` bursts of `batch` mixes each, 10%
/// classifies, 5% stats — still entirely inside the warmed write+read
/// view of target 7, so a clean run pays only [`WARMED_MODELS`] misses.
pub fn generate_requests_batched(seed: u64, client: u64, n: usize, batch: usize) -> Vec<String> {
    let mut state = rng_state(seed, client).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    fn gen_mix(next: &mut impl FnMut() -> u64) -> Vec<(u16, u32)> {
        let entries = 1 + (next() % 3) as usize;
        let mut mix: Vec<(u16, u32)> = (0..entries)
            .map(|_| ((next() % 8) as u16, 1 + (next() % 4) as u32))
            .collect();
        mix.sort();
        mix.dedup_by_key(|e| e.0);
        mix
    }
    (0..n)
        .map(|_| {
            let roll = next() % 100;
            let req = if roll < 75 {
                let mode = if roll < 55 {
                    WireMode::Write
                } else {
                    WireMode::Read
                };
                let mix = gen_mix(&mut next);
                Request::Predict {
                    device: None,
                    target: 7,
                    mode,
                    mix,
                }
            } else if roll < 85 {
                let mode = if roll % 2 == 0 {
                    WireMode::Write
                } else {
                    WireMode::Read
                };
                let mixes = (0..batch.max(1)).map(|_| gen_mix(&mut next)).collect();
                Request::PredictBatch {
                    device: None,
                    target: 7,
                    mode,
                    mixes,
                }
            } else if roll < 95 {
                Request::Classify {
                    device: None,
                    node: (next() % 8) as u16,
                    target: 7,
                    mode: WireMode::Write,
                }
            } else {
                Request::Stats
            };
            proto::encode(&req).expect("requests always encode")
        })
        .collect()
}

/// The request lines client `client` replays under `cfg`: the original
/// PR-6 mix when `cfg.batch == 0`, the batch-aware mix otherwise.
pub fn client_lines(cfg: &LoadConfig, client: u64) -> Vec<String> {
    if cfg.batch == 0 {
        generate_requests(cfg.seed, client, cfg.requests_per_client)
    } else {
        generate_requests_batched(cfg.seed, client, cfg.requests_per_client, cfg.batch)
    }
}

/// Digest of every request line `cfg` generates, in client order.
pub fn mix_digest(cfg: &LoadConfig) -> u64 {
    let mut h = 0u64;
    for client in 0..cfg.clients {
        for line in client_lines(cfg, client as u64) {
            h = fnv1a(h, line.as_bytes());
            h = fnv1a(h, b"\n");
        }
    }
    h
}

/// Run one closed-loop load measurement against a fresh loopback server.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    if cfg.clients == 0 || cfg.requests_per_client == 0 {
        return Err("loadgen needs at least one client and one request".into());
    }
    let service = Arc::new(
        ModelService::new(SimPlatform::dl585())
            .with_modeler(IoModeler::new().reps(cfg.reps.max(1) as u32)),
    );
    // Warm the models the mix touches, outside the timed region.
    for mode in [WireMode::Write, WireMode::Read] {
        let resp = service.handle(&Request::Predict {
            device: None,
            target: 7,
            mode,
            mix: vec![(0, 1)],
        });
        if let numa_serve::Response::Error { message } = resp {
            return Err(format!("warm-up characterization failed: {message}"));
        }
    }
    let serve_cfg = numa_serve::ServeConfig {
        max_connections: 0,
        workers: cfg.workers,
        queue_depth: cfg.queue_depth,
    };
    let handle = numa_serve::spawn_with(Arc::clone(&service), "127.0.0.1:0", serve_cfg)
        .map_err(|e| format!("spawn: {e}"))?;
    let addr = handle.addr().to_string();
    let workers = handle.workers();

    let lines: Vec<Vec<String>> = (0..cfg.clients)
        .map(|c| client_lines(cfg, c as u64))
        .collect();
    let t0 = Instant::now();
    let per_client: Vec<Result<(Vec<f64>, usize), String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = lines
            .iter()
            .map(|client_lines| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
                    let mut latencies = Vec::with_capacity(client_lines.len());
                    let mut errors = 0usize;
                    for line in client_lines {
                        let t = Instant::now();
                        let reply = client.call_raw(line).map_err(|e| format!("call: {e}"))?;
                        latencies.push(t.elapsed().as_secs_f64());
                        if reply.contains("\"reply\":\"error\"") {
                            errors += 1;
                        }
                    }
                    Ok((latencies, errors))
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("loadgen client panicked"))
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    handle.shutdown();

    let mut latencies = Vec::with_capacity(cfg.clients * cfg.requests_per_client);
    let mut errors = 0usize;
    for r in per_client {
        let (lat, errs) = r?;
        latencies.extend(lat);
        errors += errs;
    }
    latencies.sort_by(f64::total_cmp);
    let requests = latencies.len();
    let nearest = |q: f64| -> f64 {
        let rank = ((q * requests as f64).ceil() as usize).clamp(1, requests);
        latencies[rank - 1]
    };
    let stats = service.cache().stats();
    Ok(LoadReport {
        clients: cfg.clients,
        workers,
        requests,
        errors,
        elapsed_s,
        req_per_s: if elapsed_s > 0.0 {
            requests as f64 / elapsed_s
        } else {
            0.0
        },
        mean_s: latencies.iter().sum::<f64>() / requests as f64,
        p50_s: nearest(0.50),
        p90_s: nearest(0.90),
        p99_s: nearest(0.99),
        mix_digest: mix_digest(cfg),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mixes_are_deterministic_per_seed() {
        let a = generate_requests(42, 0, 32);
        let b = generate_requests(42, 0, 32);
        assert_eq!(a, b);
        assert_ne!(
            a,
            generate_requests(42, 1, 32),
            "clients get distinct streams"
        );
        assert_ne!(
            a,
            generate_requests(43, 0, 32),
            "seeds get distinct streams"
        );
        let cfg = LoadConfig::default();
        assert_eq!(mix_digest(&cfg), mix_digest(&cfg));
    }

    #[test]
    fn generated_lines_decode_and_stay_in_the_warmed_view() {
        for line in generate_requests(7, 3, 128) {
            let req = proto::decode_request(&line).expect("generated lines decode");
            match req {
                Request::Predict { target, mix, .. } => {
                    assert_eq!(target, 7);
                    assert!(!mix.is_empty());
                    assert!(mix.iter().all(|&(n, c)| n < 8 && c >= 1));
                }
                Request::Classify { node, target, .. } => {
                    assert!(node < 8);
                    assert_eq!(target, 7);
                }
                Request::Stats => {}
                other => panic!("unexpected op in mix: {other:?}"),
            }
        }
    }

    #[test]
    fn batched_mix_is_deterministic_and_stays_in_the_warmed_view() {
        let a = generate_requests_batched(42, 0, 64, 16);
        assert_eq!(a, generate_requests_batched(42, 0, 64, 16));
        assert_ne!(a, generate_requests_batched(42, 1, 64, 16));
        let mut batches = 0usize;
        for line in &a {
            let req = proto::decode_request(line).expect("generated lines decode");
            match req {
                Request::Predict { target, mix, .. } => {
                    assert_eq!(target, 7);
                    assert!(mix.iter().all(|&(n, c)| n < 8 && c >= 1));
                }
                Request::PredictBatch { target, mixes, .. } => {
                    batches += 1;
                    assert_eq!(target, 7);
                    assert_eq!(mixes.len(), 16);
                    assert!(mixes
                        .iter()
                        .all(|m| !m.is_empty() && m.iter().all(|&(n, c)| n < 8 && c >= 1)));
                }
                Request::Classify { node, target, .. } => {
                    assert!(node < 8);
                    assert_eq!(target, 7);
                }
                Request::Stats => {}
                other => panic!("unexpected op in batched mix: {other:?}"),
            }
        }
        assert!(batches > 0, "64 requests at ~10% should carry a batch");
    }

    #[test]
    fn batch_zero_keeps_the_original_mix_and_digest() {
        let cfg = LoadConfig::default();
        assert_eq!(cfg.batch, 0);
        for client in 0..cfg.clients as u64 {
            assert_eq!(
                client_lines(&cfg, client),
                generate_requests(cfg.seed, client, cfg.requests_per_client),
                "batch == 0 must reproduce the PR-6 lines byte-for-byte"
            );
        }
        let batched = LoadConfig {
            batch: 8,
            ..LoadConfig::default()
        };
        assert_ne!(mix_digest(&cfg), mix_digest(&batched));
    }

    #[test]
    fn batched_load_run_is_clean_on_a_small_pool() {
        let cfg = LoadConfig {
            clients: 3,
            requests_per_client: 16,
            seed: 42,
            reps: 3,
            batch: 8,
            workers: 2,
            queue_depth: 4,
        };
        let report = run_load(&cfg).unwrap();
        assert_eq!(report.requests, 48);
        assert_eq!(report.errors, 0, "batched mix stays inside the warmed view");
        assert_eq!(report.cache_misses, WARMED_MODELS);
        assert_eq!(report.workers, 2);
        assert_eq!(report.mix_digest, mix_digest(&cfg));
    }

    #[test]
    fn small_load_run_is_clean_and_cache_hot() {
        let cfg = LoadConfig {
            clients: 2,
            requests_per_client: 8,
            seed: 42,
            reps: 3,
            ..LoadConfig::default()
        };
        let report = run_load(&cfg).unwrap();
        assert_eq!(report.requests, 16);
        assert_eq!(report.errors, 0, "mix stays inside the warmed view");
        assert_eq!(report.cache_misses, WARMED_MODELS);
        assert!(report.req_per_s > 0.0);
        assert!(report.p50_s <= report.p99_s);
        assert_eq!(report.mix_digest, mix_digest(&cfg));
    }
}
