#![warn(missing_docs)]
//! # numa-bench
//!
//! Experiment regeneration harness: one module (and one binary) per table
//! and figure of the paper's evaluation, each printing the same rows or
//! series the paper reports, side by side with the published values where
//! the paper gives them.
//!
//! Run a single experiment:
//!
//! ```sh
//! cargo run -p numa-bench --bin fig10_iomodel
//! ```
//!
//! or everything at once (writes `results/` too):
//!
//! ```sh
//! cargo run -p numa-bench --bin make_all
//! ```
//!
//! The `benches/` directory holds Criterion microbenchmarks of *our*
//! algorithms (allocator, routing, modeler, event loop, STREAM driver);
//! the experiment bins regenerate the *paper's* data.

pub mod experiments;
pub mod loadgen;

/// One regenerated experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Stable id matching DESIGN.md's index (e.g. `"fig10"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered report.
    pub text: String,
    /// Machine-readable series/rows for downstream plotting, when the
    /// experiment carries numeric data worth exporting.
    pub data: Option<serde_json::Value>,
}

impl Experiment {
    /// Render with a banner.
    pub fn render(&self) -> String {
        format!(
            "================================================================\n\
             {} — {}\n\
             ================================================================\n\
             {}\n",
            self.id, self.title, self.text
        )
    }
}

/// Every experiment, in paper order, generated in parallel (each
/// experiment is seeded and independent; [`numa_par`] cuts `make_all`
/// wall time roughly by the core count while keeping the output order —
/// and every report byte — identical to a serial loop).
pub fn all_experiments() -> Vec<Experiment> {
    let generators: Vec<fn() -> Experiment> = vec![
        experiments::table1::run,
        experiments::fig1::run,
        experiments::fig2::run,
        experiments::fig3::run,
        experiments::fig4::run,
        experiments::fig5::run,
        experiments::fig6::run,
        experiments::fig7::run,
        experiments::fig10::run,
        experiments::table4::run,
        experiments::table5::run,
        experiments::eq1::run,
        experiments::sched::run,
        experiments::cost::run,
        experiments::ablations::run,
        experiments::baseline::run,
        experiments::netpath::run,
        experiments::latbench::run,
    ];
    numa_par::parallel_map(&generators, |g| g())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_unique_and_ordered() {
        let exps = all_experiments();
        assert_eq!(exps.len(), 18);
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
        let orig = ids.clone();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), orig.len(), "duplicate ids");
        assert_eq!(orig[0], "table1");
    }

    #[test]
    fn data_exports_cover_the_key_figures() {
        let exps = all_experiments();
        for id in ["fig3", "fig5", "fig10"] {
            let e = exps.iter().find(|e| e.id == id).unwrap();
            assert!(e.data.is_some(), "{id} should export data");
        }
        // fig3's matrix is 8x8.
        let fig3 = exps.iter().find(|e| e.id == "fig3").unwrap();
        let m = &fig3.data.as_ref().unwrap()["matrix"];
        assert_eq!(m.as_array().unwrap().len(), 8);
    }

    #[test]
    fn every_experiment_produces_output() {
        for e in all_experiments() {
            assert!(!e.text.trim().is_empty(), "{} empty", e.id);
            assert!(e.render().contains(e.title));
        }
    }
}
