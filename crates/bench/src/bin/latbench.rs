//! Regenerate the latency staircase experiment.

fn main() {
    print!("{}", numa_bench::experiments::latbench::run().render());
}
