//! Closed-loop serve load generator: N concurrent clients replay a
//! deterministic request mix against a loopback server and report req/s
//! plus p50/p90/p99 latency. Usage:
//!
//! ```sh
//! cargo run --release -p numa-bench --bin serve_throughput [-- <out.json>] \
//!     [--clients N] [--requests M] [--seed S] [--reps R] \
//!     [--batch B] [--workers W] [--queue-depth D] [--check]
//! ```
//!
//! Writes a `numio-serve-throughput/1` JSON document (CI uploads it next
//! to `BENCH_7.json`). `--batch B` switches the request mix to one that
//! interleaves `predict_batch` bursts of B mixes (0, the default, keeps
//! the original mix and digest); `--workers`/`--queue-depth` size the
//! server's worker pool (0 = serve defaults). `--check` verifies the
//! run's deterministic anchors — zero error replies, exactly the warmed
//! characterizations as misses, and a regenerated mix digest matching the
//! run's — and exits non-zero on drift. Throughput and percentiles are
//! machine-dependent and never gate.

use numa_bench::loadgen::{self, LoadConfig, WARMED_MODELS};

struct Args {
    out_path: String,
    cfg: LoadConfig,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out_path: "BENCH_serve.json".to_string(),
        cfg: LoadConfig::default(),
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    let mut num = |flag: &str, val: Option<String>| -> usize {
        val.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} requires a non-negative integer");
            std::process::exit(2);
        })
    };
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--clients" => args.cfg.clients = num("--clients", iter.next()),
            "--requests" => args.cfg.requests_per_client = num("--requests", iter.next()),
            "--seed" => args.cfg.seed = num("--seed", iter.next()) as u64,
            "--reps" => args.cfg.reps = num("--reps", iter.next()),
            "--batch" => args.cfg.batch = num("--batch", iter.next()),
            "--workers" => args.cfg.workers = num("--workers", iter.next()),
            "--queue-depth" => args.cfg.queue_depth = num("--queue-depth", iter.next()),
            "--check" => args.check = true,
            _ => args.out_path = a,
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let report = loadgen::run_load(&args.cfg).unwrap_or_else(|e| {
        eprintln!("serve_throughput: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "{} clients x {} requests over {} workers: {:.0} req/s  p50 {:.1} us  p90 {:.1} us  p99 {:.1} us",
        report.clients,
        args.cfg.requests_per_client,
        report.workers,
        report.req_per_s,
        report.p50_s * 1e6,
        report.p90_s * 1e6,
        report.p99_s * 1e6,
    );
    let doc = serde_json::json!({
        "schema": "numio-serve-throughput/1",
        "config": {
            "clients": report.clients,
            "requests_per_client": args.cfg.requests_per_client,
            "seed": args.cfg.seed,
            "reps": args.cfg.reps,
            "batch": args.cfg.batch,
        },
        "server": {
            "workers": report.workers,
            "queue_depth": args.cfg.queue_depth,
        },
        "throughput": {
            "requests": report.requests,
            "elapsed_s": report.elapsed_s,
            "req_per_s": report.req_per_s,
        },
        "latency": {
            "mean_s": report.mean_s,
            "p50_s": report.p50_s,
            "p90_s": report.p90_s,
            "p99_s": report.p99_s,
        },
        "errors": report.errors,
        "cache": { "hits": report.cache_hits, "misses": report.cache_misses },
        // As a string: JSON readers keep 64-bit digests exact that way.
        "mix_digest": format!("{:016x}", report.mix_digest),
    });
    let text = serde_json::to_string_pretty(&doc).expect("report serialization");
    std::fs::write(&args.out_path, &text).unwrap_or_else(|e| panic!("{}: {e}", args.out_path));
    println!("wrote {}", args.out_path);

    if args.check {
        let mut failures = Vec::new();
        if report.errors != 0 {
            failures.push(format!(
                "{} error replies; a healthy run has none",
                report.errors
            ));
        }
        if report.cache_misses != WARMED_MODELS {
            failures.push(format!(
                "{} cache misses, expected the {WARMED_MODELS} warmed characterizations: \
                 the request mix escaped the warmed view",
                report.cache_misses
            ));
        }
        if loadgen::mix_digest(&args.cfg) != report.mix_digest {
            failures
                .push("regenerated mix digest diverges: generation is non-deterministic".into());
        }
        if report.p50_s > report.p99_s {
            failures.push(format!(
                "percentiles out of order: p50 {} > p99 {}",
                report.p50_s, report.p99_s
            ));
        }
        for f in &failures {
            eprintln!("CHECK FAILED: {f}");
        }
        if failures.is_empty() {
            println!("checks: load run clean, mix deterministic, cache hot");
        } else {
            std::process::exit(1);
        }
    }
}
