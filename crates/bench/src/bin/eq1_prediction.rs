//! Regenerate the paper's eq1 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::eq1::run().render());
}
