//! Regenerate the paper's fig3 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::fig3::run().render());
}
