//! Machine-readable performance baseline for the repo's hot paths.
//!
//! Times the four algorithmic kernels the criterion benches cover —
//! max-min allocator, topology routing, Algorithm 1 modeler, engine event
//! loop — plus a full scheduler episode, and writes `BENCH_baseline.json`
//! so perf regressions are diffable across commits without a criterion
//! run. Usage:
//!
//! ```sh
//! cargo run --release -p numa-bench --bin perf_baseline [-- <out.json>]
//! ```
//!
//! Timings are wall-clock medians and therefore machine-dependent; the
//! `checks` section (Eq. 1 prediction, class counts) is deterministic and
//! must match the paper on any machine.

use numa_fabric::{solve_max_min, FlowSpec, MaxMinProblem};
use numa_topology::{presets, NodeId, RouteTable};
use numio_core::{IoModeler, SimPlatform, TransferMode};
use std::time::Instant;

/// Deterministic pseudo-random allocator problem (mirrors the criterion
/// bench's generator so both report the same workload shape).
fn problem(n: usize, r: usize) -> MaxMinProblem {
    let mut state = 0x1234_5678_9abc_def0_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let capacities: Vec<f64> = (0..r).map(|_| 10.0 + (next() % 90) as f64).collect();
    let flows = (0..n)
        .map(|_| {
            let k = 1 + (next() as usize % 4).min(r - 1);
            let resources: Vec<usize> = (0..k).map(|_| next() as usize % r).collect();
            let ceiling = if next() % 3 == 0 { 5.0 + (next() % 40) as f64 } else { f64::INFINITY };
            FlowSpec { resources, ceiling, weight: 1.0 }
        })
        .collect();
    MaxMinProblem { capacities, flows }
}

/// Median wall-clock seconds of `iters` runs of `f`.
fn time_op<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let iters = 9;
    let mut ops = serde_json::Map::new();
    let mut record = |name: &str, median_s: f64| {
        eprintln!("{name:<32} {:.3} ms", median_s * 1e3);
        ops.insert(name.to_string(), serde_json::json!({ "median_s": median_s }));
    };

    // Allocator: water-filling at small and contended sizes.
    for (flows, resources) in [(64usize, 64usize), (1024, 256)] {
        let p = problem(flows, resources);
        let s = time_op(iters, || {
            std::hint::black_box(solve_max_min(std::hint::black_box(&p)));
        });
        record(&format!("allocator_maxmin_{flows}f_{resources}r"), s);
    }

    // Routing: BFS route-table construction on the largest preset.
    let topo = presets::blade32();
    record(
        "routing_bfs_blade32",
        time_op(iters, || {
            std::hint::black_box(RouteTable::bfs(std::hint::black_box(&topo)));
        }),
    );
    let fabric = numa_fabric::calibration::dl585_fabric();
    record(
        "routing_dma_matrix_dl585",
        time_op(iters, || {
            std::hint::black_box(std::hint::black_box(&fabric).dma_matrix());
        }),
    );

    // Modeler: Algorithm 1, paper reps, both directions.
    let platform = SimPlatform::dl585();
    record(
        "modeler_characterize_write_100reps",
        time_op(iters, || {
            std::hint::black_box(IoModeler::new().characterize(
                std::hint::black_box(&platform),
                NodeId(7),
                TransferMode::Write,
            ));
        }),
    );

    // Engine: a contended multi-flow run to completion.
    let run_engine = || {
        let jobs = [
            numa_fio::JobSpec::nic(numa_iodev::NicOp::RdmaRead, NodeId(2))
                .numjobs(4)
                .size_gbytes(10.0),
            numa_fio::JobSpec::nic(numa_iodev::NicOp::RdmaRead, NodeId(0))
                .numjobs(4)
                .size_gbytes(10.0),
            numa_fio::JobSpec::ssd(true, NodeId(5)).numjobs(4).size_gbytes(10.0),
        ];
        numa_fio::run_jobs(&fabric, &jobs).expect("engine baseline run")
    };
    record(
        "engine_run_12flows",
        time_op(iters, || {
            std::hint::black_box(run_engine());
        }),
    );

    // Scheduler: one model-driven episode over a 16-task trace.
    let run_episode = || {
        let tasks = numa_sched::trace::poisson(16, 1.0, numa_sched::trace::MixProfile::Ingest, 42);
        numa_sched::Scheduler::new(&platform)
            .run(tasks, numa_sched::policy::ModelDriven::from_platform(&platform))
            .expect("scheduler baseline episode")
    };
    record(
        "sched_episode_16tasks",
        time_op(iters, || {
            std::hint::black_box(run_episode());
        }),
    );

    // Deterministic correctness anchors riding along with the timings.
    let write = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Write);
    let read = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);
    let report = run_engine();
    let doc = serde_json::json!({
        "schema": "numio-bench-baseline/1",
        "iters_per_op": iters,
        "ops": ops,
        "checks": {
            "write_classes": write.classes().len(),
            "read_classes": read.classes().len(),
            "engine_aggregate_gbps": report.aggregate_gbps,
        },
    });
    let text = serde_json::to_string_pretty(&doc).expect("baseline serialization");
    std::fs::write(&out_path, &text).unwrap_or_else(|e| panic!("{out_path}: {e}"));
    println!("wrote {out_path}");
}
