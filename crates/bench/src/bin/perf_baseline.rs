//! Machine-readable performance baseline for the repo's hot paths.
//!
//! Times the algorithmic kernels the criterion benches cover — max-min
//! allocator (one-shot and persistent-solver reuse), topology routing,
//! Algorithm 1 modeler, the storage-tier SSD characterization sweep,
//! engine event loop — plus a seeded 10k-flow
//! open-loop Poisson scenario (FCT-digest anchored), a full scheduler
//! episode, a 64-host fleet generate-and-place episode (with an 8-host
//! policy-compare digest anchor), a fixture-replayed full-host
//! characterization, the serving
//! layer's hot paths (warm single predict, 4096-mix `predict_batch` vs
//! the same mixes sequentially, and a 64-deep pipelined burst over a
//! loopback worker pool), and a closed-loop serve load run (concurrent
//! clients over loopback, deterministic request mix, p50/p99 latency),
//! and writes
//! `BENCH_baseline.json` so perf regressions are
//! diffable across commits without a criterion run. Usage:
//!
//! ```sh
//! cargo run --release -p numa-bench --bin perf_baseline [-- <out.json>] \
//!     [--compare old.json] [--check]
//! ```
//!
//! `--compare old.json` prints a per-op old/new/speedup table against a
//! previously recorded baseline and exits non-zero if any key present in
//! both `checks` blocks differs (timings never gate). `--check` verifies
//! the deterministic anchors themselves — paper class counts, the Eq. 1
//! prediction, solver bit-for-bit reproducibility, batch-vs-sequential
//! predict bit-identity, and pipelined reply ordering — and exits
//! non-zero on drift.
//!
//! Timings are wall-clock medians and therefore machine-dependent; the
//! `checks` section (class counts, Eq. 1 prediction, engine aggregate)
//! is deterministic and must match the paper on any machine.

use numa_backend::{RecordingPlatform, ReplayPlatform};
use numa_bench::loadgen::{self, LoadConfig, LoadReport, WARMED_MODELS};
use numa_fabric::calibration::paper;
use numa_fabric::{solve_max_min, FlowSpec, MaxMinProblem, MaxMinSolver};
use numa_iodev::{NicModel, NicOp};
use numa_topology::{presets, NodeId, RouteTable};
use numio_core::{
    characterize_storage_full_host, predict_aggregate, relative_error, IoModeler, SimPlatform,
    TransferMode,
};
use std::time::Instant;

/// Deterministic pseudo-random allocator problem (mirrors the criterion
/// bench's generator so both report the same workload shape).
fn problem(n: usize, r: usize) -> MaxMinProblem {
    let mut state = 0x1234_5678_9abc_def0_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let capacities: Vec<f64> = (0..r).map(|_| 10.0 + (next() % 90) as f64).collect();
    let flows = (0..n)
        .map(|_| {
            let k = 1 + (next() as usize % 4).min(r - 1);
            let resources: Vec<usize> = (0..k).map(|_| next() as usize % r).collect();
            let ceiling = if next() % 3 == 0 {
                5.0 + (next() % 40) as f64
            } else {
                f64::INFINITY
            };
            FlowSpec {
                resources,
                ceiling,
                weight: 1.0,
            }
        })
        .collect();
    MaxMinProblem { capacities, flows }
}

/// Median wall-clock seconds of `iters` runs of `f`.
fn time_op<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Args {
    out_path: String,
    compare: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out_path: "BENCH_baseline.json".to_string(),
        compare: None,
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--compare" => {
                args.compare = Some(iter.next().unwrap_or_else(|| {
                    eprintln!("--compare requires a path to an old baseline JSON");
                    std::process::exit(2);
                }));
            }
            "--check" => args.check = true,
            _ => args.out_path = a,
        }
    }
    args
}

/// Verify the deterministic anchors; returns the failure messages.
fn run_checks(
    write_classes: usize,
    read_classes: usize,
    eq1_predicted: f64,
    engine_aggregate: [f64; 2],
    replay_identical: bool,
    ssd_classes_deterministic: bool,
    ssd_write_partition: &str,
    scenario_deterministic: bool,
    fleet_policy_deterministic: bool,
    serve_cache_hot: bool,
    serve_batch_identical: bool,
    serve_pipelined_in_order: bool,
    load_cfg: &LoadConfig,
    load: &LoadReport,
) -> Vec<String> {
    let mut failures = Vec::new();
    if write_classes != 3 {
        failures.push(format!("write_classes = {write_classes}, paper reports 3"));
    }
    if read_classes != 4 {
        failures.push(format!("read_classes = {read_classes}, paper reports 4"));
    }
    // Our reproduction of the Eq. 1 prediction itself; the paper's own
    // prediction-vs-measurement error (3.1%) is reported separately by
    // the eq1 experiment, so anchor on the predicted value here.
    let eq1_err = relative_error(eq1_predicted, paper::EQ1_PREDICTED);
    if eq1_err > 0.02 {
        failures.push(format!(
            "eq1 prediction {eq1_predicted:.3} Gbit/s is {:.1}% off the paper's {:.3}",
            eq1_err * 100.0,
            paper::EQ1_PREDICTED
        ));
    }
    if !replay_identical {
        failures.push("replayed full-host atlas diverges from the live recorded run".to_string());
    }
    if !ssd_classes_deterministic {
        failures.push("same-seed SSD characterization sweep is not bit-identical".to_string());
    }
    if ssd_write_partition != "6,7|0,1,4,5|2,3" {
        failures.push(format!(
            "ssd write partition '{ssd_write_partition}' does not match the Table IV analogue \
             '6,7|0,1,4,5|2,3'"
        ));
    }
    if !scenario_deterministic {
        failures.push(
            "same-seed 10k-flow Poisson scenario produced a different FCT digest".to_string(),
        );
    }
    if !fleet_policy_deterministic {
        failures.push(
            "same-seed 8-host fleet policy comparison produced different FCT digests".to_string(),
        );
    }
    if !serve_cache_hot {
        failures.push(
            "serve_predict_hot_cache re-characterized mid-loop: hot requests must all hit"
                .to_string(),
        );
    }
    if !serve_batch_identical {
        failures.push(
            "predict_batch diverges bit-for-bit from sequential predicts of the same mixes"
                .to_string(),
        );
    }
    if !serve_pipelined_in_order {
        failures.push(
            "pipelined replies arrived out of request order (or off the sequential values)"
                .to_string(),
        );
    }
    if load.errors != 0 {
        failures.push(format!(
            "serve load run saw {} error replies; the generated mix must be clean",
            load.errors
        ));
    }
    if load.cache_misses != WARMED_MODELS {
        failures.push(format!(
            "serve load run paid {} cache misses, expected the {WARMED_MODELS} warmed models",
            load.cache_misses
        ));
    }
    if loadgen::mix_digest(load_cfg) != load.mix_digest {
        failures.push("serve load mix digest is not reproducible from its seed".to_string());
    }
    if engine_aggregate[0].to_bits() != engine_aggregate[1].to_bits() {
        failures.push(format!(
            "engine run is non-deterministic: {} vs {}",
            engine_aggregate[0], engine_aggregate[1]
        ));
    }
    // Solver reproducibility: a reused solver must be bit-identical to a
    // fresh one-shot solve on the same problem.
    let p = problem(256, 64);
    let fresh = solve_max_min(&p);
    let mut solver = MaxMinSolver::from_problem(&p);
    solver.validate();
    let _ = solver.solve();
    let reused = solver.solve();
    let identical = fresh.len() == reused.len()
        && fresh
            .iter()
            .zip(reused)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if !identical {
        failures.push("reused MaxMinSolver diverges from one-shot solve_max_min".to_string());
    }
    failures
}

/// Print the per-op delta table and compare `checks`; returns mismatches.
fn compare_baselines(old: &serde_json::Value, new: &serde_json::Value) -> Vec<String> {
    println!(
        "{:<34} {:>10} {:>10} {:>9}",
        "op", "old ms", "new ms", "speedup"
    );
    if let (Some(old_ops), Some(new_ops)) = (old["ops"].as_object(), new["ops"].as_object()) {
        for (name, entry) in new_ops {
            let new_ms = entry["median_s"].as_f64().unwrap_or(f64::NAN) * 1e3;
            match old_ops.get(name).and_then(|e| e["median_s"].as_f64()) {
                Some(old_s) => {
                    let old_ms = old_s * 1e3;
                    println!(
                        "{name:<34} {old_ms:>10.3} {new_ms:>10.3} {:>8.2}x",
                        old_ms / new_ms
                    );
                }
                None => println!("{name:<34} {:>10} {new_ms:>10.3} {:>9}", "-", "new"),
            }
        }
    }
    let mut mismatches = Vec::new();
    if let (Some(old_checks), Some(new_checks)) =
        (old["checks"].as_object(), new["checks"].as_object())
    {
        for (key, old_val) in old_checks {
            if let Some(new_val) = new_checks.get(key) {
                if old_val != new_val {
                    mismatches.push(format!("checks.{key}: old {old_val} != new {new_val}"));
                }
            }
        }
    }
    mismatches
}

fn main() {
    let args = parse_args();
    let iters = 9;
    let mut ops = serde_json::Map::new();
    let mut record = |name: &str, median_s: f64| {
        eprintln!("{name:<34} {:.3} ms", median_s * 1e3);
        ops.insert(
            name.to_string(),
            serde_json::json!({ "median_s": median_s }),
        );
    };

    // Allocator: water-filling at small and contended sizes.
    for (flows, resources) in [(64usize, 64usize), (1024, 256)] {
        let p = problem(flows, resources);
        let s = time_op(iters, || {
            std::hint::black_box(solve_max_min(std::hint::black_box(&p)));
        });
        record(&format!("allocator_maxmin_{flows}f_{resources}r"), s);
    }

    // Allocator, persistent-solver path: the engine's per-round usage —
    // build once, re-solve with preallocated scratch (zero heap churn).
    {
        let p = problem(1024, 256);
        let mut solver = MaxMinSolver::from_problem(&p);
        solver.validate();
        let s = time_op(iters, || {
            std::hint::black_box(solver.solve());
        });
        record("allocator_solver_reuse_1024f_256r", s);
    }

    // Routing: BFS route-table construction on the largest preset.
    let topo = presets::blade32();
    record(
        "routing_bfs_blade32",
        time_op(iters, || {
            std::hint::black_box(RouteTable::bfs(std::hint::black_box(&topo)));
        }),
    );
    let fabric = numa_fabric::calibration::dl585_fabric();
    record(
        "routing_dma_matrix_dl585",
        time_op(iters, || {
            std::hint::black_box(std::hint::black_box(&fabric).dma_matrix());
        }),
    );

    // Modeler: Algorithm 1, paper reps, both directions.
    let platform = SimPlatform::dl585();
    record(
        "modeler_characterize_write_100reps",
        time_op(iters, || {
            std::hint::black_box(IoModeler::new().characterize(
                std::hint::black_box(&platform),
                NodeId(7),
                TransferMode::Write,
            ));
        }),
    );

    // Storage tier: the full SSD sweep — 4 operating points (engine x
    // access mode) x write/read, each mapped off a fresh memcpy probe run
    // through the calibrated device curves. The write partition and the
    // bit-identity of a same-seed rerun are anchors below.
    let mut ssd_models = Vec::new();
    record(
        "ssd_characterize_full_host",
        time_op(3, || {
            ssd_models = std::hint::black_box(
                characterize_storage_full_host(&IoModeler::new(), std::hint::black_box(&platform))
                    .expect("ssd baseline characterization"),
            );
        }),
    );
    let ssd_classes_deterministic = characterize_storage_full_host(&IoModeler::new(), &platform)
        .expect("ssd baseline recharacterization")
        == ssd_models;
    // Model 0 is the paper operating point (libaio QD16, O_DIRECT), write.
    let ssd_write_partition = ssd_models[0]
        .classes()
        .iter()
        .map(|c| {
            c.nodes
                .iter()
                .map(|n| n.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("|");

    // Backend layer: full-host characterization answered entirely from a
    // recorded fixture. Record once outside the timed region, then time
    // the replayed run; its result doubles as a correctness anchor below.
    let recorder = RecordingPlatform::new(SimPlatform::dl585());
    let live_atlas = IoModeler::new().characterize_full_host(&recorder);
    let replay = ReplayPlatform::from_jsonl(&recorder.fixture().to_jsonl())
        .expect("replay of a just-recorded fixture");
    let mut replayed_atlas = Vec::new();
    record(
        "replay_characterize_full_host",
        time_op(iters, || {
            replayed_atlas = std::hint::black_box(IoModeler::new().characterize_full_host(&replay));
        }),
    );
    let replay_identical = replayed_atlas == live_atlas;

    // Engine: a contended multi-flow run to completion.
    let run_engine = || {
        let jobs = [
            numa_fio::JobSpec::nic(numa_iodev::NicOp::RdmaRead, NodeId(2))
                .numjobs(4)
                .size_gbytes(10.0),
            numa_fio::JobSpec::nic(numa_iodev::NicOp::RdmaRead, NodeId(0))
                .numjobs(4)
                .size_gbytes(10.0),
            numa_fio::JobSpec::ssd(true, NodeId(5))
                .numjobs(4)
                .size_gbytes(10.0),
        ];
        numa_fio::run_jobs(&fabric, &jobs).expect("engine baseline run")
    };
    record(
        "engine_run_12flows",
        time_op(iters, || {
            std::hint::black_box(run_engine());
        }),
    );

    // Scenario: a seeded 10k-flow open-loop Poisson run through the
    // unified builder — the event calendar's arrival/completion churn is
    // the cost being tracked. The FCT digest of two same-seed runs is the
    // determinism anchor below.
    let scenario_workload = numa_engine::Workload::parse("poisson:n=10000,rate=2000,seed=42")
        .expect("baseline workload spec");
    let run_scenario = || {
        numa_engine::Scenario::on(&fabric)
            .workload(scenario_workload.clone())
            .run()
            .expect("scenario baseline run")
    };
    let mut scenario_report = run_scenario();
    record(
        "scenario_poisson_10k_flows",
        time_op(3, || {
            scenario_report = std::hint::black_box(run_scenario());
        }),
    );
    let scenario_digest = scenario_report.fct_digest();
    let scenario_deterministic = run_scenario().fct_digest() == scenario_digest;

    // Scheduler: one model-driven episode over a 16-task trace.
    let run_episode = || {
        let tasks = numa_sched::trace::poisson(16, 1.0, numa_sched::trace::MixProfile::Ingest, 42);
        numa_sched::Scheduler::new(&platform)
            .run(
                tasks,
                numa_sched::policy::ModelDriven::from_platform(&platform),
            )
            .expect("scheduler baseline episode")
    };
    record(
        "sched_episode_16tasks",
        time_op(iters, || {
            std::hint::black_box(run_episode());
        }),
    );

    // Fleet: generate-and-place at warehouse scale — 64 heterogeneous
    // hosts sampled and characterized from one seed, then a class-ranked
    // placement episode over 256 streams. The timed region covers the
    // full pipeline (topology sampling, calibration, characterization,
    // episode) since that is what a cold `fleet_place` wire request pays.
    let run_fleet = || {
        let fleet = numa_fleet::Fleet::generate(64, 42).expect("fleet baseline generation");
        let streams = numa_fleet::StreamSpec::workload(256, 42);
        let mut policy =
            numa_fleet::policy_by_name("class-ranked", 64).expect("fleet baseline policy");
        numa_fleet::ClusterScheduler::new(&fleet)
            .run(&streams, policy.as_mut())
            .expect("fleet baseline episode")
    };
    record(
        "fleet_place_64_hosts",
        time_op(3, || {
            std::hint::black_box(run_fleet());
        }),
    );

    // Fleet determinism anchor: the three-policy comparison on a seeded
    // 8-host fleet, regenerated from scratch per run, must produce
    // bit-identical FCT digests.
    let fleet_compare_digests = || -> Vec<String> {
        let fleet = numa_fleet::Fleet::generate(8, 42).expect("fleet anchor generation");
        numa_fleet::ClusterScheduler::new(&fleet)
            .compare(&numa_fleet::StreamSpec::workload(64, 42))
            .expect("fleet anchor comparison")
            .iter()
            .map(|r| format!("{:016x}", r.digest))
            .collect()
    };
    let fleet_digests = fleet_compare_digests();
    let fleet_policy_deterministic = fleet_compare_digests() == fleet_digests;

    // Serving layer: a hot-cache Eq. 1 prediction — the steady-state cost
    // a placement query pays once the atlas is memoized. The cold miss is
    // paid outside the timed region; every timed request must be a hit.
    let serve_svc = std::sync::Arc::new(
        numa_serve::ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3)),
    );
    let predict_req = numa_serve::Request::Predict {
        device: None,
        target: 7,
        mode: numa_serve::WireMode::Write,
        mix: vec![(6, 2), (2, 1)],
    };
    serve_svc.handle(&predict_req);
    record(
        "serve_predict_hot_cache",
        time_op(iters, || {
            std::hint::black_box(serve_svc.handle(std::hint::black_box(&predict_req)));
        }),
    );
    let serve_stats = serve_svc.cache().stats();
    let serve_cache_hot = serve_stats.misses == 1 && serve_stats.hits >= iters as u64;

    // Batch predict: one `predict_batch` carrying 4096 deterministic
    // mixes against the warmed (target 7, write) model, against the same
    // 4096 mixes as sequential `predict`s. The ratio is the per-op
    // amortization of dispatch, tracing, and cache resolution; the values
    // themselves must be bit-identical either way (anchored below).
    const BATCH_MIXES: usize = 4096;
    let mixes: Vec<Vec<(u16, u32)>> = {
        let mut state = 0xfeed_f00d_dead_beef_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..BATCH_MIXES)
            .map(|_| {
                let entries = 1 + (next() % 3) as usize;
                let mut mix: Vec<(u16, u32)> = (0..entries)
                    .map(|_| ((next() % 8) as u16, 1 + (next() % 4) as u32))
                    .collect();
                mix.sort();
                mix.dedup_by_key(|e| e.0);
                mix
            })
            .collect()
    };
    let batch_req = numa_serve::Request::PredictBatch {
        device: None,
        target: 7,
        mode: numa_serve::WireMode::Write,
        mixes: mixes.clone(),
    };
    let seq_reqs: Vec<numa_serve::Request> = mixes
        .iter()
        .map(|mix| numa_serve::Request::Predict {
            device: None,
            target: 7,
            mode: numa_serve::WireMode::Write,
            mix: mix.clone(),
        })
        .collect();
    let batch_s = time_op(iters, || {
        std::hint::black_box(serve_svc.handle(std::hint::black_box(&batch_req)));
    });
    record("serve_predict_batch_4096", batch_s);
    let seq_s = time_op(iters, || {
        for req in &seq_reqs {
            std::hint::black_box(serve_svc.handle(std::hint::black_box(req)));
        }
    });
    record("serve_predict_seq_4096", seq_s);
    let batch_vals = match serve_svc.handle(&batch_req) {
        numa_serve::Response::PredictBatch { predicted_gbps, .. } => predicted_gbps,
        other => {
            eprintln!("predict_batch failed against a warmed cache: {other:?}");
            std::process::exit(1);
        }
    };
    let serve_batch_identical = batch_vals.len() == seq_reqs.len()
        && seq_reqs
            .iter()
            .zip(&batch_vals)
            .all(|(req, &b)| match serve_svc.handle(req) {
                numa_serve::Response::Predict { predicted_gbps, .. } => {
                    predicted_gbps.to_bits() == b.to_bits()
                }
                _ => false,
            });

    // Pipelined hot path: 64 predicts written to a loopback worker-pool
    // server before any reply is read, per iteration — what the wire adds
    // on top of `serve_predict_hot_cache`, divided by the burst. Replies
    // must come back in request order (anchored below).
    let pool = numa_serve::spawn_with(
        std::sync::Arc::clone(&serve_svc),
        "127.0.0.1:0",
        numa_serve::ServeConfig::default(),
    )
    .expect("spawn serve pool for the pipelined baseline");
    let mut pipe_client = numa_serve::Client::connect(&pool.addr().to_string())
        .expect("connect to the pipelined baseline server");
    let burst = &seq_reqs[..64];
    let mut serve_pipelined_in_order = true;
    let pipelined_s = time_op(iters, || {
        for req in burst {
            pipe_client.send(req).expect("pipeline send");
        }
        for want in batch_vals.iter().take(burst.len()) {
            match pipe_client.recv().expect("pipeline recv") {
                numa_serve::Response::Predict { predicted_gbps, .. } => {
                    if predicted_gbps.to_bits() != want.to_bits() {
                        serve_pipelined_in_order = false;
                    }
                }
                _ => serve_pipelined_in_order = false,
            }
        }
    });
    record("serve_pipelined_hot", pipelined_s);
    drop(pipe_client);
    pool.shutdown();

    // Serve throughput: a closed-loop multi-client load run over loopback
    // with a deterministic request mix (the serve_throughput bin at its
    // defaults). req/s and the percentiles are machine-dependent; the
    // error count, warmed-miss count, and mix digest are anchors.
    let load_cfg = LoadConfig::default();
    let load = loadgen::run_load(&load_cfg).unwrap_or_else(|e| {
        eprintln!("serve load run failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "serve_throughput ({}x{}): {:.0} req/s",
        load.clients, load_cfg.requests_per_client, load.req_per_s
    );
    record("serve_throughput_p50", load.p50_s);
    record("serve_throughput_p99", load.p99_s);

    // Deterministic correctness anchors riding along with the timings.
    let write = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Write);
    let read = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);
    let nic = NicModel::paper();
    let class2 = nic.map(NicOp::RdmaRead).eval(read.classes()[1].avg_gbps);
    let class3 = nic.map(NicOp::RdmaRead).eval(read.classes()[2].avg_gbps);
    let eq1_predicted = predict_aggregate(&[(class2, 0.5), (class3, 0.5)]);
    let report = run_engine();
    let report2 = run_engine();
    let doc = serde_json::json!({
        "schema": "numio-bench-baseline/1",
        "iters_per_op": iters,
        "ops": ops,
        "serve_throughput": {
            "clients": load.clients,
            "workers": load.workers,
            "requests": load.requests,
            "req_per_s": load.req_per_s,
            "mean_s": load.mean_s,
            "p50_s": load.p50_s,
            "p90_s": load.p90_s,
            "p99_s": load.p99_s,
        },
        // Batch amortization: one predict_batch of `mixes` Eq. 1 mixes
        // versus the same mixes as sequential predicts. `per_op_speedup`
        // is machine-dependent and never gates; the bit-identity of the
        // two paths is the `serve_batch_bit_identical` check below.
        "serve_batch": {
            "mixes": BATCH_MIXES,
            "batch_median_s": batch_s,
            "sequential_median_s": seq_s,
            "per_op_speedup": seq_s / batch_s,
        },
        "checks": {
            "write_classes": write.classes().len(),
            "read_classes": read.classes().len(),
            "eq1_predicted_gbps": eq1_predicted,
            "engine_aggregate_gbps": report.aggregate_gbps,
            "replay_bit_identical": replay_identical,
            "ssd_classes_deterministic": ssd_classes_deterministic,
            // Pipe-separated classes, comma-separated nodes, best first.
            "ssd_write_partition": ssd_write_partition.as_str(),
            // As a string: 64-bit digests survive every JSON reader exact.
            "scenario_fct_digest": format!("{:016x}", scenario_digest),
            "scenario_bit_identical": scenario_deterministic,
            // One digest per policy, class-ranked / bandwidth-aware /
            // adaptive order, space-joined.
            "fleet_compare_digests": fleet_digests.join(" "),
            "fleet_policy_deterministic": fleet_policy_deterministic,
            "serve_cache_hot": serve_cache_hot,
            "serve_batch_bit_identical": serve_batch_identical,
            "serve_pipelined_in_order": serve_pipelined_in_order,
            "serve_loadgen_errors": load.errors,
            "serve_loadgen_cache_misses": load.cache_misses,
            // As a string: 64-bit digests survive every JSON reader exact.
            "serve_loadgen_mix_digest": format!("{:016x}", load.mix_digest),
        },
    });
    let text = serde_json::to_string_pretty(&doc).expect("baseline serialization");
    std::fs::write(&args.out_path, &text).unwrap_or_else(|e| panic!("{}: {e}", args.out_path));
    println!("wrote {}", args.out_path);

    let mut failed = false;
    if let Some(old_path) = &args.compare {
        let old_text =
            std::fs::read_to_string(old_path).unwrap_or_else(|e| panic!("{old_path}: {e}"));
        let old: serde_json::Value =
            serde_json::from_str(&old_text).unwrap_or_else(|e| panic!("{old_path}: {e}"));
        let mismatches = compare_baselines(&old, &doc);
        for m in &mismatches {
            eprintln!("DRIFT: {m}");
        }
        if mismatches.is_empty() {
            println!("checks: all shared keys identical");
        } else {
            failed = true;
        }
    }
    if args.check {
        let failures = run_checks(
            write.classes().len(),
            read.classes().len(),
            eq1_predicted,
            [report.aggregate_gbps, report2.aggregate_gbps],
            replay_identical,
            ssd_classes_deterministic,
            &ssd_write_partition,
            scenario_deterministic,
            fleet_policy_deterministic,
            serve_cache_hot,
            serve_batch_identical,
            serve_pipelined_in_order,
            &load_cfg,
            &load,
        );
        for f in &failures {
            eprintln!("CHECK FAILED: {f}");
        }
        if failures.is_empty() {
            println!("checks: all deterministic anchors hold");
        } else {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
