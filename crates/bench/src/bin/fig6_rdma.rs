//! Regenerate the paper's fig6 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::fig6::run().render());
}
