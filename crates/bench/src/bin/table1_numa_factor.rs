//! Regenerate the paper's table1 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::table1::run().render());
}
