//! Regenerate every table and figure, print them, and archive the output
//! under `results/` for EXPERIMENTS.md.

use std::fs;
use std::path::Path;

fn main() {
    let out_dir = Path::new("results");
    let _ = fs::create_dir_all(out_dir);
    for exp in numa_bench::all_experiments() {
        let rendered = exp.render();
        print!("{rendered}");
        let path = out_dir.join(format!("{}.txt", exp.id));
        if let Err(e) = fs::write(&path, &rendered) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        if let Some(data) = &exp.data {
            let jpath = out_dir.join(format!("{}.json", exp.id));
            let pretty = serde_json::to_string_pretty(data).expect("data serializes");
            if let Err(e) = fs::write(&jpath, pretty) {
                eprintln!("warning: could not write {}: {e}", jpath.display());
            }
        }
    }
    println!("\nwrote per-experiment reports under results/");
}
