//! Regenerate the paper's fig7 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::fig7::run().render());
}
