//! Regenerate the paper's table4 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::table4::run().render());
}
