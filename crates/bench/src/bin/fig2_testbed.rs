//! Regenerate the paper's fig2 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::fig2::run().render());
}
