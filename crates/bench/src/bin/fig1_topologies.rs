//! Regenerate the paper's fig1 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::fig1::run().render());
}
