//! Regenerate the paper's cost experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::cost::run().render());
}
