//! Regenerate the paper's fig4 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::fig4::run().render());
}
