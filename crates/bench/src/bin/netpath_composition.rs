//! Regenerate the two-host end-to-end composition experiment.

fn main() {
    print!("{}", numa_bench::experiments::netpath::run().render());
}
