//! Regenerate the design-choice ablation experiments (see DESIGN.md §5).

fn main() {
    print!("{}", numa_bench::experiments::ablations::run().render());
}
