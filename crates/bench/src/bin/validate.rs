//! `validate` — the release self-check: every headline claim of the paper,
//! re-verified against the current build, printed as a PASS/FAIL battery.
//!
//! ```sh
//! cargo run --release -p numa-bench --bin validate
//! ```

use numa_fabric::calibration::{paper, table1_machines};
use numa_fio::{run_jobs, JobSpec};
use numa_iodev::{NicModel, NicOp, SsdModel, TwoHostPath};
use numa_memsys::StreamBench;
use numa_topology::NodeId;
use numio_core::{
    predict_aggregate, rank_correlation, relative_error, IoModeler, SimPlatform, TransferMode,
};

struct Check {
    name: &'static str,
    result: Result<String, String>,
}

fn check(name: &'static str, f: impl FnOnce() -> Result<String, String>) -> Check {
    Check { name, result: f() }
}

fn main() {
    let platform = SimPlatform::dl585();
    let fabric = platform.fabric();
    let nic = NicModel::paper();
    let ssd = SsdModel::paper();
    let write_model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Write);
    let read_model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);

    let checks = vec![
        check("Table I: NUMA factors within 2%", || {
            for ((topo, model, target), _) in table1_machines().into_iter().zip(paper::TABLE1) {
                let f = numa_fabric::numa_factor(&topo, &model);
                if (f - target).abs() / target > 0.02 {
                    return Err(format!("{}: {f:.2} vs {target}", topo.name()));
                }
            }
            Ok("4/4 machines".into())
        }),
        check("Fig 3: STREAM anchors 21.34 / 18.45 and asymmetry", || {
            let m = StreamBench::paper().matrix(fabric);
            if (m[7][4] - 21.34).abs() > 0.3 || (m[4][7] - 18.45).abs() > 0.3 {
                return Err(format!("anchors {:.2}/{:.2}", m[7][4], m[4][7]));
            }
            if m[7][4] <= m[4][7] {
                return Err("asymmetry missing".into());
            }
            Ok(format!("{:.2} / {:.2}", m[7][4], m[4][7]))
        }),
        check("Fig 3: node-0 local advantage (OS home)", || {
            let m = StreamBench::paper().matrix(fabric);
            let best_other = (1..8).map(|i| m[i][i]).fold(0.0_f64, f64::max);
            if m[0][0] <= best_other {
                return Err(format!("{:.2} <= {best_other:.2}", m[0][0]));
            }
            Ok(format!("{:.2} vs {best_other:.2}", m[0][0]))
        }),
        check("Table IV: write classes {6,7} {0,1,4,5} {2,3}", || {
            let got: Vec<Vec<u16>> = write_model
                .classes()
                .iter()
                .map(|c| c.nodes.iter().map(|n| n.0).collect())
                .collect();
            let want: Vec<Vec<u16>> =
                paper::WRITE_CLASSES.iter().map(|c| c.to_vec()).collect();
            if got != want {
                return Err(format!("{got:?}"));
            }
            Ok("exact membership match".into())
        }),
        check("Table V: read classes {6,7} {2,3} {0,1,5} {4}", || {
            let got: Vec<Vec<u16>> = read_model
                .classes()
                .iter()
                .map(|c| c.nodes.iter().map(|n| n.0).collect())
                .collect();
            let want: Vec<Vec<u16>> = paper::READ_CLASSES.iter().map(|c| c.to_vec()).collect();
            if got != want {
                return Err(format!("{got:?}"));
            }
            Ok("exact membership match".into())
        }),
        check("§IV-B1: neighbour (6) beats local (7) for TCP send", || {
            let at = |n: u16| {
                run_jobs(
                    fabric,
                    &[JobSpec::nic(NicOp::TcpSend, NodeId(n)).numjobs(4).size_gbytes(6.0)],
                )
                .map(|r| r.aggregate_gbps)
                .map_err(|e| e.to_string())
            };
            let (n6, n7) = (at(6)?, at(7)?);
            if n6 <= n7 {
                return Err(format!("{n6:.2} <= {n7:.2}"));
            }
            Ok(format!("{n6:.2} > {n7:.2}"))
        }),
        check("§IV-B2: RDMA_READ inverts the STREAM {0,1} vs {2,3} ordering", || {
            let stream = StreamBench::paper().cpu_centric(fabric, NodeId(7));
            let r = |n: u16| nic.node_ceiling(NicOp::RdmaRead, fabric, NodeId(n));
            let stream_says = (stream[0] + stream[1]) / (stream[2] + stream[3]);
            let rdma_says = (r(0) + r(1)) / (r(2) + r(3));
            if !(stream_says > 1.4 && rdma_says < 0.9) {
                return Err(format!("stream {stream_says:.2}, rdma {rdma_says:.2}"));
            }
            Ok(format!("stream x{stream_says:.2} vs rdma x{rdma_says:.2}"))
        }),
        check("§IV-B3: SSD mirrors the network directions (rank corr > 0.9)", || {
            let per = |f: &dyn Fn(u16) -> f64| (0..8).map(f).collect::<Vec<f64>>();
            let rw = per(&|n: u16| nic.node_ceiling(NicOp::RdmaWrite, fabric, NodeId(n)));
            let sw = per(&|n| ssd.node_ceiling(true, fabric, NodeId(n)));
            let rr = per(&|n| nic.node_ceiling(NicOp::RdmaRead, fabric, NodeId(n)));
            let sr = per(&|n| ssd.node_ceiling(false, fabric, NodeId(n)));
            let cw = rank_correlation(&rw, &sw);
            let cr = rank_correlation(&rr, &sr);
            if cw < 0.9 || cr < 0.9 {
                return Err(format!("write {cw:.2}, read {cr:.2}"));
            }
            Ok(format!("write {cw:.2}, read {cr:.2}"))
        }),
        check("Eq. 1: prediction within 5% of measurement (paper: 3.1%)", || {
            let c2 = nic.map(NicOp::RdmaRead).eval(read_model.classes()[1].avg_gbps);
            let c3 = nic.map(NicOp::RdmaRead).eval(read_model.classes()[2].avg_gbps);
            let predicted = predict_aggregate(&[(c2, 0.5), (c3, 0.5)]);
            let measured = run_jobs(
                fabric,
                &[
                    JobSpec::nic(NicOp::RdmaRead, NodeId(2)).numjobs(2).size_gbytes(40.0),
                    JobSpec::nic(NicOp::RdmaRead, NodeId(0)).numjobs(2).size_gbytes(40.0),
                ],
            )
            .map_err(|e| e.to_string())?
            .aggregate_gbps;
            let err = relative_error(predicted, measured);
            if err > 0.05 {
                return Err(format!("{:.1}%", err * 100.0));
            }
            Ok(format!(
                "predicted {predicted:.3}, measured {measured:.3}, err {:.1}%",
                err * 100.0
            ))
        }),
        check("§V-B: read model halves the probe count", || {
            if (read_model.probe_savings() - 0.5).abs() > 1e-9 {
                return Err(format!("{:.0}%", read_model.probe_savings() * 100.0));
            }
            Ok("4 classes over 8 nodes".into())
        }),
        check("[3]: mis-placement at either end costs ~30% of TCP e2e", || {
            let remote = numa_fabric::calibration::dl585_fabric();
            let path = TwoHostPath::paper();
            let best = path.op_bandwidth(NicOp::TcpSend, (fabric, NodeId(6)), (&remote, NodeId(7)));
            let bad = path.op_bandwidth(NicOp::TcpSend, (fabric, NodeId(6)), (&remote, NodeId(4)));
            let loss = 1.0 - bad / best;
            if !(0.25..=0.40).contains(&loss) {
                return Err(format!("{:.0}%", loss * 100.0));
            }
            Ok(format!("{:.0}% receiver-side loss", loss * 100.0))
        }),
        check("§IV: injected faults reorder Table IV classes, deterministically", || {
            use numa_faults::{degraded_platform, run_demo, FaultKind};
            let faults = [
                FaultKind::LinkDegrade { from: 6, to: 7, factor: 0.25 },
                FaultKind::IrqStorm { node: 7, intensity: 0.5 },
            ];
            let degraded = degraded_platform(&platform, &faults).map_err(|e| e.to_string())?;
            let faulted =
                IoModeler::new().characterize(&degraded, NodeId(7), TransferMode::Write);
            if faulted.class_of(NodeId(6)) == 0 {
                return Err("node 6 kept its top class under a 6->7 throttle".into());
            }
            let d = numio_core::diff_models(&write_model, &faulted).map_err(|e| e.to_string())?;
            if d.is_stable(0.05) {
                return Err("drift monitor missed the fault".into());
            }
            let a = run_demo(fabric, 42, None).map_err(|e| e.to_string())?;
            let b = run_demo(fabric, 42, None).map_err(|e| e.to_string())?;
            if a.render() != b.render() {
                return Err("fault demo is not deterministic".into());
            }
            Ok(format!(
                "node 6: class 0 -> {}, max drift {:.0}%",
                faulted.class_of(NodeId(6)),
                d.max_rel_delta * 100.0
            ))
        }),
    ];

    let mut failed = 0;
    for c in &checks {
        match &c.result {
            Ok(detail) => println!("PASS  {:<62} {detail}", c.name),
            Err(detail) => {
                failed += 1;
                println!("FAIL  {:<62} {detail}", c.name);
            }
        }
    }
    println!("\n{} / {} claims validated", checks.len() - failed, checks.len());
    if failed > 0 {
        std::process::exit(1);
    }
}
