//! Regenerate the paper's fig5 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::fig5::run().render());
}
