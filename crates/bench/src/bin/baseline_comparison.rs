//! Regenerate the STREAM/cbench-baseline vs methodology bake-off.

fn main() {
    print!("{}", numa_bench::experiments::baseline::run().render());
}
