//! Regenerate the paper's fig10 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::fig10::run().render());
}
