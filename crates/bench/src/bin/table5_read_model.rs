//! Regenerate the paper's table5 experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::table5::run().render());
}
