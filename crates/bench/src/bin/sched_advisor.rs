//! Regenerate the paper's sched experiment (see DESIGN.md §4).

fn main() {
    print!("{}", numa_bench::experiments::sched::run().render());
}
