//! Table I: NUMA factor of different server configurations.

use crate::Experiment;
use numa_fabric::calibration::{paper, table1_machines};
use numa_fabric::numa_factor;
use std::fmt::Write as _;

/// Regenerate Table I.
pub fn run() -> Experiment {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{:<28} {:>10} {:>10} {:>8}",
        "Server type", "modelled", "paper", "error"
    );
    for ((topo, model, _), (label, published)) in
        table1_machines().into_iter().zip(paper::TABLE1)
    {
        let f = numa_factor(&topo, &model);
        let _ = writeln!(
            text,
            "{label:<28} {f:>10.2} {published:>10.1} {:>7.1}%",
            (f - published).abs() / published * 100.0
        );
    }
    let _ = writeln!(
        text,
        "\nlatency model: local = 100 ns, per-machine hop latencies calibrated\n\
         (see numa-fabric/src/calibration.rs); the factor is the mean remote\n\
         access latency over the local latency, as defined in §I."
    );
    Experiment { id: "table1", title: "NUMA factor of different server configurations", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn factors_within_two_percent() {
        let e = super::run();
        for line in e.text.lines().skip(1).take(4) {
            let err: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(err < 2.0, "{line}");
        }
    }
}
