//! Two-host end-to-end composition (Fig. 2's real setup; intro ref. [3]).

use crate::Experiment;
use numa_fabric::calibration::dl585_fabric;
use numa_iodev::{NicOp, TwoHostPath};
use numa_topology::NodeId;
use std::fmt::Write as _;

/// Regenerate the two-host matrix, the "30% at either end" numbers and the
/// wide-area crossover.
pub fn run() -> Experiment {
    let local = dl585_fabric();
    let remote = dl585_fabric();
    let path = TwoHostPath::paper();
    let mut text = String::new();

    let m = path.matrix(NicOp::TcpSend, &local, &remote);
    let _ = writeln!(text, "end-to-end TCP send (tx binding x rx binding), Gbit/s:");
    let _ = write!(text, "{:>8}", "tx\\rx");
    for r in 0..8 {
        let _ = write!(text, "{r:>8}");
    }
    let _ = writeln!(text);
    for (l, row) in m.iter().enumerate() {
        let _ = write!(text, "{l:>8}");
        for v in row {
            let _ = write!(text, "{v:>8.2}");
        }
        let _ = writeln!(text);
    }

    let best = m[6][7];
    let _ = writeln!(
        text,
        "\nbest pair (tx 6, rx 7): {best:.2}; rx mis-bound to node 4: {:.2} \
         ({:.0}% loss); tx mis-bound to node 3: {:.2} ({:.0}% loss)\n\
         — ref [3]: \"as much as a 30% loss ... at either sender or receiver side\".",
        m[6][4],
        (1.0 - m[6][4] / best) * 100.0,
        m[3][7],
        (1.0 - m[3][7] / best) * 100.0
    );

    let _ = writeln!(text, "\nwide-area regime (RDMA_WRITE, both ends at their best nodes):");
    for rtt in [0.005, 1.0, 10.0, 50.0] {
        let wan = TwoHostPath::wide_area(rtt);
        let bw = wan.op_bandwidth(NicOp::RdmaWrite, (&local, NodeId(6)), (&remote, NodeId(6)));
        let limiter = if (bw - wan.window_cap_gbps()).abs() < 1e-9 {
            "window/RTT"
        } else {
            "NUMA class / port"
        };
        let _ = writeln!(text, "  RTT {rtt:>7.3} ms -> {bw:>7.3} Gbit/s  ({limiter})");
    }
    Experiment { id: "netpath", title: "Two-host end-to-end composition (ref [3])", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_the_30_percent_citation() {
        let e = super::run();
        assert!(e.text.contains("31% loss") || e.text.contains("30% loss"), "{}", e.text);
        assert!(e.text.contains("window/RTT"));
    }
}
