//! §V-B cost reduction: probe one node per class instead of all nodes.

use crate::Experiment;
use numa_topology::NodeId;
use numio_core::{CopySpec, IoModeler, Platform, SimPlatform, TransferMode};
use std::fmt::Write as _;

/// Regenerate the probe-reduction argument with concrete numbers.
pub fn run() -> Experiment {
    let platform = SimPlatform::dl585();
    let mut text = String::new();
    for mode in TransferMode::ALL {
        let model = IoModeler::new().characterize(&platform, NodeId(7), mode);
        let n = model.per_node.len();
        let reps = model.representatives();
        let _ = writeln!(
            text,
            "{mode:?} model: {} classes over {n} nodes -> probe {} nodes \
             ({:.0}% of the work saved)",
            model.classes().len(),
            reps.len(),
            model.probe_savings() * 100.0
        );
        for (class, rep) in model.classes().iter().zip(&reps) {
            let (src, dst) = match mode {
                TransferMode::Write => (*rep, NodeId(7)),
                TransferMode::Read => (NodeId(7), *rep),
            };
            let samples = platform.run_copy(&CopySpec {
                bind: NodeId(7),
                src,
                dst,
                threads: 4,
                bytes_per_thread: 64 << 20,
                reps: 20,
            });
            let rep_mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let _ = writeln!(
                text,
                "  class {:?}: representative {rep} probes {rep_mean:.1} Gbps \
                 (class range {:.1}–{:.1})",
                class.nodes, class.min_gbps, class.max_gbps
            );
        }
        text.push('\n');
    }
    let _ = writeln!(
        text,
        "the paper's read-direction example: 4 classes over 8 nodes halve the\n\
         evaluation cost; on larger hosts (see the blade32 cross-topology test)\n\
         savings exceed 80%."
    );
    Experiment { id: "cost", title: "Characterization cost reduction (§V-B application 1)", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fifty_percent_for_the_read_model() {
        let e = super::run();
        assert!(e.text.contains("50% of the work saved"), "{}", e.text);
    }
}
