//! The §V-B Eq. 1 worked example: predict, measure, report the error.

use crate::Experiment;
use numa_fabric::calibration::paper;
use numa_fio::{run_jobs, JobSpec};
use numa_iodev::{NicModel, NicOp};
use numa_topology::NodeId;
use numio_core::{predict_aggregate, relative_error, IoModeler, SimPlatform, TransferMode};
use std::fmt::Write as _;

/// Regenerate the prediction experiment, plus a grid of additional mixes.
pub fn run() -> Experiment {
    let platform = SimPlatform::dl585();
    let model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);
    let nic = NicModel::paper();
    let mut text = String::new();

    // The paper's example: 2 x node 2 (class 2) + 2 x node 0 (class 3).
    let class2 = nic.map(NicOp::RdmaRead).eval(model.classes()[1].avg_gbps);
    let class3 = nic.map(NicOp::RdmaRead).eval(model.classes()[2].avg_gbps);
    let predicted = predict_aggregate(&[(class2, 0.5), (class3, 0.5)]);
    let jobs = [
        JobSpec::nic(NicOp::RdmaRead, NodeId(2)).numjobs(2).size_gbytes(50.0),
        JobSpec::nic(NicOp::RdmaRead, NodeId(0)).numjobs(2).size_gbytes(50.0),
    ];
    let measured = run_jobs(platform.fabric(), &jobs).unwrap().aggregate_gbps;
    let err = relative_error(predicted, measured);
    let _ = writeln!(text, "the paper's worked example (RDMA_READ, 2 x node2 + 2 x node0):");
    let _ = writeln!(
        text,
        "  {:<12} {:>10} {:>10}",
        "", "ours", "paper"
    );
    let _ = writeln!(text, "  {:<12} {:>10.3} {:>10.3}", "predicted", predicted, paper::EQ1_PREDICTED);
    let _ = writeln!(text, "  {:<12} {:>10.3} {:>10.3}", "measured", measured, paper::EQ1_MEASURED);
    let _ = writeln!(
        text,
        "  {:<12} {:>9.1}% {:>9.1}%",
        "rel. error",
        err * 100.0,
        paper::EQ1_REL_ERROR * 100.0
    );

    // A broader validation grid.
    let _ = writeln!(text, "\nvalidation grid (RDMA_READ mixes):");
    let _ = writeln!(
        text,
        "  {:<22} {:>10} {:>10} {:>8}",
        "mix", "predicted", "measured", "error"
    );
    let mut worst: f64 = 0.0;
    for mix in [
        vec![(6u16, 2u32), (4, 2)],
        vec![(2, 1), (0, 3)],
        vec![(3, 2), (5, 2)],
        vec![(7, 1), (1, 1), (4, 2)],
    ] {
        let total: u32 = mix.iter().map(|&(_, c)| c).sum();
        let terms: Vec<(f64, f64)> = mix
            .iter()
            .map(|&(n, c)| {
                let class = &model.classes()[model.class_of(NodeId(n))];
                (nic.map(NicOp::RdmaRead).eval(class.avg_gbps), c as f64 / total as f64)
            })
            .collect();
        let p = predict_aggregate(&terms);
        let jobs: Vec<JobSpec> = mix
            .iter()
            .map(|&(n, c)| JobSpec::nic(NicOp::RdmaRead, NodeId(n)).numjobs(c).size_gbytes(30.0))
            .collect();
        let m = run_jobs(platform.fabric(), &jobs).unwrap().aggregate_gbps;
        let e = relative_error(p, m);
        worst = worst.max(e);
        let mix_str: Vec<String> = mix.iter().map(|(n, c)| format!("{n}x{c}")).collect();
        let _ = writeln!(
            text,
            "  {:<22} {:>10.3} {:>10.3} {:>7.1}%",
            mix_str.join(","),
            p,
            m,
            e * 100.0
        );
    }
    let _ = writeln!(text, "  worst error: {:.1}%", worst * 100.0);
    Experiment { id: "eq1", title: "Aggregate bandwidth prediction (Eq. 1)", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn example_reported_with_small_error() {
        let e = super::run();
        assert!(e.text.contains("19.4"), "measured near the paper's 19.415: {}", e.text);
        assert!(e.text.contains("worst error"));
    }
}
