//! Figure 5: TCP bandwidth vs concurrent streams, per binding node.

use crate::Experiment;
use numa_fabric::calibration::dl585_fabric;
use numa_fio::sweep::{paper_nodes, render_table, sweep, PAPER_STREAM_COUNTS};
use numa_fio::Workload;
use numa_iodev::NicOp;
use std::fmt::Write as _;

/// Regenerate both panels of Fig. 5.
pub fn run() -> Experiment {
    let fabric = dl585_fabric();
    let nodes = paper_nodes();
    let streams = PAPER_STREAM_COUNTS;
    let mut text = String::new();
    let mut data = serde_json::Map::new();
    for (panel, op) in [("(a) TCP send", NicOp::TcpSend), ("(b) TCP receive", NicOp::TcpRecv)] {
        let points = sweep(&fabric, &Workload::Nic(op), &nodes, &streams, 4.0, 2013)
            .expect("sweep runs");
        let _ = writeln!(text, "{panel} — aggregate Gbit/s:");
        text.push_str(&render_table(&points, &nodes, &streams));
        text.push('\n');
        data.insert(
            format!("{op:?}"),
            serde_json::to_value(&points).expect("points serialize"),
        );
    }
    let _ = writeln!(
        text,
        "shape checks vs the paper: bandwidth grows until 4 parallel streams\n\
         (one core per stream, 4 cores per node); nodes 2/3 saturate near\n\
         16 Gbps (send) while others reach 20–21; node 6 beats the device-local\n\
         node 7 for sends (IRQ handling, §IV-B1); contention noise above 4\n\
         streams occasionally reorders the top nodes."
    );
    Experiment {
        id: "fig5",
        title: "TCP bandwidth performance characteristics",
        text,
        data: Some(serde_json::Value::Object(data)),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_panels_present() {
        let e = super::run();
        assert!(e.text.contains("TCP send"));
        assert!(e.text.contains("TCP receive"));
        assert!(e.text.contains("streams"));
    }
}
