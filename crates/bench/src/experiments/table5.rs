//! Table V: the NUMA I/O bandwidth performance model for device reads —
//! proposed memcpy model vs measured TCP receive / RDMA_READ / SSD read.

use crate::experiments::table4::{append_paper_row, measure_per_node};
use crate::Experiment;
use numa_fabric::calibration::paper;
use numa_fio::JobSpec;
use numa_iodev::NicOp;
use numa_topology::NodeId;
use numio_core::{render_comparison_table, IoModeler, SimPlatform, TransferMode};
use std::fmt::Write as _;

/// Regenerate Table V.
pub fn run() -> Experiment {
    let platform = SimPlatform::dl585();
    let model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);

    let tcp = measure_per_node(&platform, |n| {
        JobSpec::nic(NicOp::TcpRecv, n).numjobs(4).size_gbytes(8.0)
    });
    let rdma = measure_per_node(&platform, |n| {
        JobSpec::nic(NicOp::RdmaRead, n).numjobs(2).size_gbytes(8.0)
    });
    let ssd =
        measure_per_node(&platform, |n| JobSpec::ssd(false, n).numjobs(2).size_gbytes(8.0));

    let mut text = render_comparison_table(
        &model,
        &[
            ("memcpy (ours)", model.means()),
            ("TCP receiver", tcp),
            ("RDMA_READ", rdma),
            ("SSD read", ssd),
        ],
    );
    let _ = writeln!(text, "\npublished class averages for comparison:");
    append_paper_row(&mut text, "memcpy", &paper::READ_MEMCPY_AVG);
    append_paper_row(&mut text, "TCP receiver", &paper::READ_TCP_AVG);
    append_paper_row(&mut text, "RDMA_READ", &paper::READ_RDMA_AVG);
    append_paper_row(&mut text, "SSD read", &paper::READ_SSD_AVG);
    Experiment { id: "table5", title: "NUMA I/O bandwidth model for device read", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_classes_and_all_rows() {
        let e = super::run();
        assert!(e.text.contains("Class 4 {4}"));
        for row in ["memcpy", "TCP receiver", "RDMA_READ", "SSD read"] {
            assert!(e.text.contains(row), "{row}");
        }
    }
}
