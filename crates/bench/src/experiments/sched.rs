//! §V-B scheduling application: model-driven spreading vs naive local
//! binding.

use crate::Experiment;
use numa_fio::{run_jobs, JobSpec};
use numa_iodev::NicOp;
use numa_topology::NodeId;
use numio_core::{IoModeler, ScheduleAdvisor, SimPlatform, TransferMode};
use std::fmt::Write as _;

fn dtn_jobs(read_nodes: &[NodeId], write_nodes: &[NodeId]) -> Vec<JobSpec> {
    let r = |i: usize| read_nodes[i % read_nodes.len()];
    let w = |i: usize| write_nodes[i % write_nodes.len()];
    let mut jobs = vec![
        JobSpec::nic(NicOp::RdmaRead, r(0)).numjobs(2).size_gbytes(15.0),
        JobSpec::nic(NicOp::RdmaRead, r(1)).numjobs(2).size_gbytes(15.0),
    ];
    for i in 0..4 {
        jobs.push(JobSpec::ssd(true, w(i)).numjobs(1).size_gbytes(20.0));
    }
    for i in 0..2 {
        jobs.push(JobSpec::ssd(false, r(i + 1)).numjobs(1).size_gbytes(44.0));
    }
    jobs
}

/// Regenerate the scheduling comparison.
pub fn run() -> Experiment {
    let platform = SimPlatform::dl585();
    let fabric = platform.fabric();
    let advisor = ScheduleAdvisor { equivalence_tolerance: 0.12, avoid_irq_node: true };
    let read_model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);
    let write_model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Write);
    let read_nodes = advisor.eligible_nodes(&read_model);
    let write_nodes = advisor.eligible_nodes(&write_model);

    let local = [NodeId(7)];
    let naive = run_jobs(fabric, &dtn_jobs(&local, &local)).unwrap();
    let spread = run_jobs(fabric, &dtn_jobs(&read_nodes, &write_nodes)).unwrap();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "workload: 2 RDMA ingest users (2 streams each) + 4 SSD writers +\n\
         2 SSD read-back users, concurrently\n"
    );
    let _ = writeln!(text, "  read-direction spreading set:  {read_nodes:?}");
    let _ = writeln!(text, "  write-direction spreading set: {write_nodes:?}\n");
    let _ = writeln!(
        text,
        "  {:<26} {:>10} {:>12}",
        "placement", "aggregate", "makespan"
    );
    let _ = writeln!(
        text,
        "  {:<26} {:>8.2}G {:>10.1}s",
        "naive: all on node 7", naive.aggregate_gbps, naive.makespan_s
    );
    let _ = writeln!(
        text,
        "  {:<26} {:>8.2}G {:>10.1}s",
        "advised: spread by class", spread.aggregate_gbps, spread.makespan_s
    );
    let _ = writeln!(
        text,
        "\n  improvement: {:+.1}% aggregate bandwidth",
        (spread.aggregate_gbps / naive.aggregate_gbps - 1.0) * 100.0
    );
    Experiment { id: "sched", title: "Scheduler assistance (§V-B application 3)", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spreading_wins() {
        let e = super::run();
        assert!(e.text.contains("improvement: +"), "{}", e.text);
    }
}
