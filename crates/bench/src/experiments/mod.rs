//! One module per regenerated table/figure.

pub mod ablations;
pub mod baseline;
pub mod cost;
pub mod eq1;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod latbench;
pub mod netpath;
pub mod sched;
pub mod table1;
pub mod table4;
pub mod table5;
