//! Figure 7: SSD read/write bandwidth per NUMA configuration.

use crate::Experiment;
use numa_fabric::calibration::dl585_fabric;
use numa_fio::sweep::{paper_nodes, render_table, sweep};
use numa_fio::Workload;
use numa_iodev::IoEngine;
use std::fmt::Write as _;

/// Regenerate both panels of Fig. 7 (two LSI cards, libaio QD16, O_DIRECT,
/// at least two processes — §IV-B3).
pub fn run() -> Experiment {
    let fabric = dl585_fabric();
    let nodes = paper_nodes();
    let procs = [2u32, 4, 8];
    let mut text = String::new();
    for (panel, write) in [("(a) SSD write", true), ("(b) SSD read", false)] {
        let wl = Workload::Ssd { write, engine: IoEngine::paper(), direct: true };
        let points = sweep(&fabric, &wl, &nodes, &procs, 6.0, 77).expect("sweep runs");
        let _ = writeln!(text, "{panel} — aggregate Gbit/s (both cards):");
        text.push_str(&render_table(&points, &nodes, &procs));
        text.push('\n');
    }
    let _ = writeln!(
        text,
        "shape checks: the write panel follows the TCP/RDMA *send* classes\n\
         (nodes 2/3 starved at ~18) and the read panel follows the *receive*\n\
         classes (node 4 starved at ~18.5) — §IV-B3's correspondence; neither\n\
         matches the STREAM model of Fig. 3."
    );
    Experiment { id: "fig7", title: "Disk I/O bandwidth performance characteristics", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_panels_present() {
        let e = super::run();
        assert!(e.text.contains("SSD write"));
        assert!(e.text.contains("SSD read"));
    }
}
