//! Figure 1: possible topologies of 4P AMD Opteron Magny-Cours processors.

use crate::Experiment;
use numa_topology::{distance, presets, render, NodeId};
use std::fmt::Write as _;

/// Regenerate the four candidate wirings with their locality structure.
pub fn run() -> Experiment {
    let mut text = String::new();
    for topo in presets::fig1_variants() {
        let _ = writeln!(text, "--- {} ---", topo.name());
        let _ = writeln!(text, "{}", render::render_localities(&topo, NodeId(7)));
        let _ = writeln!(
            text,
            "links: {}",
            topo.links()
                .iter()
                .map(|l| format!("{}-{}({}b)", l.a, l.b, l.width.bits()))
                .collect::<Vec<_>>()
                .join(" ")
        );
        text.push_str(&render::render_matrix("from", "to", &distance::hop_matrix(&topo)));
        text.push('\n');
    }
    let _ = writeln!(
        text,
        "All four satisfy the G34 port budget; §IV-A shows the measured\n\
         bandwidths are consistent with NONE of them — the motivating\n\
         failure of hop-distance models (see the topology_explorer example)."
    );
    Experiment { id: "fig1", title: "Possible topologies of 4P Magny-Cours", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mentions_all_variants() {
        let e = super::run();
        for v in ["fig1a", "fig1b", "fig1c", "fig1d"] {
            assert!(e.text.contains(v));
        }
    }
}
