//! Table IV: the NUMA I/O bandwidth performance model for device writes —
//! proposed memcpy model vs measured TCP send / RDMA_WRITE / SSD write.

use crate::Experiment;
use numa_fabric::calibration::paper;
use numa_fio::{run_jobs, JobSpec};
use numa_iodev::NicOp;
use numa_topology::NodeId;
use numio_core::{render_comparison_table, IoModeler, Platform, SimPlatform, TransferMode};
use std::fmt::Write as _;

/// Measure one op on every node (paper protocol: enough streams to
/// saturate, buffers local, average aggregate).
pub(crate) fn measure_per_node<F: Fn(NodeId) -> JobSpec>(
    platform: &SimPlatform,
    make_job: F,
) -> Vec<f64> {
    (0..platform.num_nodes() as u16)
        .map(|n| {
            run_jobs(platform.fabric(), &[make_job(NodeId(n))])
                .expect("job runs")
                .aggregate_gbps
        })
        .collect()
}

pub(crate) fn append_paper_row(text: &mut String, label: &str, avgs: &[f64]) {
    let _ = write!(text, "{label:<16}");
    for a in avgs {
        let _ = write!(text, "{:>24}", format!("avg {a:.1} (paper)"));
    }
    let _ = writeln!(text);
}

/// Regenerate Table IV.
pub fn run() -> Experiment {
    let platform = SimPlatform::dl585();
    let model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Write);

    let tcp = measure_per_node(&platform, |n| {
        JobSpec::nic(NicOp::TcpSend, n).numjobs(4).size_gbytes(8.0)
    });
    let rdma = measure_per_node(&platform, |n| {
        JobSpec::nic(NicOp::RdmaWrite, n).numjobs(2).size_gbytes(8.0)
    });
    let ssd = measure_per_node(&platform, |n| JobSpec::ssd(true, n).numjobs(2).size_gbytes(8.0));

    let mut text = render_comparison_table(
        &model,
        &[
            ("memcpy (ours)", model.means()),
            ("TCP sender", tcp),
            ("RDMA_WRITE", rdma),
            ("SSD write", ssd),
        ],
    );
    let _ = writeln!(text, "\npublished class averages for comparison:");
    append_paper_row(&mut text, "memcpy", &paper::WRITE_MEMCPY_AVG);
    append_paper_row(&mut text, "TCP sender", &paper::WRITE_TCP_AVG);
    append_paper_row(&mut text, "RDMA_WRITE", &paper::WRITE_RDMA_AVG);
    append_paper_row(&mut text, "SSD write", &paper::WRITE_SSD_AVG);
    Experiment { id: "table4", title: "NUMA I/O bandwidth model for device write", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_present_with_three_classes() {
        let e = super::run();
        for row in ["memcpy", "TCP sender", "RDMA_WRITE", "SSD write"] {
            assert!(e.text.contains(row), "{row}");
        }
        assert!(e.text.contains("Class 3 {2,3}"));
        assert!(e.text.contains("(paper)"));
    }
}
