//! Baseline comparison: the cbench/STREAM cost model ([18], [27]) vs the
//! paper's memcpy methodology, as placement engines.
//!
//! §IV-B is the paper's argument that STREAM-derived models mis-place I/O;
//! this experiment turns that argument into a measured bake-off on the
//! same multi-user RDMA_READ workload.

use crate::Experiment;
use numa_fio::{run_jobs, JobSpec};
use numa_iodev::NicOp;
use numa_sched::policy::{ModelDriven, StreamGreedy};
use numa_sched::{trace, Scheduler};
use numa_topology::NodeId;
use numio_core::{
    IoModeler, MemCostModel, ScheduleAdvisor, SimPlatform, StreamAdvisor, TransferMode,
};
use std::fmt::Write as _;

/// Run the bake-off.
pub fn run() -> Experiment {
    let platform = SimPlatform::dl585();
    let fabric = platform.fabric();
    let mut text = String::new();

    // ---- Static placement: 6 RDMA_READ users spread by each model.
    let stream_advisor = StreamAdvisor::new(MemCostModel::from_stream(&platform));
    let read_model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);
    let ours = ScheduleAdvisor { equivalence_tolerance: 0.12, avoid_irq_node: true };

    let stream_nodes = {
        let mut pool = vec![NodeId(7), NodeId(6)];
        pool.extend(stream_advisor.spread_candidates(NodeId(7), 3));
        pool
    };
    let our_nodes = ours.eligible_nodes(&read_model);
    let _ = writeln!(text, "placement pools for RDMA_READ users (data at node 7):");
    let _ = writeln!(text, "  STREAM/cbench baseline: {stream_nodes:?}");
    let _ = writeln!(text, "  memcpy methodology    : {our_nodes:?}\n");

    let run_spread = |nodes: &[NodeId]| {
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| {
                JobSpec::nic(NicOp::RdmaRead, nodes[i % nodes.len()])
                    .numjobs(1)
                    .size_gbytes(12.0)
            })
            .collect();
        run_jobs(fabric, &jobs).unwrap().aggregate_gbps
    };
    let baseline_bw = run_spread(&stream_nodes);
    let ours_bw = run_spread(&our_nodes);
    let _ = writeln!(
        text,
        "aggregate over 6 concurrent RDMA_READ users:\n\
         \x20 STREAM/cbench placement : {baseline_bw:>6.2} Gbit/s\n\
         \x20 methodology placement   : {ours_bw:>6.2} Gbit/s  ({:+.1}%)\n",
        (ours_bw / baseline_bw - 1.0) * 100.0
    );

    // ---- Dynamic: the same comparison inside the online scheduler.
    let tasks = trace::burst(10, trace::MixProfile::Ingest, 11);
    let scheduler = Scheduler::new(&platform);
    let stream_ep = scheduler
        .run(tasks.clone(), StreamGreedy::from_platform(&platform))
        .unwrap();
    let model_ep = scheduler
        .run(tasks, ModelDriven::from_platform(&platform))
        .unwrap();
    let _ = writeln!(text, "online scheduling, 10-task ingest burst:");
    let _ = writeln!(text, "  {}", stream_ep.summary());
    let _ = writeln!(text, "  {}", model_ep.summary());
    let _ = writeln!(
        text,
        "\nreading the results: statically, the baseline's §IV-B mis-ranking\n\
         (it defers nodes {{2,3}} — read-direction class 2 — in favour of the\n\
         {{0,1,5}} class-3 nodes) costs ~12% of RDMA_READ aggregate. In the\n\
         online episode the NIC engine's class-mixture cap lets the two\n\
         placements converge for mixed workloads: the penalty re-appears\n\
         whenever read-direction traffic dominates, which is exactly the\n\
         regime the paper's model targets."
    );
    Experiment { id: "baseline", title: "STREAM/cbench baseline vs the methodology", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn methodology_beats_the_baseline() {
        let e = super::run();
        // The static comparison line carries a positive improvement.
        let line = e
            .text
            .lines()
            .find(|l| l.contains("methodology placement"))
            .unwrap();
        assert!(line.contains("(+"), "{line}");
        assert!(e.text.contains("stream-cbench"));
        assert!(e.text.contains("model-driven"));
    }
}
