//! Ablations: remove each calibrated mechanism and show which reproduced
//! result breaks. This is the evidence that the design choices in
//! DESIGN.md §5 are load-bearing rather than decorative.

use crate::Experiment;
use numa_fabric::calibration::{
    dl585_pio_matrix, DL585_DMA_EDGE_CAPS, DL585_DMA_DEFAULT_W16, DL585_DMA_DEFAULT_W8,
    DL585_NODE_COPY_CAP,
};
use numa_fabric::{Fabric, PioModel};
use numa_fio::{run_jobs_with, JobSpec};
use numa_iodev::{NicModel, NicOp, SsdModel};
use numa_topology::{presets, NodeId, RouteTable};
use numio_core::{ClassifyParams, IoModeler, SimPlatform, TransferMode};
use std::fmt::Write as _;

/// Build the calibrated fabric but with plain BFS routing instead of the
/// firmware route overrides.
fn fabric_with_bfs_routes() -> Fabric {
    let topo = presets::dl585_testbed();
    let routes = RouteTable::bfs(&topo);
    let pio = PioModel::Matrix(dl585_pio_matrix(&topo));
    let mut b = Fabric::builder(topo, routes)
        .dma_defaults(DL585_DMA_DEFAULT_W16, DL585_DMA_DEFAULT_W8)
        .node_copy_caps(DL585_NODE_COPY_CAP)
        .pio(pio);
    for &(f, t, cap) in DL585_DMA_EDGE_CAPS {
        b = b.dma_cap(f, t, cap);
    }
    b.build()
}

/// Run all four ablations and report what changes.
pub fn run() -> Experiment {
    let mut text = String::new();
    let platform = SimPlatform::dl585();

    // ---- 1. Gap threshold sweep: is 8% a knife edge?
    let _ = writeln!(text, "(1) classifier gap threshold sweep (read model class count):");
    for threshold in [0.01, 0.03, 0.05, 0.08, 0.12, 0.20, 0.35] {
        let modeler = IoModeler {
            classify: ClassifyParams { gap_threshold: threshold, ..ClassifyParams::default() },
            ..IoModeler::new()
        };
        let model = modeler.characterize(&platform, NodeId(7), TransferMode::Read);
        let _ = writeln!(
            text,
            "    threshold {threshold:>5.2} -> {} classes",
            model.classes().len()
        );
    }
    let _ = writeln!(
        text,
        "    verdict: a wide plateau around the default (0.08–0.12 under\n\
         measurement noise; 0.05–0.20 noiseless) yields the paper's 4\n\
         classes — the structure is not a knife-edge tuning artifact.\n"
    );

    // ---- 2. Local+neighbour rule off.
    let no_rule = IoModeler {
        classify: ClassifyParams { force_local_class1: false, ..ClassifyParams::default() },
        ..IoModeler::new()
    };
    let ablated = no_rule.characterize(&platform, NodeId(7), TransferMode::Read);
    let _ = writeln!(
        text,
        "(2) without the §V-A local+neighbour rule: {} classes; top class {:?}\n\
         — pure gap clustering merges {{6,7}} with {{2,3}} (their bandwidths\n\
         overlap), losing the distinction between 'free because local' and\n\
         'fast but remote'.\n",
        ablated.classes().len(),
        ablated.classes()[0].nodes
    );

    // ---- 3. IRQ derate off: the neighbour advantage disappears.
    let fabric = platform.fabric();
    let job = |node: u16| {
        vec![JobSpec::nic(NicOp::TcpSend, NodeId(node)).numjobs(4).size_gbytes(6.0)]
    };
    let mut quiet_nic = NicModel::paper();
    quiet_nic.irq_send_derate = 0.0;
    let with = |nic: &NicModel, node: u16| {
        run_jobs_with(fabric, &job(node), Some(nic.clone()), SsdModel::for_fabric(fabric))
            .unwrap()
            .aggregate_gbps
    };
    let base = NicModel::paper();
    let _ = writeln!(
        text,
        "(3) IRQ derating ablation (TCP send, 4 streams):\n\
         \x20   with IRQ load on node 7 : node7 {:>5.2}  node6 {:>5.2}  (neighbour wins)\n\
         \x20   without (ablated)       : node7 {:>5.2}  node6 {:>5.2}  (local wins again)\n\
         \x20   the §IV-B1 'neighbour beats local' finding *requires* the\n\
         \x20   interrupt-affinity mechanism.\n",
        with(&base, 7),
        with(&base, 6),
        with(&quiet_nic, 7),
        with(&quiet_nic, 6),
    );

    // ---- 4. Mixed-class port penalty off: the Eq. 1 gap closes.
    let mut ideal_nic = NicModel::paper();
    ideal_nic.mixed_class_penalty = 0.0;
    let eq1_jobs = [
        JobSpec::nic(NicOp::RdmaRead, NodeId(2)).numjobs(2).size_gbytes(30.0),
        JobSpec::nic(NicOp::RdmaRead, NodeId(0)).numjobs(2).size_gbytes(30.0),
    ];
    let measured_base =
        run_jobs_with(fabric, &eq1_jobs, Some(base.clone()), SsdModel::for_fabric(fabric))
            .unwrap()
            .aggregate_gbps;
    let measured_ideal =
        run_jobs_with(fabric, &eq1_jobs, Some(ideal_nic), SsdModel::for_fabric(fabric))
            .unwrap()
            .aggregate_gbps;
    let _ = writeln!(
        text,
        "(4) mixed-class port penalty ablation (the Eq. 1 workload):\n\
         \x20   with penalty    : measured {measured_base:.3} (paper: 19.415, 3.1% below prediction)\n\
         \x20   without (ablated): measured {measured_ideal:.3} (prediction becomes near-exact)\n\
         \x20   the penalty models the pipeline stalls that make Eq. 1 an\n\
         \x20   over-estimate in the paper.\n"
    );

    // ---- 5. Firmware routing replaced by BFS.
    let bfs_platform = SimPlatform::new(fabric_with_bfs_routes());
    let bfs_model = IoModeler::new().characterize(&bfs_platform, NodeId(7), TransferMode::Write);
    let base_model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Write);
    let _ = writeln!(
        text,
        "(5) firmware routes replaced by shortest-path BFS (write model):\n\
         \x20   calibrated routes: classes {:?}\n\
         \x20   BFS routes       : classes {:?}\n\
         \x20   shortest-path routing funnels nodes 0,1 through the narrow\n\
         \x20   3->7 link, collapsing them into the bottom class — firmware\n\
         \x20   routing is part of why hop distance fails on real hosts.",
        base_model.classes().iter().map(|c| c.nodes.clone()).collect::<Vec<_>>(),
        bfs_model.classes().iter().map(|c| c.nodes.clone()).collect::<Vec<_>>(),
    );

    Experiment { id: "ablations", title: "Design-choice ablations", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_ablation_reports() {
        let e = super::run();
        for key in ["threshold", "local+neighbour", "IRQ", "penalty", "BFS"] {
            assert!(e.text.contains(key), "{key} missing:\n{}", e.text);
        }
        // The plateau check: 4 classes across the default region.
        assert!(e.text.contains(" 0.08 -> 4 classes"), "{}", e.text);
        assert!(e.text.contains(" 0.12 -> 4 classes"), "{}", e.text);
    }
}
