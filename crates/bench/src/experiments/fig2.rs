//! Table II + Figure 2: the testbed and its device attachment.

use crate::Experiment;
use numa_fio::NetTestParams;
use numa_topology::{presets, render};
use std::fmt::Write as _;

/// Print the testbed configuration (Table II), the connection diagram
/// facts (Fig. 2: all PCIe devices on node 7), and the network parameters
/// (Table III).
pub fn run() -> Experiment {
    let info = presets::table_ii();
    let topo = presets::dl585_testbed();
    let mut text = String::new();
    let _ = writeln!(text, "Table II — configuration of the AMD 4P server:");
    for (k, v) in [
        ("Motherboard", info.motherboard),
        ("Chipset", info.chipset),
        ("CPU Model", info.cpu_model),
        ("CPU cores/NUMA nodes", info.cores_nodes),
        ("Memory", info.memory),
        ("Last level cache (LLC)", info.llc),
        ("I/O Bus", info.io_bus),
        ("Linux Kernel", info.kernel),
        ("SSD Drive", info.ssd),
        ("Network Interface Card", info.nic),
        ("NIC Driver", info.nic_driver),
    ] {
        let _ = writeln!(text, "  {k:<26} {v}");
    }
    let _ = writeln!(text, "\nFig. 2 — modelled machine:");
    text.push_str(&render::render_tree(&topo));
    let _ = writeln!(text, "\nTable III — network test parameters:");
    text.push_str(&NetTestParams::paper().render());
    Experiment { id: "fig2", title: "Testbed configuration (Tables II/III, Fig. 2)", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn testbed_facts_present() {
        let e = super::run();
        assert!(e.text.contains("DL585"));
        assert!(e.text.contains("Nytro"));
        assert!(e.text.contains("400 GBytes"));
        assert!(e.text.contains("io-hub"));
    }
}
