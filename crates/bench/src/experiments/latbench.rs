//! Latency staircase support for Table I: the lat_mem_rd methodology
//! measures the NUMA factor instead of assuming it.

use crate::Experiment;
use numa_memsys::LatencyBench;
use numa_topology::{presets, NodeId};
use std::fmt::Write as _;

/// Regenerate the pointer-chase staircase and the measured factor.
pub fn run() -> Experiment {
    let topo = presets::dl585_testbed();
    let bench = LatencyBench::paper();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "pointer-chase load-to-use latency, threads on node 0 (ns):\n"
    );
    let _ = writeln!(text, "{:>12} {:>10} {:>10} {:>10}", "working set", "local", "nb(n1)", "far(n7)");
    for point in bench.curve(&topo, NodeId(0), NodeId(0), 256 << 20) {
        if point.bytes < 16 << 10 {
            continue;
        }
        let nb = bench.latency_ns(&topo, NodeId(0), NodeId(1), point.bytes);
        let far = bench.latency_ns(&topo, NodeId(0), NodeId(7), point.bytes);
        let label = if point.bytes >= 1 << 20 {
            format!("{} MiB", point.bytes >> 20)
        } else {
            format!("{} KiB", point.bytes >> 10)
        };
        let _ = writeln!(text, "{label:>12} {:>10.1} {nb:>10.1} {far:>10.1}", point.ns);
    }
    let measured = bench.measured_numa_factor(&topo);
    let _ = writeln!(
        text,
        "\nmeasured NUMA factor from DRAM plateaus: {measured:.2} (Table I row 2: 2.7).\n\
         Note the staircase is flat across placements until the working set\n\
         defeats the LLC — cache-resident benchmarks cannot see NUMA at all,\n\
         which is why the paper sizes STREAM arrays at >= 4x the cache."
    );
    Experiment {
        id: "latbench",
        title: "Latency staircase & measured NUMA factor (Table I support)",
        text,
        data: None,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn staircase_and_factor_reported() {
        let e = super::run();
        assert!(e.text.contains("MiB"));
        assert!(e.text.contains("factor from DRAM plateaus: 2.7"));
    }
}
