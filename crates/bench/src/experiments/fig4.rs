//! Figure 4: CPU-centric and memory-centric STREAM models of node 7.

use crate::Experiment;
use numa_fabric::calibration::dl585_fabric;
use numa_memsys::StreamBench;
use numa_topology::NodeId;
use std::fmt::Write as _;

fn bar(v: f64, scale: f64) -> String {
    let n = ((v / scale) * 40.0).round() as usize;
    "#".repeat(n)
}

/// Regenerate both Fig. 4 bar charts as text.
pub fn run() -> Experiment {
    let fabric = dl585_fabric();
    let bench = StreamBench::paper();
    let cpu = bench.cpu_centric(&fabric, NodeId(7));
    let mem = bench.mem_centric(&fabric, NodeId(7));
    let scale = cpu
        .iter()
        .chain(mem.iter())
        .cloned()
        .fold(0.0_f64, f64::max);
    let mut text = String::new();
    let _ = writeln!(text, "(a) CPU centric: STREAM threads on node 7, data on node i");
    for (i, v) in cpu.iter().enumerate() {
        let _ = writeln!(text, "  mem {i}: {v:>6.2} {}", bar(*v, scale));
    }
    let _ = writeln!(text, "\n(b) memory centric: data on node 7, STREAM threads on node i");
    for (i, v) in mem.iter().enumerate() {
        let _ = writeln!(text, "  cpu {i}: {v:>6.2} {}", bar(*v, scale));
    }
    let r01 = (cpu[0] + cpu[1]) / (cpu[2] + cpu[3]);
    let _ = writeln!(
        text,
        "\nCPU-centric {{0,1}}/{{2,3}} advantage: {:.0}% (paper quotes 43%–88%, §IV-B2);\n\
         memory-centric nodes 2,3 ({:.2}, {:.2}) beat node 4 ({:.2}) as in §IV-A.",
        (r01 - 1.0) * 100.0,
        mem[2],
        mem[3],
        mem[4]
    );
    Experiment { id: "fig4", title: "STREAM models of node 7 (CPU/memory centric)", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_views_rendered() {
        let e = super::run();
        assert!(e.text.contains("CPU centric"));
        assert!(e.text.contains("memory centric"));
        assert!(e.text.contains('#'));
    }
}
