//! Figure 10: bandwidth performance model of node 7 by the proposed
//! methodology.

use crate::Experiment;
use numio_core::{render_model, IoModeler, SimPlatform, TransferMode};
use numa_topology::NodeId;
use std::fmt::Write as _;

fn bar(v: f64, scale: f64) -> String {
    "#".repeat(((v / scale) * 40.0).round() as usize)
}

/// Regenerate both panels of Fig. 10 plus the class tables.
pub fn run() -> Experiment {
    let platform = SimPlatform::dl585();
    let modeler = IoModeler::new();
    let mut text = String::new();
    let mut data = serde_json::Map::new();
    for (panel, mode) in [
        ("(a) device write simulation (sink fixed at node 7)", TransferMode::Write),
        ("(b) device read simulation (source fixed at node 7)", TransferMode::Read),
    ] {
        let model = modeler.characterize(&platform, NodeId(7), mode);
        let scale = model.means().iter().cloned().fold(0.0_f64, f64::max);
        let _ = writeln!(text, "{panel}:");
        for (i, v) in model.means().iter().enumerate() {
            let _ = writeln!(text, "  node {i}: {v:>6.2} {}", bar(*v, scale));
        }
        text.push('\n');
        text.push_str(&render_model(&model));
        text.push('\n');
        data.insert(
            format!("{mode:?}").to_lowercase(),
            serde_json::json!({
                "per_node_gbps": model.means(),
                "classes": model
                    .classes()
                    .iter()
                    .map(|c| serde_json::json!({
                        "nodes": c.nodes.iter().map(|n| n.0).collect::<Vec<u16>>(),
                        "avg_gbps": c.avg_gbps,
                    }))
                    .collect::<Vec<_>>(),
            }),
        );
    }
    Experiment {
        id: "fig10",
        title: "Bandwidth model of node 7 by the proposed methodology",
        text,
        data: Some(serde_json::Value::Object(data)),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_directions_with_classes() {
        let e = super::run();
        assert!(e.text.contains("device write simulation"));
        assert!(e.text.contains("device read simulation"));
        assert!(e.text.contains("class 1: nodes {6, 7}"));
        assert!(e.text.contains("class 4: nodes {4}"));
    }
}
