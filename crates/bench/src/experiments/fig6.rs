//! Figure 6: RDMA_WRITE / RDMA_READ bandwidth per NUMA configuration.

use crate::Experiment;
use numa_fabric::calibration::dl585_fabric;
use numa_fio::sweep::{paper_nodes, render_table, sweep};
use numa_fio::Workload;
use numa_iodev::NicOp;
use std::fmt::Write as _;

/// Regenerate both panels of Fig. 6.
pub fn run() -> Experiment {
    let fabric = dl585_fabric();
    let nodes = paper_nodes();
    let streams = [1u32, 2, 4];
    let mut text = String::new();
    for (panel, op) in [
        ("(a) RDMA_WRITE", NicOp::RdmaWrite),
        ("(b) RDMA_READ", NicOp::RdmaRead),
    ] {
        let points =
            sweep(&fabric, &Workload::Nic(op), &nodes, &streams, 4.0, 6).expect("sweep runs");
        let _ = writeln!(text, "{panel} — aggregate Gbit/s:");
        text.push_str(&render_table(&points, &nodes, &streams));
        text.push('\n');
    }
    let _ = writeln!(
        text,
        "shape checks: RDMA is offloaded, so the curves are flat and stable\n\
         compared to TCP; RDMA_WRITE port-clamps near 23.3 except the starved\n\
         nodes 2/3 (~17); RDMA_READ ranks {{2,3}} ABOVE {{0,1}} — the inversion\n\
         of the STREAM ordering that motivates the whole methodology (§IV-B2)."
    );
    Experiment { id: "fig6", title: "RDMA bandwidth performance characteristics", text, data: None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn rdma_read_inversion_visible_in_the_table() {
        let e = super::run();
        assert!(e.text.contains("RDMA_WRITE"));
        assert!(e.text.contains("RDMA_READ"));
    }
}
