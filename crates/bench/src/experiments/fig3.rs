//! Figure 3: the 8x8 STREAM Copy bandwidth matrix.

use crate::Experiment;
use numa_fabric::calibration::{dl585_fabric, paper};
use numa_memsys::StreamBench;
use numa_topology::render;
use std::fmt::Write as _;

/// Regenerate the STREAM matrix with the paper's protocol (4 threads, max
/// of 100 pinned runs) and call out the published anchors.
pub fn run() -> Experiment {
    let fabric = dl585_fabric();
    let m = StreamBench::paper().matrix(&fabric);
    let mut text = String::new();
    let _ = writeln!(text, "STREAM Copy, 4 threads/node, max of 100 runs (Gbit/s):\n");
    text.push_str(&render::render_bw_matrix("cpu", "mem", &m));
    let _ = writeln!(
        text,
        "\npublished anchors: CPU7/MEM4 = {} (ours {:.2}), CPU4/MEM7 = {} (ours {:.2})",
        paper::STREAM_CPU7_MEM4,
        m[7][4],
        paper::STREAM_CPU4_MEM7,
        m[4][7]
    );
    let _ = writeln!(
        text,
        "qualitative checks: node-0 local advantage ({:.2} vs next {:.2}); local best\n\
         and neighbour second-best per row; asymmetric everywhere (no symmetric\n\
         hop metric can generate this matrix).",
        m[0][0],
        (1..8).map(|i| m[i][i]).fold(0.0_f64, f64::max)
    );
    Experiment {
        id: "fig3",
        title: "Bandwidth performance model by STREAM Copy",
        text,
        data: Some(serde_json::json!({ "unit": "Gbit/s", "rows": "cpu", "cols": "mem", "matrix": m })),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn anchors_reported() {
        let e = super::run();
        assert!(e.text.contains("21.34"));
        assert!(e.text.contains("18.45"));
    }
}
