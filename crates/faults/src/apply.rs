//! Static application: degraded what-if copies of fabrics and platforms.

use crate::plan::FaultKind;
use numa_engine::SimError;
use numa_fabric::{Fabric, TrafficClass};
use numa_topology::{DirectedEdge, NodeId};
use numio_core::SimPlatform;

/// Residual capacity of a downed link, Gbit/s. Not exactly zero: the
/// fabric builder (reasonably) rejects zero-capacity links, and a dead
/// link still passes the occasional retried credit. Any flow routed over
/// it is starved for practical purposes.
pub const LINK_DOWN_GBPS: f64 = 1e-6;

/// Everything that can go wrong constructing or applying a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// The plan JSON did not parse or did not match the schema.
    Parse(String),
    /// The plan references a directed link the topology does not have.
    UnknownLink {
        /// Source node of the missing edge.
        from: NodeId,
        /// Destination node of the missing edge.
        to: NodeId,
    },
    /// The plan references a node outside the machine.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes present.
        nodes: usize,
    },
    /// The plan references a device port the simulation never registered.
    UnknownDevice {
        /// The offending device index.
        device: u16,
    },
    /// A degradation factor or storm intensity outside its legal range.
    BadFactor {
        /// The offending value.
        value: f64,
    },
    /// A window with a non-finite or inverted time range.
    BadWindow {
        /// Injection time.
        start_s: f64,
        /// Heal time, if any.
        end_s: Option<f64>,
    },
    /// The plan contains no faults.
    EmptyPlan,
    /// The selected backend exposes no simulator fabric to degrade
    /// (faults are what-if views over the simulator).
    NoFabric {
        /// The backend's label.
        label: String,
    },
    /// The underlying simulation failed while the plan was active.
    Sim(SimError),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Parse(msg) => write!(f, "malformed fault plan: {msg}"),
            FaultError::UnknownLink { from, to } => {
                write!(f, "fault plan references unknown link {from:?}->{to:?}")
            }
            FaultError::NodeOutOfRange { node, nodes } => {
                write!(f, "fault plan references {node:?} on a {nodes}-node machine")
            }
            FaultError::UnknownDevice { device } => {
                write!(f, "fault plan references unknown device {device}")
            }
            FaultError::BadFactor { value } => {
                write!(f, "fault factor/intensity {value} out of range")
            }
            FaultError::BadWindow { start_s, end_s } => {
                write!(f, "fault window [{start_s}, {end_s:?}) is not a valid time range")
            }
            FaultError::EmptyPlan => write!(f, "fault plan has no faults"),
            FaultError::NoFabric { label } => {
                write!(f, "backend '{label}' exposes no fabric to degrade")
            }
            FaultError::Sim(e) => write!(f, "simulation failed under faults: {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for FaultError {
    fn from(e: SimError) -> Self {
        FaultError::Sim(e)
    }
}

/// A what-if copy of `base` with every fault applied at full strength —
/// the machine as it looks *while* the faults are active. Feed it back
/// through [`numio_core::IoModeler`] and `numio_core::drift::diff` to see
/// which nodes change performance class.
///
/// [`FaultKind::DeviceStall`] lands on the fabric's per-device derate
/// table: the paper's `memcpy` probes never touch devices, so memcpy
/// models are unaffected, but every device harness (fio lowering, storage
/// characterization) multiplies its lowered port capacities by
/// [`Fabric::device_derate`] — the same `base * factor` the dynamic
/// [`crate::FaultInjector`] schedules, so the two paths agree bit for
/// bit.
pub fn degraded_fabric(base: &Fabric, faults: &[FaultKind]) -> Result<Fabric, FaultError> {
    let mut out = base.clone();
    for &k in faults {
        match k {
            FaultKind::LinkDegrade { from, to, factor } => {
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(FaultError::BadFactor { value: factor });
                }
                let e = DirectedEdge::new(NodeId(from), NodeId(to));
                let cap = out
                    .edge_cap(e, TrafficClass::Dma)
                    .ok_or(FaultError::UnknownLink { from: NodeId(from), to: NodeId(to) })?;
                out = out.with_edge_cap(e, cap * factor);
            }
            FaultKind::LinkDown { from, to } => {
                let e = DirectedEdge::new(NodeId(from), NodeId(to));
                out.edge_cap(e, TrafficClass::Dma)
                    .ok_or(FaultError::UnknownLink { from: NodeId(from), to: NodeId(to) })?;
                out = out.with_edge_cap(e, LINK_DOWN_GBPS);
            }
            FaultKind::IrqStorm { node, intensity } => {
                if !(0.0..1.0).contains(&intensity) {
                    return Err(FaultError::BadFactor { value: intensity });
                }
                let n = NodeId(node);
                if n.index() >= out.num_nodes() {
                    return Err(FaultError::NodeOutOfRange { node: n, nodes: out.num_nodes() });
                }
                out = out.with_node_copy_cap(n, out.node_copy_cap(n) * (1.0 - intensity));
            }
            FaultKind::DeviceStall { device, factor } => {
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(FaultError::BadFactor { value: factor });
                }
                if (device as usize) >= out.topology().devices().len() {
                    return Err(FaultError::UnknownDevice { device });
                }
                out = out.with_device_derate(device, factor);
            }
        }
    }
    Ok(out)
}

/// [`degraded_fabric`] lifted to a probe platform: the returned
/// [`SimPlatform`] keeps the original's noise amplitude and seed, so a
/// re-characterization differs from the baseline only through the faults.
pub fn degraded_platform(
    base: &SimPlatform,
    faults: &[FaultKind],
) -> Result<SimPlatform, FaultError> {
    let mut out = SimPlatform::new(degraded_fabric(base.fabric(), faults)?);
    out.noise = base.noise;
    out.seed = base.seed;
    Ok(out)
}

/// [`degraded_platform`] generalized to any backend: pulls the fabric out
/// of the selected [`Platform`](numio_core::Platform) and returns a
/// degraded [`SimPlatform`] what-if view, or a typed
/// [`FaultError::NoFabric`] when the backend is measurement-only (a real
/// host, a replay fixture).
pub fn degraded_backend<P: numio_core::Platform>(
    base: &P,
    faults: &[FaultKind],
) -> Result<SimPlatform, FaultError> {
    let fabric = base
        .fabric()
        .ok_or_else(|| FaultError::NoFabric { label: base.label() })?;
    Ok(SimPlatform::new(degraded_fabric(fabric, faults)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_fabric::calibration::dl585_fabric;

    #[test]
    fn degraded_backend_needs_a_fabric() {
        let sim = SimPlatform::dl585();
        let faults = [FaultKind::LinkDegrade { from: 6, to: 7, factor: 0.5 }];
        // Over a sim backend it matches degraded_platform's fabric view.
        let via_backend = degraded_backend(&sim, &faults).unwrap();
        let via_platform = degraded_platform(&sim, &faults).unwrap();
        let e = DirectedEdge::new(NodeId(6), NodeId(7));
        assert_eq!(
            via_backend.fabric().edge_cap(e, TrafficClass::Dma),
            via_platform.fabric().edge_cap(e, TrafficClass::Dma)
        );
        // A fabric-less backend is a typed error.
        let host = numio_core::HostPlatform::with_shape(8, 4);
        let err = degraded_backend(&host, &faults).unwrap_err();
        assert_eq!(err, FaultError::NoFabric { label: "host:8-nodes".to_string() });
        assert!(err.to_string().contains("no fabric to degrade"), "{err}");
    }

    #[test]
    fn degrade_scales_one_direction_only() {
        let base = dl585_fabric();
        let f = degraded_fabric(
            &base,
            &[FaultKind::LinkDegrade { from: 6, to: 7, factor: 0.5 }],
        )
        .unwrap();
        let e = DirectedEdge::new(NodeId(6), NodeId(7));
        let back = DirectedEdge::new(NodeId(7), NodeId(6));
        assert!(
            (f.edge_cap(e, TrafficClass::Dma).unwrap()
                - 0.5 * base.edge_cap(e, TrafficClass::Dma).unwrap())
            .abs()
                < 1e-12
        );
        assert_eq!(
            f.edge_cap(back, TrafficClass::Dma),
            base.edge_cap(back, TrafficClass::Dma),
            "reverse direction untouched"
        );
    }

    #[test]
    fn link_down_leaves_a_residual_trickle() {
        let f = dl585_fabric();
        let d = degraded_fabric(&f, &[FaultKind::LinkDown { from: 6, to: 7 }]).unwrap();
        let e = DirectedEdge::new(NodeId(6), NodeId(7));
        assert_eq!(d.edge_cap(e, TrafficClass::Dma), Some(LINK_DOWN_GBPS));
    }

    #[test]
    fn irq_storm_derates_the_node_copy_cap() {
        let f = dl585_fabric();
        let d = degraded_fabric(&f, &[FaultKind::IrqStorm { node: 7, intensity: 0.5 }]).unwrap();
        assert!((d.node_copy_cap(NodeId(7)) - 0.5 * f.node_copy_cap(NodeId(7))).abs() < 1e-12);
        assert_eq!(d.node_copy_cap(NodeId(6)), f.node_copy_cap(NodeId(6)));
    }

    #[test]
    fn phantom_link_is_a_typed_error_not_a_panic() {
        let f = dl585_fabric();
        let err =
            degraded_fabric(&f, &[FaultKind::LinkDown { from: 0, to: 7 }]).unwrap_err();
        assert_eq!(err, FaultError::UnknownLink { from: NodeId(0), to: NodeId(7) });
    }

    #[test]
    fn bad_node_and_bad_factor_are_typed_errors() {
        let f = dl585_fabric();
        assert_eq!(
            degraded_fabric(&f, &[FaultKind::IrqStorm { node: 99, intensity: 0.5 }])
                .unwrap_err(),
            FaultError::NodeOutOfRange { node: NodeId(99), nodes: 8 }
        );
        assert_eq!(
            degraded_fabric(&f, &[FaultKind::LinkDegrade { from: 6, to: 7, factor: 0.0 }])
                .unwrap_err(),
            FaultError::BadFactor { value: 0.0 }
        );
    }

    #[test]
    fn device_stall_derates_the_device_port() {
        // Regression: this used to be a silent no-op (the deleted
        // `device_stall_is_a_fabric_no_op` pinned `d == f`), so static
        // what-if views disagreed with dynamic injection.
        let f = dl585_fabric();
        let d =
            degraded_fabric(&f, &[FaultKind::DeviceStall { device: 0, factor: 0.5 }]).unwrap();
        assert_ne!(d, f, "the stall must be visible in the what-if view");
        assert_eq!(d.device_derate(0), 0.5);
        assert_eq!(d.device_derate(1), 1.0, "other devices untouched");
        // The interconnect itself is untouched: probes see no change.
        assert_eq!(d.dma_matrix(), f.dma_matrix());
    }

    #[test]
    fn device_stall_fields_are_validated() {
        let f = dl585_fabric();
        assert_eq!(
            degraded_fabric(&f, &[FaultKind::DeviceStall { device: 9, factor: 0.5 }])
                .unwrap_err(),
            FaultError::UnknownDevice { device: 9 }
        );
        assert_eq!(
            degraded_fabric(&f, &[FaultKind::DeviceStall { device: 0, factor: 0.0 }])
                .unwrap_err(),
            FaultError::BadFactor { value: 0.0 }
        );
        assert_eq!(
            degraded_fabric(&f, &[FaultKind::DeviceStall { device: 0, factor: 1.5 }])
                .unwrap_err(),
            FaultError::BadFactor { value: 1.5 }
        );
    }

    #[test]
    fn degraded_platform_keeps_noise_and_seed() {
        let base = SimPlatform::dl585();
        let p =
            degraded_platform(&base, &[FaultKind::IrqStorm { node: 7, intensity: 0.5 }]).unwrap();
        assert_eq!(p.noise, base.noise);
        assert_eq!(p.seed, base.seed);
        assert!(p.fabric().node_copy_cap(NodeId(7)) < base.fabric().node_copy_cap(NodeId(7)));
    }
}
