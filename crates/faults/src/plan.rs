//! Fault plans: what breaks, when, and for how long.

use crate::apply::FaultError;
use serde::{Deserialize, Serialize};

/// One kind of hardware misbehaviour the model can express.
///
/// Serialized with an internal `"kind"` tag, e.g.
/// `{"kind": "link_degrade", "from": 6, "to": 7, "factor": 0.25, ...}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultKind {
    /// One directed link retains only `factor` of its DMA capacity —
    /// firmware retraining a lane down, a flaky connector, asymmetric
    /// buffer starvation (§IV-A).
    LinkDegrade {
        /// Source node of the directed edge.
        from: u16,
        /// Destination node of the directed edge.
        to: u16,
        /// Remaining capacity fraction, in `(0, 1]`.
        factor: f64,
    },
    /// One directed link goes (effectively) dark.
    LinkDown {
        /// Source node of the directed edge.
        from: u16,
        /// Destination node of the directed edge.
        to: u16,
    },
    /// Interrupt-handling background load steals memory-controller
    /// bandwidth on one node — the paper's node-7 IRQ derating (§IV-C),
    /// dialled up.
    IrqStorm {
        /// The stormed node (usually the device-local node).
        node: u16,
        /// Fraction of the node's copy bandwidth consumed, in `[0, 1)`.
        intensity: f64,
    },
    /// A device's PCIe port retains only `factor` of its capacity in both
    /// directions — protocol-engine hiccups, thermal throttling. Applied
    /// identically on both paths: [`crate::degraded_fabric`] records it in
    /// the fabric's per-device derate table (which device harnesses fold
    /// into their lowered port capacities), and [`crate::FaultInjector`]
    /// throttles the registered `DevicePort` resources mid-run — the same
    /// `base * factor`, bit for bit.
    DeviceStall {
        /// Device index into the topology's device list (the dl585's NIC
        /// is device 0; its SSD cards are devices 1 and 2).
        device: u16,
        /// Remaining capacity fraction, in `(0, 1]`.
        factor: f64,
    },
}

impl FaultKind {
    /// Short label for metrics and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::IrqStorm { .. } => "irq_storm",
            FaultKind::DeviceStall { .. } => "device_stall",
        }
    }
}

/// A fault active from `start_s` until `end_s` (forever if `None`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Injection time, simulation seconds.
    pub start_s: f64,
    /// Heal time; `None` means the fault never heals.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub end_s: Option<f64>,
    /// What breaks.
    #[serde(flatten)]
    pub kind: FaultKind,
}

impl FaultWindow {
    /// A fault injected at t=0 that never heals.
    pub fn permanent(kind: FaultKind) -> Self {
        FaultWindow { start_s: 0.0, end_s: None, kind }
    }

    /// A fault active over `[start_s, end_s)`.
    pub fn between(kind: FaultKind, start_s: f64, end_s: f64) -> Self {
        FaultWindow { start_s, end_s: Some(end_s), kind }
    }
}

/// A seeded, ordered fault timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed recorded with the plan so reports can name the scenario; the
    /// timeline itself is already fully explicit.
    pub seed: u64,
    /// The faults, in insertion order (ties at equal times keep it).
    pub faults: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Append a fault window.
    pub fn with(mut self, w: FaultWindow) -> Self {
        self.faults.push(w);
        self
    }

    /// The kinds, without their windows (the static what-if view).
    pub fn kinds(&self) -> Vec<FaultKind> {
        self.faults.iter().map(|w| w.kind).collect()
    }

    /// Structural validation that needs no machine: factors and
    /// intensities in range, windows ordered. Link/node existence is
    /// checked against a fabric at apply/arm time.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.faults.is_empty() {
            return Err(FaultError::EmptyPlan);
        }
        for w in &self.faults {
            if !w.start_s.is_finite() || w.start_s < 0.0 {
                return Err(FaultError::BadWindow { start_s: w.start_s, end_s: w.end_s });
            }
            if let Some(end) = w.end_s {
                if !end.is_finite() || end <= w.start_s {
                    return Err(FaultError::BadWindow { start_s: w.start_s, end_s: w.end_s });
                }
            }
            match w.kind {
                FaultKind::LinkDegrade { factor, .. } | FaultKind::DeviceStall { factor, .. } => {
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(FaultError::BadFactor { value: factor });
                    }
                }
                FaultKind::IrqStorm { intensity, .. } => {
                    if !(0.0..1.0).contains(&intensity) {
                        return Err(FaultError::BadFactor { value: intensity });
                    }
                }
                FaultKind::LinkDown { .. } => {}
            }
        }
        Ok(())
    }

    /// Serialize to JSON (the `--faults plan.json` file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan serializes")
    }

    /// Parse and structurally validate a JSON plan. Malformed JSON comes
    /// back as [`FaultError::Parse`] with serde's line/column context.
    pub fn from_json(s: &str) -> Result<Self, FaultError> {
        let plan: FaultPlan =
            serde_json::from_str(s).map_err(|e| FaultError::Parse(e.to_string()))?;
        plan.validate()?;
        Ok(plan)
    }

    /// The canonical demo scenario, parameterized by `seed`: a throttle on
    /// the node-6→7 link (the trunk every even-numbered write path shares)
    /// plus an IRQ storm on the device-local node 7. Exact factors and
    /// timings vary deterministically with the seed inside ranges strong
    /// enough to reorder the Table IV classes.
    pub fn demo(seed: u64) -> Self {
        // Splitmix-style bit mixer: cheap, deterministic, no RNG crate.
        let unit = |salt: u64| -> f64 {
            let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let throttle = 0.20 + 0.10 * unit(1); // keep 20–30% of 6→7
        let intensity = 0.40 + 0.20 * unit(2); // storm eats 40–60% of node 7
        let storm_end = 6.0 + 2.0 * unit(3);
        FaultPlan::new(seed)
            .with(FaultWindow::permanent(FaultKind::LinkDegrade {
                from: 6,
                to: 7,
                factor: throttle,
            }))
            .with(FaultWindow::between(
                FaultKind::IrqStorm { node: 7, intensity },
                0.0,
                storm_end,
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let plan = FaultPlan::demo(42);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        let err = FaultPlan::from_json("{ not json").unwrap_err();
        assert!(matches!(err, FaultError::Parse(_)), "{err:?}");
        assert!(err.to_string().contains("fault plan"), "{err}");
    }

    #[test]
    fn wrong_shape_is_a_parse_error() {
        // Valid JSON, wrong schema: unknown kind tag.
        let s = r#"{"seed": 1, "faults": [{"kind": "gremlins", "start_s": 0.0}]}"#;
        assert!(matches!(FaultPlan::from_json(s).unwrap_err(), FaultError::Parse(_)));
    }

    #[test]
    fn out_of_range_factor_rejected() {
        let plan = FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::LinkDegrade {
            from: 6,
            to: 7,
            factor: 1.5,
        }));
        assert_eq!(plan.validate().unwrap_err(), FaultError::BadFactor { value: 1.5 });
        let plan = FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::IrqStorm {
            node: 7,
            intensity: 1.0,
        }));
        assert_eq!(plan.validate().unwrap_err(), FaultError::BadFactor { value: 1.0 });
        let plan = FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::DeviceStall {
            device: 1,
            factor: 0.0,
        }));
        assert_eq!(plan.validate().unwrap_err(), FaultError::BadFactor { value: 0.0 });
    }

    #[test]
    fn inverted_window_rejected() {
        let plan = FaultPlan::new(0).with(FaultWindow::between(
            FaultKind::LinkDown { from: 6, to: 7 },
            3.0,
            1.0,
        ));
        assert!(matches!(plan.validate().unwrap_err(), FaultError::BadWindow { .. }));
    }

    #[test]
    fn empty_plan_rejected() {
        assert_eq!(FaultPlan::new(7).validate().unwrap_err(), FaultError::EmptyPlan);
    }

    #[test]
    fn demo_is_seed_deterministic_and_valid() {
        let a = FaultPlan::demo(1234);
        let b = FaultPlan::demo(1234);
        assert_eq!(a, b);
        a.validate().unwrap();
        assert_ne!(a, FaultPlan::demo(1235), "seed perturbs the plan");
        // Shape is fixed: a permanent 6→7 throttle plus a healing storm.
        assert!(matches!(
            a.faults[0].kind,
            FaultKind::LinkDegrade { from: 6, to: 7, .. }
        ));
        assert!(a.faults[0].end_s.is_none());
        assert!(matches!(a.faults[1].kind, FaultKind::IrqStorm { node: 7, .. }));
        assert!(a.faults[1].end_s.is_some());
    }
}
