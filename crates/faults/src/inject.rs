//! Dynamic application: lower a fault plan onto a running simulation.

use crate::apply::{FaultError, LINK_DOWN_GBPS};
use crate::plan::{FaultKind, FaultPlan};
use numa_engine::{ResourceKey, Simulation};
use numa_fabric::{Fabric, TrafficClass};
use numa_topology::{DeviceId, DirectedEdge, NodeId};

/// Lowers a [`FaultPlan`] onto a [`Simulation`] as scheduled capacity
/// events (`fault_injected` at each window's start, `fault_healed` at its
/// end). Arm *after* the workload's flows and device resources are
/// registered — device-stall faults address ports the harness lowers.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wrap a validated plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Schedule every fault window onto `sim`; returns the number of
    /// capacity events added (one per injection, one more per heal).
    ///
    /// Link and node resources are registered here at their fabric base
    /// capacities (idempotent with the engine's own lowering), so arming
    /// works before or after flows are added; device ports must already
    /// exist, else [`FaultError::UnknownDevice`].
    pub fn arm(&self, sim: &mut Simulation<'_>, fabric: &Fabric) -> Result<usize, FaultError> {
        self.plan.validate()?;
        let mut events = 0usize;
        for w in &self.plan.faults {
            // (handle, degraded capacity, base capacity) per resource the
            // fault touches.
            let mut touched: Vec<(numa_engine::ResourceHandle, f64, f64)> = Vec::new();
            match w.kind {
                FaultKind::LinkDegrade { from, to, factor } => {
                    let e = DirectedEdge::new(NodeId(from), NodeId(to));
                    let base = fabric
                        .edge_cap(e, TrafficClass::Dma)
                        .ok_or(FaultError::UnknownLink { from: NodeId(from), to: NodeId(to) })?;
                    let h = sim.register(ResourceKey::Edge(e), base);
                    touched.push((h, base * factor, base));
                }
                FaultKind::LinkDown { from, to } => {
                    let e = DirectedEdge::new(NodeId(from), NodeId(to));
                    let base = fabric
                        .edge_cap(e, TrafficClass::Dma)
                        .ok_or(FaultError::UnknownLink { from: NodeId(from), to: NodeId(to) })?;
                    let h = sim.register(ResourceKey::Edge(e), base);
                    touched.push((h, LINK_DOWN_GBPS, base));
                }
                FaultKind::IrqStorm { node, intensity } => {
                    let n = NodeId(node);
                    if n.index() >= fabric.num_nodes() {
                        return Err(FaultError::NodeOutOfRange {
                            node: n,
                            nodes: fabric.num_nodes(),
                        });
                    }
                    let base = fabric.node_copy_cap(n);
                    let h = sim.register(ResourceKey::NodeCopy(n), base);
                    touched.push((h, base * (1.0 - intensity), base));
                    // Interrupt handling also burns the node's protocol-CPU
                    // budget when one was lowered (TCP workloads).
                    if let Some(h) = sim.resource(ResourceKey::NodeCpu(n)) {
                        let cpu_base = sim.capacity(h);
                        touched.push((h, cpu_base * (1.0 - intensity), cpu_base));
                    }
                }
                FaultKind::DeviceStall { device, factor } => {
                    for to_device in [true, false] {
                        let key = ResourceKey::DevicePort { dev: DeviceId(device), to_device };
                        if let Some(h) = sim.resource(key) {
                            let base = sim.capacity(h);
                            touched.push((h, base * factor, base));
                        }
                    }
                    if touched.is_empty() {
                        return Err(FaultError::UnknownDevice { device });
                    }
                }
            }
            for (h, degraded, base) in touched {
                sim.schedule_capacity_as(h, w.start_s, degraded, "fault_injected");
                events += 1;
                if let Some(end) = w.end_s {
                    sim.schedule_capacity_as(h, end, base, "fault_healed");
                    events += 1;
                }
            }
        }
        Ok(events)
    }
}

/// A [`FaultInjector`] plugs into the engine's unified scenario builder:
/// `Scenario::on(fabric).faults(FaultInjector::new(plan))`.
impl numa_engine::FaultSource for FaultInjector {
    fn arm_scenario(&self, sim: &mut Simulation<'_>) -> Result<usize, String> {
        let fabric = sim.fabric();
        self.arm(sim, fabric).map_err(|e| e.to_string())
    }
}

/// A bare [`FaultPlan`] is also a fault source — the common case:
/// `Scenario::on(fabric).faults(plan)`.
impl numa_engine::FaultSource for FaultPlan {
    fn arm_scenario(&self, sim: &mut Simulation<'_>) -> Result<usize, String> {
        numa_engine::FaultSource::arm_scenario(&FaultInjector::new(self.clone()), sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultWindow;
    use numa_engine::FlowSpec;
    use numa_fabric::calibration::dl585_fabric;

    #[test]
    fn armed_throttle_slows_the_run() {
        let f = dl585_fabric();
        let baseline = {
            let mut sim = Simulation::new(&f);
            sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(93.0));
            sim.run().unwrap().makespan_s
        };
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(93.0));
        let plan = FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::LinkDegrade {
            from: 6,
            to: 7,
            factor: 0.5,
        }));
        let n = FaultInjector::new(plan).arm(&mut sim, &f).unwrap();
        assert_eq!(n, 1);
        let faulted = sim.run().unwrap().makespan_s;
        assert!((faulted - 2.0 * baseline).abs() < 1e-9, "{faulted} vs {baseline}");
    }

    #[test]
    fn healed_window_restores_full_rate() {
        let f = dl585_fabric();
        let mut sim = Simulation::new(&f);
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(93.0));
        // Half rate over [0, 2): 46.5 Gbit done by t=2, the rest at full
        // rate => makespan 3.
        let plan = FaultPlan::new(0).with(FaultWindow::between(
            FaultKind::LinkDegrade { from: 6, to: 7, factor: 0.5 },
            0.0,
            2.0,
        ));
        let n = FaultInjector::new(plan).arm(&mut sim, &f).unwrap();
        assert_eq!(n, 2);
        let r = sim.run().unwrap();
        assert!((r.makespan_s - 3.0).abs() < 1e-9, "{}", r.makespan_s);
    }

    #[test]
    fn unknown_link_and_device_are_typed_errors() {
        let f = dl585_fabric();
        let mut sim = Simulation::new(&f);
        let plan =
            FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::LinkDown { from: 0, to: 7 }));
        assert_eq!(
            FaultInjector::new(plan).arm(&mut sim, &f).unwrap_err(),
            FaultError::UnknownLink { from: NodeId(0), to: NodeId(7) }
        );
        let plan = FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::DeviceStall {
            device: 3,
            factor: 0.5,
        }));
        assert_eq!(
            FaultInjector::new(plan).arm(&mut sim, &f).unwrap_err(),
            FaultError::UnknownDevice { device: 3 }
        );
    }

    #[test]
    fn invalid_plan_is_rejected_at_arm_time() {
        let f = dl585_fabric();
        let mut sim = Simulation::new(&f);
        let plan = FaultPlan::new(0);
        assert_eq!(
            FaultInjector::new(plan).arm(&mut sim, &f).unwrap_err(),
            FaultError::EmptyPlan
        );
    }

    #[test]
    fn fault_plan_arms_through_the_scenario_builder() {
        let f = dl585_fabric();
        let plan = FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::LinkDegrade {
            from: 6,
            to: 7,
            factor: 0.5,
        }));
        // Same throttle as `armed_throttle_slows_the_run`, via the
        // unified front door.
        let report = numa_engine::Scenario::on(&f)
            .flows([FlowSpec::dma(NodeId(6), NodeId(7)).gbits(93.0)])
            .faults(plan)
            .run()
            .unwrap();
        assert!((report.makespan_s - 4.0).abs() < 1e-9, "{}", report.makespan_s);

        // A broken plan surfaces as a typed scenario error.
        let bad =
            FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::LinkDown { from: 0, to: 7 }));
        let err = numa_engine::Scenario::on(&f)
            .flows([FlowSpec::dma(NodeId(6), NodeId(7)).gbits(1.0)])
            .faults(bad)
            .run()
            .unwrap_err();
        assert!(matches!(err, numa_engine::ScenarioError::Faults { .. }), "{err:?}");
    }

    #[test]
    fn device_stall_throttles_registered_ports() {
        let f = dl585_fabric();
        let mut sim = Simulation::new(&f);
        let port = sim.register(
            ResourceKey::DevicePort { dev: DeviceId(0), to_device: true },
            20.0,
        );
        sim.add_flow(FlowSpec::dma(NodeId(6), NodeId(7)).gbits(20.0).charge(port));
        let plan = FaultPlan::new(0).with(FaultWindow::permanent(FaultKind::DeviceStall {
            device: 0,
            factor: 0.25,
        }));
        FaultInjector::new(plan).arm(&mut sim, &f).unwrap();
        let r = sim.run().unwrap();
        // 20 Gbit at 25% of the 20 Gbps port => 4 s.
        assert!((r.makespan_s - 4.0).abs() < 1e-9, "{}", r.makespan_s);
    }
}
