//! Canned baseline-vs-faulted comparison scenarios.
//!
//! The demo workload is the paper's Table IV shape: one bulk DMA write
//! stream from every node into the device on node 7, all concurrent. The
//! same flow set runs twice — once on the healthy machine, once with the
//! fault plan armed — and the report pairs the two so the degradation is
//! visible per flow.

use crate::apply::FaultError;
use crate::inject::FaultInjector;
use crate::plan::FaultPlan;
use numa_engine::{FlowSpec, Scenario, ScenarioError, SimReport, Simulation};
use numa_fabric::Fabric;
use numa_topology::NodeId;

/// Outcome of one scenario run: the same workload on the healthy and the
/// faulted machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The plan that was applied.
    pub plan: FaultPlan,
    /// Run on the healthy fabric.
    pub baseline: SimReport,
    /// Run with the plan armed.
    pub faulted: SimReport,
}

impl ScenarioReport {
    /// Fraction of aggregate bandwidth lost to the faults, in `[0, 1)`
    /// for any plan that actually degrades something.
    pub fn degradation(&self) -> f64 {
        1.0 - self.faulted.aggregate_gbps / self.baseline.aggregate_gbps
    }

    /// Deterministic textual report: the plan, both per-flow tables, and
    /// the aggregate damage. Identical seeds render bit-identically.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "fault plan (seed {}):", self.plan.seed);
        for w in &self.plan.faults {
            let heal = match w.end_s {
                Some(end) => format!("heals at {end:.3}s"),
                None => "permanent".to_string(),
            };
            let _ = writeln!(out, "  {:?} at {:.3}s ({heal})", w.kind, w.start_s);
        }
        let _ = writeln!(out, "\nBASELINE\n{}", self.baseline.render());
        let _ = writeln!(out, "FAULTED\n{}", self.faulted.render());
        let _ = writeln!(
            out,
            "degradation: {:.1}% of aggregate bandwidth lost",
            100.0 * self.degradation()
        );
        out
    }
}

/// Build the demo flow set: one DMA write stream per node into the device
/// on `target` (flows are device-sided at the destination, so the source
/// copy engines and the interconnect carry the contention, as in Fig. 9).
fn demo_flows(sim: &mut Simulation<'_>, nodes: usize, target: NodeId) {
    for i in 0..nodes {
        let src = NodeId::new(i);
        sim.add_flow(
            FlowSpec::dma(src, target)
                .gbytes(25.0)
                .device_dst()
                .label(format!("write N{i}->N{}", target.index())),
        );
    }
}

/// Run `plan` against the demo workload on `fabric`. With `obs` attached,
/// the faulted run emits engine events (`fault_injected`/`fault_healed`)
/// and a `numio_faults_total{kind}` counter per fault window.
pub fn run_plan(
    fabric: &Fabric,
    plan: &FaultPlan,
    obs: Option<&numa_obs::Obs>,
) -> Result<ScenarioReport, FaultError> {
    plan.validate()?;
    let target = NodeId::new(fabric.num_nodes() - 1);

    let mut baseline = Simulation::new(fabric);
    demo_flows(&mut baseline, fabric.num_nodes(), target);
    let baseline = baseline.run()?;

    // The faulted run goes through the unified scenario builder. The
    // injector is armed eagerly (not via `Scenario::faults`) so arming
    // failures keep their typed `FaultError` shape.
    let mut sim = Simulation::new(fabric);
    demo_flows(&mut sim, fabric.num_nodes(), target);
    FaultInjector::new(plan.clone()).arm(&mut sim, fabric)?;
    let mut faulted = Scenario::from_simulation(sim);
    if let Some(o) = obs {
        faulted = faulted.observe(o.clone());
        for w in &plan.faults {
            o.counter("numio_faults_total", &[("kind", w.kind.name())]).inc();
        }
    }
    let faulted = faulted.run().map_err(|e| match e {
        ScenarioError::Sim(s) => FaultError::from(s),
        // No fault sources were attached to the scenario.
        ScenarioError::Faults { reason } => unreachable!("{reason}"),
    })?;

    Ok(ScenarioReport { plan: plan.clone(), baseline, faulted })
}

/// [`run_plan`] with the canonical seeded demo plan ([`FaultPlan::demo`]).
pub fn run_demo(
    fabric: &Fabric,
    seed: u64,
    obs: Option<&numa_obs::Obs>,
) -> Result<ScenarioReport, FaultError> {
    run_plan(fabric, &FaultPlan::demo(seed), obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_fabric::calibration::dl585_fabric;

    #[test]
    fn demo_degrades_and_is_seed_deterministic() {
        let f = dl585_fabric();
        let a = run_demo(&f, 42, None).unwrap();
        let b = run_demo(&f, 42, None).unwrap();
        assert_eq!(a, b, "same seed, same scenario");
        assert_eq!(a.render(), b.render(), "bit-identical reports");
        assert!(a.degradation() > 0.05, "faults must bite: {}", a.degradation());
        let c = run_demo(&f, 43, None).unwrap();
        assert_ne!(a.faulted, c.faulted, "seed changes the damage");
        // The baseline is fault-independent.
        assert_eq!(a.baseline, c.baseline);
    }

    #[test]
    fn observed_demo_counts_faults_and_tags_events() {
        let f = dl585_fabric();
        let obs = numa_obs::Obs::new();
        let r = run_demo(&f, 42, Some(&obs)).unwrap();
        assert!(r.degradation() > 0.0);
        assert_eq!(
            obs.counter("numio_faults_total", &[("kind", "link_degrade")]).get(),
            1
        );
        assert_eq!(obs.counter("numio_faults_total", &[("kind", "irq_storm")]).get(), 1);
        let jsonl = obs.jsonl();
        assert!(jsonl.contains("\"ev\":\"fault_injected\""), "{jsonl}");
        assert!(jsonl.contains("\"ev\":\"fault_healed\""), "{jsonl}");
    }

    #[test]
    fn render_names_the_plan_and_the_damage() {
        let f = dl585_fabric();
        let s = run_demo(&f, 7, None).unwrap().render();
        assert!(s.contains("fault plan (seed 7)"));
        assert!(s.contains("BASELINE"));
        assert!(s.contains("FAULTED"));
        assert!(s.contains("degradation:"));
        assert!(s.contains("write N6->N7"));
    }
}
