#![warn(missing_docs)]
//! # numa-faults
//!
//! Deterministic, seed-driven fault injection for the NUMA I/O model.
//!
//! The paper's central warning (§IV-A/C) is that static topology metrics
//! mislead: measured bandwidth shifts with asymmetric routing, OS buffer
//! placement, and IRQ load on the device-local node. This crate makes
//! those shifts *injectable*, so every layer above the fabric can be
//! exercised against the degraded machine it will eventually meet:
//!
//! * [`FaultPlan`] — a seedable, JSON-serializable timeline of
//!   [`FaultKind`]s with inject/heal windows ([`FaultWindow`]).
//! * [`degraded_fabric`] / [`degraded_platform`] — the *static* view: a
//!   what-if copy of a fabric or probe platform with the faults applied,
//!   ready for re-characterization ([`numio_core::IoModeler`]) and drift
//!   detection (`numio_core::drift::diff`).
//! * [`FaultInjector`] — the *dynamic* view: lowers a plan onto a running
//!   [`numa_engine::Simulation`] as scheduled capacity events, so link
//!   throttles, IRQ storms and device stalls hit mid-transfer and heal on
//!   schedule. The engine emits `fault_injected` / `fault_healed` obs
//!   events when each change fires.
//! * [`scenario`] — a canned baseline-vs-faulted comparison used by the
//!   CLI's `faults demo` subcommand and the determinism tests.
//!
//! Everything is deterministic: the same plan (same seed) produces
//! bit-identical timelines and reports.

pub mod apply;
pub mod inject;
pub mod plan;
pub mod scenario;

pub use apply::{degraded_backend, degraded_fabric, degraded_platform, FaultError, LINK_DOWN_GBPS};
pub use inject::FaultInjector;
pub use plan::{FaultKind, FaultPlan, FaultWindow};
pub use scenario::{run_demo, run_plan, ScenarioReport};
