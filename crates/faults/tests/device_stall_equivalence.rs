//! Regression: static (`degraded_fabric`) and dynamic (`FaultInjector`)
//! `device_stall` application must produce **bit-identical** degraded
//! predictions for the same plan.
//!
//! Before the storage tier landed, `degraded_fabric` silently skipped
//! `DeviceStall` (pinned by the deleted `device_stall_is_a_fabric_no_op`
//! test) while the injector throttled registered device ports, so
//! baseline-vs-faulted scenarios disagreed depending on which path you
//! took. Both paths now meet at the fio lowering: the static view folds
//! `Fabric::device_derate` into the registered port capacity
//! (`base * factor`), the dynamic path schedules a capacity event to the
//! same `base * factor` — the identical two-operand multiply, so steady
//! rates, makespans, and aggregates match to the last bit.

use numa_fabric::calibration::dl585_fabric;
use numa_faults::{degraded_fabric, FaultInjector, FaultKind, FaultPlan, FaultWindow};
use numa_fio::{assemble_report, build_sim, run_jobs, FioReport, JobSpec};
use numa_iodev::NicOp;
use numa_topology::NodeId;

/// A mixed NIC+SSD submission exercising both directions of every device
/// port the dl585 hosts.
fn mixed_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::ssd(true, NodeId(6)).numjobs(2).size_gbytes(20.0),
        JobSpec::ssd(false, NodeId(0)).numjobs(2).size_gbytes(20.0),
        JobSpec::nic(NicOp::RdmaWrite, NodeId(4)).numjobs(2).size_gbytes(20.0),
    ]
}

/// Run the jobs on a fabric already degraded by the plan's kinds (static
/// what-if path).
fn static_path(plan: &FaultPlan) -> FioReport {
    let degraded = degraded_fabric(&dl585_fabric(), &plan.kinds()).unwrap();
    run_jobs(&degraded, &mixed_jobs()).unwrap()
}

/// Run the jobs on the pristine fabric with the plan armed as capacity
/// events (dynamic injection path).
fn dynamic_path(plan: &FaultPlan) -> FioReport {
    let fabric = dl585_fabric();
    let jobs = mixed_jobs();
    let (mut sim, flow_job) = build_sim(&fabric, &jobs).unwrap();
    FaultInjector::new(plan.clone()).arm(&mut sim, &fabric).unwrap();
    assemble_report(&jobs, sim.run().unwrap(), &flow_job)
}

fn assert_bit_identical(a: &FioReport, b: &FioReport) {
    assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits(), "makespan");
    assert_eq!(a.aggregate_gbps.to_bits(), b.aggregate_gbps.to_bits(), "aggregate");
    assert_eq!(a.jobs.len(), b.jobs.len());
    for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(ja.aggregate_gbps.to_bits(), jb.aggregate_gbps.to_bits(), "{}", ja.describe);
        assert_eq!(ja.per_stream_gbps.len(), jb.per_stream_gbps.len());
        for (ra, rb) in ja.per_stream_gbps.iter().zip(&jb.per_stream_gbps) {
            assert_eq!(ra.to_bits(), rb.to_bits(), "{}", ja.describe);
        }
    }
}

#[test]
fn ssd_card_stall_is_bit_identical_across_paths() {
    // Stall one SSD card (topology device 1) permanently at 40%.
    let plan = FaultPlan::new(10).with(FaultWindow::permanent(FaultKind::DeviceStall {
        device: 1,
        factor: 0.4,
    }));
    let s = static_path(&plan);
    let d = dynamic_path(&plan);
    assert_bit_identical(&s, &d);
    // And the stall is real: the SSD jobs slowed against the baseline.
    let base = run_jobs(&dl585_fabric(), &mixed_jobs()).unwrap();
    assert!(
        s.jobs[0].aggregate_gbps < base.jobs[0].aggregate_gbps - 1.0,
        "stalled write job: {} vs baseline {}",
        s.jobs[0].aggregate_gbps,
        base.jobs[0].aggregate_gbps
    );
}

#[test]
fn nic_stall_is_bit_identical_across_paths() {
    // The NIC is topology device 0; its PCIe wire feeds the RDMA job.
    let plan = FaultPlan::new(11).with(FaultWindow::permanent(FaultKind::DeviceStall {
        device: 0,
        factor: 0.3,
    }));
    let s = static_path(&plan);
    let d = dynamic_path(&plan);
    assert_bit_identical(&s, &d);
    let base = run_jobs(&dl585_fabric(), &mixed_jobs()).unwrap();
    assert!(
        s.jobs[2].aggregate_gbps < base.jobs[2].aggregate_gbps - 1.0,
        "stalled NIC job: {} vs baseline {}",
        s.jobs[2].aggregate_gbps,
        base.jobs[2].aggregate_gbps
    );
}

#[test]
fn multi_device_stall_plans_agree_too() {
    // Stall both SSD cards and the NIC in one plan: every device port the
    // harness lowers is touched, and the paths still agree bit for bit.
    let plan = FaultPlan::new(12)
        .with(FaultWindow::permanent(FaultKind::DeviceStall { device: 0, factor: 0.6 }))
        .with(FaultWindow::permanent(FaultKind::DeviceStall { device: 1, factor: 0.5 }))
        .with(FaultWindow::permanent(FaultKind::DeviceStall { device: 2, factor: 0.5 }));
    assert_bit_identical(&static_path(&plan), &dynamic_path(&plan));
}
