//! Property-based tests of the methodology's invariants: classification,
//! prediction, correlation, drift.

use numa_topology::{presets, NodeId};
use numio_core::{
    classify, diff_models, predict_for_mix, rank_correlation, ClassifyParams, IoModeler,
    IoPerfModel, SimPlatform, TransferMode, WorkloadMix,
};
use proptest::prelude::*;

fn arb_means() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(5.0f64..60.0, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn classification_partitions_and_orders(means in arb_means(), target in 0u16..8) {
        let topo = presets::dl585_testbed();
        let classes = classify(&topo, NodeId(target), &means, ClassifyParams::default());
        // Partition: every node exactly once.
        let mut seen: Vec<NodeId> = classes.iter().flat_map(|c| c.nodes.clone()).collect();
        seen.sort();
        prop_assert_eq!(seen, (0..8).map(NodeId).collect::<Vec<_>>());
        // Class 1 always holds target + neighbour.
        prop_assert!(classes[0].contains(NodeId(target)));
        prop_assert!(classes[0].contains(NodeId(target ^ 1)));
        // Remote classes strictly descend in average.
        for w in classes[1..].windows(2) {
            prop_assert!(w[0].avg_gbps > w[1].avg_gbps);
        }
        // Within each class stats are consistent.
        for c in &classes {
            prop_assert!(c.min_gbps <= c.avg_gbps && c.avg_gbps <= c.max_gbps);
        }
    }

    #[test]
    fn remote_class_gaps_exceed_threshold(means in arb_means(), threshold in 0.02f64..0.3) {
        // Between consecutive remote classes there is a genuine gap; within
        // a class, consecutive sorted members never gap more than the
        // threshold.
        let topo = presets::dl585_testbed();
        let params = ClassifyParams { gap_threshold: threshold, ..ClassifyParams::default() };
        let classes = classify(&topo, NodeId(7), &means, params);
        for w in classes[1..].windows(2) {
            let gap = (w[0].min_gbps - w[1].max_gbps) / w[0].min_gbps;
            prop_assert!(gap > threshold - 1e-9, "inter-class gap {gap} <= {threshold}");
        }
        for c in &classes[1..] {
            let mut bws: Vec<f64> = c.nodes.iter().map(|n| means[n.index()]).collect();
            bws.sort_by(|a, b| b.total_cmp(a));
            for w in bws.windows(2) {
                let gap = (w[0] - w[1]) / w[0];
                prop_assert!(gap <= threshold + 1e-9, "intra-class gap {gap} > {threshold}");
            }
        }
    }

    #[test]
    fn prediction_is_bounded_by_participating_classes(
        counts in proptest::collection::vec((0u16..8, 1u32..5), 1..5),
    ) {
        let platform = SimPlatform::dl585();
        let model = IoModeler::new().reps(5)
            .characterize(&platform, NodeId(7), TransferMode::Read);
        let mut mix = WorkloadMix::new();
        for &(node, count) in &counts {
            mix = mix.from_node(NodeId(node), count);
        }
        let p = predict_for_mix(&model, &mix);
        let class_avgs: Vec<f64> = counts
            .iter()
            .map(|&(n, _)| model.classes()[model.class_of(NodeId(n))].avg_gbps)
            .collect();
        let lo = class_avgs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = class_avgs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo},{hi}]");
    }

    #[test]
    fn rank_correlation_is_bounded_and_symmetric(
        a in proptest::collection::vec(0.0f64..100.0, 2..12),
        b_seed in any::<u64>(),
    ) {
        // Build b as a seeded shuffle-ish transformation of a's indices.
        let n = a.len();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(b_seed | 1) % 1000) as f64)
            .collect();
        let r = rank_correlation(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{r}");
        let r2 = rank_correlation(&b, &a);
        prop_assert!((r - r2).abs() < 1e-9, "not symmetric: {r} vs {r2}");
        // Self correlation is 1 unless constant.
        let rs = rank_correlation(&a, &a);
        prop_assert!(rs == 0.0 || (rs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drift_of_scaled_model_is_the_scale(factor in 0.7f64..1.3) {
        // Scaling every bandwidth uniformly never moves class memberships
        // and reports exactly the scale as drift.
        let platform = SimPlatform::dl585();
        let base = IoModeler::new().reps(5)
            .characterize(&platform, NodeId(7), TransferMode::Write);
        // Rebuild a scaled model by hand.
        let scaled_means: Vec<f64> = base.means().iter().map(|m| m * factor).collect();
        let topo = presets::dl585_testbed();
        let classes = classify(&topo, NodeId(7), &scaled_means, ClassifyParams::default());
        let per_node: Vec<numa_engine::Summary> = scaled_means
            .iter()
            .map(|&m| numa_engine::Summary::from(&[m]))
            .collect();
        let scaled = IoPerfModel::new(
            NodeId(7),
            TransferMode::Write,
            per_node,
            classes,
            base.platform.clone(),
        );
        let d = diff_models(&base, &scaled).unwrap();
        prop_assert!(d.moved.is_empty(), "{:?}", d.moved);
        prop_assert!((d.max_rel_delta - (factor - 1.0).abs()).abs() < 1e-9);
    }
}
