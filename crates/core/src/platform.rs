//! The probe surface the methodology runs against.

use numa_fabric::calibration::dl585_fabric;
use numa_fabric::Fabric;
use numa_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One pinned copy probe: `threads` workers bound to `bind`, each moving
/// `bytes_per_thread` from memory on `src` to memory on `dst`, repeated
/// `reps` times.
///
/// In the paper's methodology `bind` is always the *target* node (the one
/// with the I/O devices) so the copy threads stand in for the device's DMA
/// engine (Fig. 9); `src`/`dst` carry the direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CopySpec {
    /// Node the copy threads are pinned to.
    pub bind: NodeId,
    /// Node the source buffers are bound to.
    pub src: NodeId,
    /// Node the destination buffers are bound to.
    pub dst: NodeId,
    /// Worker threads (Algorithm 1: the core count of one node).
    pub threads: u32,
    /// Bytes each thread copies per repetition.
    pub bytes_per_thread: u64,
    /// Repetitions (Algorithm 1: 100).
    pub reps: u32,
}

impl CopySpec {
    /// Sanity-check the spec. Returns an error instead of panicking so
    /// callers driven by user input (job files, fault plans, the CLI) can
    /// surface the problem; the legacy panicking entry points funnel
    /// through this and preserve their historical messages.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.threads < 1 {
            return Err(PlatformError::ZeroThreads);
        }
        if self.reps < 1 {
            return Err(PlatformError::ZeroReps);
        }
        if self.bytes_per_thread == 0 {
            return Err(PlatformError::EmptyBuffer);
        }
        Ok(())
    }
}

/// Invalid probe requests against a [`Platform`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// `threads == 0`.
    ZeroThreads,
    /// `reps == 0`.
    ZeroReps,
    /// `bytes_per_thread == 0`.
    EmptyBuffer,
    /// A spec references a node the platform does not have.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes actually present.
        nodes: usize,
    },
    /// A platform was paired with a topology of a different size.
    NodeCountMismatch {
        /// Nodes the platform reports.
        platform: usize,
        /// Nodes the topology has.
        topology: usize,
    },
    /// The platform carries no topology handle, but the caller needed one
    /// (e.g. `IoModeler::characterize` without an explicit topology).
    NoTopology {
        /// The platform's [`Platform::label`].
        label: String,
    },
    /// The probe itself failed on a real-measurement backend (thread
    /// spawn, affinity binding, ...).
    Probe {
        /// The platform's [`Platform::label`].
        label: String,
        /// What went wrong, in the backend's own words.
        reason: String,
    },
    /// A replay backend has no recorded sample set for this exact spec.
    NoRecordedProbe {
        /// The spec that missed.
        spec: CopySpec,
    },
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The wording of the first four variants is load-bearing: the
        // panicking wrappers format this Display, and downstream
        // `#[should_panic(expected = ...)]` contracts match on it.
        match self {
            PlatformError::ZeroThreads => write!(f, "at least one copy thread"),
            PlatformError::ZeroReps => write!(f, "at least one repetition"),
            PlatformError::EmptyBuffer => write!(f, "buffers must be non-empty"),
            PlatformError::NodeOutOfRange { node, nodes } => {
                write!(f, "target out of range: {node:?} on a {nodes}-node platform")
            }
            PlatformError::NodeCountMismatch { platform, topology } => write!(
                f,
                "platform and topology disagree on node count ({platform} vs {topology})"
            ),
            PlatformError::NoTopology { label } => write!(
                f,
                "platform '{label}' carries no topology; pass one explicitly \
                 (characterize_with_topo) or use a backend that embeds it"
            ),
            PlatformError::Probe { label, reason } => {
                write!(f, "probe failed on '{label}': {reason}")
            }
            PlatformError::NoRecordedProbe { spec } => write!(
                f,
                "no recorded probe for bind {} src {} dst {} ({} threads, {} bytes, {} reps); \
                 the replay fixture does not cover this spec",
                spec.bind.index(),
                spec.src.index(),
                spec.dst.index(),
                spec.threads,
                spec.bytes_per_thread,
                spec.reps
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Where a platform's bandwidth samples come from in time.
///
/// Purely informational metadata: reports and fixtures carry it so a
/// reader can tell a simulated result from a wall-clock measurement from
/// a replayed capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ClockSource {
    /// Samples are functions of simulated time (deterministic).
    SimTime,
    /// Samples are real wall-clock measurements.
    WallClock,
    /// Samples were captured earlier and are replayed verbatim.
    Recorded,
}

impl std::fmt::Display for ClockSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClockSource::SimTime => write!(f, "sim-time"),
            ClockSource::WallClock => write!(f, "wall-clock"),
            ClockSource::Recorded => write!(f, "recorded"),
        }
    }
}

/// Anything the modeler can probe: the simulator, a real host, or (on a
/// real NUMA machine, outside this repo's scope) `libnuma`-pinned threads.
///
/// `Sync` is a supertrait so the modeler may fan probes out across
/// threads when [`parallel_probes`](Self::parallel_probes) allows it.
pub trait Platform: Sync {
    /// Number of NUMA nodes visible.
    fn num_nodes(&self) -> usize;

    /// CPU cores on one node (Algorithm 1 derives its thread count from
    /// this: `m = cores / nodes` in the paper's notation).
    fn cores_per_node(&self, node: NodeId) -> u32;

    /// Execute a probe, returning one aggregate bandwidth sample (Gbit/s)
    /// per repetition — the one required measurement entry point.
    ///
    /// Implementations may assume nothing about the spec and should return
    /// a typed [`PlatformError`] (not panic) on anything unexpected:
    /// callers normally reach this through
    /// [`try_run_copy`](Self::try_run_copy), which has already validated
    /// the spec structurally and range-checked its nodes.
    fn probe(&self, spec: &CopySpec) -> Result<Vec<f64>, PlatformError>;

    /// Execute a probe, panicking on an invalid spec or a failed
    /// measurement; use [`try_run_copy`](Self::try_run_copy) when the spec
    /// comes from user input. Kept for the historical call sites — the
    /// panic message is the typed error's `Display`.
    fn run_copy(&self, spec: &CopySpec) -> Vec<f64> {
        self.try_run_copy(spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`run_copy`](Self::run_copy): validates the spec (and its
    /// node references) before delegating to [`probe`](Self::probe).
    fn try_run_copy(&self, spec: &CopySpec) -> Result<Vec<f64>, PlatformError> {
        spec.validate()?;
        let nodes = self.num_nodes();
        for node in [spec.bind, spec.src, spec.dst] {
            if node.index() >= nodes {
                return Err(PlatformError::NodeOutOfRange { node, nodes });
            }
        }
        self.probe(spec)
    }

    /// May the modeler run several [`run_copy`](Self::run_copy) probes
    /// concurrently? Opt-in: only platforms whose probes are pure
    /// functions of the spec (per-cell seeding, no shared measured
    /// hardware) should return `true`. Defaults to `false` — the safe
    /// answer for real-measurement backends, where concurrent probes
    /// would contend for the very memory system being measured.
    fn parallel_probes(&self) -> bool {
        false
    }

    /// Nodes with I/O devices attached — characterization targets.
    /// Platforms that cannot tell return an empty list.
    fn io_nodes(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// A short label for reports.
    fn label(&self) -> String {
        "platform".to_string()
    }

    /// The topology this platform measures, when it knows one. The modeler
    /// uses this for the `characterize*` conveniences; platforms without a
    /// topology (e.g. a bare-shape host) return `None` and callers must
    /// supply one via `characterize_with_topo`.
    fn topology(&self) -> Option<&Topology> {
        None
    }

    /// The interconnect fabric behind this platform, when the backend is
    /// (or wraps) the simulator. Consumers that lower work onto the
    /// simulator — `fio::run_jobs`, the scheduler, fault injection — need
    /// this; measurement-only backends (host, replay) return `None` and
    /// those consumers surface a typed "no fabric" error.
    fn fabric(&self) -> Option<&Fabric> {
        None
    }

    /// Where this platform's samples come from in time.
    fn clock(&self) -> ClockSource {
        ClockSource::WallClock
    }

    /// Whether repeated identical probes return bit-identical samples.
    /// `true` for the seeded simulator and for replay; `false` for real
    /// hardware.
    fn deterministic(&self) -> bool {
        false
    }

    /// Stable short name of the backend family (`"sim"`, `"host"`,
    /// `"record"`, `"replay"`) — used as the `backend` label on probe
    /// metrics.
    fn backend_kind(&self) -> &'static str {
        "custom"
    }
}

/// The calibrated simulator as a [`Platform`].
#[derive(Debug, Clone)]
pub struct SimPlatform {
    fabric: Fabric,
    /// Per-repetition measurement noise amplitude.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SimPlatform {
    /// Wrap a fabric.
    pub fn new(fabric: Fabric) -> Self {
        SimPlatform { fabric, noise: 0.02, seed: 0xC0FFEE }
    }

    /// The paper's testbed.
    pub fn dl585() -> Self {
        Self::new(dl585_fabric())
    }

    /// Access the underlying fabric (for cross-checking experiments).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Disable noise (exact min-cut values).
    pub fn noiseless(mut self) -> Self {
        self.noise = 0.0;
        self
    }

    /// Validate a probe spec against this platform: structural sanity
    /// (threads, reps, buffer size) plus node-range checks against the
    /// wrapped fabric.
    pub fn validate(&self, spec: &CopySpec) -> Result<(), PlatformError> {
        spec.validate()?;
        let nodes = self.fabric.num_nodes();
        for node in [spec.bind, spec.src, spec.dst] {
            if node.index() >= nodes {
                return Err(PlatformError::NodeOutOfRange { node, nodes });
            }
        }
        Ok(())
    }
}

impl Platform for SimPlatform {
    fn num_nodes(&self) -> usize {
        self.fabric.num_nodes()
    }

    fn cores_per_node(&self, node: NodeId) -> u32 {
        self.fabric.topology().node(node).cores
    }

    fn probe(&self, spec: &CopySpec) -> Result<Vec<f64>, PlatformError> {
        self.validate(spec)?;
        // Pinned copy threads emulate a DMA engine at `bind`: with a full
        // complement of threads the transfer runs at the DMA min-cut of the
        // src->dst route; undersubscribed probes scale down.
        let cores = self.cores_per_node(spec.bind);
        let thread_scale = (spec.threads as f64 / cores as f64).min(1.0);
        // A probe not pinned to either endpoint pays an extra relay
        // penalty: the data crosses bind's cache hierarchy both ways.
        let relay = if spec.bind == spec.src || spec.bind == spec.dst || spec.src == spec.dst {
            1.0
        } else {
            0.82
        };
        let base = self.fabric.dma_path_bandwidth(spec.src, spec.dst) * thread_scale * relay;
        let cell_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((spec.bind.index() as u64) << 40)
            .wrapping_add((spec.src.index() as u64) << 20)
            .wrapping_add(spec.dst.index() as u64);
        let mut rng = StdRng::seed_from_u64(cell_seed);
        Ok((0..spec.reps)
            .map(|_| {
                if self.noise == 0.0 {
                    base
                } else {
                    base * (1.0 + rng.gen_range(-self.noise..=self.noise))
                }
            })
            .collect())
    }

    fn parallel_probes(&self) -> bool {
        // Every simulated cell is seeded from (bind, src, dst) alone, so
        // probes are order-independent and safe to run concurrently.
        true
    }

    fn io_nodes(&self) -> Vec<NodeId> {
        self.fabric.topology().io_hub_nodes()
    }

    fn label(&self) -> String {
        format!("sim:{}", self.fabric.topology().name())
    }

    fn topology(&self) -> Option<&Topology> {
        Some(self.fabric.topology())
    }

    fn fabric(&self) -> Option<&Fabric> {
        Some(&self.fabric)
    }

    fn clock(&self) -> ClockSource {
        ClockSource::SimTime
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn backend_kind(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl585_platform_shape() {
        let p = SimPlatform::dl585();
        assert_eq!(p.num_nodes(), 8);
        assert_eq!(p.cores_per_node(NodeId(3)), 4);
        assert_eq!(p.io_nodes(), vec![NodeId(7)]);
        assert!(p.label().contains("dl585"));
    }

    #[test]
    fn sim_capability_metadata() {
        let p = SimPlatform::dl585();
        assert_eq!(Platform::topology(&p).map(|t| t.name()), Some("dl585-g7"));
        assert!(Platform::fabric(&p).is_some());
        assert_eq!(p.clock(), ClockSource::SimTime);
        assert!(p.deterministic());
        assert_eq!(p.backend_kind(), "sim");
        // The trait's probe and the legacy run_copy agree.
        let spec = CopySpec {
            bind: NodeId(7),
            src: NodeId(3),
            dst: NodeId(7),
            threads: 4,
            bytes_per_thread: 1 << 20,
            reps: 3,
        };
        assert_eq!(p.probe(&spec).unwrap(), p.run_copy(&spec));
    }

    #[test]
    fn full_thread_probe_hits_min_cut() {
        let p = SimPlatform::dl585().noiseless();
        let spec = CopySpec {
            bind: NodeId(7),
            src: NodeId(3),
            dst: NodeId(7),
            threads: 4,
            bytes_per_thread: 64 << 20,
            reps: 3,
        };
        let samples = p.run_copy(&spec);
        assert_eq!(samples.len(), 3);
        for s in samples {
            assert!((s - 26.0).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn undersubscribed_probe_scales_down() {
        let p = SimPlatform::dl585().noiseless();
        let mut spec = CopySpec {
            bind: NodeId(7),
            src: NodeId(7),
            dst: NodeId(6),
            threads: 2,
            bytes_per_thread: 1 << 20,
            reps: 1,
        };
        let half = p.run_copy(&spec)[0];
        spec.threads = 4;
        let full = p.run_copy(&spec)[0];
        assert!((half - full / 2.0).abs() < 1e-9);
        spec.threads = 64;
        assert_eq!(p.run_copy(&spec)[0], full, "oversubscription does not help");
    }

    #[test]
    fn relay_probe_pays_a_penalty() {
        let p = SimPlatform::dl585().noiseless();
        let direct = CopySpec {
            bind: NodeId(7),
            src: NodeId(7),
            dst: NodeId(6),
            threads: 4,
            bytes_per_thread: 1 << 20,
            reps: 1,
        };
        let relayed = CopySpec { bind: NodeId(0), ..direct };
        assert!(p.run_copy(&relayed)[0] < p.run_copy(&direct)[0]);
    }

    #[test]
    fn noise_is_seeded_and_bounded() {
        let p = SimPlatform::dl585();
        let spec = CopySpec {
            bind: NodeId(7),
            src: NodeId(5),
            dst: NodeId(7),
            threads: 4,
            bytes_per_thread: 1 << 20,
            reps: 50,
        };
        let a = p.run_copy(&spec);
        let b = p.run_copy(&spec);
        assert_eq!(a, b);
        for s in &a {
            assert!((s - 45.0).abs() <= 45.0 * 0.021, "{s}");
        }
        assert!(a.iter().any(|&s| (s - 45.0).abs() > 1e-6), "noise present");
    }

    #[test]
    fn validate_reports_typed_errors() {
        let p = SimPlatform::dl585();
        let good = CopySpec {
            bind: NodeId(0),
            src: NodeId(0),
            dst: NodeId(7),
            threads: 4,
            bytes_per_thread: 1 << 20,
            reps: 1,
        };
        assert_eq!(p.validate(&good), Ok(()));
        assert_eq!(
            p.validate(&CopySpec { threads: 0, ..good }),
            Err(PlatformError::ZeroThreads)
        );
        assert_eq!(
            p.validate(&CopySpec { reps: 0, ..good }),
            Err(PlatformError::ZeroReps)
        );
        assert_eq!(
            p.validate(&CopySpec { bytes_per_thread: 0, ..good }),
            Err(PlatformError::EmptyBuffer)
        );
        let bad = p.validate(&CopySpec { dst: NodeId(42), ..good }).unwrap_err();
        assert_eq!(bad, PlatformError::NodeOutOfRange { node: NodeId(42), nodes: 8 });
        assert!(bad.to_string().contains("target out of range"), "{bad}");
    }

    #[test]
    fn try_run_copy_matches_run_copy_and_rejects_bad_specs() {
        let p = SimPlatform::dl585();
        let spec = CopySpec {
            bind: NodeId(7),
            src: NodeId(3),
            dst: NodeId(7),
            threads: 4,
            bytes_per_thread: 1 << 20,
            reps: 3,
        };
        assert_eq!(p.try_run_copy(&spec).unwrap(), p.run_copy(&spec));
        assert_eq!(
            p.try_run_copy(&CopySpec { src: NodeId(99), ..spec }),
            Err(PlatformError::NodeOutOfRange { node: NodeId(99), nodes: 8 })
        );
    }

    #[test]
    #[should_panic(expected = "at least one copy thread")]
    fn zero_threads_rejected() {
        let p = SimPlatform::dl585();
        let spec = CopySpec {
            bind: NodeId(0),
            src: NodeId(0),
            dst: NodeId(0),
            threads: 0,
            bytes_per_thread: 1,
            reps: 1,
        };
        let _ = p.run_copy(&spec);
    }
}
