//! Eq. 1: aggregate bandwidth prediction for multi-user workloads.
//!
//! With a target node's performance model in hand, the expected aggregate
//! bandwidth of a device shared by accesses from several classes is the
//! access-share-weighted mean of the class bandwidths:
//!
//! ```text
//! BW_io = Σᵢ αᵢ% · BWᵢ          (Eq. 1)
//! ```
//!
//! The paper validates this for RDMA_READ with two processes on node 2 and
//! two on node 0: predicted 20.017 Gbps vs measured 19.415 Gbps, a 3.1%
//! relative error.

use crate::model::IoPerfModel;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// A multi-user workload: how many concurrent accesses come from each node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// `(node, access count)` pairs.
    pub accesses: Vec<(NodeId, u32)>,
}

impl WorkloadMix {
    /// Empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `count` accesses from `node`.
    pub fn from_node(mut self, node: NodeId, count: u32) -> Self {
        assert!(count > 0, "zero-count entries are meaningless");
        self.accesses.push((node, count));
        self
    }

    /// Total access count.
    pub fn total(&self) -> u32 {
        self.accesses.iter().map(|(_, c)| c).sum()
    }
}

/// Eq. 1 over explicit `(class bandwidth, share)` terms. Shares must sum
/// to 1 (within rounding).
pub fn predict_aggregate(terms: &[(f64, f64)]) -> f64 {
    assert!(!terms.is_empty(), "prediction needs at least one class");
    let share_sum: f64 = terms.iter().map(|(_, s)| s).sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-6,
        "shares must sum to 1, got {share_sum}"
    );
    terms.iter().map(|(bw, s)| bw * s).sum()
}

/// Eq. 1 for a concrete workload against a model: each access contributes
/// its node's **class-average** bandwidth (that is the point of the model —
/// per-node probing is unnecessary once classes are known).
pub fn predict_for_mix(model: &IoPerfModel, mix: &WorkloadMix) -> f64 {
    assert!(!mix.accesses.is_empty(), "empty workload");
    let total = mix.total() as f64;
    let mut sum = 0.0;
    for &(node, count) in &mix.accesses {
        let class = &model.classes()[model.class_of(node)];
        sum += class.avg_gbps * count as f64 / total;
    }
    sum
}

/// Relative error `|predicted - measured| / measured` (§V-B).
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    numa_engine::stats::relative_error(predicted, measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransferMode;
    use crate::modeler::IoModeler;
    use crate::platform::SimPlatform;
    use numa_fabric::calibration::paper;

    #[test]
    fn paper_worked_example_predicts_20_017() {
        // 50% from class 2 (21.998) + 50% from class 3 (18.036).
        let p = predict_aggregate(&[(paper::EQ1_CLASS2_BW, 0.5), (paper::EQ1_CLASS3_BW, 0.5)]);
        assert!((p - paper::EQ1_PREDICTED).abs() < 1e-9, "{p}");
    }

    #[test]
    fn mix_prediction_against_simulated_measurement() {
        // End-to-end: model from the methodology, prediction from Eq. 1,
        // "measurement" from the fio runner; error within a few percent,
        // like the paper's 3.1%.
        use numa_fio::{run_jobs, JobSpec};
        use numa_iodev::NicOp;

        let platform = SimPlatform::dl585();
        let model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);
        // The model's class averages stand in for per-protocol levels via
        // the RDMA_READ curve at the class representatives:
        let mix = WorkloadMix::new().from_node(NodeId(2), 2).from_node(NodeId(0), 2);
        // Predict in protocol units by scaling class averages with the
        // RDMA_READ map (the model itself is in memcpy units).
        let nic = numa_iodev::NicModel::paper();
        let f = platform.fabric();
        let terms: Vec<(f64, f64)> = mix
            .accesses
            .iter()
            .map(|&(node, count)| {
                let class = &model.classes()[model.class_of(node)];
                // Evaluate the protocol curve at the class-average memcpy bw.
                let bw = nic.map(NicOp::RdmaRead).eval(class.avg_gbps);
                (bw, count as f64 / mix.total() as f64)
            })
            .collect();
        let predicted = predict_aggregate(&terms);

        let jobs = [
            JobSpec::nic(NicOp::RdmaRead, NodeId(2)).numjobs(2).size_gbytes(50.0),
            JobSpec::nic(NicOp::RdmaRead, NodeId(0)).numjobs(2).size_gbytes(50.0),
        ];
        let measured = run_jobs(f, &jobs).unwrap().aggregate_gbps;
        let err = relative_error(predicted, measured);
        assert!(err < 0.06, "predicted {predicted}, measured {measured}, err {err}");
        assert!(err > 0.001, "prediction should not be exact (mixture vs contention)");
    }

    #[test]
    fn homogeneous_mix_predicts_class_average() {
        let platform = SimPlatform::dl585();
        let model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Write);
        let mix = WorkloadMix::new().from_node(NodeId(2), 3);
        let p = predict_for_mix(&model, &mix);
        let class = &model.classes()[model.class_of(NodeId(2))];
        assert_eq!(p, class.avg_gbps);
    }

    #[test]
    fn mix_total_counts() {
        let mix = WorkloadMix::new().from_node(NodeId(0), 2).from_node(NodeId(5), 3);
        assert_eq!(mix.total(), 5);
    }

    #[test]
    #[should_panic(expected = "shares must sum to 1")]
    fn bad_shares_rejected() {
        let _ = predict_aggregate(&[(10.0, 0.7), (20.0, 0.7)]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_terms_rejected() {
        let _ = predict_aggregate(&[]);
    }

    #[test]
    #[should_panic(expected = "zero-count")]
    fn zero_count_rejected() {
        let _ = WorkloadMix::new().from_node(NodeId(0), 0);
    }
}
