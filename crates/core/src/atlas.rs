//! The host atlas: every (target, direction) model of one machine, as a
//! single persistable artifact.
//!
//! A cluster scheduler characterizes each host once and ships the atlas
//! with the machine; placement decisions then index it by the device node
//! and transfer direction. This is the natural on-disk product of the
//! paper's tool once it is run host-wide (§V-B's "generalized to other
//! nodes in the host").

use crate::model::{IoPerfModel, TransferMode};
use crate::modeler::IoModeler;
use crate::platform::Platform;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// A complete set of models for one host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Atlas {
    /// Platform label all models came from.
    pub platform: String,
    models: Vec<IoPerfModel>,
}

impl Atlas {
    /// Build from models (all must share the platform label).
    pub fn new(models: Vec<IoPerfModel>) -> Self {
        assert!(!models.is_empty(), "atlas needs at least one model");
        let platform = models[0].platform.clone();
        assert!(
            models.iter().all(|m| m.platform == platform),
            "all models must come from one platform"
        );
        Atlas { platform, models }
    }

    /// Characterize every node of any backend, both directions (in
    /// parallel when the platform's probes are pure).
    pub fn characterize<P: Platform>(platform: &P, modeler: &IoModeler) -> Self {
        Self::new(modeler.characterize_full_host(platform))
    }

    /// Look up the model for a device node and direction.
    pub fn model(&self, target: NodeId, mode: TransferMode) -> Option<&IoPerfModel> {
        self.models
            .iter()
            .find(|m| m.target == target && m.mode == mode)
    }

    /// All models.
    pub fn models(&self) -> &[IoPerfModel] {
        &self.models
    }

    /// Targets covered.
    pub fn targets(&self) -> Vec<NodeId> {
        let mut t: Vec<NodeId> = self.models.iter().map(|m| m.target).collect();
        t.sort();
        t.dedup();
        t
    }

    /// Persist as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("atlas serializes")
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Diff against a newer atlas: per-(target, mode) drift reports for
    /// every model both atlases cover.
    pub fn diff(
        &self,
        newer: &Atlas,
    ) -> Vec<(NodeId, TransferMode, crate::drift::ModelDiff)> {
        let mut out = Vec::new();
        for m in &self.models {
            if let Some(n) = newer.model(m.target, m.mode) {
                if let Ok(d) = crate::drift::diff(m, n) {
                    out.push((m.target, m.mode, d));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimPlatform;

    fn atlas() -> Atlas {
        let platform = SimPlatform::dl585();
        Atlas::characterize(&platform, &IoModeler::new().reps(3))
    }

    #[test]
    fn covers_every_node_and_direction() {
        let a = atlas();
        assert_eq!(a.models().len(), 16);
        assert_eq!(a.targets(), (0..8).map(NodeId).collect::<Vec<_>>());
        for n in 0..8u16 {
            for mode in TransferMode::ALL {
                let m = a.model(NodeId(n), mode).expect("model present");
                assert_eq!(m.target, NodeId(n));
                assert_eq!(m.mode, mode);
            }
        }
        assert!(a.model(NodeId(99), TransferMode::Read).is_none());
    }

    #[test]
    fn json_round_trip_preserves_lookups() {
        let a = atlas();
        let back = Atlas::from_json(&a.to_json()).unwrap();
        assert_eq!(back.platform, a.platform);
        assert_eq!(
            back.model(NodeId(7), TransferMode::Write).unwrap().classes().len(),
            3
        );
    }

    #[test]
    fn self_diff_is_everywhere_stable() {
        let a = atlas();
        let diffs = a.diff(&a);
        assert_eq!(diffs.len(), 16);
        for (_, _, d) in diffs {
            assert!(d.is_stable(1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_atlas_rejected() {
        let _ = Atlas::new(vec![]);
    }
}
