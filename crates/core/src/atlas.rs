//! The host atlas: every (target, direction) model of one machine, as a
//! single persistable artifact.
//!
//! A cluster scheduler characterizes each host once and ships the atlas
//! with the machine; placement decisions then index it by the device node
//! and transfer direction. This is the natural on-disk product of the
//! paper's tool once it is run host-wide (§V-B's "generalized to other
//! nodes in the host").

use crate::model::{IoPerfModel, TransferMode};
use crate::modeler::IoModeler;
use crate::platform::{Platform, PlatformError};
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from building or persisting an [`Atlas`].
#[derive(Debug, Clone, PartialEq)]
pub enum AtlasError {
    /// An atlas needs at least one model.
    Empty,
    /// Models from more than one platform were mixed.
    PlatformMismatch {
        /// Label of the first model.
        expected: String,
        /// The conflicting label encountered.
        found: String,
    },
    /// A characterization probe failed.
    Probe(PlatformError),
    /// JSON serialization failed.
    Serialize(String),
}

impl fmt::Display for AtlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtlasError::Empty => write!(f, "atlas needs at least one model"),
            AtlasError::PlatformMismatch { expected, found } => write!(
                f,
                "all models must come from one platform (expected {expected:?}, found {found:?})"
            ),
            AtlasError::Probe(e) => write!(f, "atlas characterization probe failed: {e}"),
            AtlasError::Serialize(e) => write!(f, "atlas does not serialize: {e}"),
        }
    }
}

impl std::error::Error for AtlasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtlasError::Probe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for AtlasError {
    fn from(e: PlatformError) -> Self {
        AtlasError::Probe(e)
    }
}

/// A complete set of models for one host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Atlas {
    /// Platform label all models came from.
    pub platform: String,
    models: Vec<IoPerfModel>,
}

impl Atlas {
    /// Build from models (all must share the platform label).
    pub fn new(models: Vec<IoPerfModel>) -> Result<Self, AtlasError> {
        let Some(first) = models.first() else {
            return Err(AtlasError::Empty);
        };
        let platform = first.platform.clone();
        if let Some(stray) = models.iter().find(|m| m.platform != platform) {
            return Err(AtlasError::PlatformMismatch {
                expected: platform,
                found: stray.platform.clone(),
            });
        }
        Ok(Atlas { platform, models })
    }

    /// Characterize every node of any backend, both directions (in
    /// parallel when the platform's probes are pure).
    pub fn characterize<P: Platform>(
        platform: &P,
        modeler: &IoModeler,
    ) -> Result<Self, AtlasError> {
        Self::new(modeler.try_characterize_full_host(platform)?)
    }

    /// Look up the model for a device node and direction.
    pub fn model(&self, target: NodeId, mode: TransferMode) -> Option<&IoPerfModel> {
        self.models
            .iter()
            .find(|m| m.target == target && m.mode == mode)
    }

    /// All models.
    pub fn models(&self) -> &[IoPerfModel] {
        &self.models
    }

    /// Targets covered.
    pub fn targets(&self) -> Vec<NodeId> {
        let mut t: Vec<NodeId> = self.models.iter().map(|m| m.target).collect();
        t.sort();
        t.dedup();
        t
    }

    /// Persist as JSON.
    pub fn to_json(&self) -> Result<String, AtlasError> {
        serde_json::to_string_pretty(self).map_err(|e| AtlasError::Serialize(e.to_string()))
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Diff against a newer atlas: per-(target, mode) drift reports for
    /// every model both atlases cover.
    pub fn diff(
        &self,
        newer: &Atlas,
    ) -> Vec<(NodeId, TransferMode, crate::drift::ModelDiff)> {
        let mut out = Vec::new();
        for m in &self.models {
            if let Some(n) = newer.model(m.target, m.mode) {
                if let Ok(d) = crate::drift::diff(m, n) {
                    out.push((m.target, m.mode, d));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimPlatform;

    fn atlas() -> Atlas {
        let platform = SimPlatform::dl585();
        Atlas::characterize(&platform, &IoModeler::new().reps(3)).unwrap()
    }

    #[test]
    fn covers_every_node_and_direction() {
        let a = atlas();
        assert_eq!(a.models().len(), 16);
        assert_eq!(a.targets(), (0..8).map(NodeId).collect::<Vec<_>>());
        for n in 0..8u16 {
            for mode in TransferMode::ALL {
                let m = a.model(NodeId(n), mode).expect("model present");
                assert_eq!(m.target, NodeId(n));
                assert_eq!(m.mode, mode);
            }
        }
        assert!(a.model(NodeId(99), TransferMode::Read).is_none());
    }

    #[test]
    fn json_round_trip_preserves_lookups() {
        let a = atlas();
        let back = Atlas::from_json(&a.to_json().unwrap()).unwrap();
        assert_eq!(back.platform, a.platform);
        assert_eq!(
            back.model(NodeId(7), TransferMode::Write).unwrap().classes().len(),
            3
        );
    }

    #[test]
    fn self_diff_is_everywhere_stable() {
        let a = atlas();
        let diffs = a.diff(&a);
        assert_eq!(diffs.len(), 16);
        for (_, _, d) in diffs {
            assert!(d.is_stable(1e-9));
        }
    }

    #[test]
    fn empty_atlas_rejected() {
        // Regression: this was an `assert!` that panicked before the
        // fallible-API migration.
        assert_eq!(Atlas::new(vec![]).unwrap_err(), AtlasError::Empty);
    }

    #[test]
    fn mixed_platforms_rejected() {
        let a = atlas();
        let mut models = a.models().to_vec();
        models[1].platform = "other:host".to_string();
        let expected = models[0].platform.clone();
        assert_eq!(
            Atlas::new(models).unwrap_err(),
            AtlasError::PlatformMismatch { expected, found: "other:host".to_string() }
        );
    }

    #[test]
    fn probe_failure_surfaces_as_typed_error() {
        // A platform with no recorded probes cannot be characterized; the
        // probe error must surface through `characterize`, not panic.
        struct NoProbe(numa_topology::Topology);
        impl Platform for NoProbe {
            fn num_nodes(&self) -> usize {
                self.0.num_nodes()
            }
            fn cores_per_node(&self, _node: NodeId) -> u32 {
                4
            }
            fn probe(&self, _spec: &crate::CopySpec) -> Result<Vec<f64>, PlatformError> {
                Err(PlatformError::Probe {
                    label: self.label(),
                    reason: "always fails".to_string(),
                })
            }
            fn topology(&self) -> Option<&numa_topology::Topology> {
                Some(&self.0)
            }
            fn label(&self) -> String {
                "test:noprobe".into()
            }
        }
        let p = NoProbe(numa_topology::presets::fig1a());
        let err = Atlas::characterize(&p, &IoModeler::new().reps(2)).unwrap_err();
        assert!(matches!(err, AtlasError::Probe(PlatformError::Probe { .. })), "{err:?}");
    }
}
