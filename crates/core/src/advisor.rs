//! Scheduler assistance (§V-B, third application).
//!
//! "In a multi-user environment, binding all I/O tasks to their local node
//! will lead to severe performance degradation due to the contention of
//! shared resource. With the knowledge of our performance model, the task
//! scheduler can distribute application processes to nodes in the same
//! class or the classes with the same performance."

use crate::model::IoPerfModel;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// A per-task node assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// One binding node per task.
    pub assignments: Vec<NodeId>,
}

impl Placement {
    /// How many tasks land on each node: `(node, count)` sorted by node.
    pub fn histogram(&self) -> Vec<(NodeId, u32)> {
        let mut h: Vec<(NodeId, u32)> = Vec::new();
        for &n in &self.assignments {
            match h.iter_mut().find(|(m, _)| *m == n) {
                Some((_, c)) => *c += 1,
                None => h.push((n, 1)),
            }
        }
        h.sort_by_key(|&(n, _)| n);
        h
    }

    /// Highest per-node task count — the contention proxy the advisor
    /// minimizes.
    pub fn max_load(&self) -> u32 {
        self.histogram().iter().map(|&(_, c)| c).max().unwrap_or(0)
    }
}

/// Model-driven placement advisor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleAdvisor {
    /// Classes whose average is within this fraction of the best class are
    /// treated as equivalent spreading targets (the paper's RDMA_WRITE
    /// example: classes 1 and 2 have "almost identical performance").
    pub equivalence_tolerance: f64,
    /// Prefer keeping tasks off the device-local node (it also services
    /// interrupts — §IV-B1) as long as other eligible nodes exist.
    pub avoid_irq_node: bool,
}

impl Default for ScheduleAdvisor {
    fn default() -> Self {
        ScheduleAdvisor { equivalence_tolerance: 0.06, avoid_irq_node: true }
    }
}

impl ScheduleAdvisor {
    /// Default advisor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nodes eligible for spreading: members of every class whose average
    /// bandwidth is within the tolerance of the best class's average.
    pub fn eligible_nodes(&self, model: &IoPerfModel) -> Vec<NodeId> {
        let best = model.classes()[0].avg_gbps;
        let mut nodes: Vec<NodeId> = model
            .classes()
            .iter()
            .filter(|c| c.avg_gbps >= best * (1.0 - self.equivalence_tolerance))
            .flat_map(|c| c.nodes.clone())
            .collect();
        nodes.sort();
        if self.avoid_irq_node && nodes.len() > 1 {
            // Move the device-local node to the back of the rotation.
            if let Some(pos) = nodes.iter().position(|&n| n == model.target) {
                let t = nodes.remove(pos);
                nodes.push(t);
            }
        }
        nodes
    }

    /// Spread `tasks` round-robin across the eligible nodes.
    pub fn place(&self, model: &IoPerfModel, tasks: usize) -> Placement {
        let nodes = self.eligible_nodes(model);
        assert!(!nodes.is_empty(), "model has no classes");
        Placement {
            assignments: (0..tasks).map(|i| nodes[i % nodes.len()]).collect(),
        }
    }

    /// The baseline the paper argues against: everything on the
    /// device-local node.
    pub fn naive_local(&self, model: &IoPerfModel, tasks: usize) -> Placement {
        Placement { assignments: vec![model.target; tasks] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransferMode;
    use crate::modeler::IoModeler;
    use crate::platform::SimPlatform;

    fn write_model() -> IoPerfModel {
        IoModeler::new()
            .reps(5)
            .characterize(&SimPlatform::dl585(), NodeId(7), TransferMode::Write)
    }

    #[test]
    fn eligible_nodes_span_equivalent_classes() {
        let model = write_model();
        // Write model: class 1 {6,7} avg ~50, class 2 {0,1,4,5} avg ~44.7
        // (11% below) — with a 15% tolerance both are eligible; class 3
        // ({2,3}, ~47% below) never is.
        let adv = ScheduleAdvisor { equivalence_tolerance: 0.15, avoid_irq_node: true };
        let nodes = adv.eligible_nodes(&model);
        assert!(nodes.contains(&NodeId(6)));
        assert!(nodes.contains(&NodeId(0)));
        assert!(!nodes.contains(&NodeId(2)));
        assert!(!nodes.contains(&NodeId(3)));
        // IRQ node rotated to the back.
        assert_eq!(*nodes.last().unwrap(), NodeId(7));
    }

    #[test]
    fn tight_tolerance_keeps_only_class1() {
        let model = write_model();
        let adv = ScheduleAdvisor { equivalence_tolerance: 0.01, avoid_irq_node: false };
        let nodes = adv.eligible_nodes(&model);
        assert_eq!(nodes, vec![NodeId(6), NodeId(7)]);
    }

    #[test]
    fn place_spreads_and_naive_piles_up() {
        let model = write_model();
        let adv = ScheduleAdvisor { equivalence_tolerance: 0.15, avoid_irq_node: true };
        let spread = adv.place(&model, 6);
        let naive = adv.naive_local(&model, 6);
        assert_eq!(spread.assignments.len(), 6);
        assert_eq!(naive.assignments, vec![NodeId(7); 6]);
        assert!(spread.max_load() <= 1, "{:?}", spread.histogram());
        assert_eq!(naive.max_load(), 6);
    }

    #[test]
    fn round_robin_wraps() {
        let model = write_model();
        let adv = ScheduleAdvisor { equivalence_tolerance: 0.01, avoid_irq_node: false };
        let p = adv.place(&model, 5);
        // Two eligible nodes {6,7}: loads 3 and 2.
        let hist = p.histogram();
        assert_eq!(hist.iter().map(|&(_, c)| c).sum::<u32>(), 5);
        assert_eq!(p.max_load(), 3);
    }

    #[test]
    fn histogram_orders_by_node() {
        let p = Placement {
            assignments: vec![NodeId(5), NodeId(1), NodeId(5), NodeId(0)],
        };
        assert_eq!(
            p.histogram(),
            vec![(NodeId(0), 1), (NodeId(1), 1), (NodeId(5), 2)]
        );
        assert_eq!(p.max_load(), 2);
    }

    #[test]
    fn empty_placement_max_load_is_zero() {
        let p = Placement { assignments: vec![] };
        assert_eq!(p.max_load(), 0);
    }
}
