//! Algorithm 1: NUMA I/O performance modelling.

use crate::classify::{classify, ClassifyParams};
use crate::model::{IoPerfModel, TransferMode};
use crate::platform::{CopySpec, Platform, PlatformError};
use numa_engine::Summary;
use numa_topology::{NodeId, Topology};

/// The paper's `iomodel` module (added to `numademo`), generalized over a
/// [`Platform`].
///
/// Algorithm 1, line by line:
///
/// ```text
/// n <- numa_num_configured_nodes()
/// m <- num_configured_cores() / n
/// for i in 1..=n:
///     if mode == write: src[i] on node i, snk[i] on node k
///     if mode == read:  src[i] on node k, snk[i] on node i
///     spawn m threads bound to node k, copy src->snk 100 times,
///     record the average bandwidth
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoModeler {
    /// Repetitions per node pair (Algorithm 1: 100).
    pub reps: u32,
    /// Bytes each thread copies per repetition. Large enough to defeat
    /// caches; 64 MiB mirrors the bulk-transfer regime.
    pub bytes_per_thread: u64,
    /// Explicit thread count; `None` = one per core of the target node
    /// (the algorithm's `m`).
    pub threads: Option<u32>,
    /// Classifier knobs.
    pub classify: ClassifyParams,
}

impl Default for IoModeler {
    fn default() -> Self {
        IoModeler {
            reps: 100,
            bytes_per_thread: 64 << 20,
            threads: None,
            classify: ClassifyParams::default(),
        }
    }
}

impl IoModeler {
    /// Paper defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the repetition count.
    pub fn reps(mut self, reps: u32) -> Self {
        self.reps = reps;
        self
    }

    /// Characterize `target` in one direction. Needs the topology for the
    /// local+neighbour class rule.
    ///
    /// Panics on a target/topology mismatch; prefer
    /// [`Self::try_characterize_with_topo`] when those come from user input.
    pub fn characterize_with_topo<P: Platform>(
        &self,
        platform: &P,
        topo: &Topology,
        target: NodeId,
        mode: TransferMode,
    ) -> IoPerfModel {
        self.characterize_inner(platform, topo, target, mode, None)
    }

    /// Fallible [`Self::characterize_with_topo`]: a bad target node or a
    /// platform/topology size mismatch comes back as a typed error.
    pub fn try_characterize_with_topo<P: Platform>(
        &self,
        platform: &P,
        topo: &Topology,
        target: NodeId,
        mode: TransferMode,
    ) -> Result<IoPerfModel, PlatformError> {
        self.try_characterize_inner(platform, topo, target, mode, None)
    }

    /// [`Self::characterize_with_topo`], recording per-rep bandwidth
    /// histograms (`numio_probe_gbps{node,mode}`) and per-node probe
    /// counters (`numio_probes_total{node}`) into `obs`.
    pub fn characterize_observed<P: Platform>(
        &self,
        platform: &P,
        topo: &Topology,
        target: NodeId,
        mode: TransferMode,
        obs: &numa_obs::Obs,
    ) -> IoPerfModel {
        self.characterize_inner(platform, topo, target, mode, Some(obs))
    }

    fn characterize_inner<P: Platform>(
        &self,
        platform: &P,
        topo: &Topology,
        target: NodeId,
        mode: TransferMode,
        obs: Option<&numa_obs::Obs>,
    ) -> IoPerfModel {
        self.try_characterize_inner(platform, topo, target, mode, obs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_characterize_inner<P: Platform>(
        &self,
        platform: &P,
        topo: &Topology,
        target: NodeId,
        mode: TransferMode,
        obs: Option<&numa_obs::Obs>,
    ) -> Result<IoPerfModel, PlatformError> {
        let n = platform.num_nodes();
        if n != topo.num_nodes() {
            return Err(PlatformError::NodeCountMismatch {
                platform: n,
                topology: topo.num_nodes(),
            });
        }
        if target.index() >= n {
            return Err(PlatformError::NodeOutOfRange { node: target, nodes: n });
        }
        let m = self.threads.unwrap_or_else(|| platform.cores_per_node(target));
        let _span = obs.map(|o| o.span("modeler.characterize"));
        let mode_label = match mode {
            TransferMode::Write => "write",
            TransferMode::Read => "read",
        };

        let spec_for = |i: usize| {
            let node = NodeId::new(i);
            let (src, dst) = match mode {
                TransferMode::Write => (node, target),
                TransferMode::Read => (target, node),
            };
            CopySpec {
                bind: target,
                src,
                dst,
                threads: m,
                bytes_per_thread: self.bytes_per_thread,
                reps: self.reps,
            }
        };
        // Per-node probes are independent; fan out when the platform's
        // probes are pure (per-cell seeding => results are byte-identical
        // to the serial loop, in the same node order). With obs attached
        // keep the serial path so probe spans and events interleave the
        // way the exporters' golden tests expect.
        let all_samples: Vec<Vec<f64>> = if obs.is_none() && platform.parallel_probes() {
            numa_par::map_indexed(n, |i| platform.try_run_copy(&spec_for(i)))
                .into_iter()
                .collect::<Result<_, _>>()?
        } else {
            let mut collected = Vec::with_capacity(n);
            for i in 0..n {
                let probe_span = obs.map(|o| o.span("modeler.probe_node"));
                let samples = platform.try_run_copy(&spec_for(i))?;
                drop(probe_span);
                collected.push(samples);
            }
            collected
        };
        let mut per_node = Vec::with_capacity(n);
        for (i, samples) in all_samples.iter().enumerate() {
            let node = NodeId::new(i);
            let summary = Summary::from(samples);
            if let Some(o) = obs {
                let node_label = node.to_string();
                o.counter(
                    "numio_probes_total",
                    &[("node", node_label.as_str()), ("backend", platform.backend_kind())],
                )
                .add(samples.len() as u64);
                let hist = o.histogram(
                    "numio_probe_gbps",
                    &[("node", node_label.as_str()), ("mode", mode_label)],
                    numa_obs::buckets::GBPS,
                );
                for &s in samples {
                    hist.observe(s);
                }
                o.event(
                    "probe_summary",
                    i as f64,
                    &[
                        ("node", node_label.as_str().into()),
                        ("mode", mode_label.into()),
                        ("mean_gbps", numa_obs::Value::from(summary.mean)),
                        ("reps", numa_obs::Value::from(summary.n)),
                    ],
                );
            }
            per_node.push(summary);
        }
        let means: Vec<f64> = per_node.iter().map(|s| s.mean).collect();
        let classes = classify(topo, target, &means, self.classify);
        Ok(IoPerfModel::new(target, mode, per_node, classes, platform.label()))
    }

    /// Characterize on a platform that carries its own topology (the
    /// simulator, a discovered host, a replay fixture).
    ///
    /// Panics when the platform has no topology; prefer
    /// [`Self::try_characterize`] for user-driven backends.
    pub fn characterize<P: Platform>(
        &self,
        platform: &P,
        target: NodeId,
        mode: TransferMode,
    ) -> IoPerfModel {
        self.try_characterize(platform, target, mode)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::characterize`]: a platform without a topology
    /// handle yields [`PlatformError::NoTopology`].
    pub fn try_characterize<P: Platform>(
        &self,
        platform: &P,
        target: NodeId,
        mode: TransferMode,
    ) -> Result<IoPerfModel, PlatformError> {
        let topo = platform
            .topology()
            .ok_or_else(|| PlatformError::NoTopology { label: platform.label() })?;
        self.try_characterize_inner(platform, topo, target, mode, None)
    }

    /// Fallible [`Self::characterize_observed`].
    pub fn try_characterize_observed<P: Platform>(
        &self,
        platform: &P,
        topo: &Topology,
        target: NodeId,
        mode: TransferMode,
        obs: &numa_obs::Obs,
    ) -> Result<IoPerfModel, PlatformError> {
        self.try_characterize_inner(platform, topo, target, mode, Some(obs))
    }

    /// Characterize both directions of every I/O node the platform knows
    /// about — the full system model.
    pub fn characterize_all<P: Platform>(&self, platform: &P) -> Vec<IoPerfModel> {
        let mut models = Vec::new();
        for target in platform.io_nodes() {
            for mode in TransferMode::ALL {
                models.push(self.characterize(platform, target, mode));
            }
        }
        models
    }
}

impl IoModeler {
    /// Characterize **every node** of the platform as a hypothetical device
    /// site, both directions. Returns `2 * n` models ordered `(node 0
    /// write, node 0 read, node 1 write, ...)` — the full host atlas a
    /// cluster scheduler would persist.
    ///
    /// Platforms with pure probes ([`Platform::parallel_probes`]) fan out
    /// across threads ([`numa_par::map_indexed`]); everything else — real
    /// hardware, recording wrappers that must log probes in a stable
    /// order — runs serially. Deterministic either way: every model
    /// equals what the serial loop would produce in the same slot.
    pub fn characterize_full_host<P: Platform>(&self, platform: &P) -> Vec<IoPerfModel> {
        self.try_characterize_full_host(platform)
            .unwrap_or_else(|e| panic!("characterize_full_host: {e}"))
    }

    /// Fallible [`Self::characterize_full_host`]: a probe failure in any
    /// slot surfaces as the lowest-index error instead of a panic. Same
    /// ordering and parallelism contract as the panicking variant.
    pub fn try_characterize_full_host<P: Platform>(
        &self,
        platform: &P,
    ) -> Result<Vec<IoPerfModel>, PlatformError> {
        let n = platform.num_nodes();
        let model_for = |k: usize| {
            let target = NodeId::new(k / 2);
            let mode = TransferMode::ALL[k % 2];
            self.try_characterize(platform, target, mode)
        };
        let slots: Vec<Result<IoPerfModel, PlatformError>> = if platform.parallel_probes() {
            numa_par::map_indexed(2 * n, model_for)
        } else {
            (0..2 * n).map(model_for).collect()
        };
        slots.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimPlatform;
    use numa_fabric::calibration::paper;

    #[test]
    fn write_model_reproduces_table_iv() {
        let p = SimPlatform::dl585();
        let model = IoModeler::new().characterize(&p, NodeId(7), TransferMode::Write);
        assert_eq!(model.classes().len(), 3);
        for (class, nodes) in model.classes().iter().zip(paper::WRITE_CLASSES) {
            assert_eq!(
                class.nodes,
                nodes.iter().map(|&n| NodeId(n)).collect::<Vec<_>>()
            );
        }
        // Class averages within 3.5% of Table IV.
        for (class, &want) in model.classes().iter().zip(&paper::WRITE_MEMCPY_AVG) {
            assert!(
                (class.avg_gbps - want).abs() / want < 0.035,
                "{} vs {want}",
                class.avg_gbps
            );
        }
    }

    #[test]
    fn read_model_reproduces_table_v() {
        let p = SimPlatform::dl585();
        let model = IoModeler::new().characterize(&p, NodeId(7), TransferMode::Read);
        assert_eq!(model.classes().len(), 4);
        for (class, nodes) in model.classes().iter().zip(paper::READ_CLASSES) {
            assert_eq!(
                class.nodes,
                nodes.iter().map(|&n| NodeId(n)).collect::<Vec<_>>()
            );
        }
        for (class, &want) in model.classes().iter().zip(&paper::READ_MEMCPY_AVG) {
            assert!(
                (class.avg_gbps - want).abs() / want < 0.035,
                "{} vs {want}",
                class.avg_gbps
            );
        }
    }

    #[test]
    fn read_model_matches_50_percent_probe_savings() {
        // §V-B: 4 classes over 8 nodes => half the test cases.
        let p = SimPlatform::dl585();
        let model = IoModeler::new().characterize(&p, NodeId(7), TransferMode::Read);
        assert!((model.probe_savings() - 0.5).abs() < 1e-12);
        assert_eq!(model.representatives().len(), 4);
    }

    #[test]
    fn observed_characterization_records_probes() {
        let p = SimPlatform::dl585();
        let obs = numa_obs::Obs::new();
        let reps = 5u32;
        let model = IoModeler::new().reps(reps).characterize_observed(
            &p,
            p.fabric().topology(),
            NodeId(7),
            TransferMode::Write,
            &obs,
        );
        // Same result as the unobserved path.
        let plain = IoModeler::new().reps(reps).characterize(&p, NodeId(7), TransferMode::Write);
        assert_eq!(model, plain);
        // 8 nodes probed `reps` times each, attributed to the sim backend.
        assert_eq!(
            obs.counter("numio_probes_total", &[("node", "N0"), ("backend", "sim")]).get(),
            u64::from(reps)
        );
        let prom = obs.prometheus();
        assert!(
            prom.contains("numio_probe_gbps_count{mode=\"write\",node=\"N7\"} 5"),
            "{prom}"
        );
        assert!(obs.jsonl().contains("\"ev\":\"probe_summary\""));
    }

    #[test]
    fn model_is_reproducible() {
        let p = SimPlatform::dl585();
        let a = IoModeler::new().characterize(&p, NodeId(7), TransferMode::Write);
        let b = IoModeler::new().characterize(&p, NodeId(7), TransferMode::Write);
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_reps_still_classify() {
        let p = SimPlatform::dl585();
        let model = IoModeler::new().reps(5).characterize(&p, NodeId(7), TransferMode::Write);
        assert_eq!(model.classes().len(), 3);
        assert_eq!(model.per_node[0].n, 5);
    }

    #[test]
    fn characterize_all_covers_both_directions() {
        let p = SimPlatform::dl585();
        let models = IoModeler::new().reps(3).characterize_all(&p);
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].mode, TransferMode::Write);
        assert_eq!(models[1].mode, TransferMode::Read);
        assert!(models.iter().all(|m| m.target == NodeId(7)));
    }

    #[test]
    fn other_targets_characterize_too() {
        let p = SimPlatform::dl585();
        let model = IoModeler::new().reps(3).characterize(&p, NodeId(0), TransferMode::Write);
        assert_eq!(model.classes()[0].nodes, vec![NodeId(0), NodeId(1)]);
        assert!(model.classes().len() >= 2);
    }

    #[test]
    fn full_host_atlas_is_ordered_and_matches_serial() {
        let p = SimPlatform::dl585();
        let modeler = IoModeler::new().reps(3);
        let atlas = modeler.characterize_full_host(&p);
        assert_eq!(atlas.len(), 16);
        for (i, chunk) in atlas.chunks(2).enumerate() {
            assert_eq!(chunk[0].target, NodeId::new(i));
            assert_eq!(chunk[0].mode, TransferMode::Write);
            assert_eq!(chunk[1].mode, TransferMode::Read);
        }
        // Parallel result equals serial result (determinism preserved).
        let serial = modeler.characterize(&p, NodeId(7), TransferMode::Read);
        assert_eq!(atlas[15], serial);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn bad_target_rejected() {
        let p = SimPlatform::dl585();
        let _ = IoModeler::new().characterize(&p, NodeId(99), TransferMode::Write);
    }

    #[test]
    fn try_characterize_reports_typed_errors() {
        use crate::platform::PlatformError;
        let p = SimPlatform::dl585();
        let err = IoModeler::new()
            .try_characterize(&p, NodeId(99), TransferMode::Write)
            .unwrap_err();
        assert_eq!(err, PlatformError::NodeOutOfRange { node: NodeId(99), nodes: 8 });
        // Mismatched topology: pair the 8-node platform with a 2-node topo.
        let mut b = numa_topology::Topology::builder("tiny");
        let n0 = b.node(
            numa_topology::NodeSpec::magny_cours(numa_topology::PackageId(0)).with_os_home(),
        );
        let n1 = b.node(numa_topology::NodeSpec::magny_cours(numa_topology::PackageId(0)));
        b.link(n0, n1, numa_topology::HtWidth::W16);
        let small = b.build().unwrap();
        let err = IoModeler::new()
            .try_characterize_with_topo(&p, &small, NodeId(0), TransferMode::Write)
            .unwrap_err();
        assert!(matches!(err, PlatformError::NodeCountMismatch { platform: 8, topology: 2 }));
        // The happy path agrees with the panicking one.
        let ok = IoModeler::new()
            .reps(3)
            .try_characterize(&p, NodeId(7), TransferMode::Write)
            .unwrap();
        assert_eq!(ok, IoModeler::new().reps(3).characterize(&p, NodeId(7), TransferMode::Write));
    }
}
