//! A best-effort real-machine backend for the methodology.
//!
//! [`HostPlatform`] runs the same Algorithm 1 probes as the simulator, but
//! with real threads doing real `memcpy` on the machine executing this
//! code (the measurement loop itself lives in `numa_memsys::CopyProbe`,
//! next to the real STREAM kernels). It does **not** pin threads or memory
//! (that requires `libnuma` / `numactl`, outside this reproduction's
//! dependency budget — see DESIGN.md §7): on a NUMA host, run the binary
//! under `numactl --cpunodebind=K --membind=I` exactly as the paper ran
//! STREAM; on a UMA host every "node" measures the same and the classifier
//! correctly reports a single remote class.
//!
//! Shape comes from one of three places: an explicit node count
//! ([`HostPlatform::new`], which also attaches a matching preset topology
//! for the 4- and 8-node shapes), a fully explicit shape
//! ([`HostPlatform::with_shape`]), or real sysfs discovery
//! ([`HostPlatform::discover`]).

use crate::platform::{ClockSource, CopySpec, Platform, PlatformError};
use numa_memsys::CopyProbe;
use numa_topology::{presets, sysfs, NodeId, Topology};

/// Real-memcpy probe backend.
#[derive(Debug, Clone)]
pub struct HostPlatform {
    nodes: usize,
    cores_per_node: u32,
    topology: Option<Topology>,
}

impl HostPlatform {
    /// A platform with `nodes` NUMA nodes and up to 4 worker cores each
    /// (probe labelling only; without pinning all probes hit the same
    /// physical memory). The 4- and 8-node shapes get a matching preset
    /// topology attached so the modeler's convenience entry points work
    /// without an explicit topology.
    pub fn new(nodes: usize) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(4);
        let topology = match nodes {
            4 => Some(presets::intel_4s4n()),
            8 => Some(presets::amd_4s8n()),
            _ => None,
        };
        HostPlatform { nodes, cores_per_node: parallelism.clamp(1, 4), topology }
    }

    /// A platform with a fully explicit shape and no topology attached.
    pub fn with_shape(nodes: usize, cores_per_node: u32) -> Self {
        HostPlatform { nodes, cores_per_node: cores_per_node.max(1), topology: None }
    }

    /// Discover the shape of the machine we are running on from a sysfs
    /// node tree rooted at `root` (pass `/sys/devices/system/node` for the
    /// live system). The discovered [`Topology`] is attached, so
    /// `characterize` works directly on the result.
    pub fn discover_from_root(root: &std::path::Path) -> Result<Self, sysfs::SysfsError> {
        let discovered = sysfs::discover_from_root(root, &[])?;
        let topo = discovered.topology;
        let nodes = topo.num_nodes();
        let cores = (0..nodes)
            .map(|n| topo.node(NodeId(n as u16)).cores)
            .max()
            .unwrap_or(1)
            .max(1);
        Ok(HostPlatform { nodes, cores_per_node: cores, topology: Some(topo) })
    }

    /// [`discover_from_root`](Self::discover_from_root) against the live
    /// `/sys` tree.
    pub fn discover() -> Result<Self, sysfs::SysfsError> {
        Self::discover_from_root(std::path::Path::new("/sys/devices/system/node"))
    }
}

impl Platform for HostPlatform {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn cores_per_node(&self, _node: NodeId) -> u32 {
        self.cores_per_node
    }

    fn probe(&self, spec: &CopySpec) -> Result<Vec<f64>, PlatformError> {
        spec.validate()?;
        let probe = CopyProbe {
            threads: spec.threads,
            bytes_per_thread: spec.bytes_per_thread,
            reps: spec.reps,
        };
        probe.run().map_err(|e| PlatformError::Probe {
            label: Platform::label(self),
            reason: e.to_string(),
        })
    }

    fn label(&self) -> String {
        format!("host:{}-nodes", self.nodes)
    }

    fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    fn clock(&self) -> ClockSource {
        ClockSource::WallClock
    }

    fn backend_kind(&self) -> &'static str {
        "host"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransferMode;
    use crate::modeler::IoModeler;

    fn quick_spec() -> CopySpec {
        CopySpec {
            bind: NodeId(0),
            src: NodeId(0),
            dst: NodeId(1),
            threads: 2,
            bytes_per_thread: 1 << 20, // 1 MiB: fast enough for CI
            reps: 3,
        }
    }

    #[test]
    fn real_copies_produce_positive_bandwidth() {
        let p = HostPlatform::new(2);
        let samples = p.run_copy(&quick_spec());
        assert_eq!(samples.len(), 3);
        for s in samples {
            assert!(s > 0.1, "memcpy slower than 0.1 Gbps is implausible: {s}");
            assert!(s.is_finite());
        }
    }

    #[test]
    fn modeler_runs_end_to_end_on_the_host() {
        // On a UMA machine all nodes look alike => class 1 (target +
        // neighbour) plus one big remote class, never more classes than
        // nodes.
        use numa_topology::{presets, Topology};
        let topo: Topology = presets::intel_4s4n();
        let p = HostPlatform::new(4);
        let modeler = IoModeler {
            reps: 2,
            bytes_per_thread: 1 << 20,
            threads: Some(2),
            ..IoModeler::new()
        };
        let model = modeler.characterize_with_topo(&p, &topo, NodeId(0), TransferMode::Write);
        assert_eq!(model.per_node.len(), 4);
        assert!(!model.classes().is_empty());
        assert!(model.classes().len() <= 4);
        assert!(model.platform.starts_with("host:"));
    }

    #[test]
    fn shape_reporting() {
        let p = HostPlatform::new(8);
        assert_eq!(p.num_nodes(), 8);
        assert!(p.cores_per_node(NodeId(0)) >= 1);
        assert!(p.cores_per_node(NodeId(0)) <= 4);
    }

    #[test]
    fn known_shapes_carry_a_topology() {
        assert_eq!(
            HostPlatform::new(4).topology().map(|t| t.num_nodes()),
            Some(4)
        );
        assert_eq!(
            HostPlatform::new(8).topology().map(|t| t.num_nodes()),
            Some(8)
        );
        assert!(HostPlatform::new(3).topology().is_none());
        assert!(HostPlatform::with_shape(2, 2).topology().is_none());
    }

    #[test]
    fn host_capability_metadata() {
        let p = HostPlatform::new(2);
        assert_eq!(p.clock(), ClockSource::WallClock);
        assert!(!p.deterministic());
        assert_eq!(p.backend_kind(), "host");
        assert!(Platform::fabric(&p).is_none());
        // Bad specs come back typed, not as panics.
        let e = p.try_run_copy(&CopySpec { threads: 0, ..quick_spec() }).unwrap_err();
        assert_eq!(e, PlatformError::ZeroThreads);
    }
}
