//! A best-effort real-machine backend for the methodology.
//!
//! [`HostPlatform`] runs the same Algorithm 1 probes as the simulator, but
//! with real threads doing real `memcpy` on the machine executing this
//! code. It does **not** pin threads or memory (that requires `libnuma` /
//! `numactl`, outside this reproduction's dependency budget — see
//! DESIGN.md §7): on a NUMA host, run the binary under
//! `numactl --cpunodebind=K --membind=I` exactly as the paper ran STREAM;
//! on a UMA host every "node" measures the same and the classifier
//! correctly reports a single remote class.

use crate::platform::{CopySpec, Platform};
use bytes::BytesMut;
use numa_topology::NodeId;
use parking_lot::Mutex;
use std::time::Instant;

/// Real-memcpy probe backend.
#[derive(Debug, Clone)]
pub struct HostPlatform {
    /// How many NUMA nodes to pretend the host has (probe labelling only;
    /// without pinning all probes hit the same physical memory).
    pub nodes: usize,
    /// Reported cores per node.
    pub cores_per_node: u32,
}

impl HostPlatform {
    /// A platform mirroring the testbed's 8x4 shape.
    pub fn new(nodes: usize) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(4);
        HostPlatform { nodes, cores_per_node: parallelism.clamp(1, 4) }
    }
}

impl Platform for HostPlatform {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn cores_per_node(&self, _node: NodeId) -> u32 {
        self.cores_per_node
    }

    fn run_copy(&self, spec: &CopySpec) -> Vec<f64> {
        spec.validate().unwrap_or_else(|e| panic!("{e}"));
        let bytes = spec.bytes_per_thread as usize;
        let threads = spec.threads as usize;
        // One source/sink pair per worker, touched once to fault pages in.
        let mut buffers: Vec<(BytesMut, BytesMut)> = (0..threads)
            .map(|_| {
                let src = BytesMut::zeroed(bytes);
                let dst = BytesMut::zeroed(bytes);
                (src, dst)
            })
            .collect();

        let mut samples = Vec::with_capacity(spec.reps as usize);
        for _ in 0..spec.reps {
            // Per-thread timings land in a shared vector; the repetition's
            // bandwidth is total bytes over the slowest worker (all workers
            // must finish, as in Algorithm 1's thread_join loop).
            let durations: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(threads));
            crossbeam::thread::scope(|s| {
                for (src, dst) in buffers.iter_mut() {
                    let src: &[u8] = &src[..];
                    let dst: &mut [u8] = &mut dst[..];
                    let durations = &durations;
                    s.spawn(move |_| {
                        let start = Instant::now();
                        dst.copy_from_slice(src);
                        // Keep the copy observable.
                        std::hint::black_box(dst.first().copied());
                        durations.lock().push(start.elapsed().as_secs_f64());
                    });
                }
            })
            .expect("copy worker panicked");
            let slowest = durations
                .lock()
                .iter()
                .cloned()
                .fold(0.0_f64, f64::max)
                .max(1e-9);
            let gbits = (bytes * threads) as f64 * 8.0 / 1e9;
            samples.push(gbits / slowest);
        }
        samples
    }

    fn label(&self) -> String {
        format!("host:{}-nodes", self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransferMode;
    use crate::modeler::IoModeler;

    fn quick_spec() -> CopySpec {
        CopySpec {
            bind: NodeId(0),
            src: NodeId(0),
            dst: NodeId(1),
            threads: 2,
            bytes_per_thread: 1 << 20, // 1 MiB: fast enough for CI
            reps: 3,
        }
    }

    #[test]
    fn real_copies_produce_positive_bandwidth() {
        let p = HostPlatform::new(2);
        let samples = p.run_copy(&quick_spec());
        assert_eq!(samples.len(), 3);
        for s in samples {
            assert!(s > 0.1, "memcpy slower than 0.1 Gbps is implausible: {s}");
            assert!(s.is_finite());
        }
    }

    #[test]
    fn modeler_runs_end_to_end_on_the_host() {
        // On a UMA machine all nodes look alike => class 1 (target +
        // neighbour) plus one big remote class, never more classes than
        // nodes.
        use numa_topology::{presets, Topology};
        let topo: Topology = presets::intel_4s4n();
        let p = HostPlatform::new(4);
        let modeler = IoModeler {
            reps: 2,
            bytes_per_thread: 1 << 20,
            threads: Some(2),
            ..IoModeler::new()
        };
        let model = modeler.characterize_with_topo(&p, &topo, NodeId(0), TransferMode::Write);
        assert_eq!(model.per_node.len(), 4);
        assert!(!model.classes().is_empty());
        assert!(model.classes().len() <= 4);
        assert!(model.platform.starts_with("host:"));
    }

    #[test]
    fn shape_reporting() {
        let p = HostPlatform::new(8);
        assert_eq!(p.num_nodes(), 8);
        assert!(p.cores_per_node(NodeId(0)) >= 1);
        assert!(p.cores_per_node(NodeId(0)) <= 4);
    }
}
