//! Storage-tier characterization: Table IV/V analogues for the SSDs.
//!
//! The paper's methodology characterizes the *path* (per-node memcpy
//! probes, Algorithm 1) and shows the same class structure governs every
//! device protocol. This module closes the loop for storage: it runs the
//! ordinary probe characterization against the SSD attach node, then maps
//! each node's **measured** probe bandwidth through the calibrated SSD
//! rate curves — engine efficiency, O_DIRECT vs buffered, read/write
//! asymmetry, and any active `device_stall` derate — and re-classifies.
//! The result is an [`IoPerfModel`] per (engine × access mode ×
//! direction): the storage rows of Tables IV/V, produced by the same
//! machinery that builds the NIC tables, noise and faults included.

use crate::classify::classify;
use crate::model::{IoPerfModel, TransferMode};
use crate::modeler::IoModeler;
use crate::platform::{Platform, PlatformError};
use numa_engine::Summary;
use numa_iodev::{IoEngine, SsdModel};
use serde::{Deserialize, Serialize};

/// One storage operating point: I/O engine × access mode. The paper's
/// §IV-B3 grid is sync/libaio × buffered/direct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StorageConfig {
    /// fio I/O engine (sync or libaio with a queue depth).
    pub engine: IoEngine,
    /// Kernel bypass (O_DIRECT) vs page-cache buffered access.
    pub direct: bool,
}

impl StorageConfig {
    /// The paper's measurement configuration: libaio QD16, O_DIRECT.
    pub fn paper() -> Self {
        StorageConfig { engine: IoEngine::Libaio { iodepth: 16 }, direct: true }
    }

    /// The §IV-B3 grid, paper configuration first.
    pub const ALL: [StorageConfig; 4] = [
        StorageConfig { engine: IoEngine::Libaio { iodepth: 16 }, direct: true },
        StorageConfig { engine: IoEngine::Libaio { iodepth: 16 }, direct: false },
        StorageConfig { engine: IoEngine::Sync, direct: true },
        StorageConfig { engine: IoEngine::Sync, direct: false },
    ];

    /// Stable textual tag, e.g. `libaio16-direct`, `sync-buffered`. Used
    /// in model labels, cache keys, and the CLI `--device` suffix.
    pub fn tag(&self) -> String {
        let engine = match self.engine {
            IoEngine::Sync => "sync".to_string(),
            IoEngine::Libaio { iodepth } => format!("libaio{iodepth}"),
        };
        let access = if self.direct { "direct" } else { "buffered" };
        format!("{engine}-{access}")
    }

    /// Parse a [`Self::tag`]-shaped string.
    pub fn parse(s: &str) -> Option<Self> {
        let (engine, access) = s.rsplit_once('-')?;
        let direct = match access {
            "direct" => true,
            "buffered" => false,
            _ => return None,
        };
        let engine = if engine == "sync" {
            IoEngine::Sync
        } else {
            let depth = engine.strip_prefix("libaio")?;
            let iodepth: u32 = depth.parse().ok()?;
            if iodepth == 0 {
                return None;
            }
            IoEngine::Libaio { iodepth }
        };
        Some(StorageConfig { engine, direct })
    }
}

/// Which device view a characterization or prediction request addresses.
/// The default [`DeviceSelector::Probe`] is the paper's memcpy model; a
/// storage selector reshapes the same probes through the SSD curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceSelector {
    /// The raw memcpy path model (Algorithm 1 as-is).
    Probe,
    /// The host's SSD subsystem at one operating point.
    Ssd(StorageConfig),
}

impl DeviceSelector {
    /// Parse a CLI/wire device string: `probe` (or `memcpy`), `ssd0` (the
    /// paper operating point), or `ssd0:<cfg>` with a
    /// [`StorageConfig::tag`] suffix, e.g. `ssd0:sync-buffered`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "probe" | "memcpy" => Some(DeviceSelector::Probe),
            "ssd0" => Some(DeviceSelector::Ssd(StorageConfig::paper())),
            other => {
                let cfg = other.strip_prefix("ssd0:")?;
                Some(DeviceSelector::Ssd(StorageConfig::parse(cfg)?))
            }
        }
    }

    /// Stable textual tag (inverse of [`Self::parse`]).
    pub fn tag(&self) -> String {
        match self {
            DeviceSelector::Probe => "probe".to_string(),
            DeviceSelector::Ssd(cfg) => format!("ssd0:{}", cfg.tag()),
        }
    }
}

/// Everything that can go wrong producing a storage model.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// The backend exposes no fabric (real host, replay fixture): storage
    /// curves hang off the fabric's device list.
    NoFabric {
        /// The backend's label.
        label: String,
    },
    /// The fabric hosts no SSD devices.
    NoSsd {
        /// The backend's label.
        label: String,
    },
    /// The underlying probe characterization failed.
    Probe(PlatformError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NoFabric { label } => {
                write!(f, "backend '{label}' exposes no fabric for storage characterization")
            }
            StorageError::NoSsd { label } => {
                write!(f, "backend '{label}' hosts no SSD devices")
            }
            StorageError::Probe(e) => write!(f, "storage probe characterization failed: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Probe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for StorageError {
    fn from(e: PlatformError) -> Self {
        StorageError::Probe(e)
    }
}

/// Characterize the host's SSD subsystem at one operating point and
/// direction: run the memcpy probe characterization against the SSD
/// attach node, map each node's measured probe bandwidth through the SSD
/// rate curves (engine efficiency × access mode × active device derates),
/// and re-classify with the ordinary gap rule. `Write` models disk
/// writes (data flows into the cards), `Read` models reads back.
pub fn characterize_storage<P: Platform>(
    modeler: &IoModeler,
    platform: &P,
    cfg: StorageConfig,
    mode: TransferMode,
) -> Result<IoPerfModel, StorageError> {
    let fabric = platform
        .fabric()
        .ok_or_else(|| StorageError::NoFabric { label: platform.label() })?;
    let ssd = SsdModel::for_fabric(fabric)
        .ok_or_else(|| StorageError::NoSsd { label: platform.label() })?;
    // A stalled card derates the aggregate in proportion: with the dl585's
    // two cards, stalling one at factor f leaves (1 + f) / 2 of the
    // subsystem. This is exactly what the dynamic injector's per-card
    // port throttle costs a card-striped workload in aggregate.
    let derate = ssd
        .device_ids
        .iter()
        .map(|&d| fabric.device_derate(d))
        .sum::<f64>()
        / ssd.device_ids.len().max(1) as f64;
    let write = mode == TransferMode::Write;
    let base = modeler.try_characterize(platform, ssd.node, mode)?;

    let per_node: Vec<Summary> = base
        .per_node
        .iter()
        .map(|s| {
            let level = |path: f64| ssd.level_for_path(write, path, cfg.engine, cfg.direct) * derate;
            let mean = level(s.mean);
            let (a, b) = (level(s.min), level(s.max));
            // The read curve is empirical (wiggles), so re-order the
            // mapped endpoints; preserve the probes' *relative* spread for
            // the std column, since the curves are locally near-linear.
            let rel_std = if s.mean > 0.0 { s.std / s.mean } else { 0.0 };
            Summary { n: s.n, min: a.min(b), max: a.max(b), mean, std: rel_std * mean }
        })
        .collect();
    let means: Vec<f64> = per_node.iter().map(|s| s.mean).collect();
    let topo = fabric.topology();
    let classes = classify(topo, ssd.node, &means, modeler.classify);
    Ok(IoPerfModel::new(
        ssd.node,
        mode,
        per_node,
        classes,
        format!("{}/{}", base.platform, DeviceSelector::Ssd(cfg).tag()),
    ))
}

/// The full storage atlas: every §IV-B3 operating point
/// ([`StorageConfig::ALL`]) in both directions, write before read —
/// 8 models, deterministic order. The storage counterpart of
/// `IoModeler::characterize_full_host`.
pub fn characterize_storage_full_host<P: Platform>(
    modeler: &IoModeler,
    platform: &P,
) -> Result<Vec<IoPerfModel>, StorageError> {
    let mut out = Vec::with_capacity(StorageConfig::ALL.len() * 2);
    for cfg in StorageConfig::ALL {
        for mode in TransferMode::ALL {
            out.push(characterize_storage(modeler, platform, cfg, mode)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimPlatform;
    use numa_topology::NodeId;

    fn modeler() -> IoModeler {
        IoModeler::new().reps(10)
    }

    #[test]
    fn config_tags_round_trip() {
        for cfg in StorageConfig::ALL {
            assert_eq!(StorageConfig::parse(&cfg.tag()), Some(cfg), "{}", cfg.tag());
        }
        assert_eq!(StorageConfig::parse("libaio4-buffered").unwrap().engine, IoEngine::Libaio {
            iodepth: 4
        });
        assert_eq!(StorageConfig::parse("gremlins"), None);
        assert_eq!(StorageConfig::parse("libaio0-direct"), None);
        assert_eq!(StorageConfig::parse("sync-sideways"), None);
    }

    #[test]
    fn device_selector_parses_cli_strings() {
        assert_eq!(DeviceSelector::parse("probe"), Some(DeviceSelector::Probe));
        assert_eq!(DeviceSelector::parse("memcpy"), Some(DeviceSelector::Probe));
        assert_eq!(
            DeviceSelector::parse("ssd0"),
            Some(DeviceSelector::Ssd(StorageConfig::paper()))
        );
        let sel = DeviceSelector::parse("ssd0:sync-buffered").unwrap();
        assert_eq!(
            sel,
            DeviceSelector::Ssd(StorageConfig { engine: IoEngine::Sync, direct: false })
        );
        assert_eq!(DeviceSelector::parse(&sel.tag()), Some(sel), "tag round-trips");
        assert_eq!(DeviceSelector::parse("ssd1"), None);
        assert_eq!(DeviceSelector::parse("ssd0:warp9"), None);
    }

    #[test]
    fn storage_write_classes_reproduce_table_iv_partition() {
        let sim = SimPlatform::dl585();
        let model = characterize_storage(
            &modeler(),
            &sim,
            StorageConfig::paper(),
            TransferMode::Write,
        )
        .unwrap();
        assert_eq!(model.target, NodeId(7), "SSDs attach to node 7");
        let classes: Vec<Vec<u16>> = model
            .classes()
            .iter()
            .map(|c| c.nodes.iter().map(|n| n.0).collect())
            .collect();
        assert_eq!(classes, vec![vec![6, 7], vec![0, 1, 4, 5], vec![2, 3]]);
        // Levels sit on the Table IV SSD row.
        assert!((model.node_gbps(NodeId(7)) - 29.1).abs() < 0.5, "{}", model.node_gbps(NodeId(7)));
        assert!((model.node_gbps(NodeId(3)) - 17.9).abs() < 0.5, "{}", model.node_gbps(NodeId(3)));
    }

    #[test]
    fn storage_read_puts_node4_at_the_bottom() {
        // Table V: the read response path to node 4 crosses the narrow
        // 27.9 Gbps link, so node 4 is the bottom class alone.
        let sim = SimPlatform::dl585();
        let model =
            characterize_storage(&modeler(), &sim, StorageConfig::paper(), TransferMode::Read)
                .unwrap();
        let last = model.classes().last().unwrap();
        assert_eq!(last.nodes, vec![NodeId(4)]);
        assert!((model.node_gbps(NodeId(4)) - 18.5).abs() < 0.5);
    }

    #[test]
    fn engine_and_access_mode_scale_whole_tables() {
        let sim = SimPlatform::dl585();
        let m = modeler();
        let fast = characterize_storage(&m, &sim, StorageConfig::paper(), TransferMode::Read)
            .unwrap();
        let sync_buffered = characterize_storage(
            &m,
            &sim,
            StorageConfig { engine: IoEngine::Sync, direct: false },
            TransferMode::Read,
        )
        .unwrap();
        for n in 0..8u16 {
            let ratio = sync_buffered.node_gbps(NodeId(n)) / fast.node_gbps(NodeId(n));
            // sync ≈ QD1 ramp × buffered 0.45.
            let want = IoEngine::Sync.efficiency() * 0.45;
            assert!((ratio - want).abs() < 1e-9, "node {n}: {ratio} vs {want}");
        }
    }

    #[test]
    fn device_stall_derates_the_storage_tables() {
        let sim = SimPlatform::dl585();
        let m = modeler();
        let base =
            characterize_storage(&m, &sim, StorageConfig::paper(), TransferMode::Write).unwrap();
        // Stall card 1 (topology device 1) at 50%: the two-card aggregate
        // keeps (1 + 0.5) / 2 = 75%.
        let mut stalled = SimPlatform::new(sim.fabric().with_device_derate(1, 0.5));
        stalled.noise = sim.noise;
        stalled.seed = sim.seed;
        let faulted =
            characterize_storage(&m, &stalled, StorageConfig::paper(), TransferMode::Write)
                .unwrap();
        for n in 0..8u16 {
            let ratio = faulted.node_gbps(NodeId(n)) / base.node_gbps(NodeId(n));
            assert!((ratio - 0.75).abs() < 1e-9, "node {n}: {ratio}");
        }
    }

    #[test]
    fn storage_characterization_is_seed_deterministic() {
        let sim = SimPlatform::dl585();
        let m = modeler();
        let a = characterize_storage_full_host(&m, &sim).unwrap();
        let b = characterize_storage_full_host(&m, &sim).unwrap();
        assert_eq!(a.len(), 8, "4 configs x 2 directions");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap(),
                "bit-identical reruns"
            );
        }
    }

    #[test]
    fn fabric_less_backends_are_typed_errors() {
        let host = crate::HostPlatform::with_shape(8, 4);
        let err = characterize_storage(
            &modeler(),
            &host,
            StorageConfig::paper(),
            TransferMode::Write,
        )
        .unwrap_err();
        assert_eq!(err, StorageError::NoFabric { label: "host:8-nodes".to_string() });
        assert!(err.to_string().contains("no fabric"), "{err}");
    }

    #[test]
    fn fabric_without_ssds_is_a_typed_error() {
        use numa_fabric::calibration::generic_fabric;
        let bare = SimPlatform::new(generic_fabric(numa_topology::presets::fig1a()));
        let err = characterize_storage(
            &modeler(),
            &bare,
            StorageConfig::paper(),
            TransferMode::Write,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::NoSsd { .. }), "{err:?}");
    }
}
