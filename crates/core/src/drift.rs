//! Model drift detection.
//!
//! Performance models are snapshots: firmware updates, BIOS NUMA settings,
//! link retraining, or moving a card to another slot all shift the class
//! structure. [`diff`] compares two models of the same target/direction
//! and reports per-node deltas and class-membership changes, so a persisted
//! model can be revalidated cheaply (probe the representatives, diff, and
//! only re-characterize fully when membership moved).

use crate::model::IoPerfModel;
use crate::modeler::IoModeler;
use crate::platform::{Platform, PlatformError};
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Why two models cannot be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// Different characterization targets.
    TargetMismatch,
    /// Different transfer directions.
    ModeMismatch,
    /// Different node counts.
    ShapeMismatch,
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::TargetMismatch => write!(f, "models characterize different targets"),
            DiffError::ModeMismatch => write!(f, "models cover different transfer directions"),
            DiffError::ShapeMismatch => write!(f, "models cover different node counts"),
        }
    }
}

impl std::error::Error for DiffError {}

/// Why [`recharacterize_and_diff`] could not produce a drift report.
#[derive(Debug, Clone, PartialEq)]
pub enum RecheckError {
    /// Re-probing the backend failed (no topology, missing replay probe,
    /// host measurement failure, ...).
    Probe(PlatformError),
    /// The fresh model could not be compared against the stored one.
    Diff(DiffError),
}

impl std::fmt::Display for RecheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecheckError::Probe(e) => write!(f, "re-characterization failed: {e}"),
            RecheckError::Diff(e) => write!(f, "models are not comparable: {e}"),
        }
    }
}

impl std::error::Error for RecheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecheckError::Probe(e) => Some(e),
            RecheckError::Diff(e) => Some(e),
        }
    }
}

impl From<PlatformError> for RecheckError {
    fn from(e: PlatformError) -> Self {
        RecheckError::Probe(e)
    }
}

impl From<DiffError> for RecheckError {
    fn from(e: DiffError) -> Self {
        RecheckError::Diff(e)
    }
}

/// Comparison of two models (`old` vs `new`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDiff {
    /// Per-node relative bandwidth change `(new - old) / old`.
    pub rel_delta: Vec<f64>,
    /// Nodes whose class index changed: `(node, old class, new class)`.
    pub moved: Vec<(NodeId, usize, usize)>,
    /// Largest absolute relative delta.
    pub max_rel_delta: f64,
}

impl ModelDiff {
    /// Is the new model behaviourally the same (no membership moves and
    /// all deltas below `tolerance`)?
    pub fn is_stable(&self, tolerance: f64) -> bool {
        self.moved.is_empty() && self.max_rel_delta <= tolerance
    }

    /// Render a human-readable drift report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "per-node bandwidth drift:");
        for (i, d) in self.rel_delta.iter().enumerate() {
            let _ = writeln!(out, "  node {i}: {:+.1}%", d * 100.0);
        }
        if self.moved.is_empty() {
            let _ = writeln!(out, "class structure: unchanged");
        } else {
            let _ = writeln!(out, "class membership changes:");
            for (n, from, to) in &self.moved {
                let _ = writeln!(out, "  node {n}: class {} -> class {}", from + 1, to + 1);
            }
        }
        let _ = writeln!(out, "max drift: {:.1}%", self.max_rel_delta * 100.0);
        out
    }
}

/// Compare two models of the same target and direction.
pub fn diff(old: &IoPerfModel, new: &IoPerfModel) -> Result<ModelDiff, DiffError> {
    if old.target != new.target {
        return Err(DiffError::TargetMismatch);
    }
    if old.mode != new.mode {
        return Err(DiffError::ModeMismatch);
    }
    if old.per_node.len() != new.per_node.len() {
        return Err(DiffError::ShapeMismatch);
    }
    let rel_delta: Vec<f64> = old
        .means()
        .iter()
        .zip(new.means())
        .map(|(o, n)| (n - o) / o)
        .collect();
    let mut moved = Vec::new();
    for i in 0..old.per_node.len() {
        let node = NodeId::new(i);
        let (fo, fn_) = (old.class_of(node), new.class_of(node));
        if fo != fn_ {
            moved.push((node, fo, fn_));
        }
    }
    let max_rel_delta = rel_delta.iter().map(|d| d.abs()).fold(0.0, f64::max);
    Ok(ModelDiff { rel_delta, moved, max_rel_delta })
}

/// Re-run `old`'s characterization against `platform` (any backend: live
/// sim, real host, replay fixture) and diff the fresh model against the
/// stored one — the one-call revalidation loop the module docs describe.
pub fn recharacterize_and_diff<P: Platform>(
    old: &IoPerfModel,
    platform: &P,
    modeler: &IoModeler,
) -> Result<ModelDiff, RecheckError> {
    let fresh = modeler.try_characterize(platform, old.target, old.mode)?;
    Ok(diff(old, &fresh)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransferMode;
    use crate::modeler::IoModeler;
    use crate::platform::SimPlatform;
    use numa_fabric::Fabric;
    use numa_topology::presets;

    fn model(platform: &SimPlatform) -> IoPerfModel {
        IoModeler::new().reps(10).characterize(platform, NodeId(7), TransferMode::Write)
    }

    #[test]
    fn identical_models_are_stable() {
        let p = SimPlatform::dl585();
        let d = diff(&model(&p), &model(&p)).unwrap();
        assert!(d.is_stable(0.001));
        assert_eq!(d.max_rel_delta, 0.0);
        assert!(d.render().contains("unchanged"));
    }

    #[test]
    fn noise_seed_changes_are_within_tolerance() {
        let a = SimPlatform::dl585();
        let mut b = SimPlatform::dl585();
        b.seed = 999;
        let d = diff(&model(&a), &model(&b)).unwrap();
        assert!(d.is_stable(0.05), "{}", d.render());
        assert!(d.max_rel_delta > 0.0);
    }

    #[test]
    fn degraded_link_is_detected() {
        // Rebuild the fabric with the 6->7 link degraded 40%: nodes routed
        // through it (0, 2, 4, 6) drop, and membership shifts.
        let a = SimPlatform::dl585();
        let topo = presets::dl585_testbed();
        let routes = presets::dl585_routes(&topo);
        let mut builder = Fabric::builder(topo, routes)
            .dma_defaults(51.2, 44.0)
            .node_copy_caps(53.5)
            .pio(numa_fabric::PioModel::Matrix(
                numa_fabric::calibration::dl585_pio_matrix(a.fabric().topology()),
            ));
        for &(f, t, cap) in numa_fabric::calibration::DL585_DMA_EDGE_CAPS {
            let cap = if (f, t) == (6, 7) { cap * 0.6 } else { cap };
            builder = builder.dma_cap(f, t, cap);
        }
        let degraded = SimPlatform::new(builder.build());
        let d = diff(&model(&a), &model(&degraded)).unwrap();
        assert!(!d.is_stable(0.05), "{}", d.render());
        assert!(!d.moved.is_empty(), "membership should shift: {}", d.render());
        // Node 6 specifically lost bandwidth.
        assert!(d.rel_delta[6] < -0.3, "{}", d.rel_delta[6]);
    }

    #[test]
    fn recharacterize_and_diff_closes_the_loop() {
        let p = SimPlatform::dl585();
        let stored = model(&p);
        // Against the same backend: stable.
        let d = recharacterize_and_diff(&stored, &p, &IoModeler::new().reps(10)).unwrap();
        assert!(d.is_stable(1e-9));
        // A backend without a topology is a typed probe error, not a panic.
        let bare = crate::host::HostPlatform::with_shape(8, 2);
        let e = recharacterize_and_diff(&stored, &bare, &IoModeler::new().reps(1)).unwrap_err();
        assert!(matches!(e, RecheckError::Probe(PlatformError::NoTopology { .. })), "{e}");
        assert!(e.to_string().contains("re-characterization failed"), "{e}");
    }

    #[test]
    fn mismatched_models_rejected() {
        let p = SimPlatform::dl585();
        let w = model(&p);
        let r = IoModeler::new().reps(5).characterize(&p, NodeId(7), TransferMode::Read);
        assert_eq!(diff(&w, &r).unwrap_err(), DiffError::ModeMismatch);
        let other = IoModeler::new().reps(5).characterize(&p, NodeId(0), TransferMode::Write);
        assert_eq!(diff(&w, &other).unwrap_err(), DiffError::TargetMismatch);
    }
}
