//! The baseline the paper argues against: a cbench-style memory-access
//! cost model built from STREAM ([18], [27]), used for I/O placement.
//!
//! McCormick et al. built empirical memory cost models from STREAM and
//! packaged them as `cbench`; §IV-B examines exactly this approach and
//! shows it mispredicts I/O. [`MemCostModel`] reproduces the baseline
//! faithfully — a full pinned-STREAM matrix with per-target rankings — and
//! [`StreamAdvisor`] places I/O tasks with it, so experiments can quantify
//! how much bandwidth the broken metric costs against the
//! [`crate::ScheduleAdvisor`] driven by the memcpy methodology.

use crate::platform::SimPlatform;
use numa_memsys::StreamBench;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// A STREAM-derived memory-access cost model (bandwidth matrix, Gbit/s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemCostModel {
    /// `matrix[cpu][mem]`: pinned STREAM Copy bandwidth.
    matrix: Vec<Vec<f64>>,
}

impl MemCostModel {
    /// Characterize with the paper's STREAM protocol (4 threads, max of
    /// 100 runs per cell) — the cbench workflow.
    pub fn from_stream(platform: &SimPlatform) -> Self {
        MemCostModel { matrix: StreamBench::paper().matrix(platform.fabric()) }
    }

    /// Build from an explicit matrix (tests).
    pub fn from_matrix(matrix: Vec<Vec<f64>>) -> Self {
        assert!(!matrix.is_empty());
        for row in &matrix {
            assert_eq!(row.len(), matrix.len(), "matrix must be square");
        }
        MemCostModel { matrix }
    }

    /// Modelled bandwidth of threads on `cpu` accessing memory at `mem`.
    pub fn bandwidth(&self, cpu: NodeId, mem: NodeId) -> f64 {
        self.matrix[cpu.index()][mem.index()]
    }

    /// Nodes ranked (best first) by their modelled bandwidth *to* data on
    /// `target` — the memory-centric view a STREAM-based scheduler uses to
    /// place tasks whose data sits at the device node.
    pub fn rank_for_target(&self, target: NodeId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.matrix.len()).map(NodeId::new).collect();
        nodes.sort_by(|&a, &b| self.bandwidth(b, target).total_cmp(&self.bandwidth(a, target)));
        nodes
    }
}

/// Task placement by the STREAM cost model: spread across the nodes whose
/// modelled bandwidth to the device node is within `tolerance` of the best.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamAdvisor {
    /// The underlying cost model.
    pub model: MemCostModel,
    /// Relative tolerance for "equivalent" nodes.
    pub tolerance: f64,
}

impl StreamAdvisor {
    /// Default tolerance mirrors the real advisor's.
    pub fn new(model: MemCostModel) -> Self {
        StreamAdvisor { model, tolerance: 0.12 }
    }

    /// Nodes the STREAM model considers equivalent for work against data
    /// at `target`.
    pub fn eligible_nodes(&self, target: NodeId) -> Vec<NodeId> {
        let ranked = self.model.rank_for_target(target);
        let best = self.model.bandwidth(ranked[0], target);
        let mut nodes: Vec<NodeId> = ranked
            .into_iter()
            .filter(|&n| self.model.bandwidth(n, target) >= best * (1.0 - self.tolerance))
            .collect();
        nodes.sort();
        nodes
    }

    /// The `k` best *remote* nodes (excluding the target's package, which a
    /// spreading scheduler avoids for contention) in STREAM-model order —
    /// where a cbench-driven scheduler would place overflow I/O tasks.
    pub fn spread_candidates(&self, target: NodeId, k: usize) -> Vec<NodeId> {
        let neighbour = NodeId(target.0 ^ 1);
        self.model
            .rank_for_target(target)
            .into_iter()
            .filter(|&n| n != target && n != neighbour)
            .take(k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeler::IoModeler;
    use crate::model::TransferMode;
    use numa_iodev::{NicModel, NicOp};

    #[test]
    fn rankings_follow_the_matrix() {
        let m = MemCostModel::from_matrix(vec![
            vec![30.0, 10.0, 20.0],
            vec![15.0, 30.0, 25.0],
            vec![22.0, 18.0, 30.0],
        ]);
        // For data on node 0: candidates ranked by column 0: n0(30), n2(22), n1(15).
        assert_eq!(m.rank_for_target(NodeId(0)), vec![NodeId(0), NodeId(2), NodeId(1)]);
        assert_eq!(m.bandwidth(NodeId(2), NodeId(0)), 22.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_matrix_rejected() {
        let _ = MemCostModel::from_matrix(vec![vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn stream_advisor_ranks_01_above_23_for_node7_data() {
        // The §IV-B trap: the memory-centric STREAM view of node 7 ranks
        // nodes {0,1} above {2,3}, while real device-read traffic (RDMA_READ)
        // behaves the other way around.
        let platform = SimPlatform::dl585();
        let model = MemCostModel::from_stream(&platform);
        let ranked = model.rank_for_target(NodeId(7));
        let pos = |n: u16| ranked.iter().position(|&x| x == NodeId(n)).unwrap();
        assert!(pos(0) < pos(2), "{ranked:?}");
        assert!(pos(1) < pos(3), "{ranked:?}");
        // Its spreading set therefore leads with {5,0,1} and defers {2,3}.
        let spread = StreamAdvisor::new(model).spread_candidates(NodeId(7), 3);
        assert!(!spread.contains(&NodeId(2)), "{spread:?}");
        assert!(!spread.contains(&NodeId(3)), "{spread:?}");
    }

    #[test]
    fn stream_placement_loses_rdma_read_bandwidth() {
        // Quantify the baseline's mistake: average RDMA_READ level over the
        // STREAM-eligible remote nodes vs over the methodology's.
        let platform = SimPlatform::dl585();
        let fabric = platform.fabric();
        let nic = NicModel::paper();
        let stream_advisor = StreamAdvisor::new(MemCostModel::from_stream(&platform));
        let model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Read);
        let ours = crate::advisor::ScheduleAdvisor {
            equivalence_tolerance: 0.12,
            avoid_irq_node: true,
        };
        let avg_level = |nodes: &[NodeId]| {
            let remote: Vec<&NodeId> =
                nodes.iter().filter(|&&n| n != NodeId(7) && n != NodeId(6)).collect();
            assert!(!remote.is_empty(), "need remote candidates: {nodes:?}");
            remote
                .iter()
                .map(|&&n| nic.node_ceiling(NicOp::RdmaRead, fabric, n))
                .sum::<f64>()
                / remote.len() as f64
        };
        let baseline = avg_level(&stream_advisor.spread_candidates(NodeId(7), 3));
        let methodology = avg_level(&ours.eligible_nodes(&model));
        assert!(
            methodology > baseline * 1.1,
            "methodology {methodology} should clearly beat STREAM baseline {baseline}"
        );
    }
}
