//! Performance-class construction and model-agreement analysis.

use crate::model::PerfClass;
use numa_topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Knobs for the class construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifyParams {
    /// Relative bandwidth gap that separates two classes: consecutive
    /// (sorted) nodes whose means differ by more than this fraction of the
    /// larger one start a new class. 8% cleanly separates the Table IV/V
    /// structure while absorbing run noise.
    pub gap_threshold: f64,
    /// Apply the paper's rule that the target and its package neighbours
    /// always form class 1 (§V-A). Disabling it clusters purely by gaps —
    /// an ablation knob; see the `ablations` experiment.
    pub force_local_class1: bool,
}

impl Default for ClassifyParams {
    fn default() -> Self {
        ClassifyParams { gap_threshold: 0.08, force_local_class1: true }
    }
}

/// Build classes from per-node means (§V-A):
///
/// * the target node and its package neighbours always form **class 1**
///   ("The local and neighboring nodes are always be assigned to the first
///   class, and the main task of our methodology is to classify the remote
///   nodes");
/// * remaining nodes are sorted by mean, descending, and split at relative
///   gaps larger than `params.gap_threshold`.
///
/// Classes are returned best-first (class 1 first, then remote classes in
/// descending bandwidth order).
pub fn classify(
    topo: &Topology,
    target: NodeId,
    means: &[f64],
    params: ClassifyParams,
) -> Vec<PerfClass> {
    assert_eq!(means.len(), topo.num_nodes(), "one mean per node");
    let class1: Vec<(NodeId, f64)> = if params.force_local_class1 {
        let mut c = vec![(target, means[target.index()])];
        for n in topo.neighbour_nodes(target) {
            c.push((n, means[n.index()]));
        }
        c
    } else {
        Vec::new()
    };
    let in_class1 = |n: NodeId| class1.iter().any(|(m, _)| *m == n);

    let mut remote: Vec<(NodeId, f64)> = topo
        .node_ids()
        .filter(|&n| !in_class1(n))
        .map(|n| (n, means[n.index()]))
        .collect();
    remote.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut classes: Vec<PerfClass> = if class1.is_empty() {
        Vec::new()
    } else {
        vec![PerfClass::from_members(class1)]
    };
    let mut current: Vec<(NodeId, f64)> = Vec::new();
    for (node, bw) in remote {
        if let Some(&(_, prev)) = current.last() {
            let gap = (prev - bw) / prev;
            if gap > params.gap_threshold {
                classes.push(PerfClass::from_members(std::mem::take(&mut current)));
            }
        }
        current.push((node, bw));
    }
    if !current.is_empty() {
        classes.push(PerfClass::from_members(current));
    }
    classes
}

/// Spearman rank correlation between two per-node vectors — used to
/// quantify whether one model (STREAM, memcpy) predicts another's (TCP,
/// RDMA, SSD) node ordering. 1.0 = identical ordering, negative = inverted.
pub fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must align");
    assert!(a.len() >= 2, "need at least two nodes");
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut r = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            r[idx[k]] = avg;
        }
        i = j + 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets;

    #[test]
    fn table_iv_write_classes_emerge() {
        let topo = presets::dl585_testbed();
        // Per-node write-direction means (fabric calibration targets).
        let means = [42.9, 44.6, 27.3, 26.0, 46.5, 45.0, 46.5, 53.5];
        let classes = classify(&topo, NodeId(7), &means, ClassifyParams::default());
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].nodes, vec![NodeId(6), NodeId(7)]);
        assert_eq!(
            classes[1].nodes,
            vec![NodeId(0), NodeId(1), NodeId(4), NodeId(5)]
        );
        assert_eq!(classes[2].nodes, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn table_v_read_classes_emerge() {
        let topo = presets::dl585_testbed();
        let means = [39.9, 40.2, 46.9, 50.3, 27.9, 40.9, 47.1, 53.5];
        let classes = classify(&topo, NodeId(7), &means, ClassifyParams::default());
        assert_eq!(classes.len(), 4);
        assert_eq!(classes[0].nodes, vec![NodeId(6), NodeId(7)]);
        assert_eq!(classes[1].nodes, vec![NodeId(2), NodeId(3)]);
        assert_eq!(classes[2].nodes, vec![NodeId(0), NodeId(1), NodeId(5)]);
        assert_eq!(classes[3].nodes, vec![NodeId(4)]);
    }

    #[test]
    fn uniform_means_give_two_classes() {
        // Class 1 (forced) + everyone else in one remote class.
        let topo = presets::dl585_testbed();
        let means = [30.0; 8];
        let classes = classify(&topo, NodeId(7), &means, ClassifyParams::default());
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[1].nodes.len(), 6);
    }

    #[test]
    fn tight_threshold_splits_more() {
        let topo = presets::dl585_testbed();
        let means = [39.9, 40.2, 46.9, 50.3, 27.9, 40.9, 47.1, 53.5];
        let tight = classify(&topo, NodeId(7), &means, ClassifyParams { gap_threshold: 0.001, ..ClassifyParams::default() });
        let loose = classify(&topo, NodeId(7), &means, ClassifyParams { gap_threshold: 0.5, ..ClassifyParams::default() });
        assert!(tight.len() > loose.len());
        assert_eq!(loose.len(), 2);
    }

    #[test]
    fn classes_partition_all_nodes() {
        let topo = presets::dl585_testbed();
        let means = [39.9, 40.2, 46.9, 50.3, 27.9, 40.9, 47.1, 53.5];
        let classes = classify(&topo, NodeId(7), &means, ClassifyParams::default());
        let mut all: Vec<NodeId> = classes.iter().flat_map(|c| c.nodes.clone()).collect();
        all.sort();
        assert_eq!(all, (0..8).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn classify_works_from_other_targets() {
        // §V-B: "The methodology ... can also be generalized to other
        // nodes in the host".
        let topo = presets::dl585_testbed();
        let means = [50.0, 48.0, 30.0, 31.0, 44.0, 45.0, 29.0, 28.0];
        let classes = classify(&topo, NodeId(0), &means, ClassifyParams::default());
        assert_eq!(classes[0].nodes, vec![NodeId(0), NodeId(1)]);
        // remote classes: {4,5} then {2,3,6,7}
        assert_eq!(classes[1].nodes, vec![NodeId(4), NodeId(5)]);
    }

    #[test]
    fn rank_correlation_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((rank_correlation(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_correlation_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(rank_correlation(&flat, &a), 0.0);
    }

    #[test]
    fn stream_vs_rdma_read_disagreement_is_detectable() {
        // The §IV-B2 mismatch as a correlation statement: STREAM's row-7
        // ordering anti-correlates with RDMA_READ on nodes {0,1,2,3}.
        let stream_row7 = [23.5, 23.0, 15.5, 14.4];
        let rdma_read = [18.036, 18.3, 21.998, 22.0];
        let r = rank_correlation(&stream_row7, &rdma_read);
        assert!(r < -0.9, "expected strong inversion, got {r}");
    }

    #[test]
    fn without_the_local_rule_class1_merges_with_class2() {
        // Ablation of the §V-A rule: pure gap clustering cannot separate
        // {6,7} from {2,3} in the read model (their bandwidths overlap).
        let topo = presets::dl585_testbed();
        let means = [39.9, 40.2, 46.9, 50.3, 27.9, 40.9, 47.1, 53.5];
        let params = ClassifyParams { force_local_class1: false, ..ClassifyParams::default() };
        let classes = classify(&topo, NodeId(7), &means, params);
        assert_eq!(classes.len(), 3, "{classes:?}");
        // Top class now mixes the local pair with nodes 2,3.
        assert!(classes[0].contains(NodeId(3)));
        assert!(classes[0].contains(NodeId(7)));
    }

    #[test]
    #[should_panic(expected = "one mean per node")]
    fn wrong_length_rejected() {
        let topo = presets::dl585_testbed();
        let _ = classify(&topo, NodeId(7), &[1.0, 2.0], ClassifyParams::default());
    }
}
