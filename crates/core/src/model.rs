//! The I/O performance model produced by the methodology.

use numa_engine::Summary;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Direction of the modelled device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferMode {
    /// Device write: data flows from host memory *into* the device. The
    /// stand-in DMA engine reads from the varied node and sinks at the
    /// target (Fig. 9a); models TCP send, RDMA_WRITE, SSD write.
    Write,
    /// Device read: data flows from the device into host memory. Source
    /// fixed at the target node, sink varied (Fig. 9b); models TCP receive,
    /// RDMA_READ, SSD read.
    Read,
}

impl TransferMode {
    /// Both directions.
    pub const ALL: [TransferMode; 2] = [TransferMode::Write, TransferMode::Read];
}

/// One performance class: nodes whose modelled bandwidths are
/// indistinguishable for scheduling purposes (Tables IV/V columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfClass {
    /// Member nodes, ascending.
    pub nodes: Vec<NodeId>,
    /// Lowest member mean, Gbit/s.
    pub min_gbps: f64,
    /// Highest member mean, Gbit/s.
    pub max_gbps: f64,
    /// Mean of member means — the `BWᵢ` of Eq. 1.
    pub avg_gbps: f64,
}

impl PerfClass {
    /// Build from `(node, mean)` members.
    pub fn from_members(mut members: Vec<(NodeId, f64)>) -> Self {
        assert!(!members.is_empty(), "class cannot be empty");
        members.sort_by_key(|(n, _)| *n);
        let min = members.iter().map(|(_, b)| *b).fold(f64::INFINITY, f64::min);
        let max = members.iter().map(|(_, b)| *b).fold(0.0, f64::max);
        let avg = members.iter().map(|(_, b)| *b).sum::<f64>() / members.len() as f64;
        PerfClass {
            nodes: members.into_iter().map(|(n, _)| n).collect(),
            min_gbps: min,
            max_gbps: max,
            avg_gbps: avg,
        }
    }

    /// Does this class contain `node`?
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

/// The full model for one target node and direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoPerfModel {
    /// The characterized (device-local) node.
    pub target: NodeId,
    /// Direction.
    pub mode: TransferMode,
    /// Per-node probe statistics; index = node id.
    pub per_node: Vec<Summary>,
    /// Classes, best first; class 1 always holds the target and its
    /// package neighbours (§V-A: "The local and neighboring nodes are
    /// always assigned to the first class").
    classes: Vec<PerfClass>,
    /// Label of the platform that produced the model.
    pub platform: String,
}

impl IoPerfModel {
    /// Assemble a model (used by the modeler; classes must be consistent
    /// with `per_node`).
    pub fn new(
        target: NodeId,
        mode: TransferMode,
        per_node: Vec<Summary>,
        classes: Vec<PerfClass>,
        platform: String,
    ) -> Self {
        let covered: usize = classes.iter().map(|c| c.nodes.len()).sum();
        assert_eq!(covered, per_node.len(), "classes must partition the nodes");
        IoPerfModel { target, mode, per_node, classes, platform }
    }

    /// The classes, best first.
    pub fn classes(&self) -> &[PerfClass] {
        &self.classes
    }

    /// Modelled mean bandwidth of one node.
    pub fn node_gbps(&self, node: NodeId) -> f64 {
        self.per_node[node.index()].mean
    }

    /// Per-node means as a vector (for correlation analyses).
    pub fn means(&self) -> Vec<f64> {
        self.per_node.iter().map(|s| s.mean).collect()
    }

    /// Class index (0 = best) of a node.
    ///
    /// Panics for nodes outside the model; [`Self::try_class_of`] is the
    /// fallible form for externally supplied node ids.
    pub fn class_of(&self, node: NodeId) -> usize {
        self.try_class_of(node).expect("classes partition the nodes")
    }

    /// Class index (0 = best) of a node, or `None` if the node is not
    /// covered by this model.
    pub fn try_class_of(&self, node: NodeId) -> Option<usize> {
        self.classes.iter().position(|c| c.contains(node))
    }

    /// One representative node per class — the reduced probe set that cuts
    /// characterization cost (§V-B: 8 cases -> 4 cases, "the evaluation
    /// cost decreases by 50%").
    pub fn representatives(&self) -> Vec<NodeId> {
        self.classes.iter().map(|c| c.nodes[0]).collect()
    }

    /// Fraction of probes saved by testing only representatives.
    pub fn probe_savings(&self) -> f64 {
        1.0 - self.classes.len() as f64 / self.per_node.len() as f64
    }

    /// Serialize to JSON (the persisted model format of the `iomodel` tool).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("model serializes")
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(v: f64) -> Summary {
        Summary::from(&[v])
    }

    fn toy_model() -> IoPerfModel {
        let per_node = vec![summary(40.0), summary(41.0), summary(26.0), summary(50.0)];
        let classes = vec![
            PerfClass::from_members(vec![(NodeId(3), 50.0)]),
            PerfClass::from_members(vec![(NodeId(0), 40.0), (NodeId(1), 41.0)]),
            PerfClass::from_members(vec![(NodeId(2), 26.0)]),
        ];
        IoPerfModel::new(NodeId(3), TransferMode::Write, per_node, classes, "test".into())
    }

    #[test]
    fn perf_class_stats() {
        let c = PerfClass::from_members(vec![(NodeId(2), 27.3), (NodeId(1), 26.0)]);
        assert_eq!(c.nodes, vec![NodeId(1), NodeId(2)]);
        assert_eq!(c.min_gbps, 26.0);
        assert_eq!(c.max_gbps, 27.3);
        assert!((c.avg_gbps - 26.65).abs() < 1e-12);
        assert!(c.contains(NodeId(1)));
        assert!(!c.contains(NodeId(0)));
    }

    #[test]
    fn model_lookups() {
        let m = toy_model();
        assert_eq!(m.node_gbps(NodeId(2)), 26.0);
        assert_eq!(m.class_of(NodeId(3)), 0);
        assert_eq!(m.class_of(NodeId(1)), 1);
        assert_eq!(m.class_of(NodeId(2)), 2);
        assert_eq!(m.representatives(), vec![NodeId(3), NodeId(0), NodeId(2)]);
        assert!((m.probe_savings() - 0.25).abs() < 1e-12);
        assert_eq!(m.means(), vec![40.0, 41.0, 26.0, 50.0]);
        assert_eq!(m.try_class_of(NodeId(2)), Some(2));
        assert_eq!(m.try_class_of(NodeId(9)), None, "foreign node is not a panic");
    }

    #[test]
    fn json_round_trip() {
        let m = toy_model();
        let back = IoPerfModel::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn classes_must_cover_all_nodes() {
        let per_node = vec![summary(1.0), summary(2.0)];
        let classes = vec![PerfClass::from_members(vec![(NodeId(0), 1.0)])];
        let _ = IoPerfModel::new(NodeId(0), TransferMode::Read, per_node, classes, "x".into());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_class_rejected() {
        let _ = PerfClass::from_members(vec![]);
    }
}
