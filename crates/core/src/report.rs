//! Text renderings of models and model-vs-measurement comparisons — the
//! layouts of Tables IV and V.

use crate::model::{IoPerfModel, TransferMode};
use std::fmt::Write as _;

/// Render a model: per-node means plus the class table.
pub fn render_model(model: &IoPerfModel) -> String {
    let mut out = String::new();
    let dir = match model.mode {
        TransferMode::Write => "device write",
        TransferMode::Read => "device read",
    };
    let _ = writeln!(
        out,
        "I/O performance model: target node {} ({dir}), platform {}",
        model.target, model.platform
    );
    let _ = writeln!(out, "  per-node mean bandwidth (Gbit/s):");
    for (i, s) in model.per_node.iter().enumerate() {
        let _ = writeln!(
            out,
            "    node {i}: {:>6.2}  (min {:.2}, max {:.2}, n={})",
            s.mean, s.min, s.max, s.n
        );
    }
    let _ = writeln!(out, "  classes (best first):");
    for (i, c) in model.classes().iter().enumerate() {
        let nodes: Vec<String> = c.nodes.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(
            out,
            "    class {}: nodes {{{}}}  range {:.1} – {:.1}  avg {:.1}",
            i + 1,
            nodes.join(", "),
            c.min_gbps,
            c.max_gbps,
            c.avg_gbps
        );
    }
    let _ = writeln!(
        out,
        "  probe reduction: test {} representative nodes instead of {} ({:.0}% saved)",
        model.representatives().len(),
        model.per_node.len(),
        model.probe_savings() * 100.0
    );
    out
}

/// Render the Table IV/V layout: rows of `(operation, per-node values)`
/// summarized per class of `model`, as `Range / Avg` cells.
pub fn render_comparison_table(model: &IoPerfModel, rows: &[(&str, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<16}", "Operation");
    for (i, c) in model.classes().iter().enumerate() {
        let nodes: Vec<String> = c.nodes.iter().map(|n| n.to_string()).collect();
        let _ = write!(out, "{:>24}", format!("Class {} {{{}}}", i + 1, nodes.join(",")));
    }
    let _ = writeln!(out);
    for (name, values) in rows {
        assert_eq!(
            values.len(),
            model.per_node.len(),
            "row {name} must have one value per node"
        );
        let _ = write!(out, "{name:<16}");
        for c in model.classes() {
            let members: Vec<f64> = c.nodes.iter().map(|n| values[n.index()]).collect();
            let min = members.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = members.iter().cloned().fold(0.0, f64::max);
            let avg = members.iter().sum::<f64>() / members.len() as f64;
            let _ = write!(out, "{:>24}", format!("{min:.1}–{max:.1} / {avg:.1}"));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeler::IoModeler;
    use crate::platform::SimPlatform;
    use numa_topology::NodeId;

    fn model() -> IoPerfModel {
        IoModeler::new()
            .reps(5)
            .characterize(&SimPlatform::dl585(), NodeId(7), TransferMode::Write)
    }

    #[test]
    fn model_rendering_contains_classes_and_savings() {
        let s = render_model(&model());
        assert!(s.contains("target node 7"));
        assert!(s.contains("class 1: nodes {6, 7}"));
        assert!(s.contains("class 3: nodes {2, 3}"));
        assert!(s.contains("% saved"));
        assert!(s.contains("device write"));
    }

    #[test]
    fn comparison_table_summarizes_rows_per_class() {
        let m = model();
        let tcp = vec![20.0, 20.4, 16.3, 16.2, 20.9, 20.5, 20.9, 19.6];
        let s = render_comparison_table(&m, &[("TCP sender", tcp)]);
        assert!(s.contains("TCP sender"));
        assert!(s.contains("Class 1 {6,7}"));
        // Class 3 {2,3} cell: 16.2–16.3 / 16.2 or 16.3 avg.
        assert!(s.contains("16.2–16.3"), "{s}");
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn misaligned_row_rejected() {
        let m = model();
        let _ = render_comparison_table(&m, &[("bad", vec![1.0, 2.0])]);
    }
}
