#![warn(missing_docs)]
//! # numio-core
//!
//! The paper's contribution (§V): **characterize a NUMA host's I/O
//! bandwidth without touching the I/O hardware**, by emulating each
//! device's DMA engine with `memcpy` threads pinned to the device-local
//! node, then turning the per-node bandwidths into a small set of
//! *performance classes* that
//!
//! 1. cut the characterization workload (probe one node per class),
//! 2. predict multi-user aggregate bandwidth (`BW = Σ αᵢ·BWᵢ`, Eq. 1), and
//! 3. drive contention-aware task placement.
//!
//! ## Layout
//!
//! * [`Platform`] — the probe surface: "run `m` copy threads bound to node
//!   `k`, copying from node `i` to node `j`, report bandwidth", plus
//!   capability metadata (topology handle, clock source, determinism,
//!   backend kind). [`SimPlatform`] backs it with the calibrated
//!   simulator; [`HostPlatform`] backs it with real threads and real
//!   `memcpy` on the machine running this code; the `numa-backend` crate
//!   adds record/replay wrappers over any of them.
//! * [`IoModeler`] — Algorithm 1, verbatim structure.
//! * [`IoPerfModel`] / [`classify`] — per-node bandwidths + gap-based class
//!   construction with the paper's local+neighbour rule.
//! * [`predict_aggregate`] — Eq. 1 and its workload helpers.
//! * [`characterize_storage`] — the storage tier: the same probes mapped
//!   through the calibrated SSD curves into Table IV/V analogues per
//!   (engine × access mode) operating point.
//! * [`ScheduleAdvisor`] — §V-B's scheduling application: spread I/O tasks
//!   across the equivalent top classes instead of piling them on the local
//!   node.
//!
//! ## Quickstart
//!
//! ```
//! use numio_core::{IoModeler, SimPlatform, TransferMode};
//! use numa_topology::NodeId;
//!
//! let platform = SimPlatform::dl585();
//! let model = IoModeler::new().characterize(&platform, NodeId(7), TransferMode::Write);
//! // Table IV: three classes, {6,7} on top, {2,3} starved.
//! assert_eq!(model.classes().len(), 3);
//! assert_eq!(model.classes()[0].nodes, vec![NodeId(6), NodeId(7)]);
//! assert_eq!(model.classes()[2].nodes, vec![NodeId(2), NodeId(3)]);
//! ```

pub mod advisor;
pub mod atlas;
pub mod cbench;
pub mod classify;
pub mod drift;
pub mod host;
pub mod model;
pub mod modeler;
pub mod platform;
pub mod predict;
pub mod report;
pub mod storage;

pub use advisor::{Placement, ScheduleAdvisor};
pub use atlas::{Atlas, AtlasError};
pub use cbench::{MemCostModel, StreamAdvisor};
pub use classify::{classify, rank_correlation, ClassifyParams};
pub use drift::{diff as diff_models, recharacterize_and_diff, DiffError, ModelDiff, RecheckError};
pub use host::HostPlatform;
pub use model::{IoPerfModel, PerfClass, TransferMode};
pub use modeler::IoModeler;
pub use platform::{ClockSource, CopySpec, Platform, PlatformError, SimPlatform};
pub use predict::{predict_aggregate, predict_for_mix, relative_error, WorkloadMix};
pub use report::{render_comparison_table, render_model};
pub use storage::{
    characterize_storage, characterize_storage_full_host, DeviceSelector, StorageConfig,
    StorageError,
};
