//! [`ReplayPlatform`]: re-execute a recorded fixture bit-identically.

use crate::error::BackendError;
use crate::fixture::{Fixture, FixtureHeader};
use numa_obs::Obs;
use numa_topology::{NodeId, Topology};
use numio_core::{ClockSource, CopySpec, Platform, PlatformError};
use std::collections::HashMap;
use std::path::Path;

/// A [`Platform`] that answers probes from a recorded [`Fixture`]
/// instead of measuring anything.
///
/// Replay is exact: a probe whose [`CopySpec`] matches a recorded one
/// returns the recorded samples verbatim (floats round-trip bit-exactly
/// through the JSONL), so a model characterized over replay equals the
/// live model byte for byte — including its platform label, which is the
/// *recorded* platform's label, not `"replay"`. A spec the fixture does
/// not cover is a typed [`PlatformError::NoRecordedProbe`], never a
/// panic.
pub struct ReplayPlatform {
    header: FixtureHeader,
    topology: Option<Topology>,
    probes: HashMap<CopySpec, Vec<f64>>,
    obs: Option<Obs>,
}

impl ReplayPlatform {
    /// Build from a parsed fixture. Rejects fixtures with no probes and
    /// resolves the topology (embedded, else preset lookup).
    pub fn from_fixture(fixture: Fixture) -> Result<Self, BackendError> {
        if fixture.probes.is_empty() {
            return Err(BackendError::EmptyFixture);
        }
        let topology = fixture.resolve_topology()?;
        let mut probes = HashMap::with_capacity(fixture.probes.len());
        // Later records win — harmless for honest captures (duplicate
        // specs record identical samples on a deterministic platform) and
        // predictable for hand-edited ones.
        for p in fixture.probes {
            probes.insert(p.spec, p.samples);
        }
        Ok(ReplayPlatform { header: fixture.header, topology, probes, obs: None })
    }

    /// Parse JSONL text and build.
    pub fn from_jsonl(text: &str) -> Result<Self, BackendError> {
        Self::from_fixture(Fixture::from_jsonl(text)?)
    }

    /// Read a fixture file and build.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, BackendError> {
        Self::from_fixture(Fixture::read_from(path)?)
    }

    /// Emit a `probe_replayed` event (and bump
    /// `numio_probes_replayed_total`) on every answered probe. Attaching
    /// obs also switches replay to serial probing so event order is
    /// stable.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The fixture header this platform replays.
    pub fn header(&self) -> &FixtureHeader {
        &self.header
    }

    /// Distinct specs the fixture can answer.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }
}

impl Platform for ReplayPlatform {
    fn num_nodes(&self) -> usize {
        self.header.nodes
    }

    fn cores_per_node(&self, node: NodeId) -> u32 {
        self.header
            .cores_per_node
            .get(node.index())
            .copied()
            .unwrap_or(1)
    }

    fn probe(&self, spec: &CopySpec) -> Result<Vec<f64>, PlatformError> {
        let samples = self
            .probes
            .get(spec)
            .cloned()
            .ok_or(PlatformError::NoRecordedProbe { spec: *spec })?;
        if let Some(o) = &self.obs {
            o.counter("numio_probes_replayed_total", &[("backend", "replay")]).inc();
            o.event(
                "probe_replayed",
                spec.bind.index() as f64,
                &[
                    ("bind", numa_obs::Value::from(spec.bind.index())),
                    ("src", numa_obs::Value::from(spec.src.index())),
                    ("dst", numa_obs::Value::from(spec.dst.index())),
                    ("reps", numa_obs::Value::from(spec.reps)),
                ],
            );
        }
        Ok(samples)
    }

    fn parallel_probes(&self) -> bool {
        // Lookups are pure, so replay may fan out — except with obs
        // attached, where serial order keeps the event stream stable.
        self.obs.is_none()
    }

    fn io_nodes(&self) -> Vec<NodeId> {
        self.header.io_nodes.iter().map(|&n| NodeId(n)).collect()
    }

    fn label(&self) -> String {
        // The *recorded* platform's label: replayed models must compare
        // bit-identical to live ones, label included.
        self.header.platform.clone()
    }

    fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    fn clock(&self) -> ClockSource {
        ClockSource::Recorded
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn backend_kind(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordingPlatform;
    use numio_core::SimPlatform;

    fn spec() -> CopySpec {
        CopySpec {
            bind: NodeId(7),
            src: NodeId(3),
            dst: NodeId(7),
            threads: 4,
            bytes_per_thread: 1 << 20,
            reps: 5,
        }
    }

    fn recorded() -> ReplayPlatform {
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let _ = rec.run_copy(&spec());
        ReplayPlatform::from_jsonl(&rec.fixture().to_jsonl()).unwrap()
    }

    #[test]
    fn replay_returns_recorded_samples_bit_identically() {
        let live = SimPlatform::dl585().run_copy(&spec());
        let replay = recorded();
        assert_eq!(replay.run_copy(&spec()), live);
        assert_eq!(replay.run_copy(&spec()), live, "stable across calls");
    }

    #[test]
    fn replay_mirrors_the_recorded_shape() {
        let replay = recorded();
        assert_eq!(replay.num_nodes(), 8);
        assert_eq!(replay.cores_per_node(NodeId(0)), 4);
        assert_eq!(replay.io_nodes(), vec![NodeId(7)]);
        assert_eq!(replay.label(), "sim:dl585-g7");
        assert_eq!(replay.topology().map(|t| t.name()), Some("dl585-g7"));
        assert!(Platform::fabric(&replay).is_none());
        assert_eq!(replay.clock(), ClockSource::Recorded);
        assert!(replay.deterministic());
        assert_eq!(replay.backend_kind(), "replay");
        assert_eq!(replay.probe_count(), 1);
    }

    #[test]
    fn missing_probe_is_a_typed_error() {
        let replay = recorded();
        let other = CopySpec { src: NodeId(2), ..spec() };
        let e = replay.try_run_copy(&other).unwrap_err();
        assert_eq!(e, PlatformError::NoRecordedProbe { spec: other });
        assert!(e.to_string().contains("no recorded probe"), "{e}");
    }

    #[test]
    fn empty_fixture_is_rejected() {
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let fix = rec.fixture();
        assert_eq!(
            ReplayPlatform::from_fixture(fix).unwrap_err(),
            BackendError::EmptyFixture
        );
    }

    #[test]
    fn obs_sees_replayed_probes() {
        let obs = Obs::new();
        let replay = recorded().with_obs(obs.clone());
        assert!(!replay.parallel_probes(), "obs forces serial replay");
        let _ = replay.run_copy(&spec());
        assert_eq!(
            obs.counter("numio_probes_replayed_total", &[("backend", "replay")]).get(),
            1
        );
        assert!(obs.jsonl().contains("\"ev\":\"probe_replayed\""));
    }
}
