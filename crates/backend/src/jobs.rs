//! Backend-aware job execution: `fio::run_jobs*` over a [`Platform`].
//!
//! Job execution needs the simulator's fabric (flows, device ports,
//! max-min allocation). These wrappers pull the fabric out of whatever
//! backend the caller selected and surface a typed
//! [`BackendError::NoFabric`] when the backend is measurement-only (a
//! real host, a replay fixture) — instead of forcing every consumer to
//! plumb a bare `&Fabric` around.

use crate::error::BackendError;
use numa_fio::{FioReport, JobSpec};
use numio_core::Platform;

/// [`numa_fio::run_jobs`] against the backend's fabric.
pub fn run_jobs<P: Platform>(platform: &P, jobs: &[JobSpec]) -> Result<FioReport, BackendError> {
    let fabric = platform
        .fabric()
        .ok_or_else(|| BackendError::NoFabric { label: platform.label() })?;
    Ok(numa_fio::run_jobs(fabric, jobs)?)
}

/// [`numa_fio::run_jobs_scenario`] against the backend's fabric.
pub fn run_jobs_scenario<P: Platform>(
    platform: &P,
    jobs: &[JobSpec],
    obs: &numa_obs::Obs,
) -> Result<FioReport, BackendError> {
    let fabric = platform
        .fabric()
        .ok_or_else(|| BackendError::NoFabric { label: platform.label() })?;
    Ok(numa_fio::run_jobs_scenario(fabric, jobs, obs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordingPlatform;
    use crate::replay::ReplayPlatform;
    use numa_topology::NodeId;
    use numio_core::{CopySpec, SimPlatform};

    #[test]
    fn sim_backends_run_jobs() {
        let platform = SimPlatform::dl585();
        let job = JobSpec::nic(numa_iodev::NicOp::RdmaWrite, NodeId(3)).numjobs(2);
        let direct = numa_fio::run_jobs(platform.fabric(), &[job.clone()]).unwrap();
        let through = run_jobs(&platform, &[job.clone()]).unwrap();
        assert_eq!(through, direct);
        // A recording wrapper still exposes the fabric.
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        assert!(run_jobs(&rec, &[job]).is_ok());
    }

    #[test]
    fn fabricless_backends_are_typed_errors() {
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let _ = rec.run_copy(&CopySpec {
            bind: NodeId(7),
            src: NodeId(0),
            dst: NodeId(7),
            threads: 4,
            bytes_per_thread: 1 << 20,
            reps: 1,
        });
        let replay = ReplayPlatform::from_jsonl(&rec.fixture().to_jsonl()).unwrap();
        let job = JobSpec::nic(numa_iodev::NicOp::RdmaWrite, NodeId(3));
        let e = run_jobs(&replay, &[job]).unwrap_err();
        assert_eq!(e, BackendError::NoFabric { label: "sim:dl585-g7".to_string() });
        assert!(e.to_string().contains("exposes no fabric"), "{e}");
    }

    #[test]
    fn job_failures_pass_through_typed() {
        let platform = SimPlatform::dl585();
        let e = run_jobs(&platform, &[]).unwrap_err();
        assert_eq!(e, BackendError::Fio(numa_fio::FioError::NoJobs));
    }
}
