//! [`RecordingPlatform`]: a transparent probe recorder over any backend.

use crate::fixture::{Fixture, FixtureHeader, ProbeRecord, SCHEMA};
use numa_fabric::Fabric;
use numa_obs::Obs;
use numa_topology::{NodeId, Topology};
use numio_core::{ClockSource, CopySpec, Platform, PlatformError};
use std::sync::Mutex;

/// Wraps any [`Platform`] and logs every successful probe as a
/// [`ProbeRecord`], producing a [`Fixture`] that a
/// [`ReplayPlatform`](crate::ReplayPlatform) can re-execute bit-identically.
///
/// The wrapper is behaviourally transparent — it delegates every
/// capability (label, topology, fabric, determinism) to the inner
/// platform, so models characterized through it equal the live ones —
/// with one deliberate exception: [`Platform::parallel_probes`] is
/// `false`, keeping the probe log in a stable serial order.
pub struct RecordingPlatform<P: Platform> {
    inner: P,
    log: Mutex<Vec<ProbeRecord>>,
    obs: Option<Obs>,
}

impl<P: Platform> RecordingPlatform<P> {
    /// Start recording over `inner`.
    pub fn new(inner: P) -> Self {
        RecordingPlatform { inner, log: Mutex::new(Vec::new()), obs: None }
    }

    /// Emit a `probe_recorded` event (and bump
    /// `numio_probes_recorded_total`) on every captured probe.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The wrapped platform.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// How many probes have been captured so far.
    pub fn probes_recorded(&self) -> usize {
        self.log.lock().expect("probe log poisoned").len()
    }

    /// Snapshot the capture as a self-contained [`Fixture`] (the inner
    /// platform's topology is embedded when it has one).
    pub fn fixture(&self) -> Fixture {
        let n = self.inner.num_nodes();
        let topology: Option<Topology> = self.inner.topology().cloned();
        let header = FixtureHeader {
            schema: SCHEMA.to_string(),
            platform: self.inner.label(),
            nodes: n,
            cores_per_node: (0..n)
                .map(|i| self.inner.cores_per_node(NodeId::new(i)))
                .collect(),
            io_nodes: self.inner.io_nodes().iter().map(|id| id.0).collect(),
            deterministic: self.inner.deterministic(),
            preset: topology.as_ref().map(|t| t.name().to_string()),
            topology,
        };
        let probes = self.log.lock().expect("probe log poisoned").clone();
        Fixture { header, probes }
    }

    /// Stop recording and recover the wrapped platform.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Platform> Platform for RecordingPlatform<P> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn cores_per_node(&self, node: NodeId) -> u32 {
        self.inner.cores_per_node(node)
    }

    fn probe(&self, spec: &CopySpec) -> Result<Vec<f64>, PlatformError> {
        let samples = self.inner.probe(spec)?;
        let seq = {
            let mut log = self.log.lock().expect("probe log poisoned");
            log.push(ProbeRecord { spec: *spec, samples: samples.clone() });
            log.len()
        };
        if let Some(o) = &self.obs {
            o.counter("numio_probes_recorded_total", &[("backend", self.inner.backend_kind())])
                .inc();
            o.event(
                "probe_recorded",
                seq as f64,
                &[
                    ("bind", numa_obs::Value::from(spec.bind.index())),
                    ("src", numa_obs::Value::from(spec.src.index())),
                    ("dst", numa_obs::Value::from(spec.dst.index())),
                    ("reps", numa_obs::Value::from(spec.reps)),
                ],
            );
        }
        Ok(samples)
    }

    fn parallel_probes(&self) -> bool {
        // Serial on purpose: the fixture's probe order must be stable.
        false
    }

    fn io_nodes(&self) -> Vec<NodeId> {
        self.inner.io_nodes()
    }

    fn label(&self) -> String {
        self.inner.label()
    }

    fn topology(&self) -> Option<&Topology> {
        self.inner.topology()
    }

    fn fabric(&self) -> Option<&Fabric> {
        self.inner.fabric()
    }

    fn clock(&self) -> ClockSource {
        self.inner.clock()
    }

    fn deterministic(&self) -> bool {
        self.inner.deterministic()
    }

    fn backend_kind(&self) -> &'static str {
        "record"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numio_core::SimPlatform;

    fn spec() -> CopySpec {
        CopySpec {
            bind: NodeId(7),
            src: NodeId(3),
            dst: NodeId(7),
            threads: 4,
            bytes_per_thread: 1 << 20,
            reps: 3,
        }
    }

    #[test]
    fn recording_is_transparent() {
        let live = SimPlatform::dl585();
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        assert_eq!(rec.run_copy(&spec()), live.run_copy(&spec()));
        assert_eq!(rec.label(), live.label());
        assert_eq!(rec.num_nodes(), 8);
        assert!(rec.fabric().is_some());
        assert!(rec.deterministic());
        assert_eq!(rec.backend_kind(), "record");
        assert!(!rec.parallel_probes(), "log order must be stable");
        assert_eq!(rec.probes_recorded(), 1);
    }

    #[test]
    fn failed_probes_are_not_recorded() {
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let bad = CopySpec { src: NodeId(99), ..spec() };
        assert!(rec.try_run_copy(&bad).is_err());
        assert_eq!(rec.probes_recorded(), 0);
    }

    #[test]
    fn fixture_header_reflects_the_inner_platform() {
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let _ = rec.run_copy(&spec());
        let fix = rec.fixture();
        assert_eq!(fix.header.schema, SCHEMA);
        assert_eq!(fix.header.platform, "sim:dl585-g7");
        assert_eq!(fix.header.nodes, 8);
        assert_eq!(fix.header.cores_per_node, vec![4; 8]);
        assert_eq!(fix.header.io_nodes, vec![7]);
        assert!(fix.header.deterministic);
        assert_eq!(fix.header.preset.as_deref(), Some("dl585-g7"));
        assert!(fix.header.topology.is_some());
        assert_eq!(fix.probes.len(), 1);
        assert_eq!(fix.probes[0].spec, spec());
    }

    #[test]
    fn obs_sees_recorded_probes() {
        let obs = Obs::new();
        let rec = RecordingPlatform::new(SimPlatform::dl585()).with_obs(obs.clone());
        let _ = rec.run_copy(&spec());
        let _ = rec.run_copy(&spec());
        assert_eq!(
            obs.counter("numio_probes_recorded_total", &[("backend", "sim")]).get(),
            2
        );
        assert!(obs.jsonl().contains("\"ev\":\"probe_recorded\""));
    }
}
