//! [`AnyPlatform`]: runtime backend selection behind one concrete type.

use crate::error::BackendError;
use crate::replay::ReplayPlatform;
use numa_fabric::Fabric;
use numa_obs::Obs;
use numa_topology::{NodeId, Topology};
use numio_core::{ClockSource, CopySpec, HostPlatform, Platform, PlatformError, SimPlatform};

/// One of the three first-class backends, chosen at runtime (the CLI's
/// global `--backend sim|host|replay:<file>` resolves to this).
pub enum AnyPlatform {
    /// The calibrated simulator.
    Sim(SimPlatform),
    /// Real memcpy on the machine running this code.
    Host(HostPlatform),
    /// A recorded fixture, replayed bit-identically.
    Replay(ReplayPlatform),
}

impl AnyPlatform {
    /// Parse a backend spec string:
    ///
    /// * `sim` — the DL585 simulator,
    /// * `host` — the real machine, 4-node shape,
    /// * `host:<nodes>` — the real machine with an explicit node count,
    /// * `replay:<file>` — a recorded JSONL fixture.
    pub fn from_spec(spec: &str) -> Result<Self, BackendError> {
        if spec == "sim" {
            return Ok(AnyPlatform::Sim(SimPlatform::dl585()));
        }
        if spec == "host" {
            return Ok(AnyPlatform::Host(HostPlatform::new(4)));
        }
        if let Some(nodes) = spec.strip_prefix("host:") {
            let nodes: usize = nodes
                .parse()
                .map_err(|_| BackendError::UnknownBackend { spec: spec.to_string() })?;
            return Ok(AnyPlatform::Host(HostPlatform::new(nodes)));
        }
        if let Some(path) = spec.strip_prefix("replay:") {
            return Ok(AnyPlatform::Replay(ReplayPlatform::from_file(path)?));
        }
        Err(BackendError::UnknownBackend { spec: spec.to_string() })
    }

    /// Attach an obs handle where the variant supports one (replay event
    /// emission); sim and host pass through unchanged.
    pub fn with_obs(self, obs: Obs) -> Self {
        match self {
            AnyPlatform::Replay(r) => AnyPlatform::Replay(r.with_obs(obs)),
            other => other,
        }
    }
}

impl From<SimPlatform> for AnyPlatform {
    fn from(p: SimPlatform) -> Self {
        AnyPlatform::Sim(p)
    }
}

impl From<HostPlatform> for AnyPlatform {
    fn from(p: HostPlatform) -> Self {
        AnyPlatform::Host(p)
    }
}

impl From<ReplayPlatform> for AnyPlatform {
    fn from(p: ReplayPlatform) -> Self {
        AnyPlatform::Replay(p)
    }
}

macro_rules! delegate {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyPlatform::Sim($p) => $body,
            AnyPlatform::Host($p) => $body,
            AnyPlatform::Replay($p) => $body,
        }
    };
}

impl Platform for AnyPlatform {
    fn num_nodes(&self) -> usize {
        delegate!(self, p => p.num_nodes())
    }

    fn cores_per_node(&self, node: NodeId) -> u32 {
        delegate!(self, p => p.cores_per_node(node))
    }

    fn probe(&self, spec: &CopySpec) -> Result<Vec<f64>, PlatformError> {
        delegate!(self, p => p.probe(spec))
    }

    fn parallel_probes(&self) -> bool {
        delegate!(self, p => p.parallel_probes())
    }

    fn io_nodes(&self) -> Vec<NodeId> {
        delegate!(self, p => p.io_nodes())
    }

    fn label(&self) -> String {
        delegate!(self, p => Platform::label(p))
    }

    fn topology(&self) -> Option<&Topology> {
        delegate!(self, p => Platform::topology(p))
    }

    fn fabric(&self) -> Option<&Fabric> {
        delegate!(self, p => Platform::fabric(p))
    }

    fn clock(&self) -> ClockSource {
        delegate!(self, p => p.clock())
    }

    fn deterministic(&self) -> bool {
        delegate!(self, p => p.deterministic())
    }

    fn backend_kind(&self) -> &'static str {
        delegate!(self, p => p.backend_kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_spec_builds_the_dl585() {
        let p = AnyPlatform::from_spec("sim").unwrap();
        assert_eq!(p.backend_kind(), "sim");
        assert_eq!(p.num_nodes(), 8);
        assert!(Platform::fabric(&p).is_some());
        assert_eq!(p.label(), "sim:dl585-g7");
    }

    #[test]
    fn host_specs_build_real_backends() {
        let p = AnyPlatform::from_spec("host").unwrap();
        assert_eq!(p.backend_kind(), "host");
        assert_eq!(p.num_nodes(), 4);
        let p = AnyPlatform::from_spec("host:2").unwrap();
        assert_eq!(p.num_nodes(), 2);
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for bad in ["", "simulator", "host:many", "record"] {
            assert!(
                matches!(
                    AnyPlatform::from_spec(bad),
                    Err(BackendError::UnknownBackend { .. })
                ),
                "{bad}"
            );
        }
        // A replay path that does not exist is an Io error, not Unknown.
        assert!(matches!(
            AnyPlatform::from_spec("replay:/no/such/fixture.jsonl"),
            Err(BackendError::Io { .. })
        ));
    }
}
