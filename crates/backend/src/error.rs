//! Typed failures of the backend layer.

use numa_fio::FioError;

/// Why a backend could not be constructed or driven.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// A fixture file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error, in `std::io::Error` words.
        reason: String,
    },
    /// A fixture line is not valid JSON of the expected shape.
    Parse {
        /// 1-based line number in the fixture.
        line: usize,
        /// The serde error.
        reason: String,
    },
    /// The fixture declares a schema this build does not speak.
    SchemaMismatch {
        /// The schema string found in the header.
        found: String,
    },
    /// The fixture carries a header but no probe records.
    EmptyFixture,
    /// The fixture names a preset topology this build does not know and
    /// embeds none.
    UnknownPreset {
        /// The preset name from the header.
        name: String,
    },
    /// A `--backend` specification did not parse.
    UnknownBackend {
        /// The offending spec string.
        spec: String,
    },
    /// The selected backend exposes no simulator fabric, but the caller
    /// needed one (job execution, scheduling, fault injection).
    NoFabric {
        /// The backend's label.
        label: String,
    },
    /// Lowering jobs onto the backend's fabric failed.
    Fio(FioError),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Io { path, reason } => {
                write!(f, "fixture '{path}': {reason}")
            }
            BackendError::Parse { line, reason } => {
                write!(f, "fixture line {line}: {reason}")
            }
            BackendError::SchemaMismatch { found } => write!(
                f,
                "unsupported fixture schema '{found}' (this build speaks '{}')",
                crate::fixture::SCHEMA
            ),
            BackendError::EmptyFixture => write!(f, "fixture has no probe records"),
            BackendError::UnknownPreset { name } => write!(
                f,
                "fixture names unknown preset topology '{name}' and embeds none"
            ),
            BackendError::UnknownBackend { spec } => write!(
                f,
                "unknown backend '{spec}' (expected sim, host, or replay:<file>)"
            ),
            BackendError::NoFabric { label } => write!(
                f,
                "backend '{label}' exposes no fabric to run jobs on; use a sim backend"
            ),
            BackendError::Fio(e) => write!(f, "job execution failed: {e}"),
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Fio(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FioError> for BackendError {
    fn from(e: FioError) -> Self {
        BackendError::Fio(e)
    }
}
