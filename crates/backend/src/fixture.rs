//! The versioned JSONL probe fixture.
//!
//! Line 1 is a [`FixtureHeader`] (schema tag, platform shape, and —
//! when the recorded platform knew one — its full embedded [`Topology`]);
//! every following line is one [`ProbeRecord`]: the exact [`CopySpec`]
//! issued and the samples it returned. The format is append-friendly,
//! diff-friendly, and stable: floats round-trip exactly
//! (`serde_json`'s `float_roundtrip`), which is what makes replay
//! bit-identical to the live run.

use crate::error::BackendError;
use numa_topology::{presets, Topology};
use numio_core::CopySpec;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The schema tag this build reads and writes. Bump the suffix on any
/// incompatible change; readers reject unknown tags with a typed
/// [`BackendError::SchemaMismatch`] instead of misinterpreting data.
pub const SCHEMA: &str = "numio-probe-fixture/1";

/// First line of a fixture: what was measured, and its shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixtureHeader {
    /// Format version tag ([`SCHEMA`]).
    pub schema: String,
    /// Label of the recorded platform (e.g. `sim:dl585-g7`). Replay
    /// reports this label so replayed models compare bit-identical to
    /// live ones.
    pub platform: String,
    /// NUMA node count.
    pub nodes: usize,
    /// Cores per node, indexed by node.
    pub cores_per_node: Vec<u32>,
    /// Nodes with I/O devices attached (characterization targets).
    #[serde(default)]
    pub io_nodes: Vec<u16>,
    /// Whether the recorded platform was deterministic.
    #[serde(default)]
    pub deterministic: bool,
    /// Name of the recorded topology, when it matches a built-in preset
    /// (`dl585-g7`, `intel-4s4n`, ...) — a human-readable hint and a
    /// fallback when `topology` is absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub preset: Option<String>,
    /// The full topology, embedded so the fixture is self-contained.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub topology: Option<Topology>,
}

/// One recorded probe: the spec issued and every sample it returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// The exact probe spec.
    pub spec: CopySpec,
    /// One bandwidth sample (Gbit/s) per repetition, verbatim.
    pub samples: Vec<f64>,
}

/// A parsed fixture: header plus probe log, in recording order.
#[derive(Debug, Clone, PartialEq)]
pub struct Fixture {
    /// The header line.
    pub header: FixtureHeader,
    /// The probe lines, in the order they were recorded.
    pub probes: Vec<ProbeRecord>,
}

impl Fixture {
    /// Serialize to JSONL (header line + one line per probe).
    pub fn to_jsonl(&self) -> String {
        let mut out =
            serde_json::to_string(&self.header).expect("fixture header serializes");
        out.push('\n');
        for p in &self.probes {
            out.push_str(&serde_json::to_string(p).expect("probe record serializes"));
            out.push('\n');
        }
        out
    }

    /// Parse from JSONL text. Blank lines are ignored; the first
    /// non-blank line must be a header with a known [`SCHEMA`].
    pub fn from_jsonl(text: &str) -> Result<Self, BackendError> {
        let mut header: Option<FixtureHeader> = None;
        let mut probes = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            match header {
                None => {
                    let h: FixtureHeader =
                        serde_json::from_str(line).map_err(|e| BackendError::Parse {
                            line: lineno,
                            reason: e.to_string(),
                        })?;
                    if h.schema != SCHEMA {
                        return Err(BackendError::SchemaMismatch { found: h.schema });
                    }
                    header = Some(h);
                }
                Some(_) => {
                    let p: ProbeRecord =
                        serde_json::from_str(line).map_err(|e| BackendError::Parse {
                            line: lineno,
                            reason: e.to_string(),
                        })?;
                    probes.push(p);
                }
            }
        }
        let header = header.ok_or(BackendError::EmptyFixture)?;
        Ok(Fixture { header, probes })
    }

    /// Write to a file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), BackendError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_jsonl()).map_err(|e| BackendError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })
    }

    /// Read from a file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, BackendError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| BackendError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Self::from_jsonl(&text)
    }

    /// Resolve the fixture's topology: the embedded one when present,
    /// else a preset named in the header, else `None`.
    pub fn resolve_topology(&self) -> Result<Option<Topology>, BackendError> {
        if let Some(t) = &self.header.topology {
            return Ok(Some(t.clone()));
        }
        match self.header.preset.as_deref() {
            None => Ok(None),
            Some(name) => preset_topology(name)
                .map(Some)
                .ok_or_else(|| BackendError::UnknownPreset { name: name.to_string() }),
        }
    }
}

/// Look up a built-in preset topology by its `Topology::name()`.
pub fn preset_topology(name: &str) -> Option<Topology> {
    match name {
        "dl585-g7" => Some(presets::dl585_testbed()),
        "dl585-split-io" => Some(presets::dl585_split_io()),
        "intel-4s4n" => Some(presets::intel_4s4n()),
        "amd-4s8n" => Some(presets::amd_4s8n()),
        "amd-8s8n" => Some(presets::amd_8s8n()),
        "blade32" => Some(presets::blade32()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::NodeId;

    fn sample_fixture() -> Fixture {
        Fixture {
            header: FixtureHeader {
                schema: SCHEMA.to_string(),
                platform: "sim:dl585-g7".to_string(),
                nodes: 8,
                cores_per_node: vec![4; 8],
                io_nodes: vec![7],
                deterministic: true,
                preset: Some("dl585-g7".to_string()),
                topology: None,
            },
            probes: vec![ProbeRecord {
                spec: CopySpec {
                    bind: NodeId(7),
                    src: NodeId(3),
                    dst: NodeId(7),
                    threads: 4,
                    bytes_per_thread: 64 << 20,
                    reps: 3,
                },
                samples: vec![26.0, 25.987654321, 26.012345678901234],
            }],
        }
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let fix = sample_fixture();
        let back = Fixture::from_jsonl(&fix.to_jsonl()).unwrap();
        assert_eq!(back, fix);
        // Floats survive bit-exactly — the foundation of bit-identical replay.
        assert_eq!(back.probes[0].samples[2], 26.012345678901234);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut fix = sample_fixture();
        fix.header.schema = "numio-probe-fixture/99".to_string();
        let e = Fixture::from_jsonl(&fix.to_jsonl()).unwrap_err();
        assert_eq!(
            e,
            BackendError::SchemaMismatch { found: "numio-probe-fixture/99".to_string() }
        );
        assert!(e.to_string().contains("unsupported fixture schema"), "{e}");
    }

    #[test]
    fn garbage_lines_are_typed_parse_errors() {
        assert!(matches!(
            Fixture::from_jsonl("not json"),
            Err(BackendError::Parse { line: 1, .. })
        ));
        let mut text = sample_fixture().to_jsonl();
        text.push_str("{\"spec\": \"nope\"}\n");
        assert!(matches!(
            Fixture::from_jsonl(&text),
            Err(BackendError::Parse { line: 3, .. })
        ));
        assert_eq!(Fixture::from_jsonl("\n\n"), Err(BackendError::EmptyFixture));
    }

    #[test]
    fn preset_resolution_covers_the_builtin_machines() {
        for name in ["dl585-g7", "dl585-split-io", "intel-4s4n", "amd-4s8n", "amd-8s8n", "blade32"]
        {
            let topo = preset_topology(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(topo.name(), name);
        }
        assert!(preset_topology("cray-1").is_none());
        let mut fix = sample_fixture();
        fix.header.preset = Some("cray-1".to_string());
        assert_eq!(
            fix.resolve_topology(),
            Err(BackendError::UnknownPreset { name: "cray-1".to_string() })
        );
    }

    #[test]
    fn embedded_topology_wins_over_preset() {
        let mut fix = sample_fixture();
        fix.header.topology = Some(presets::dl585_split_io());
        fix.header.preset = Some("dl585-g7".to_string());
        let t = fix.resolve_topology().unwrap().unwrap();
        assert_eq!(t.name(), "dl585-split-io");
    }
}
