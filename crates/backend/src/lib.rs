#![warn(missing_docs)]
//! # numa-backend
//!
//! The pluggable measurement-backend layer: one [`Platform`] pipeline for
//! the simulator, the real host, and record/replay.
//!
//! The paper's methodology (§V, Algorithm 1) is a *measurement
//! procedure*; what executes a probe should be swappable. `numio-core`
//! defines the [`Platform`] trait and two executors (`SimPlatform`,
//! `HostPlatform`); this crate adds the capture side:
//!
//! * [`RecordingPlatform`] wraps any backend and logs every `(CopySpec,
//!   samples)` pair into a versioned JSONL [`Fixture`];
//! * [`ReplayPlatform`] answers probes from such a fixture bit-identically
//!   — so characterization, drift detection, and class prediction run
//!   deterministically in CI against traces captured on machines CI will
//!   never see (host measurements are noisy and machine-specific; replay
//!   is neither);
//! * [`AnyPlatform`] gives runtime selection (`sim` / `host` /
//!   `replay:<file>`) one concrete type, used by the CLI's global
//!   `--backend` flag;
//! * [`run_jobs`] / [`run_jobs_scenario`] run fio-style jobs against
//!   whatever backend was selected, with a typed error when the backend
//!   has no simulator fabric.
//!
//! ## Record → replay round trip
//!
//! ```
//! use numa_backend::{RecordingPlatform, ReplayPlatform};
//! use numio_core::{IoModeler, SimPlatform, TransferMode};
//! use numa_topology::NodeId;
//!
//! let modeler = IoModeler::new().reps(5);
//! let live = modeler.characterize(&SimPlatform::dl585(), NodeId(7), TransferMode::Write);
//!
//! let rec = RecordingPlatform::new(SimPlatform::dl585());
//! let recorded = modeler.characterize(&rec, NodeId(7), TransferMode::Write);
//! assert_eq!(recorded, live);
//!
//! let replay = ReplayPlatform::from_jsonl(&rec.fixture().to_jsonl()).unwrap();
//! let replayed = modeler.characterize(&replay, NodeId(7), TransferMode::Write);
//! assert_eq!(replayed, live); // bit-identical, label included
//! ```

pub mod error;
pub mod fixture;
pub mod jobs;
pub mod record;
pub mod replay;
pub mod select;

pub use error::BackendError;
pub use fixture::{preset_topology, Fixture, FixtureHeader, ProbeRecord, SCHEMA};
pub use jobs::{run_jobs, run_jobs_scenario};
pub use record::RecordingPlatform;
pub use replay::ReplayPlatform;
pub use select::AnyPlatform;

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::NodeId;
    use numio_core::{IoModeler, Platform, SimPlatform, TransferMode};

    /// The tentpole guarantee: a full-host characterization recorded from
    /// the live (noisy) sim replays bit-identically.
    #[test]
    fn full_host_record_replay_round_trip_is_bit_identical() {
        let modeler = IoModeler::new().reps(4);
        let live = modeler.characterize_full_host(&SimPlatform::dl585());

        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let recorded = modeler.characterize_full_host(&rec);
        assert_eq!(recorded, live, "recording must be transparent");

        let replay = ReplayPlatform::from_jsonl(&rec.fixture().to_jsonl()).unwrap();
        let replayed = modeler.characterize_full_host(&replay);
        assert_eq!(replayed, live, "replay must be bit-identical to the live run");
        // And stable across repeated replays.
        assert_eq!(modeler.characterize_full_host(&replay), live);
    }

    /// Replaying with a different modeler configuration than was recorded
    /// is a typed error (the spec lookup misses), not a panic.
    #[test]
    fn replay_with_wrong_reps_is_typed() {
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let _ = IoModeler::new().reps(4).characterize(&rec, NodeId(7), TransferMode::Write);
        let replay = ReplayPlatform::from_jsonl(&rec.fixture().to_jsonl()).unwrap();
        let err = IoModeler::new()
            .reps(5)
            .try_characterize(&replay, NodeId(7), TransferMode::Write)
            .unwrap_err();
        assert!(
            matches!(err, numio_core::PlatformError::NoRecordedProbe { .. }),
            "{err}"
        );
    }

    #[test]
    fn all_three_backends_expose_the_extended_trait() {
        fn metadata<P: Platform>(p: &P) -> (&'static str, bool, usize) {
            (p.backend_kind(), p.deterministic(), p.num_nodes())
        }
        assert_eq!(metadata(&SimPlatform::dl585()), ("sim", true, 8));
        assert_eq!(metadata(&numio_core::HostPlatform::new(4)), ("host", false, 4));
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let _ = IoModeler::new().reps(1).characterize(&rec, NodeId(7), TransferMode::Write);
        let replay = ReplayPlatform::from_jsonl(&rec.fixture().to_jsonl()).unwrap();
        assert_eq!(metadata(&replay), ("replay", true, 8));
    }
}
