//! The memoized characterization cache: characterize once per
//! `(backend label, topology hash, fault-view hash)`, then answer from
//! memory until drift or a fault-view change invalidates that one key.
//!
//! This is the §V discipline made long-running: the paper characterizes a
//! host once and reuses the model for every placement/prediction decision;
//! Bergstrom's STREAM study and bandwidth-aware placement work assume the
//! same memoize-don't-remeasure contract. The cache key deliberately
//! captures everything a characterization depends on — which backend
//! measured it, what machine shape it saw, and which fault view was
//! applied — so invalidation can be *targeted*: arming a fault plan evicts
//! exactly the stale key, never the whole cache.
//!
//! Within one key, models are memoized **lazily per `(target, mode)`**: a
//! `classify` against node 7's write model characterizes exactly that
//! model, nothing else. This is what lets the service run over a partial
//! replay fixture (e.g. the shipped `dl585.jsonl`, which records only the
//! write direction against node 7) — a request the fixture covers is
//! answered and cached; one it doesn't is a typed error, not a panic. The
//! full [`Atlas`] is assembled only when asked for, then cached too.

use crate::error::ServeError;
use crate::fast_hash::FxHashMap;
use numa_faults::{degraded_backend, FaultKind};
use numa_obs::{Counter, Obs};
use numa_topology::{NodeId, Topology};
use numio_core::{
    characterize_storage, recharacterize_and_diff, Atlas, IoModeler, IoPerfModel, Platform,
    StorageConfig, TransferMode,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Stable FNV-1a over a byte string. Not `DefaultHasher`: cache keys show
/// up in obs events and fixtures, so they must be reproducible across
/// processes and Rust versions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable hash of a topology (via its canonical JSON serialization).
pub fn topology_hash(topo: &Topology) -> Result<u64, ServeError> {
    Ok(fnv1a(&serde_json::to_vec(topo)?))
}

/// Stable hash of a fault view. The view is canonicalized (sorted by wire
/// name, deduplicated) first, so `[LinkDown, IrqStorm]` and
/// `[IrqStorm, LinkDown, IrqStorm]` key identically.
pub fn fault_view_hash(faults: &[FaultKind]) -> Result<u64, ServeError> {
    let mut names: Vec<String> = faults
        .iter()
        .map(|k| serde_json::to_string(k).map_err(ServeError::from))
        .collect::<Result<_, _>>()?;
    names.sort();
    names.dedup();
    Ok(fnv1a(names.join(",").as_bytes()))
}

/// What one cached characterization view is keyed by.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// `Platform::label()` of the backend that measured (or would measure).
    pub backend: String,
    /// [`topology_hash`] of the machine shape, or a node-count fallback
    /// for topology-less backends.
    pub topology_hash: u64,
    /// [`fault_view_hash`] of the applied fault view.
    pub fault_hash: u64,
    /// Host shard the view belongs to. Shard 0 is the service's own
    /// backend; fleet lookups key each generated host under its own
    /// shard so hit/miss accounting and invalidation stay per-host.
    /// Defaults to 0 so pre-shard cache keys (fixtures, old clients)
    /// keep decoding to the same key.
    #[serde(default)]
    pub host: u64,
}

/// One answered atlas lookup: the atlas, whether it was served from
/// memory, and the key it lives under.
#[derive(Debug, Clone)]
pub struct CacheLookup {
    /// The (shared) full-host characterization.
    pub atlas: Arc<Atlas>,
    /// `true` when served from memory, `false` on the cold miss that
    /// computed it.
    pub hit: bool,
    /// The key the atlas is cached under.
    pub key: CacheKey,
}

/// One answered single-model lookup.
#[derive(Debug, Clone)]
pub struct ModelLookup {
    /// The (shared) model for the requested `(target, mode)`.
    pub model: Arc<IoPerfModel>,
    /// `true` when served from memory, `false` on the cold miss that
    /// characterized it.
    pub hit: bool,
    /// The view key the model is cached under.
    pub key: CacheKey,
}

/// Monotonic cache counters (mirrored as obs metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that paid a characterization.
    pub misses: u64,
    /// View keys evicted by drift or fault-view changes.
    pub invalidations: u64,
    /// View keys currently cached.
    pub entries: usize,
}

/// Monotonic counters for one host shard of the cache. Shard 0 covers
/// the service's own backend; fleet lookups land each generated host in
/// its own shard (see [`CacheKey::host`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostShardStats {
    /// The shard id ([`CacheKey::host`]).
    pub host: u64,
    /// Lookups answered from memory for this shard.
    pub hits: u64,
    /// Lookups that paid a characterization for this shard.
    pub misses: u64,
    /// View keys of this shard evicted so far.
    pub invalidations: u64,
}

/// Per-shard counter cells. Atomics so the shared-lock fast path can
/// count without upgrading to a write lock.
#[derive(Default)]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

/// Outcome of a drift re-check against the live backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "drift", rename_all = "snake_case")]
pub enum DriftOutcome {
    /// Nothing cached under the key; nothing to re-check.
    NotCached,
    /// Re-measured model within tolerance; entry kept.
    Stable {
        /// Largest relative per-node delta observed.
        max_rel_delta: f64,
    },
    /// Re-measured model drifted past the threshold; entry evicted.
    Invalidated {
        /// Largest relative per-node delta observed.
        max_rel_delta: f64,
    },
}

/// Everything cached under one view key: the per-`(target, mode)` models
/// characterized so far, the storage-tier models per
/// `(StorageConfig, mode)` (the device dimension of the key — a
/// `classify` against `ssd0:sync-buffered` and one against the probe
/// model are distinct slots under the same view), plus the assembled
/// full atlas once it has been asked for (so repeated `atlas` requests
/// share one `Arc`).
#[derive(Default)]
struct ViewEntry {
    models: FxHashMap<(u16, TransferMode), Arc<IoPerfModel>>,
    storage: FxHashMap<(StorageConfig, TransferMode), Arc<IoPerfModel>>,
    full: Option<Arc<Atlas>>,
}

impl ViewEntry {
    fn from_atlas(atlas: Atlas) -> Self {
        let models = atlas
            .models()
            .iter()
            .map(|m| ((m.target.0, m.mode), Arc::new(m.clone())))
            .collect();
        ViewEntry {
            models,
            storage: FxHashMap::default(),
            full: Some(Arc::new(atlas)),
        }
    }
}

/// Thread-safe memoization of characterizations.
///
/// Reads take a shared lock; the cold path characterizes while holding the
/// write lock, so concurrent first requests for one model pay exactly one
/// characterization and the miss counter increments exactly once.
///
/// Both maps (view keys and per-view model slots) use the crate's
/// [`FxHashMap`](crate::fast_hash::FxHashMap): keys are server-derived,
/// never attacker-controlled, and every request hashes them at least once,
/// so SipHash overhead is pure hot-path tax. The `numio_serve_cache_*`
/// counter handles are resolved once (registry lookup is a lock + hash)
/// and reused from then on.
pub struct CharacterizationCache {
    entries: RwLock<FxHashMap<CacheKey, ViewEntry>>,
    shards: RwLock<FxHashMap<u64, ShardCounters>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    obs: Obs,
    hits_counter: Counter,
    misses_counter: Counter,
    invalidations_counter: Counter,
}

impl CharacterizationCache {
    /// Empty cache with a private obs handle.
    pub fn new() -> Self {
        let obs = Obs::new();
        let hits_counter = obs.counter("numio_serve_cache_hits_total", &[]);
        let misses_counter = obs.counter("numio_serve_cache_misses_total", &[]);
        let invalidations_counter = obs.counter("numio_serve_cache_invalidations_total", &[]);
        CharacterizationCache {
            entries: RwLock::new(FxHashMap::default()),
            shards: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            obs,
            hits_counter,
            misses_counter,
            invalidations_counter,
        }
    }

    /// Share an obs pipeline (events + `numio_serve_cache_*` counters).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self.hits_counter = self.obs.counter("numio_serve_cache_hits_total", &[]);
        self.misses_counter = self.obs.counter("numio_serve_cache_misses_total", &[]);
        self.invalidations_counter = self
            .obs
            .counter("numio_serve_cache_invalidations_total", &[]);
        self
    }

    /// The key a `(platform, fault view)` pair caches under. Backends
    /// without a topology key on their node count, so they still cache —
    /// the characterization itself will fail with a typed `NoTopology`
    /// error if the modeler needs one.
    pub fn key_for<P: Platform>(
        &self,
        platform: &P,
        faults: &[FaultKind],
    ) -> Result<CacheKey, ServeError> {
        self.key_for_host(platform, faults, 0)
    }

    /// The [`Self::key_for`] variant for a specific host shard: shard 0
    /// is the service's own backend, fleet lookups key generated host
    /// `i` under shard `i + 1`.
    pub fn key_for_host<P: Platform>(
        &self,
        platform: &P,
        faults: &[FaultKind],
        host: u64,
    ) -> Result<CacheKey, ServeError> {
        let topology_hash = match platform.topology() {
            Some(t) => topology_hash(t)?,
            None => fnv1a(format!("nodes:{}", platform.num_nodes()).as_bytes()),
        };
        Ok(CacheKey {
            backend: platform.label(),
            topology_hash,
            fault_hash: fault_view_hash(faults)?,
            host,
        })
    }

    /// The warm-path lookup: serve the `(target, mode)` model cached under
    /// a **precomputed** view key, or `None` without counting anything.
    ///
    /// This is the zero-allocation fast path the request loop tries first:
    /// one shared-lock acquisition, two Fx-hash map probes, no key
    /// re-derivation (no topology serialization), no event emission, and no
    /// stage span. A hit still counts in the `hits` atomic and the
    /// `numio_serve_cache_hits_total` counter, so stats and Prometheus
    /// series stay consistent with the slow path; a miss counts nothing —
    /// the caller falls back to [`get_or_model`](Self::get_or_model), which
    /// does the full traced cold path (and its own hit/miss accounting).
    pub fn peek_model(
        &self,
        key: &CacheKey,
        target: NodeId,
        mode: TransferMode,
    ) -> Option<Arc<IoPerfModel>> {
        let model = self
            .read_entries()
            .get(key)
            .and_then(|e| e.models.get(&(target.0, mode)))
            .map(Arc::clone)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.hits_counter.inc();
        self.bump_shard(key.host, |s| &s.hits);
        Some(model)
    }

    /// Serve the `(target, mode)` model for `(platform, fault view)`,
    /// characterizing exactly that model on the cold miss. A non-empty
    /// fault view characterizes the degraded what-if backend
    /// ([`degraded_backend`]) instead of the base one.
    ///
    /// Only this model's probes are needed, so partial backends (a replay
    /// fixture recorded for one target and direction) serve the requests
    /// they cover and fail the rest with a typed error.
    pub fn get_or_model<P: Platform>(
        &self,
        platform: &P,
        modeler: &IoModeler,
        faults: &[FaultKind],
        target: NodeId,
        mode: TransferMode,
    ) -> Result<ModelLookup, ServeError> {
        self.get_or_model_sharded(platform, modeler, faults, target, mode, 0)
    }

    /// The [`Self::get_or_model`] variant for a specific host shard:
    /// identical memoization, but the view key (and hence the hit/miss/
    /// invalidation accounting) belongs to `host`. This is what fleet
    /// ops use so each generated host caches — and invalidates —
    /// independently of the service's own backend (shard 0).
    pub fn get_or_model_sharded<P: Platform>(
        &self,
        platform: &P,
        modeler: &IoModeler,
        faults: &[FaultKind],
        target: NodeId,
        mode: TransferMode,
        host: u64,
    ) -> Result<ModelLookup, ServeError> {
        let _stage = self.obs.stage_span("cache");
        let key = self.key_for_host(platform, faults, host)?;
        let slot = (target.0, mode);
        if let Some(model) = self
            .read_entries()
            .get(&key)
            .and_then(|e| e.models.get(&slot))
        {
            let model = Arc::clone(model);
            self.count_hit(&key);
            return Ok(ModelLookup {
                model,
                hit: true,
                key,
            });
        }
        let mut entries = self.write_entries();
        // Double-checked: another worker may have filled the slot while we
        // waited for the write lock — that is a hit, not a second miss.
        if let Some(model) = entries.get(&key).and_then(|e| e.models.get(&slot)) {
            let model = Arc::clone(model);
            self.count_hit(&key);
            return Ok(ModelLookup {
                model,
                hit: true,
                key,
            });
        }
        self.count_miss(&key);
        let _span = self.obs.stage_span("characterize");
        let model = if faults.is_empty() {
            modeler.try_characterize(platform, target, mode)?
        } else {
            let degraded = degraded_backend(platform, faults)?;
            modeler.try_characterize(&degraded, target, mode)?
        };
        let model = Arc::new(model);
        entries
            .entry(key.clone())
            .or_default()
            .models
            .insert(slot, Arc::clone(&model));
        Ok(ModelLookup {
            model,
            hit: false,
            key,
        })
    }

    /// The storage-tier [`Self::peek_model`]: serve the
    /// `(StorageConfig, mode)` storage model cached under a precomputed
    /// view key, or `None` without counting anything. Same contract as
    /// the probe peek — one shared-lock read, hits counted, misses free.
    pub fn peek_storage_model(
        &self,
        key: &CacheKey,
        cfg: StorageConfig,
        mode: TransferMode,
    ) -> Option<Arc<IoPerfModel>> {
        let model = self
            .read_entries()
            .get(key)
            .and_then(|e| e.storage.get(&(cfg, mode)))
            .map(Arc::clone)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.hits_counter.inc();
        self.bump_shard(key.host, |s| &s.hits);
        Some(model)
    }

    /// Serve the storage-tier model for `(platform, fault view, config,
    /// mode)`, characterizing it on the cold miss. A non-empty fault view
    /// characterizes against the degraded what-if backend, whose fabric
    /// carries any `device_stall` derates — so a stalled SSD card shows
    /// up in the cached storage tables exactly as it does in the dynamic
    /// injection path.
    pub fn get_or_storage_model<P: Platform>(
        &self,
        platform: &P,
        modeler: &IoModeler,
        faults: &[FaultKind],
        cfg: StorageConfig,
        mode: TransferMode,
    ) -> Result<ModelLookup, ServeError> {
        self.get_or_storage_model_sharded(platform, modeler, faults, cfg, mode, 0)
    }

    /// The [`Self::get_or_storage_model`] variant for a specific host
    /// shard (see [`Self::get_or_model_sharded`]).
    pub fn get_or_storage_model_sharded<P: Platform>(
        &self,
        platform: &P,
        modeler: &IoModeler,
        faults: &[FaultKind],
        cfg: StorageConfig,
        mode: TransferMode,
        host: u64,
    ) -> Result<ModelLookup, ServeError> {
        let _stage = self.obs.stage_span("cache");
        let key = self.key_for_host(platform, faults, host)?;
        let slot = (cfg, mode);
        if let Some(model) = self
            .read_entries()
            .get(&key)
            .and_then(|e| e.storage.get(&slot))
        {
            let model = Arc::clone(model);
            self.count_hit(&key);
            return Ok(ModelLookup {
                model,
                hit: true,
                key,
            });
        }
        let mut entries = self.write_entries();
        if let Some(model) = entries.get(&key).and_then(|e| e.storage.get(&slot)) {
            let model = Arc::clone(model);
            self.count_hit(&key);
            return Ok(ModelLookup {
                model,
                hit: true,
                key,
            });
        }
        self.count_miss(&key);
        let _span = self.obs.stage_span("characterize");
        let model = if faults.is_empty() {
            characterize_storage(modeler, platform, cfg, mode)?
        } else {
            let degraded = degraded_backend(platform, faults)?;
            characterize_storage(modeler, &degraded, cfg, mode)?
        };
        let model = Arc::new(model);
        entries
            .entry(key.clone())
            .or_default()
            .storage
            .insert(slot, Arc::clone(&model));
        Ok(ModelLookup {
            model,
            hit: false,
            key,
        })
    }

    /// Serve the full-host atlas for `(platform, fault view)`. The cold
    /// path characterizes every `(target, mode)` the view hasn't cached
    /// yet — reusing single-model results already in the entry — then
    /// memoizes the assembled [`Atlas`], so the request counts as one
    /// lookup (one miss cold, one hit warm) and repeats share one `Arc`.
    pub fn get_or_characterize<P: Platform>(
        &self,
        platform: &P,
        modeler: &IoModeler,
        faults: &[FaultKind],
    ) -> Result<CacheLookup, ServeError> {
        let _stage = self.obs.stage_span("cache");
        let key = self.key_for(platform, faults)?;
        if let Some(atlas) = self.read_entries().get(&key).and_then(|e| e.full.clone()) {
            self.count_hit(&key);
            return Ok(CacheLookup {
                atlas,
                hit: true,
                key,
            });
        }
        let mut entries = self.write_entries();
        if let Some(atlas) = entries.get(&key).and_then(|e| e.full.clone()) {
            self.count_hit(&key);
            return Ok(CacheLookup {
                atlas,
                hit: true,
                key,
            });
        }
        self.count_miss(&key);
        let _span = self.obs.stage_span("characterize");
        let entry = entries.entry(key.clone()).or_default();
        // Same slot order as `characterize_full_host`: targets ascending,
        // write before read — the assembled atlas is bit-stable.
        let degraded = if faults.is_empty() {
            None
        } else {
            Some(degraded_backend(platform, faults)?)
        };
        let mut models = Vec::with_capacity(2 * platform.num_nodes());
        for k in 0..2 * platform.num_nodes() {
            let target = NodeId::new(k / 2);
            let mode = TransferMode::ALL[k % 2];
            let slot = (target.0, mode);
            let model = match entry.models.get(&slot) {
                Some(m) => Arc::clone(m),
                None => {
                    let fresh = match &degraded {
                        Some(d) => modeler.try_characterize(d, target, mode)?,
                        None => modeler.try_characterize(platform, target, mode)?,
                    };
                    let fresh = Arc::new(fresh);
                    entry.models.insert(slot, Arc::clone(&fresh));
                    fresh
                }
            };
            models.push((*model).clone());
        }
        let atlas = Arc::new(Atlas::new(models)?);
        entry.full = Some(Arc::clone(&atlas));
        Ok(CacheLookup {
            atlas,
            hit: false,
            key,
        })
    }

    /// Evict one view key (all its models and its atlas). Returns whether
    /// an entry was actually removed (and only then counts an
    /// invalidation).
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        let removed = self.write_entries().remove(key).is_some();
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.invalidations_counter.inc();
            self.bump_shard(key.host, |s| &s.invalidations);
            self.emit("cache_invalidate", key);
        }
        removed
    }

    /// Evict every view key cached under one host shard (all fault views
    /// of that host). Returns how many keys were removed; each counts as
    /// one invalidation, globally and in the shard. This is the fleet
    /// analogue of [`Self::invalidate`]: regenerating or degrading one
    /// host never flushes its neighbours.
    pub fn invalidate_host(&self, host: u64) -> usize {
        let removed: Vec<CacheKey> = {
            let mut entries = self.write_entries();
            let keys: Vec<CacheKey> = entries
                .keys()
                .filter(|k| k.host == host)
                .cloned()
                .collect();
            for key in &keys {
                entries.remove(key);
            }
            keys
        };
        for key in &removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.invalidations_counter.inc();
            self.bump_shard(host, |s| &s.invalidations);
            self.emit("cache_invalidate", key);
        }
        removed.len()
    }

    /// Re-measure one representative cached model against the live backend
    /// and evict the key if the drift exceeds `threshold` (relative delta,
    /// e.g. `0.1` = 10%). Deterministic backends (sim, replay) are always
    /// stable; this is the hook a host deployment runs periodically.
    pub fn check_drift<P: Platform>(
        &self,
        platform: &P,
        modeler: &IoModeler,
        faults: &[FaultKind],
        threshold: f64,
    ) -> Result<DriftOutcome, ServeError> {
        let _stage = self.obs.stage_span("cache");
        let key = self.key_for(platform, faults)?;
        // Deterministic representative: the lowest cached (target, mode).
        let old = {
            let entries = self.read_entries();
            let Some(entry) = entries.get(&key) else {
                return Ok(DriftOutcome::NotCached);
            };
            let Some(slot) = entry
                .models
                .keys()
                .min_by_key(|(t, m)| (*t, *m == TransferMode::Read))
            else {
                return Ok(DriftOutcome::NotCached);
            };
            Arc::clone(&entry.models[slot])
        };
        let diff = if faults.is_empty() {
            recharacterize_and_diff(&old, platform, modeler)?
        } else {
            let degraded = degraded_backend(platform, faults)?;
            recharacterize_and_diff(&old, &degraded, modeler)?
        };
        let max_rel_delta = diff.max_rel_delta;
        if diff.is_stable(threshold) {
            Ok(DriftOutcome::Stable { max_rel_delta })
        } else {
            self.invalidate(&key);
            Ok(DriftOutcome::Invalidated { max_rel_delta })
        }
    }

    /// Monotonic counters + current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.read_entries().len(),
        }
    }

    /// Per-host-shard counters, sorted by shard id. Empty until the first
    /// lookup; shard 0 (the service's own backend) appears alongside any
    /// fleet host shards once it has traffic.
    pub fn shard_stats(&self) -> Vec<HostShardStats> {
        let shards = self.read_shards();
        let mut out: Vec<HostShardStats> = shards
            .iter()
            .map(|(host, s)| HostShardStats {
                host: *host,
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                invalidations: s.invalidations.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|s| s.host);
        out
    }

    /// Number of cached view keys.
    pub fn len(&self) -> usize {
        self.read_entries().len()
    }

    /// No cached views yet?
    pub fn is_empty(&self) -> bool {
        self.read_entries().is_empty()
    }

    /// Is this view key currently cached?
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.read_entries().contains_key(key)
    }

    /// Number of individual models cached under `key`.
    pub fn models_cached(&self, key: &CacheKey) -> usize {
        self.read_entries().get(key).map_or(0, |e| e.models.len())
    }

    fn count_hit(&self, key: &CacheKey) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.hits_counter.inc();
        self.bump_shard(key.host, |s| &s.hits);
        self.emit("cache_hit", key);
    }

    fn count_miss(&self, key: &CacheKey) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.misses_counter.inc();
        self.bump_shard(key.host, |s| &s.misses);
        self.emit("cache_miss", key);
    }

    /// Increment one counter cell of a shard, creating the shard on its
    /// first touch. The common case is a shared-lock read + atomic add.
    fn bump_shard(&self, host: u64, cell: impl Fn(&ShardCounters) -> &AtomicU64) {
        {
            let shards = self.read_shards();
            if let Some(s) = shards.get(&host) {
                cell(s).fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let mut shards = self.shards.write().unwrap_or_else(|e| e.into_inner());
        cell(shards.entry(host).or_default()).fetch_add(1, Ordering::Relaxed);
    }

    fn emit(&self, name: &str, key: &CacheKey) {
        let seq = self.hits.load(Ordering::Relaxed) + self.misses.load(Ordering::Relaxed);
        self.obs.event(
            name,
            seq as f64,
            &[
                ("backend", key.backend.as_str().into()),
                ("topology_hash", numa_obs::Value::U64(key.topology_hash)),
                ("fault_hash", numa_obs::Value::U64(key.fault_hash)),
                ("host", numa_obs::Value::U64(key.host)),
            ],
        );
    }

    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, FxHashMap<CacheKey, ViewEntry>> {
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    fn read_shards(&self) -> std::sync::RwLockReadGuard<'_, FxHashMap<u64, ShardCounters>> {
        self.shards.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_entries(&self) -> std::sync::RwLockWriteGuard<'_, FxHashMap<CacheKey, ViewEntry>> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for CharacterizationCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numio_core::SimPlatform;

    fn modeler() -> IoModeler {
        IoModeler::new().reps(3)
    }

    #[test]
    fn cold_miss_then_hits_share_one_atlas() {
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        let first = cache.get_or_characterize(&p, &modeler(), &[]).unwrap();
        assert!(!first.hit);
        let second = cache.get_or_characterize(&p, &modeler(), &[]).unwrap();
        assert!(second.hit);
        assert!(Arc::ptr_eq(&first.atlas, &second.atlas));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn single_model_lookups_characterize_only_that_model() {
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        let first = cache
            .get_or_model(&p, &modeler(), &[], NodeId(7), TransferMode::Write)
            .unwrap();
        assert!(!first.hit);
        assert_eq!(
            cache.models_cached(&first.key),
            1,
            "nothing else characterized"
        );
        let second = cache
            .get_or_model(&p, &modeler(), &[], NodeId(7), TransferMode::Write)
            .unwrap();
        assert!(second.hit);
        assert!(Arc::ptr_eq(&first.model, &second.model));
        // A different direction is its own slot under the same view key.
        let read = cache
            .get_or_model(&p, &modeler(), &[], NodeId(7), TransferMode::Read)
            .unwrap();
        assert!(!read.hit);
        assert_eq!(read.key, first.key);
        assert_eq!(cache.models_cached(&first.key), 2);
        assert_eq!(cache.len(), 1, "slots share one view key");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn atlas_reuses_models_cached_by_single_lookups() {
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        let single = cache
            .get_or_model(&p, &modeler(), &[], NodeId(7), TransferMode::Write)
            .unwrap();
        let atlas = cache.get_or_characterize(&p, &modeler(), &[]).unwrap();
        assert!(!atlas.hit, "the full atlas was not cached yet");
        assert_eq!(
            atlas.atlas.model(NodeId(7), TransferMode::Write).unwrap(),
            &*single.model,
            "the atlas reuses the already-characterized model bit-for-bit"
        );
        // And the filled slots now serve single lookups as hits.
        assert!(
            cache
                .get_or_model(&p, &modeler(), &[], NodeId(3), TransferMode::Read)
                .unwrap()
                .hit
        );
    }

    #[test]
    fn storage_models_slot_under_the_device_dimension() {
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        let cfg = StorageConfig::paper();
        let key = cache.key_for(&p, &[]).unwrap();
        assert!(cache
            .peek_storage_model(&key, cfg, TransferMode::Write)
            .is_none());
        let cold = cache
            .get_or_storage_model(&p, &modeler(), &[], cfg, TransferMode::Write)
            .unwrap();
        assert!(!cold.hit);
        assert_eq!(cold.key, key, "storage slots share the probe view key");
        let warm = cache
            .get_or_storage_model(&p, &modeler(), &[], cfg, TransferMode::Write)
            .unwrap();
        assert!(warm.hit);
        assert!(Arc::ptr_eq(&cold.model, &warm.model));
        assert!(Arc::ptr_eq(
            &cache
                .peek_storage_model(&key, cfg, TransferMode::Write)
                .unwrap(),
            &cold.model
        ));
        // A different operating point is its own slot under the same key,
        // and the probe slot map is untouched.
        let sync = StorageConfig::parse("sync-buffered").unwrap();
        let other = cache
            .get_or_storage_model(&p, &modeler(), &[], sync, TransferMode::Write)
            .unwrap();
        assert!(!other.hit);
        assert_eq!(other.key, key);
        assert_eq!(cache.models_cached(&key), 0, "probe slots untouched");
        assert_eq!(cache.len(), 1);
        // Table IV partition, straight off the cached storage model.
        let classes: Vec<Vec<u16>> = cold
            .model
            .classes()
            .iter()
            .map(|c| c.nodes.iter().map(|n| n.0).collect())
            .collect();
        assert_eq!(classes, vec![vec![6, 7], vec![0, 1, 4, 5], vec![2, 3]]);
    }

    #[test]
    fn device_stall_views_derate_cached_storage_models() {
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        let cfg = StorageConfig::paper();
        let base = cache
            .get_or_storage_model(&p, &modeler(), &[], cfg, TransferMode::Write)
            .unwrap();
        let stall = [FaultKind::DeviceStall {
            device: 1,
            factor: 0.5,
        }];
        let faulted = cache
            .get_or_storage_model(&p, &modeler(), &stall, cfg, TransferMode::Write)
            .unwrap();
        assert_ne!(base.key, faulted.key, "fault views key separately");
        // One of two cards at 50%: the aggregate keeps 75%.
        let ratio = faulted.model.node_gbps(NodeId(7)) / base.model.node_gbps(NodeId(7));
        assert!((ratio - 0.75).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn fault_view_changes_the_key_not_the_base_entry() {
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        let base = cache.get_or_characterize(&p, &modeler(), &[]).unwrap();
        let faulted = cache
            .get_or_characterize(&p, &modeler(), &[FaultKind::LinkDown { from: 6, to: 7 }])
            .unwrap();
        assert_ne!(base.key, faulted.key);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
        // Evicting the faulted view leaves the base entry hot.
        assert!(cache.invalidate(&faulted.key));
        assert!(cache.contains(&base.key));
        assert!(cache.get_or_characterize(&p, &modeler(), &[]).unwrap().hit);
    }

    #[test]
    fn fault_view_hash_is_canonical() {
        let down = FaultKind::LinkDown { from: 6, to: 7 };
        let storm = FaultKind::IrqStorm {
            node: 7,
            intensity: 0.5,
        };
        let a = fault_view_hash(&[down, storm]).unwrap();
        let b = fault_view_hash(&[storm, down, storm]).unwrap();
        assert_eq!(a, b);
        let c = fault_view_hash(&[]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn invalidating_an_uncached_key_counts_nothing() {
        let cache = CharacterizationCache::new();
        let key = CacheKey {
            backend: "x".into(),
            topology_hash: 1,
            fault_hash: 2,
            host: 0,
        };
        assert!(!cache.invalidate(&key));
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn deterministic_backend_never_drifts() {
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        assert_eq!(
            cache.check_drift(&p, &modeler(), &[], 0.1).unwrap(),
            DriftOutcome::NotCached
        );
        cache.get_or_characterize(&p, &modeler(), &[]).unwrap();
        match cache.check_drift(&p, &modeler(), &[], 0.1).unwrap() {
            DriftOutcome::Stable { max_rel_delta } => assert!(max_rel_delta < 1e-12),
            other => panic!("expected stable, got {other:?}"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn drift_past_threshold_evicts_exactly_the_stale_key() {
        let cache = CharacterizationCache::new();
        // Characterize the split-I/O machine but cache it under the dl585
        // key: a re-check against the real dl585 then shows real drift.
        let dl585 = SimPlatform::dl585();
        let split = SimPlatform::new(numa_fabric::calibration::dl585_split_io_fabric());
        let other = cache.get_or_characterize(&split, &modeler(), &[]).unwrap();
        let key = cache.key_for(&dl585, &[]).unwrap();
        let planted = Atlas::characterize(&split, &modeler()).unwrap();
        cache
            .write_entries()
            .insert(key.clone(), ViewEntry::from_atlas(planted));
        match cache.check_drift(&dl585, &modeler(), &[], 1e-6).unwrap() {
            DriftOutcome::Invalidated { max_rel_delta } => assert!(max_rel_delta > 1e-6),
            other => panic!("expected invalidation, got {other:?}"),
        }
        assert!(!cache.contains(&key));
        // The unrelated entry is untouched.
        assert!(cache.contains(&other.key));
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn partial_replay_fixture_serves_what_it_covers() {
        use numa_backend::{RecordingPlatform, ReplayPlatform};
        // Record only node 7's write-direction probes — the shape of the
        // shipped results/fixtures/dl585.jsonl.
        let rec = RecordingPlatform::new(SimPlatform::dl585());
        let live = modeler().characterize(&rec, NodeId(7), TransferMode::Write);
        let replay = ReplayPlatform::from_jsonl(&rec.fixture().to_jsonl()).unwrap();

        let cache = CharacterizationCache::new();
        // The covered model serves, caches, and matches the live run.
        let lookup = cache
            .get_or_model(&replay, &modeler(), &[], NodeId(7), TransferMode::Write)
            .unwrap();
        assert_eq!(*lookup.model, live);
        assert!(cache
            .get_or_model(&replay, &modeler(), &[], NodeId(7), TransferMode::Read)
            .is_err());
        // An uncovered model — and the full atlas — are typed errors, and
        // the covered model stays served from cache afterwards.
        assert!(cache.get_or_characterize(&replay, &modeler(), &[]).is_err());
        assert!(
            cache
                .get_or_model(&replay, &modeler(), &[], NodeId(7), TransferMode::Write)
                .unwrap()
                .hit
        );
    }

    #[test]
    fn peek_serves_warm_models_without_rekeying_and_counts_hits() {
        let obs = Obs::new();
        let cache = CharacterizationCache::new().with_obs(&obs);
        let p = SimPlatform::dl585();
        let key = cache.key_for(&p, &[]).unwrap();
        // Cold: nothing cached — peek counts neither a hit nor a miss.
        assert!(cache
            .peek_model(&key, NodeId(7), TransferMode::Write)
            .is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));

        let cold = cache
            .get_or_model(&p, &modeler(), &[], NodeId(7), TransferMode::Write)
            .unwrap();
        let warm = cache
            .peek_model(&key, NodeId(7), TransferMode::Write)
            .unwrap();
        assert!(Arc::ptr_eq(&cold.model, &warm));
        // A different slot under the same key is still cold to peek.
        assert!(cache
            .peek_model(&key, NodeId(7), TransferMode::Read)
            .is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(obs.counter("numio_serve_cache_hits_total", &[]).get(), 1);
    }

    #[test]
    fn shard_counters_split_per_host_and_invalidate_independently() {
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        // Shard 0 (the service's own view) and two fleet host shards.
        cache
            .get_or_model(&p, &modeler(), &[], NodeId(7), TransferMode::Write)
            .unwrap();
        for host in [1u64, 2] {
            cache
                .get_or_model_sharded(&p, &modeler(), &[], NodeId(7), TransferMode::Write, host)
                .unwrap();
            // Warm repeat: a hit charged to the same shard.
            cache
                .get_or_model_sharded(&p, &modeler(), &[], NodeId(7), TransferMode::Write, host)
                .unwrap();
        }
        assert_eq!(cache.len(), 3, "one view key per shard");
        let shards = cache.shard_stats();
        assert_eq!(
            shards.iter().map(|s| s.host).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!((shards[0].hits, shards[0].misses), (0, 1));
        assert_eq!((shards[1].hits, shards[1].misses), (1, 1));
        assert_eq!((shards[2].hits, shards[2].misses), (1, 1));
        // Shard totals reconcile with the global counters.
        let s = cache.stats();
        assert_eq!(s.hits, shards.iter().map(|x| x.hits).sum::<u64>());
        assert_eq!(s.misses, shards.iter().map(|x| x.misses).sum::<u64>());

        // Evicting host 1 leaves shard 0 and host 2 cached and hot.
        assert_eq!(cache.invalidate_host(1), 1);
        assert_eq!(cache.len(), 2);
        let shards = cache.shard_stats();
        assert_eq!(shards[1].invalidations, 1);
        assert_eq!(shards[2].invalidations, 0);
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache
            .get_or_model_sharded(&p, &modeler(), &[], NodeId(7), TransferMode::Write, 2)
            .unwrap()
            .hit);
        assert!(!cache
            .get_or_model_sharded(&p, &modeler(), &[], NodeId(7), TransferMode::Write, 1)
            .unwrap()
            .hit);
    }

    #[test]
    fn pre_shard_cache_keys_decode_to_shard_zero() {
        let line = r#"{"backend":"sim:dl585-g7","topology_hash":1,"fault_hash":2}"#;
        let key: CacheKey = serde_json::from_str(line).unwrap();
        assert_eq!(key.host, 0);
        let cache = CharacterizationCache::new();
        let p = SimPlatform::dl585();
        assert_eq!(
            cache.key_for(&p, &[]).unwrap(),
            cache.key_for_host(&p, &[], 0).unwrap()
        );
    }

    #[test]
    fn obs_counters_mirror_the_stats() {
        let obs = Obs::new();
        let cache = CharacterizationCache::new().with_obs(&obs);
        let p = SimPlatform::dl585();
        cache.get_or_characterize(&p, &modeler(), &[]).unwrap();
        cache.get_or_characterize(&p, &modeler(), &[]).unwrap();
        assert_eq!(obs.counter("numio_serve_cache_hits_total", &[]).get(), 1);
        assert_eq!(obs.counter("numio_serve_cache_misses_total", &[]).get(), 1);
    }
}
