#![warn(missing_docs)]
//! # numa-serve
//!
//! The paper's §V contribution, production-shaped: characterize a host
//! **once**, then serve `predict` (Eq. 1), `classify` (Tables IV/V class
//! membership), `place` (class-ranked scheduling), and `atlas` requests
//! from a long-running concurrent service — the memoize-don't-remeasure
//! discipline a cluster scheduler needs when the model answers millions
//! of placement queries but the machine is only probed on cold start,
//! drift, or a fault-view change.
//!
//! ## Pieces
//!
//! * [`CharacterizationCache`] — characterizations memoized per
//!   `(backend label, topology hash, fault-view hash, host shard)` behind
//!   an `RwLock`; within a key, models are cached lazily per
//!   `(target, mode)` (so partial replay fixtures serve what they cover)
//!   and the full atlas is assembled on demand; cold misses characterize
//!   via the generic [`Platform`](numio_core::Platform) pipeline;
//!   invalidation is *targeted* (one key, or one host shard via
//!   [`CharacterizationCache::invalidate_host`]) on drift past a
//!   threshold or a fault-view swap. Hit/miss/invalidation counters are
//!   kept per host shard ([`HostShardStats`]) as well as globally, so
//!   fleet ops account per generated host.
//! * [`ModelService`] — the request handler; never panics, shares one
//!   `Arc` across every worker thread. Cold requests mint a request id,
//!   emit an `accept → service → cache → characterize` trace-span tree
//!   (deterministic, see `numa_obs::trace`), land their wall-clock latency
//!   in the `numio_serve_request_seconds{op,backend,outcome}` histogram
//!   family, and append to a bounded flight recorder dumped by the
//!   `dump` op (or frozen as an incident on error replies and overload).
//!   Warm `predict`/`classify` requests take a raw-speed path: the fault
//!   view's cache key is precomputed (no per-request topology rehash),
//!   the model comes from a single shared-lock
//!   [`CharacterizationCache::peek_model`], Eq. 1 runs straight off the
//!   wire pairs without a `WorkloadMix` allocation, and metric handles
//!   are pre-resolved — while hit counters stay exact.
//! * [`spawn`] / [`spawn_with`] / [`ServerHandle`] — sharded worker-pool
//!   TCP server: an accept loop distributes connections across
//!   [`ServeConfig::workers`] workers (default `min(cores, 8)`), each
//!   multiplexing up to [`ServeConfig::queue_depth`] connections with
//!   nonblocking reads, so concurrent clients no longer map 1:1 onto OS
//!   threads. Requests pipeline per connection (replies in request
//!   order); overflow — past `queue_depth × workers` or
//!   [`ServeConfig::max_connections`] **live** connections — gets a typed
//!   [`ServeError::Overloaded`] reply, never unbounded thread growth.
//! * [`Client`] — blocking JSONL client; pipelining-safe
//!   ([`Client::send`]/[`Client::recv`]/[`Client::call_batch`]) with a
//!   [`Client::predict_batch`] helper for the `predict_batch` op, which
//!   resolves the cached view once and evaluates thousands of Eq. 1
//!   mixes bit-identically to sequential predicts.
//! * [`Request`] / [`Response`] — the wire vocabulary.
//!
//! ## Quickstart
//!
//! ```
//! use numa_serve::{spawn, Client, ModelService, Request, Response};
//! use numio_core::{IoModeler, SimPlatform};
//! use std::sync::Arc;
//!
//! let service = Arc::new(
//!     ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3)),
//! );
//! let server = spawn(service, "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(&server.addr().to_string()).unwrap();
//! // First classify pays the characterization; the repeat is a cache hit.
//! let req = Request::Classify { device: None, node: 2, target: 7, mode: Default::default() };
//! client.call(&req).unwrap();
//! match client.call(&req).unwrap() {
//!     Response::Classify { class, cached, .. } => {
//!         assert_eq!(class, 2); // Table IV: {6,7} > {0,1,4,5} > {2,3}
//!         assert!(cached);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! server.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod error;
pub mod fast_hash;
pub mod proto;
pub mod server;
pub mod service;

pub use cache::{
    fault_view_hash, topology_hash, CacheKey, CacheLookup, CacheStats, CharacterizationCache,
    DriftOutcome, HostShardStats, ModelLookup,
};
pub use client::Client;
pub use error::ServeError;
pub use fast_hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use proto::{
    decode_request, decode_response, encode, LatencySummary, Request, Response, WireMode,
};
pub use server::{spawn, spawn_with, ServeConfig, ServerHandle};
pub use service::{
    write_response, ModelService, BATCH_SIZE_METRIC, DEFAULT_DRIFT_THRESHOLD,
    MAX_FLEET_HOSTS, MAX_FLEET_STREAMS, SERVE_SECONDS_METRIC,
};
