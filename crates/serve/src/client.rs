//! A minimal blocking JSONL client — what `iomodel client` and the smoke
//! tests drive the server with.

use crate::error::ServeError;
use crate::proto::{self, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `host:port`.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one request, wait for its reply.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let line = self.call_raw(&proto::encode(req)?)?;
        proto::decode_response(&line)
    }

    /// Send one raw line, return the raw reply line (without the newline).
    /// Bit-identity tests compare these lines directly.
    pub fn call_raw(&mut self, line: &str) -> Result<String, ServeError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io { reason: "server closed the connection".into() });
        }
        Ok(reply.trim_end_matches(['\r', '\n']).to_string())
    }
}
