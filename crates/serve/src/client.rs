//! A blocking JSONL client — what `iomodel client`, the load generator,
//! and the smoke tests drive the server with.
//!
//! The client is **pipelining-safe**: [`Client::send`] queues a request
//! without reading, [`Client::recv`] flushes and reads one reply, and the
//! server guarantees replies come back in request order — so
//! [`Client::call_batch`] writes a whole burst before reading anything,
//! turning N round trips into one.

use crate::error::ServeError;
use crate::proto::{self, Request, Response, WireMode};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to `host:port`.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request, wait for its reply.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.send(req)?;
        self.recv()
    }

    /// Send one raw line, return the raw reply line (without the newline).
    /// Bit-identity tests compare these lines directly.
    pub fn call_raw(&mut self, line: &str) -> Result<String, ServeError> {
        self.send_raw(line)?;
        self.recv_raw()
    }

    /// Queue one request without waiting for its reply (pipelining). The
    /// write is buffered; [`Client::recv`] flushes before reading, so a
    /// send-send-recv-recv sequence puts both requests on the wire in one
    /// segment.
    pub fn send(&mut self, req: &Request) -> Result<(), ServeError> {
        self.send_raw(&proto::encode(req)?)
    }

    /// Queue one raw request line without waiting for its reply.
    pub fn send_raw(&mut self, line: &str) -> Result<(), ServeError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Read the next reply (flushing queued requests first). Replies
    /// arrive in request order.
    pub fn recv(&mut self) -> Result<Response, ServeError> {
        let line = self.recv_raw()?;
        proto::decode_response(&line)
    }

    /// Read the next raw reply line (without the newline), flushing queued
    /// requests first.
    pub fn recv_raw(&mut self) -> Result<String, ServeError> {
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io {
                reason: "server closed the connection".into(),
            });
        }
        Ok(reply.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Pipeline a burst: write every request, then read every reply. The
    /// i-th reply answers the i-th request.
    pub fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        for req in reqs {
            self.send(req)?;
        }
        reqs.iter().map(|_| self.recv()).collect()
    }

    /// Evaluate many Eq. 1 mixes against one `(target, mode)` model in a
    /// single `predict_batch` round trip. `predicted[i]` is bit-identical
    /// to a sequential `predict` of `mixes[i]`. A server-side `error`
    /// reply surfaces as [`ServeError::Remote`].
    pub fn predict_batch(
        &mut self,
        target: u16,
        mode: WireMode,
        mixes: &[Vec<(u16, u32)>],
    ) -> Result<Vec<f64>, ServeError> {
        match self.call(&Request::PredictBatch {
            device: None,
            target,
            mode,
            mixes: mixes.to_vec(),
        })? {
            Response::PredictBatch { predicted_gbps, .. } => Ok(predicted_gbps),
            Response::Error { message } => Err(ServeError::Remote { message }),
            other => Err(ServeError::Protocol {
                reason: format!("unexpected reply to predict_batch: {other:?}"),
            }),
        }
    }
}
