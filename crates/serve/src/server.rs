//! Thread-per-connection TCP server speaking the JSONL protocol.
//!
//! The accept loop runs on its own thread; each connection gets a worker
//! thread that shares the [`ModelService`] through an `Arc`. A
//! `{"op":"shutdown"}` request (or [`ServerHandle::shutdown`]) stops the
//! accept loop; in-flight connections finish their current line.

use crate::error::ServeError;
use crate::proto::{self, Request, Response};
use crate::service::ModelService;
use numio_core::Platform;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has a shutdown been requested (locally or over the wire)?
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting connections and wait for the accept loop to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        poke(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until a wire-side `shutdown` request stops the server.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Unblock a listener stuck in `accept` by connecting to it once.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Bind `addr` and serve `service` until shut down. Returns immediately
/// with a [`ServerHandle`]; use [`ServerHandle::join`] to block.
pub fn spawn<P>(service: Arc<ModelService<P>>, addr: &str) -> Result<ServerHandle, ServeError>
where
    P: Platform + Send + Sync + 'static,
{
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| ServeError::Io { reason: format!("address '{addr}' resolves to nothing") })?;
    let listener = TcpListener::bind(sock_addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let svc = Arc::clone(&service);
            let conn_stop = Arc::clone(&accept_stop);
            std::thread::spawn(move || {
                let _ = serve_connection(&svc, stream, bound, &conn_stop);
            });
        }
    });
    Ok(ServerHandle { addr: bound, stop, accept_thread: Some(accept_thread) })
}

/// Drain one connection: a request line in, a response line out, until
/// EOF or a shutdown request.
fn serve_connection<P: Platform>(
    service: &ModelService<P>,
    stream: TcpStream,
    bound: SocketAddr,
    stop: &AtomicBool,
) -> Result<(), ServeError> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match proto::decode_request(&line) {
            Ok(req) => {
                let resp = service.handle(&req);
                let shutdown = matches!(req, Request::Shutdown);
                (resp, shutdown)
            }
            Err(e) => (Response::Error { message: e.to_string() }, false),
        };
        writer.write_all(proto::encode(&response)?.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            poke(bound);
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::WireMode;
    use numio_core::{IoModeler, SimPlatform};

    fn start() -> (ServerHandle, Arc<ModelService<SimPlatform>>) {
        let service = Arc::new(
            ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3)),
        );
        let handle = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        (handle, service)
    }

    #[test]
    fn loopback_round_trip_and_cache_hit() {
        let (handle, service) = start();
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        let req = Request::Predict {
            target: 7,
            mode: WireMode::Write,
            mix: vec![(6, 1), (2, 1)],
        };
        let cold = client.call(&req).unwrap();
        // A second client over a fresh connection hits the shared cache.
        let mut other = Client::connect(&addr).unwrap();
        let warm = other.call(&req).unwrap();
        match (cold, warm) {
            (
                Response::Predict { predicted_gbps: a, cached: false, .. },
                Response::Predict { predicted_gbps: b, cached: true, .. },
            ) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("unexpected replies: {other:?}"),
        }
        assert_eq!(service.cache().stats().misses, 1);
        handle.shutdown();
    }

    #[test]
    fn malformed_lines_keep_the_connection_alive() {
        let (handle, _service) = start();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let resp = client.call_raw("this is not json").unwrap();
        assert!(resp.contains("\"reply\":\"error\""), "{resp}");
        // Still serviceable afterwards.
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        handle.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_accept_loop() {
        let (handle, _service) = start();
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert_eq!(
            client.call(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        );
        handle.join();
    }
}
