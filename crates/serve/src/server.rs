//! Thread-per-connection TCP server speaking the JSONL protocol.
//!
//! The accept loop runs on its own thread; each connection gets a worker
//! thread that shares the [`ModelService`] through an `Arc`. A
//! `{"op":"shutdown"}` request (or [`ServerHandle::shutdown`]) stops the
//! accept loop; in-flight connections finish their current line.

use crate::error::ServeError;
use crate::proto::{self, Response};
use crate::service::ModelService;
use numio_core::Platform;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server-side knobs beyond the service itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeConfig {
    /// Maximum concurrently open connections; `0` means unlimited.
    /// Connections over the limit get one `error` reply (carrying
    /// [`ServeError::Overloaded`]) and are closed.
    pub max_connections: usize,
}

/// A running server: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has a shutdown been requested (locally or over the wire)?
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting connections and wait for the accept loop to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        poke(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until a wire-side `shutdown` request stops the server.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Unblock a listener stuck in `accept` by connecting to it once.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Bind `addr` and serve `service` until shut down, with default
/// [`ServeConfig`]. Returns immediately with a [`ServerHandle`]; use
/// [`ServerHandle::join`] to block.
pub fn spawn<P>(service: Arc<ModelService<P>>, addr: &str) -> Result<ServerHandle, ServeError>
where
    P: Platform + Send + Sync + 'static,
{
    spawn_with(service, addr, ServeConfig::default())
}

/// [`spawn`] with explicit server knobs.
pub fn spawn_with<P>(
    service: Arc<ModelService<P>>,
    addr: &str,
    config: ServeConfig,
) -> Result<ServerHandle, ServeError>
where
    P: Platform + Send + Sync + 'static,
{
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| ServeError::Io {
            reason: format!("address '{addr}' resolves to nothing"),
        })?;
    let listener = TcpListener::bind(sock_addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        // Connection ids thread causality through obs events; the active
        // gauge enforces the (optional) connection limit.
        let next_conn = AtomicU64::new(0);
        let active = Arc::new(AtomicUsize::new(0));
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn = next_conn.fetch_add(1, Ordering::Relaxed) + 1;
            let limit = config.max_connections;
            if limit > 0 && active.load(Ordering::SeqCst) >= limit {
                let reply = service.note_overload(conn, limit);
                let mut writer = stream;
                let _ = write_reply(&mut writer, &reply);
                continue;
            }
            let guard = ConnGuard::enter(&active);
            let svc = Arc::clone(&service);
            let conn_stop = Arc::clone(&accept_stop);
            std::thread::spawn(move || {
                let _guard = guard;
                let _ = serve_connection(&svc, stream, bound, &conn_stop, conn);
            });
        }
    });
    Ok(ServerHandle {
        addr: bound,
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// Decrements the active-connection count when a worker exits, however
/// it exits (normal EOF, read error, panic unwind).
struct ConnGuard(Arc<AtomicUsize>);

impl ConnGuard {
    fn enter(active: &Arc<AtomicUsize>) -> Self {
        active.fetch_add(1, Ordering::SeqCst);
        ConnGuard(Arc::clone(active))
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Write one response line; a serialization failure falls back to a
/// literal error line so the client always gets *something* parseable.
fn write_reply(writer: &mut TcpStream, response: &Response) -> Result<(), ServeError> {
    let line = proto::encode(response).unwrap_or_else(|_| {
        r#"{"reply":"error","message":"internal: reply serialization failed"}"#.to_string()
    });
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}

/// Drain one connection: a request line in, a response line out, until
/// EOF or a shutdown request. Lines that fail to decode — including the
/// partial line a mid-request disconnect leaves behind — are answered
/// with a typed `error` reply and counted under `op="invalid"`; read
/// errors get a best-effort reply before the connection drops.
fn serve_connection<P: Platform>(
    service: &ModelService<P>,
    stream: TcpStream,
    bound: SocketAddr,
    stop: &AtomicBool,
    conn: u64,
) -> Result<(), ServeError> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                // The socket failed mid-read (reset, invalid UTF-8, ...).
                // Record it as an invalid request and tell the peer if the
                // write half still works.
                let reply = service.note_unreadable(conn, &e.to_string());
                let _ = write_reply(&mut writer, &reply);
                return Err(e.into());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = service.handle_line(conn, &line);
        write_reply(&mut writer, &response)?;
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            poke(bound);
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::{Request, WireMode};
    use numio_core::{IoModeler, SimPlatform};

    fn start() -> (ServerHandle, Arc<ModelService<SimPlatform>>) {
        let service = Arc::new(
            ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3)),
        );
        let handle = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        (handle, service)
    }

    #[test]
    fn loopback_round_trip_and_cache_hit() {
        let (handle, service) = start();
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        let req = Request::Predict {
            target: 7,
            mode: WireMode::Write,
            mix: vec![(6, 1), (2, 1)],
        };
        let cold = client.call(&req).unwrap();
        // A second client over a fresh connection hits the shared cache.
        let mut other = Client::connect(&addr).unwrap();
        let warm = other.call(&req).unwrap();
        match (cold, warm) {
            (
                Response::Predict {
                    predicted_gbps: a,
                    cached: false,
                    ..
                },
                Response::Predict {
                    predicted_gbps: b,
                    cached: true,
                    ..
                },
            ) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("unexpected replies: {other:?}"),
        }
        assert_eq!(service.cache().stats().misses, 1);
        handle.shutdown();
    }

    #[test]
    fn malformed_lines_keep_the_connection_alive() {
        let (handle, _service) = start();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let resp = client.call_raw("this is not json").unwrap();
        assert!(resp.contains("\"reply\":\"error\""), "{resp}");
        // Still serviceable afterwards.
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        handle.shutdown();
    }

    /// Poll until `pred` holds (worker threads race the assertions).
    fn eventually(pred: impl Fn() -> bool) -> bool {
        for _ in 0..200 {
            if pred() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        pred()
    }

    #[test]
    fn disconnect_mid_request_is_counted_not_crashed() {
        use std::io::Write as _;
        let (handle, service) = start();
        let addr = handle.addr();
        {
            // A half-written request with no trailing newline: the peer
            // vanishes mid-line. BufRead surfaces the partial line at EOF,
            // which must become a typed invalid request, not a panic.
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(br#"{"op":"pred"#).unwrap();
            raw.flush().unwrap();
        }
        assert!(
            eventually(|| service.invalid_requests() >= 1),
            "partial line counted as invalid, got {}",
            service.invalid_requests()
        );
        // The server is still fully serviceable afterwards.
        let mut client = Client::connect(&addr.to_string()).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        handle.shutdown();
    }

    #[test]
    fn connections_over_the_limit_get_a_typed_overload_reply() {
        let service = Arc::new(
            ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3)),
        );
        let handle = spawn_with(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServeConfig { max_connections: 1 },
        )
        .unwrap();
        let addr = handle.addr().to_string();
        let mut first = Client::connect(&addr).unwrap();
        assert_eq!(first.call(&Request::Ping).unwrap(), Response::Pong);
        // While the first connection is open, a second one is refused with
        // one parseable error line. The refusal races the accept loop's
        // bookkeeping, so poll a few fresh connections.
        let refused = eventually(|| {
            let Ok(mut second) = Client::connect(&addr) else {
                return false;
            };
            match second.call(&Request::Ping) {
                Ok(Response::Error { message }) => {
                    assert!(message.contains("connection limit 1"), "{message}");
                    true
                }
                _ => false,
            }
        });
        assert!(refused, "second connection never saw the overload reply");
        assert!(service.error_replies() >= 1);
        // Closing the first connection frees the slot.
        drop(first);
        assert!(eventually(|| {
            let Ok(mut third) = Client::connect(&addr) else {
                return false;
            };
            matches!(third.call(&Request::Ping), Ok(Response::Pong))
        }));
        handle.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_accept_loop() {
        let (handle, _service) = start();
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert_eq!(
            client.call(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        );
        handle.join();
    }
}
