//! Sharded worker-pool TCP server speaking the JSONL protocol.
//!
//! The accept loop runs on its own thread and *distributes* connections
//! across a fixed pool of workers instead of spawning a thread per
//! connection: each worker owns a bounded run queue of registered
//! connections and multiplexes them with nonblocking reads, so 1k
//! concurrent clients cost the same OS-thread count as 1 (the accept
//! thread plus [`ServeConfig::workers`] workers). A connection that finds
//! every queue full — or pushes past `max_connections` live connections —
//! gets one typed [`ServeError::Overloaded`] reply and is closed:
//! backpressure, never unbounded thread growth.
//!
//! Within a connection the protocol is pipelined: a client may write many
//! request lines before reading; the worker parses every complete line in
//! its per-connection read buffer and appends the replies, in request
//! order, to the connection's write buffer. Framing is allocation-free on
//! the hot path — lines are decoded straight from the read buffer slice
//! and replies serialize into the reusable write buffer, no intermediate
//! `String` in either direction.
//!
//! A `{"op":"shutdown"}` request (or [`ServerHandle::shutdown`]) stops the
//! accept loop and the workers; pending replies are flushed best-effort
//! before connections close.

use crate::error::ServeError;
use crate::service::{write_response, ModelService};
use numio_core::Platform;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on the default worker count (`min(available cores, this)`).
const MAX_DEFAULT_WORKERS: usize = 8;

/// Per-worker run-queue depth when `queue_depth` is left at 0.
const DEFAULT_QUEUE_DEPTH: usize = 128;

/// How many bytes one nonblocking read pulls at most.
const READ_CHUNK: usize = 16 * 1024;

/// A request line longer than this is unreadable (the connection closes):
/// compact-JSON requests are tiny, so an unbounded line is a broken or
/// hostile peer, not a big request.
const MAX_LINE: usize = 1 << 20;

/// Idle sweeps a worker spends yielding before it starts sleeping.
const SPIN_SWEEPS: u32 = 16;

/// Server-side knobs beyond the service itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeConfig {
    /// Maximum concurrently **live** connections; `0` means unlimited.
    /// Connections over the limit get one `error` reply (carrying
    /// [`ServeError::Overloaded`]) and are closed; a disconnect frees its
    /// slot, so the limit is reusable.
    pub max_connections: usize,
    /// Worker threads multiplexing connections; `0` (the default) resolves
    /// to `min(available cores, 8)`.
    pub workers: usize,
    /// Registered connections each worker accepts before refusing more;
    /// `0` (the default) resolves to 128.
    pub queue_depth: usize,
}

impl ServeConfig {
    /// The worker count `0` resolves to.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_DEFAULT_WORKERS)
    }

    /// The per-worker queue depth `0` resolves to.
    pub fn resolved_queue_depth(&self) -> usize {
        if self.queue_depth > 0 {
            self.queue_depth
        } else {
            DEFAULT_QUEUE_DEPTH
        }
    }
}

/// A running server: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: usize,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Has a shutdown been requested (locally or over the wire)?
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting connections and wait for the accept loop (and its
    /// worker pool) to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        poke(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until a wire-side `shutdown` request stops the server.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Unblock a listener stuck in `accept` by connecting to it once.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Bind `addr` and serve `service` until shut down, with default
/// [`ServeConfig`]. Returns immediately with a [`ServerHandle`]; use
/// [`ServerHandle::join`] to block.
pub fn spawn<P>(service: Arc<ModelService<P>>, addr: &str) -> Result<ServerHandle, ServeError>
where
    P: Platform + Send + Sync + 'static,
{
    spawn_with(service, addr, ServeConfig::default())
}

/// One worker's shared half: the handoff queue the accept loop pushes
/// registered connections into, plus the registered-connection count that
/// bounds it (incremented by the accept loop, decremented by the worker on
/// hangup — so the bound tracks *live* connections, not started threads).
struct WorkerShared {
    inbox: Mutex<VecDeque<Conn>>,
    registered: AtomicUsize,
    connections_gauge: numa_obs::Gauge,
}

impl WorkerShared {
    /// Reserve a queue slot if the worker is under `depth`.
    fn try_register(&self, depth: usize) -> bool {
        self.registered
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                (v < depth).then_some(v + 1)
            })
            .is_ok()
    }
}

/// [`spawn`] with explicit server knobs.
pub fn spawn_with<P>(
    service: Arc<ModelService<P>>,
    addr: &str,
    config: ServeConfig,
) -> Result<ServerHandle, ServeError>
where
    P: Platform + Send + Sync + 'static,
{
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| ServeError::Io {
            reason: format!("address '{addr}' resolves to nothing"),
        })?;
    let listener = TcpListener::bind(sock_addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let num_workers = config.resolved_workers();
    let depth = config.resolved_queue_depth();

    let obs = service.obs();
    obs.gauge("numio_serve_workers", &[]).set(num_workers as f64);
    obs.gauge("numio_serve_queue_depth", &[]).set(depth as f64);

    // Spawn the pool up front; the accept thread owns the handles so
    // shutdown/join is a single join on the accept thread.
    let mut shards: Vec<Arc<WorkerShared>> = Vec::with_capacity(num_workers);
    let mut threads: Vec<JoinHandle<()>> = Vec::with_capacity(num_workers);
    for w in 0..num_workers {
        let label = w.to_string();
        let shared = Arc::new(WorkerShared {
            inbox: Mutex::new(VecDeque::new()),
            registered: AtomicUsize::new(0),
            connections_gauge: obs.gauge("numio_serve_worker_connections", &[("worker", &label)]),
        });
        shared.connections_gauge.set(0.0);
        let svc = Arc::clone(&service);
        let worker_shared = Arc::clone(&shared);
        let worker_stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            worker_loop(&svc, &worker_shared, &worker_stop, bound);
        }));
        shards.push(shared);
    }

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        let mut next_conn: u64 = 0;
        let mut scratch = Vec::new();
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            next_conn += 1;
            let conn = next_conn;
            let limit = config.max_connections;
            let live: usize = shards.iter().map(|s| s.registered.load(Ordering::SeqCst)).sum();
            if limit > 0 && live >= limit {
                refuse(&service, stream, conn, limit, &mut scratch);
                continue;
            }
            // Shard by connection id, scanning forward past full queues.
            let start = (conn as usize) % num_workers;
            let slot = (0..num_workers)
                .map(|i| (start + i) % num_workers)
                .find(|&w| shards[w].try_register(depth));
            let Some(w) = slot else {
                // Every queue is full: total capacity is the honest limit.
                refuse(&service, stream, conn, num_workers * depth, &mut scratch);
                continue;
            };
            let shared = &shards[w];
            shared
                .connections_gauge
                .set(shared.registered.load(Ordering::SeqCst) as f64);
            if stream.set_nonblocking(true).is_err() {
                shared.registered.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            shared
                .inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(Conn::new(stream, conn));
            threads[w].thread().unpark();
        }
        // Drain the pool: wake every worker so it observes the stop flag.
        accept_stop.store(true, Ordering::SeqCst);
        for t in &threads {
            t.thread().unpark();
        }
        for t in threads {
            let _ = t.join();
        }
    });
    Ok(ServerHandle {
        addr: bound,
        stop,
        workers: num_workers,
        accept_thread: Some(accept_thread),
    })
}

/// Send the typed overload reply on a still-blocking fresh connection and
/// drop it. Best-effort: the peer may already be gone.
fn refuse<P: Platform>(
    service: &ModelService<P>,
    mut stream: TcpStream,
    conn: u64,
    limit: usize,
    scratch: &mut Vec<u8>,
) {
    let reply = service.note_overload(conn, limit);
    scratch.clear();
    write_response(&reply, scratch);
    let _ = stream.write_all(scratch);
    let _ = stream.flush();
}

/// What one pump of a connection concluded.
struct Pump {
    /// Bytes moved or requests answered this sweep.
    progress: bool,
    /// The connection is done (EOF, error, oversized line).
    close: bool,
    /// A `shutdown` request was answered on this connection.
    shutdown: bool,
}

/// One multiplexed connection: the socket plus its reusable read and
/// write buffers. Buffers grow to the connection's working set once and
/// are reused for every subsequent request (allocation-free steady state).
struct Conn {
    stream: TcpStream,
    id: u64,
    /// Unparsed request bytes (complete lines are consumed every sweep).
    buf: Vec<u8>,
    /// Pending reply bytes, `out_pos..` not yet written.
    out: Vec<u8>,
    out_pos: usize,
}

impl Conn {
    fn new(stream: TcpStream, id: u64) -> Self {
        Conn {
            stream,
            id,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
        }
    }

    /// Write as much pending reply as the socket accepts. Returns `false`
    /// if the connection is dead.
    fn flush_pending(&mut self, progress: &mut bool) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.out_pos += n;
                    *progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        true
    }

    /// Blocking best-effort flush of whatever reply bytes are pending —
    /// used right before the connection closes (shutdown, unreadable peer)
    /// so the last reply is not lost in the write buffer.
    fn final_flush(&mut self) {
        let _ = self.stream.set_nonblocking(false);
        let _ = self
            .stream
            .set_write_timeout(Some(Duration::from_millis(250)));
        if self.out_pos < self.out.len() {
            let _ = self.stream.write_all(&self.out[self.out_pos..]);
        }
        let _ = self.stream.flush();
        self.out.clear();
        self.out_pos = 0;
    }
}

/// Pump one connection once: flush pending replies, read what the socket
/// has, answer every complete line (pipelining: many lines in, replies
/// appended in order), detect EOF.
fn pump<P: Platform>(service: &ModelService<P>, c: &mut Conn) -> Pump {
    let mut progress = false;
    let mut done = Pump {
        progress: false,
        close: false,
        shutdown: false,
    };
    if !c.flush_pending(&mut progress) {
        done.progress = progress;
        done.close = true;
        return done;
    }

    // Pull everything currently readable into the connection buffer.
    let mut eof = false;
    loop {
        let old = c.buf.len();
        c.buf.resize(old + READ_CHUNK, 0);
        match c.stream.read(&mut c.buf[old..]) {
            Ok(0) => {
                c.buf.truncate(old);
                eof = true;
                break;
            }
            Ok(n) => {
                c.buf.truncate(old + n);
                progress = true;
                if c.buf.len() > MAX_LINE && !c.buf.contains(&b'\n') {
                    let reply = service.note_unreadable(c.id, "request line exceeds 1 MiB");
                    write_response(&reply, &mut c.out);
                    c.final_flush();
                    done.progress = true;
                    done.close = true;
                    return done;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                c.buf.truncate(old);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                c.buf.truncate(old);
            }
            Err(e) => {
                c.buf.truncate(old);
                // The socket failed mid-read (reset, aborted, ...): record
                // an invalid request and tell the peer if the write half
                // still works.
                let reply = service.note_unreadable(c.id, &e.to_string());
                write_response(&reply, &mut c.out);
                c.final_flush();
                done.progress = true;
                done.close = true;
                return done;
            }
        }
    }

    // Answer every complete line in the buffer, replies in request order.
    let mut consumed = 0;
    while let Some(rel) = c.buf[consumed..].iter().position(|&b| b == b'\n') {
        let end = consumed + rel;
        let line = &c.buf[consumed..end];
        consumed = end + 1;
        progress = true;
        match std::str::from_utf8(line) {
            Ok(text) if text.trim().is_empty() => {}
            Ok(text) => {
                if service.handle_line_into(c.id, text, &mut c.out) {
                    done.shutdown = true;
                    break;
                }
            }
            Err(_) => {
                let reply = service.note_unreadable(c.id, "request line is not valid UTF-8");
                write_response(&reply, &mut c.out);
                done.close = true;
                break;
            }
        }
    }
    if consumed > 0 {
        c.buf.drain(..consumed);
    }

    if done.shutdown || done.close {
        c.final_flush();
        done.progress = true;
        done.close = true;
        return done;
    }

    if eof {
        // A half-written request with no trailing newline means the peer
        // vanished mid-line: a typed invalid request, not a panic.
        if !c.buf.is_empty() && c.buf.iter().any(|b| !b.is_ascii_whitespace()) {
            let reason = match std::str::from_utf8(&c.buf) {
                Ok(_) => "connection closed mid-request line",
                Err(_) => "connection closed mid-request line (not valid UTF-8)",
            };
            let reply = service.note_unreadable(c.id, reason);
            write_response(&reply, &mut c.out);
            c.buf.clear();
        }
        c.final_flush();
        done.close = true;
        done.progress = true;
        return done;
    }

    if !c.flush_pending(&mut progress) {
        done.close = true;
    }
    done.progress = progress;
    done
}

/// One worker: adopt connections from the inbox, sweep them round-robin,
/// and back off (yield, then micro-sleeps) when a sweep moves nothing.
/// The worker owns its connections outright — no locks on the data path.
fn worker_loop<P: Platform>(
    service: &ModelService<P>,
    shared: &WorkerShared,
    stop: &AtomicBool,
    bound: SocketAddr,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_sweeps: u32 = 0;
    loop {
        {
            let mut inbox = shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
            while let Some(c) = inbox.pop_front() {
                conns.push(c);
                idle_sweeps = 0;
            }
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if conns.is_empty() {
            // Nothing to sweep: sleep until the accept loop hands over a
            // connection (unpark) or shutdown wakes everyone.
            std::thread::park_timeout(Duration::from_millis(50));
            continue;
        }
        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            let outcome = pump(service, &mut conns[i]);
            progress |= outcome.progress;
            if outcome.shutdown {
                stop.store(true, Ordering::SeqCst);
                poke(bound);
            }
            if outcome.close {
                drop(conns.swap_remove(i));
                shared.registered.fetch_sub(1, Ordering::SeqCst);
                shared
                    .connections_gauge
                    .set(shared.registered.load(Ordering::SeqCst) as f64);
                progress = true;
            } else {
                i += 1;
            }
        }
        if progress {
            idle_sweeps = 0;
        } else {
            idle_sweeps = idle_sweeps.saturating_add(1);
            if idle_sweeps <= SPIN_SWEEPS {
                std::thread::yield_now();
            } else {
                // Exponential micro-sleep, 50 µs doubling to ~1.6 ms: keeps
                // an idle pool near-zero CPU while bounding the added
                // latency of a request that arrives mid-sleep.
                let exp = (idle_sweeps - SPIN_SWEEPS).min(5);
                std::thread::sleep(Duration::from_micros(50u64 << exp));
            }
        }
    }
    // Shutting down: flush whatever replies are pending, then drop.
    for mut c in conns.drain(..) {
        c.final_flush();
        shared.registered.fetch_sub(1, Ordering::SeqCst);
    }
    shared
        .connections_gauge
        .set(shared.registered.load(Ordering::SeqCst) as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::{Request, Response, WireMode};
    use numio_core::{IoModeler, SimPlatform};

    fn start() -> (ServerHandle, Arc<ModelService<SimPlatform>>) {
        let service = Arc::new(
            ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3)),
        );
        let handle = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        (handle, service)
    }

    #[test]
    fn loopback_round_trip_and_cache_hit() {
        let (handle, service) = start();
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        let req = Request::Predict {
            device: None,
            target: 7,
            mode: WireMode::Write,
            mix: vec![(6, 1), (2, 1)],
        };
        let cold = client.call(&req).unwrap();
        // A second client over a fresh connection hits the shared cache.
        let mut other = Client::connect(&addr).unwrap();
        let warm = other.call(&req).unwrap();
        match (cold, warm) {
            (
                Response::Predict {
                    predicted_gbps: a,
                    cached: false,
                    ..
                },
                Response::Predict {
                    predicted_gbps: b,
                    cached: true,
                    ..
                },
            ) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("unexpected replies: {other:?}"),
        }
        assert_eq!(service.cache().stats().misses, 1);
        handle.shutdown();
    }

    #[test]
    fn malformed_lines_keep_the_connection_alive() {
        let (handle, _service) = start();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let resp = client.call_raw("this is not json").unwrap();
        assert!(resp.contains("\"reply\":\"error\""), "{resp}");
        // Still serviceable afterwards.
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        handle.shutdown();
    }

    /// Poll until `pred` holds (worker threads race the assertions).
    fn eventually(pred: impl Fn() -> bool) -> bool {
        for _ in 0..200 {
            if pred() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        pred()
    }

    #[test]
    fn disconnect_mid_request_is_counted_not_crashed() {
        use std::io::Write as _;
        let (handle, service) = start();
        let addr = handle.addr();
        {
            // A half-written request with no trailing newline: the peer
            // vanishes mid-line. The worker surfaces the partial line at
            // EOF, which must become a typed invalid request, not a panic.
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(br#"{"op":"pred"#).unwrap();
            raw.flush().unwrap();
        }
        assert!(
            eventually(|| service.invalid_requests() >= 1),
            "partial line counted as invalid, got {}",
            service.invalid_requests()
        );
        // The server is still fully serviceable afterwards.
        let mut client = Client::connect(&addr.to_string()).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        handle.shutdown();
    }

    #[test]
    fn connections_over_the_limit_get_a_typed_overload_reply() {
        let service = Arc::new(
            ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3)),
        );
        let handle = spawn_with(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServeConfig {
                max_connections: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr().to_string();
        let mut first = Client::connect(&addr).unwrap();
        assert_eq!(first.call(&Request::Ping).unwrap(), Response::Pong);
        // While the first connection is open, a second one is refused with
        // one parseable error line. The refusal races the accept loop's
        // bookkeeping, so poll a few fresh connections.
        let refused = eventually(|| {
            let Ok(mut second) = Client::connect(&addr) else {
                return false;
            };
            match second.call(&Request::Ping) {
                Ok(Response::Error { message }) => {
                    assert!(message.contains("connection limit 1"), "{message}");
                    true
                }
                _ => false,
            }
        });
        assert!(refused, "second connection never saw the overload reply");
        assert!(service.error_replies() >= 1);
        // Closing the first connection frees the slot.
        drop(first);
        assert!(eventually(|| {
            let Ok(mut third) = Client::connect(&addr) else {
                return false;
            };
            matches!(third.call(&Request::Ping), Ok(Response::Pong))
        }));
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_request_order() {
        use std::io::{BufRead, BufReader, Write as _};
        let (handle, _service) = start();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Write every request up front — no reads interleaved — then read
        // all replies: they must come back in request order.
        let n = 16u32;
        for i in 0..n {
            let line = crate::proto::encode(&Request::Predict {
                device: None,
                target: 7,
                mode: WireMode::Write,
                mix: vec![(6, i + 1)],
            })
            .unwrap();
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
        }
        writer.flush().unwrap();
        let mut cached = Vec::new();
        for i in 0..n {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            match crate::proto::decode_response(&reply).unwrap() {
                Response::Predict { cached: c, .. } => cached.push(c),
                other => panic!("request {i}: unexpected reply {other:?}"),
            }
        }
        // Exactly the first request paid the characterization; the rest of
        // the pipeline hit the model it cached — proof the replies came
        // back in request order, not completion order.
        assert!(!cached[0], "the first pipelined request is the cold one: {cached:?}");
        assert!(cached[1..].iter().all(|&c| c), "{cached:?}");
        handle.shutdown();
    }

    #[test]
    fn worker_pool_size_is_bounded_and_configurable() {
        let service = Arc::new(
            ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3)),
        );
        let handle = spawn_with(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                queue_depth: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(handle.workers(), 2);
        assert_eq!(service.obs().gauge("numio_serve_workers", &[]).get(), 2.0);
        assert_eq!(
            service.obs().gauge("numio_serve_queue_depth", &[]).get(),
            4.0
        );
        // More connections than workers all get served concurrently.
        let addr = handle.addr().to_string();
        let mut clients: Vec<Client> = (0..6).map(|_| Client::connect(&addr).unwrap()).collect();
        for c in &mut clients {
            assert_eq!(c.call(&Request::Ping).unwrap(), Response::Pong);
        }
        handle.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_accept_loop() {
        let (handle, _service) = start();
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert_eq!(
            client.call(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        );
        handle.join();
    }
}
