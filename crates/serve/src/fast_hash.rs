//! A fast, non-cryptographic hasher for the serving hot path.
//!
//! `std`'s default `SipHash` is keyed and DoS-resistant but costs tens of
//! nanoseconds per small key — measurable when every request does a
//! [`CacheKey`](crate::CacheKey) and `(target, mode)` slot lookup. The
//! serve cache's keys are derived from backend labels and stable FNV-1a
//! digests the *server* computes, never from attacker-controlled bytes,
//! so the rustc-style multiply-rotate "Fx" construction is safe here and
//! roughly an order of magnitude cheaper on short keys (minim uses the
//! same hasher, via `rustc_hash`, for its event entities).
//!
//! Std-only: the workspace takes no `rustc-hash` dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived odd multiplier (2^64 / phi), the same constant
/// the rustc hasher family uses.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Multiply-rotate hasher over 8-byte lanes. Not keyed, not
/// collision-resistant against adversaries — see the module docs for why
/// that is acceptable for cache-internal keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab\0" and "ab" cannot collide by
            // zero-padding alone.
            tail[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&"sim:dl585-g7"), hash_of(&"sim:dl585-g7"));
        assert_eq!(hash_of(&(7u16, 42u64)), hash_of(&(7u16, 42u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&"sim:dl585-g7"), hash_of(&"sim:dl585-g8"));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        // Length folding: zero-padded tails of different lengths differ.
        assert_ne!(hash_of(&[0u8, 0][..]), hash_of(&[0u8, 0, 0][..]));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: FxHashMap<(u16, u8), u32> = FxHashMap::default();
        for t in 0..8u16 {
            for mode in 0..2u8 {
                m.insert((t, mode), u32::from(t) * 2 + u32::from(mode));
            }
        }
        assert_eq!(m.len(), 16);
        assert_eq!(m[&(7, 1)], 15);
    }
}
