//! Typed failures of the serving layer.

use numa_faults::FaultError;
use numio_core::{AtlasError, PlatformError, RecheckError, StorageError};
use std::fmt;

/// Everything the serving layer can fail with. Per the workspace's
/// fallible-API contract nothing in `numa-serve` panics on user input:
/// malformed requests, missing models, and backend failures all surface
/// here (and as `Error` JSON replies on the wire).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A characterization probe failed ([`numio_core::Platform`]).
    Platform(PlatformError),
    /// Building the cached atlas failed.
    Atlas(AtlasError),
    /// Applying a fault view to the backend failed.
    Fault(FaultError),
    /// A drift re-check against the live backend failed.
    Recheck(RecheckError),
    /// Producing a storage-tier model failed (no fabric, no SSDs, or the
    /// underlying probe characterization).
    Storage(StorageError),
    /// The operation needs a simulator fabric the backend does not expose
    /// (e.g. `place` on a replay or host backend).
    NoFabric {
        /// Label of the fabric-less backend.
        label: String,
    },
    /// The cached atlas has no model for the requested (target, mode).
    NoModel {
        /// Requested device node.
        target: u16,
        /// Requested direction, as its wire name.
        mode: &'static str,
    },
    /// The request was structurally valid JSON but semantically wrong
    /// (empty mix, zero counts, unknown node, ...).
    BadRequest {
        /// What was wrong.
        reason: String,
    },
    /// A wire line did not parse as a request/response.
    Protocol {
        /// The serde error text.
        reason: String,
    },
    /// A socket operation failed.
    Io {
        /// The I/O error text.
        reason: String,
    },
    /// The server refused the connection: too many are already open.
    Overloaded {
        /// The configured connection limit.
        limit: usize,
    },
    /// The server answered a typed helper call (e.g.
    /// [`Client::predict_batch`](crate::Client::predict_batch)) with an
    /// `error` reply instead of the expected response.
    Remote {
        /// The server's error message, verbatim.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Platform(e) => write!(f, "platform: {e}"),
            ServeError::Atlas(e) => write!(f, "atlas: {e}"),
            ServeError::Fault(e) => write!(f, "fault view: {e}"),
            ServeError::Recheck(e) => write!(f, "drift recheck: {e}"),
            ServeError::Storage(e) => write!(f, "storage: {e}"),
            ServeError::NoFabric { label } => write!(
                f,
                "backend '{label}' exposes no simulator fabric; `place` needs a sim backend"
            ),
            ServeError::NoModel { target, mode } => {
                write!(
                    f,
                    "no model for target node {target} mode {mode} in the cached atlas"
                )
            }
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Protocol { reason } => write!(f, "protocol: {reason}"),
            ServeError::Io { reason } => write!(f, "io: {reason}"),
            ServeError::Overloaded { limit } => {
                write!(
                    f,
                    "overloaded: connection limit {limit} reached, try again later"
                )
            }
            ServeError::Remote { message } => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Platform(e) => Some(e),
            ServeError::Atlas(e) => Some(e),
            ServeError::Fault(e) => Some(e),
            ServeError::Recheck(e) => Some(e),
            ServeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for ServeError {
    fn from(e: PlatformError) -> Self {
        ServeError::Platform(e)
    }
}

impl From<AtlasError> for ServeError {
    fn from(e: AtlasError) -> Self {
        ServeError::Atlas(e)
    }
}

impl From<FaultError> for ServeError {
    fn from(e: FaultError) -> Self {
        ServeError::Fault(e)
    }
}

impl From<RecheckError> for ServeError {
    fn from(e: RecheckError) -> Self {
        ServeError::Recheck(e)
    }
}

impl From<StorageError> for ServeError {
    fn from(e: StorageError) -> Self {
        ServeError::Storage(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io {
            reason: e.to_string(),
        }
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Protocol {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failing_stage() {
        let e = ServeError::NoFabric {
            label: "replay:f.jsonl".into(),
        };
        assert!(e.to_string().contains("replay:f.jsonl"));
        let e = ServeError::NoModel {
            target: 9,
            mode: "write",
        };
        assert!(e.to_string().contains("target node 9"));
        let e: ServeError = PlatformError::ZeroReps.into();
        assert!(matches!(e, ServeError::Platform(PlatformError::ZeroReps)));
        let e = ServeError::Overloaded { limit: 4 };
        assert!(e.to_string().contains("connection limit 4"));
        let e = ServeError::Remote {
            message: "bad request: empty mix".into(),
        };
        assert!(e.to_string().contains("server error: bad request"));
    }

    #[test]
    fn source_chains_to_the_layer_error() {
        use std::error::Error as _;
        let e: ServeError = AtlasError::Empty.into();
        assert!(e.source().is_some());
        assert!(ServeError::BadRequest { reason: "x".into() }
            .source()
            .is_none());
    }
}
