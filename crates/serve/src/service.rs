//! The request handler: one [`ModelService`] per backend, shared across
//! worker threads, answering every protocol op from the characterization
//! cache.

use crate::cache::{CacheLookup, CharacterizationCache, DriftOutcome, ModelLookup};
use crate::error::ServeError;
use crate::proto::{self, LatencySummary, Request, Response, WireMode};
use numa_faults::{FaultKind, FaultPlan};
use numa_fio::Workload;
use numa_iodev::NicOp;
use numa_obs::{buckets, FlightRecorder, Histogram, Obs};
use numa_sched::policy::{ActiveView, SchedContext};
use numa_sched::{ClassRanked, IoTask, Policy, TaskId};
use numa_topology::NodeId;
use numio_core::{predict_for_mix, IoModeler, IoPerfModel, Platform, TransferMode, WorkloadMix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Default drift tolerance before a cached key is evicted (10%, roughly
/// three times the paper's reported Eq. 1 prediction error).
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.10;

/// Histogram family every request's wall-clock latency lands in, labelled
/// `{op, backend, outcome}`.
pub const SERVE_SECONDS_METRIC: &str = "numio_serve_request_seconds";

/// A long-lived prediction service over one backend.
///
/// `handle` never panics: every failure becomes a typed [`ServeError`]
/// and, on the wire, an `error` reply. All state is interior-mutable so
/// one `Arc<ModelService<_>>` serves every connection thread.
pub struct ModelService<P: Platform> {
    platform: P,
    modeler: IoModeler,
    cache: CharacterizationCache,
    faults: RwLock<Vec<FaultKind>>,
    drift_threshold: f64,
    requests: AtomicU64,
    invalid: AtomicU64,
    errors: AtomicU64,
    /// Aggregate wall-clock latency over every request, independent of
    /// the registry (survives `with_obs` swaps, cheap to digest).
    latency: Histogram,
    flight: FlightRecorder,
    obs: Obs,
}

impl<P: Platform> ModelService<P> {
    /// Serve `platform` with the default modeler (the same probe plan
    /// `iomodel record` captures, so replay fixtures line up).
    pub fn new(platform: P) -> Self {
        ModelService {
            platform,
            modeler: IoModeler::new(),
            cache: CharacterizationCache::new(),
            faults: RwLock::new(Vec::new()),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            requests: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Histogram::with_buckets(buckets::SERVE_SECONDS),
            flight: FlightRecorder::default(),
            obs: Obs::new(),
        }
    }

    /// Replace the modeler (probe reps, thread counts).
    pub fn with_modeler(mut self, modeler: IoModeler) -> Self {
        self.modeler = modeler;
        self
    }

    /// Set the drift tolerance used by [`Self::check_drift`].
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Resize the flight recorder (most recent `capacity` events kept).
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight = FlightRecorder::new(capacity);
        self
    }

    /// Share an obs pipeline: `serve_request` events plus the
    /// `numio_serve_*` counters (cache events ride the same handle).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self.cache = std::mem::take(&mut self.cache).with_obs(obs);
        self
    }

    /// The backend answers come from.
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// The underlying cache (counters, targeted invalidation).
    pub fn cache(&self) -> &CharacterizationCache {
        &self.cache
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Unreadable request lines rejected so far.
    pub fn invalid_requests(&self) -> u64 {
        self.invalid.load(Ordering::Relaxed)
    }

    /// Error replies sent so far (bad requests, backend failures,
    /// unreadable lines, refused connections).
    pub fn error_replies(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// The bounded ring of recent events (dumped by the `dump` op).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The obs handle requests record into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Wall-clock latency digest over requests handled so far.
    pub fn latency_summary(&self) -> LatencySummary {
        let count = self.latency.count();
        let mean_s = if count == 0 {
            0.0
        } else {
            self.latency.sum() / count as f64
        };
        LatencySummary {
            count,
            mean_s,
            p50_s: self.latency.percentile(0.50).unwrap_or(0.0),
            p90_s: self.latency.percentile(0.90).unwrap_or(0.0),
            p99_s: self.latency.percentile(0.99).unwrap_or(0.0),
        }
    }

    /// The fault kinds currently applied to answers.
    pub fn fault_view(&self) -> Vec<FaultKind> {
        self.read_faults().clone()
    }

    /// Serve the full atlas for the current fault view (cold path
    /// characterizes whatever the view hasn't cached yet). Needs the
    /// backend to cover every `(target, mode)` — partial replay fixtures
    /// answer single-model ops but fail this one with a typed error.
    pub fn atlas(&self) -> Result<CacheLookup, ServeError> {
        let faults = self.fault_view();
        self.cache
            .get_or_characterize(&self.platform, &self.modeler, &faults)
    }

    /// Serve one `(target, mode)` model for the current fault view,
    /// characterizing exactly that model on the cold miss. This is what
    /// `predict`/`classify`/`place` run on, so a replay fixture recorded
    /// for a single target and direction still serves those requests.
    pub fn model_view(&self, target: u16, mode: WireMode) -> Result<ModelLookup, ServeError> {
        let nodes = self.platform.num_nodes() as u16;
        if target >= nodes {
            return Err(ServeError::BadRequest {
                reason: format!("target {target} out of range (backend has {nodes} nodes)"),
            });
        }
        let faults = self.fault_view();
        self.cache.get_or_model(
            &self.platform,
            &self.modeler,
            &faults,
            NodeId(target),
            TransferMode::from(mode),
        )
    }

    /// Arm a fault plan: answers now reflect the degraded view. The *old*
    /// view's cache key is invalidated — targeted, never a full flush.
    /// Returns `(active fault kinds, whether a key was evicted)`.
    pub fn set_fault_plan(&self, plan: &FaultPlan) -> Result<(usize, bool), ServeError> {
        plan.validate()?;
        self.swap_fault_view(canonical_kinds(&plan.kinds())?)
    }

    /// Drop the fault view (evicts the faulted key, keeps the base one).
    pub fn clear_faults(&self) -> Result<(usize, bool), ServeError> {
        self.swap_fault_view(Vec::new())
    }

    fn swap_fault_view(&self, new: Vec<FaultKind>) -> Result<(usize, bool), ServeError> {
        let old = {
            let mut guard = self.write_faults();
            if *guard == new {
                return Ok((new.len(), false));
            }
            std::mem::replace(&mut *guard, new.clone())
        };
        let old_key = self.cache.key_for(&self.platform, &old)?;
        let invalidated = self.cache.invalidate(&old_key);
        Ok((new.len(), invalidated))
    }

    /// Re-measure one model against the live backend; evict the current
    /// view's key if drift exceeds the configured threshold.
    pub fn check_drift(&self) -> Result<DriftOutcome, ServeError> {
        let faults = self.fault_view();
        self.cache
            .check_drift(&self.platform, &self.modeler, &faults, self.drift_threshold)
    }

    /// Answer one request. Infallible at this layer: errors become
    /// [`Response::Error`] so the connection survives bad input.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_on(req, 0)
    }

    /// Answer one raw wire line from connection `conn`: decode failures
    /// become a typed `error` reply counted under `op="invalid"`. The
    /// bool asks the caller to shut the server down.
    pub fn handle_line(&self, conn: u64, line: &str) -> (Response, bool) {
        match proto::decode_request(line) {
            Ok(req) => {
                let shutdown = matches!(req, Request::Shutdown);
                (self.handle_on(&req, conn), shutdown)
            }
            Err(e) => (self.reject(conn, e), false),
        }
    }

    /// Reject input that never decoded into a request (a read error, a
    /// line that was not one). Counted under `op="invalid"`.
    pub fn note_unreadable(&self, conn: u64, reason: &str) -> Response {
        self.reject(
            conn,
            ServeError::Protocol {
                reason: format!("unreadable request line: {reason}"),
            },
        )
    }

    /// Refuse a connection over the configured limit: an `error` reply
    /// carrying [`ServeError::Overloaded`], plus an incident snapshot.
    pub fn note_overload(&self, conn: u64, limit: usize) -> Response {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.count_op("overload");
        self.obs.event(
            "serve_request",
            seq as f64,
            &[
                ("op", "overload".into()),
                ("backend", self.platform.label().as_str().into()),
                ("conn", conn.into()),
            ],
        );
        self.flight.record(
            "overload",
            seq as f64,
            &[("conn", conn.into()), ("limit", (limit as u64).into())],
        );
        self.flight
            .capture_incident(&format!("connection {conn} refused: limit {limit} reached"));
        Response::Error {
            message: ServeError::Overloaded { limit }.to_string(),
        }
    }

    /// Mint a request id, open the root trace span, run the request.
    fn handle_on(&self, req: &Request, conn: u64) -> Response {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let _root = self.obs.request_span(seq, seq as f64, "accept");
        let t0 = self.obs.clock_s();
        let op = req.op();
        self.count_op(op);
        self.obs.event(
            "serve_request",
            seq as f64,
            &[
                ("op", op.into()),
                ("backend", self.platform.label().as_str().into()),
                ("conn", conn.into()),
            ],
        );
        let result = {
            let _svc = self.obs.stage_span("service");
            self.dispatch(req, seq)
        };
        let outcome = if result.is_ok() { "ok" } else { "error" };
        self.record_latency(op, outcome, (self.obs.clock_s() - t0).max(0.0));
        self.flight.record(
            "req",
            seq as f64,
            &[("op", op.into()), ("outcome", outcome.into())],
        );
        result.unwrap_or_else(|e| {
            let message = e.to_string();
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.flight.record(
                "error",
                seq as f64,
                &[("op", op.into()), ("message", message.as_str().into())],
            );
            self.flight
                .capture_incident(&format!("error reply to request {seq} ({op})"));
            Response::Error { message }
        })
    }

    /// The `op="invalid"` path: input that never became a [`Request`].
    fn reject(&self, conn: u64, err: ServeError) -> Response {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let _root = self.obs.request_span(seq, seq as f64, "accept");
        let t0 = self.obs.clock_s();
        self.invalid.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.count_op("invalid");
        self.obs.event(
            "serve_request",
            seq as f64,
            &[
                ("op", "invalid".into()),
                ("backend", self.platform.label().as_str().into()),
                ("conn", conn.into()),
            ],
        );
        let message = err.to_string();
        self.record_latency("invalid", "error", (self.obs.clock_s() - t0).max(0.0));
        self.flight.record(
            "error",
            seq as f64,
            &[
                ("op", "invalid".into()),
                ("message", message.as_str().into()),
            ],
        );
        self.flight
            .capture_incident(&format!("unreadable request line on connection {conn}"));
        Response::Error { message }
    }

    fn count_op(&self, op: &str) {
        self.obs
            .counter(
                "numio_serve_requests_total",
                &[("op", op), ("backend", self.platform.backend_kind())],
            )
            .inc();
    }

    fn record_latency(&self, op: &str, outcome: &str, dur_s: f64) {
        self.latency.observe(dur_s);
        self.obs
            .histogram(
                SERVE_SECONDS_METRIC,
                &[
                    ("op", op),
                    ("backend", self.platform.backend_kind()),
                    ("outcome", outcome),
                ],
                buckets::SERVE_SECONDS,
            )
            .observe(dur_s);
    }

    fn dispatch(&self, req: &Request, seq: u64) -> Result<Response, ServeError> {
        match req {
            Request::Ping => Ok(Response::Pong),
            Request::Shutdown => Ok(Response::ShuttingDown),
            Request::Stats => {
                let s = self.cache.stats();
                Ok(Response::Stats {
                    requests: seq,
                    invalid: self.invalid.load(Ordering::Relaxed),
                    errors: self.errors.load(Ordering::Relaxed),
                    hits: s.hits,
                    misses: s.misses,
                    invalidations: s.invalidations,
                    entries: s.entries,
                    series: self.obs.registry().len(),
                    backend: self.platform.label(),
                    active_faults: self.read_faults().len(),
                    latency: self.latency_summary(),
                })
            }
            Request::Dump => {
                let (reason, events) = match self.flight.incident() {
                    Some(inc) => (Some(inc.reason), inc.events),
                    None => (None, self.flight.events()),
                };
                Ok(Response::Dump {
                    reason,
                    events: events.iter().map(|e| e.to_json_line()).collect(),
                })
            }
            Request::Atlas => {
                let lookup = self.atlas()?;
                Ok(Response::Atlas {
                    atlas: (*lookup.atlas).clone(),
                    cached: lookup.hit,
                })
            }
            Request::Predict { target, mode, mix } => {
                let lookup = self.model_view(*target, *mode)?;
                let wl = validated_mix(&lookup.model, mix)?;
                Ok(Response::Predict {
                    predicted_gbps: predict_for_mix(&lookup.model, &wl),
                    target: *target,
                    mode: *mode,
                    cached: lookup.hit,
                })
            }
            Request::Classify { node, target, mode } => {
                let lookup = self.model_view(*target, *mode)?;
                let model = &lookup.model;
                let class =
                    model
                        .try_class_of(NodeId(*node))
                        .ok_or_else(|| ServeError::BadRequest {
                            reason: format!("node {node} is not covered by the model"),
                        })?;
                let c = &model.classes()[class];
                Ok(Response::Classify {
                    node: *node,
                    class,
                    classes: model.classes().len(),
                    class_nodes: c.nodes.iter().map(|n| n.0).collect(),
                    avg_gbps: c.avg_gbps,
                    cached: lookup.hit,
                })
            }
            Request::Place {
                target,
                tasks,
                to_device,
            } => {
                let fabric = self.platform.fabric().ok_or_else(|| ServeError::NoFabric {
                    label: self.platform.label(),
                })?;
                if *tasks == 0 {
                    return Err(ServeError::BadRequest {
                        reason: "place needs at least one task".into(),
                    });
                }
                let write = self.model_view(*target, WireMode::Write)?;
                let read = self.model_view(*target, WireMode::Read)?;
                let mut policy = ClassRanked::from_models(&write.model, &read.model);
                let op = if *to_device {
                    NicOp::RdmaWrite
                } else {
                    NicOp::RdmaRead
                };
                let mut active: Vec<ActiveView> = Vec::with_capacity(*tasks as usize);
                let mut nodes = Vec::with_capacity(*tasks as usize);
                for i in 0..*tasks {
                    let task = IoTask::new(0.0, Workload::Nic(op), 1, 1.0);
                    let ctx = SchedContext {
                        fabric,
                        active: &active,
                    };
                    let node = policy.place(&task, &ctx);
                    active.push(ActiveView {
                        id: TaskId(i),
                        node,
                        streams: 1,
                        to_device: *to_device,
                    });
                    nodes.push(node.0);
                }
                Ok(Response::Place {
                    nodes,
                    cached: write.hit && read.hit,
                })
            }
            Request::SetFaults { plan } => {
                let (active, invalidated) = self.set_fault_plan(plan)?;
                Ok(Response::Faults {
                    active,
                    invalidated,
                })
            }
            Request::ClearFaults => {
                let (active, invalidated) = self.clear_faults()?;
                Ok(Response::Faults {
                    active,
                    invalidated,
                })
            }
        }
    }

    fn read_faults(&self) -> std::sync::RwLockReadGuard<'_, Vec<FaultKind>> {
        self.faults.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_faults(&self) -> std::sync::RwLockWriteGuard<'_, Vec<FaultKind>> {
        self.faults.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Canonical order for a fault view: sorted by serialized form, deduped —
/// the same canonicalization [`crate::cache::fault_view_hash`] applies.
fn canonical_kinds(kinds: &[FaultKind]) -> Result<Vec<FaultKind>, ServeError> {
    let mut tagged: Vec<(String, FaultKind)> = kinds
        .iter()
        .map(|k| Ok((serde_json::to_string(k)?, *k)))
        .collect::<Result<_, ServeError>>()?;
    tagged.sort_by(|a, b| a.0.cmp(&b.0));
    tagged.dedup_by(|a, b| a.0 == b.0);
    Ok(tagged.into_iter().map(|(_, k)| k).collect())
}

fn validated_mix(model: &IoPerfModel, mix: &[(u16, u32)]) -> Result<WorkloadMix, ServeError> {
    if mix.is_empty() {
        return Err(ServeError::BadRequest {
            reason: "empty mix".into(),
        });
    }
    let mut wl = WorkloadMix::new();
    for &(node, count) in mix {
        if count == 0 {
            return Err(ServeError::BadRequest {
                reason: format!("zero-count entry for node {node}"),
            });
        }
        if model.try_class_of(NodeId(node)).is_none() {
            return Err(ServeError::BadRequest {
                reason: format!("node {node} is not covered by the model"),
            });
        }
        wl = wl.from_node(NodeId(node), count);
    }
    Ok(wl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WireMode;
    use numio_core::SimPlatform;

    fn service() -> ModelService<SimPlatform> {
        ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3))
    }

    #[test]
    fn classify_reproduces_table_iv_from_the_cache() {
        let svc = service();
        let cold = svc.handle(&Request::Classify {
            node: 2,
            target: 7,
            mode: WireMode::Write,
        });
        let warm = svc.handle(&Request::Classify {
            node: 2,
            target: 7,
            mode: WireMode::Write,
        });
        match (&cold, &warm) {
            (
                Response::Classify {
                    class: c0,
                    classes: n0,
                    class_nodes: k0,
                    cached: false,
                    ..
                },
                Response::Classify {
                    class: c1,
                    classes: n1,
                    class_nodes: k1,
                    cached: true,
                    ..
                },
            ) => {
                assert_eq!((c0, n0, k0), (c1, n1, k1));
                assert_eq!(*c0, 2, "Table IV: node 2 sits in the starved class");
                assert_eq!(*n0, 3);
                assert_eq!(k0, &vec![2, 3]);
            }
            other => panic!("unexpected replies: {other:?}"),
        }
    }

    #[test]
    fn predict_is_bit_identical_and_cached_on_repeat() {
        let svc = service();
        let req = Request::Predict {
            target: 7,
            mode: WireMode::Read,
            mix: vec![(2, 2), (0, 2)],
        };
        let a = svc.handle(&req);
        let b = svc.handle(&req);
        match (a, b) {
            (
                Response::Predict {
                    predicted_gbps: p0,
                    cached: false,
                    ..
                },
                Response::Predict {
                    predicted_gbps: p1,
                    cached: true,
                    ..
                },
            ) => assert_eq!(p0.to_bits(), p1.to_bits()),
            other => panic!("unexpected replies: {other:?}"),
        }
        assert_eq!(svc.cache().stats().misses, 1);
    }

    #[test]
    fn bad_requests_are_error_replies_not_panics() {
        let svc = service();
        for req in [
            Request::Predict {
                target: 7,
                mode: WireMode::Write,
                mix: vec![],
            },
            Request::Predict {
                target: 7,
                mode: WireMode::Write,
                mix: vec![(0, 0)],
            },
            Request::Predict {
                target: 7,
                mode: WireMode::Write,
                mix: vec![(99, 1)],
            },
            Request::Classify {
                node: 99,
                target: 7,
                mode: WireMode::Write,
            },
            Request::Classify {
                node: 0,
                target: 99,
                mode: WireMode::Write,
            },
            Request::Place {
                target: 7,
                tasks: 0,
                to_device: true,
            },
        ] {
            match svc.handle(&req) {
                Response::Error { .. } => {}
                other => panic!("{req:?} should fail, got {other:?}"),
            }
        }
    }

    #[test]
    fn place_spreads_across_the_top_classes() {
        let svc = service();
        let resp = svc.handle(&Request::Place {
            target: 7,
            tasks: 4,
            to_device: true,
        });
        let Response::Place { nodes, .. } = resp else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(nodes.len(), 4);
        // Table IV's top class is {6, 7}: the first placements stay there.
        assert!(
            nodes.iter().take(2).all(|n| *n == 6 || *n == 7),
            "{nodes:?}"
        );
    }

    #[test]
    fn arming_faults_invalidates_only_the_old_view() {
        let svc = service();
        // Warm the base view.
        svc.handle(&Request::Atlas);
        let plan = FaultPlan::demo(42);
        let resp = svc.handle(&Request::SetFaults { plan: plan.clone() });
        let Response::Faults {
            active,
            invalidated,
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(active > 0);
        assert!(invalidated, "base key must be evicted on view change");
        // Same plan again: view unchanged, nothing else evicted.
        let resp = svc.handle(&Request::SetFaults { plan });
        assert_eq!(
            resp,
            Response::Faults {
                active,
                invalidated: false
            }
        );
        // The faulted view characterizes fresh (a miss), then hits.
        let cold = svc.handle(&Request::Atlas);
        let warm = svc.handle(&Request::Atlas);
        match (cold, warm) {
            (Response::Atlas { cached: false, .. }, Response::Atlas { cached: true, .. }) => {}
            other => panic!("unexpected replies: {other:?}"),
        }
    }

    #[test]
    fn stats_and_ping_round_out_the_surface() {
        let obs = Obs::new();
        let svc = ModelService::new(SimPlatform::dl585())
            .with_modeler(IoModeler::new().reps(3))
            .with_obs(&obs);
        assert_eq!(svc.handle(&Request::Ping), Response::Pong);
        svc.handle(&Request::Classify {
            node: 6,
            target: 7,
            mode: WireMode::Write,
        });
        let resp = svc.handle(&Request::Stats);
        let Response::Stats {
            requests,
            misses,
            backend,
            ..
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(requests, 3);
        assert_eq!(misses, 1);
        assert_eq!(backend, "sim:dl585-g7");
        assert_eq!(
            obs.counter(
                "numio_serve_requests_total",
                &[("op", "ping"), ("backend", "sim")]
            )
            .get(),
            1
        );
    }

    #[test]
    fn unreadable_lines_get_typed_errors_and_the_invalid_label() {
        let obs = Obs::new();
        let svc = ModelService::new(SimPlatform::dl585())
            .with_modeler(IoModeler::new().reps(3))
            .with_obs(&obs);
        let (resp, shutdown) = svc.handle_line(1, "this is not json");
        assert!(!shutdown);
        let Response::Error { message } = resp else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(message.starts_with("protocol:"), "{message}");
        svc.note_unreadable(1, "connection reset by peer");
        assert_eq!(svc.invalid_requests(), 2);
        assert_eq!(svc.error_replies(), 2);
        assert_eq!(
            obs.counter(
                "numio_serve_requests_total",
                &[("op", "invalid"), ("backend", "sim")]
            )
            .get(),
            2
        );
        // Well-formed lines still dispatch (and report the shutdown flag).
        let (resp, shutdown) = svc.handle_line(1, r#"{"op":"shutdown"}"#);
        assert_eq!(resp, Response::ShuttingDown);
        assert!(shutdown);
    }

    #[test]
    fn stats_is_a_one_shot_health_view() {
        let svc = service();
        svc.handle(&Request::Classify {
            node: 6,
            target: 7,
            mode: WireMode::Write,
        });
        svc.handle_line(3, "{broken");
        let resp = svc.handle(&Request::Stats);
        let Response::Stats {
            requests,
            invalid,
            errors,
            misses,
            entries,
            series,
            latency,
            ..
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(requests, 3);
        assert_eq!(invalid, 1);
        assert_eq!(errors, 1);
        assert_eq!(misses, 1);
        assert_eq!(entries, 1);
        // At least the request counter + latency families are registered.
        assert!(series >= 2, "{series}");
        // The in-flight stats request is not digested yet: 2 of 3.
        assert_eq!(latency.count, 2);
        assert!(latency.p50_s <= latency.p99_s);
    }

    #[test]
    fn error_replies_freeze_an_incident_for_dump() {
        let svc = service();
        svc.handle(&Request::Ping);
        // A live-ring dump first: no incident yet.
        let resp = svc.handle(&Request::Dump);
        let Response::Dump {
            reason: None,
            events,
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(
            events.iter().any(|l| l.contains(r#""op":"ping""#)),
            "{events:?}"
        );
        // Now an error reply captures the incident.
        svc.handle(&Request::Predict {
            target: 7,
            mode: WireMode::Write,
            mix: vec![],
        });
        let resp = svc.handle(&Request::Dump);
        let Response::Dump {
            reason: Some(reason),
            events,
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(
            reason.contains("error reply to request 3 (predict)"),
            "{reason}"
        );
        assert!(
            events.iter().any(|l| l.contains(r#""ev":"error""#)),
            "incident snapshot carries the error event: {events:?}"
        );
    }

    #[test]
    fn requests_emit_a_deterministic_span_tree() {
        use numa_obs::ManualClock;
        let run = || {
            let obs = Obs::with_clock(Box::new(ManualClock::new()));
            let svc = ModelService::new(SimPlatform::dl585())
                .with_modeler(IoModeler::new().reps(3))
                .with_obs(&obs);
            svc.handle(&Request::Classify {
                node: 2,
                target: 7,
                mode: WireMode::Write,
            });
            obs.jsonl()
        };
        let trace = run();
        // Root accept span, then service -> cache -> characterize.
        assert!(trace.contains(r#"{"t":1,"ev":"span_start","req":1,"span":0,"stage":"accept"}"#));
        assert!(trace.contains(
            r#"{"t":1,"ev":"span_start","req":1,"span":1,"parent":0,"stage":"service"}"#
        ));
        assert!(trace
            .contains(r#"{"t":1,"ev":"span_start","req":1,"span":2,"parent":1,"stage":"cache"}"#));
        assert!(trace.contains(
            r#"{"t":1,"ev":"span_start","req":1,"span":3,"parent":2,"stage":"characterize"}"#
        ));
        assert_eq!(
            trace.matches(r#""ev":"span_start""#).count(),
            trace.matches(r#""ev":"span_end""#).count()
        );
        // Same-seed reruns are byte-identical.
        assert_eq!(trace, run());
    }
}
