//! The request handler: one [`ModelService`] per backend, shared across
//! worker threads, answering every protocol op from the characterization
//! cache.

use crate::cache::{CacheKey, CacheLookup, CharacterizationCache, DriftOutcome, ModelLookup};
use crate::error::ServeError;
use crate::proto::{self, LatencySummary, Request, Response, WireMode};
use numa_faults::{FaultKind, FaultPlan};
use numa_fio::Workload;
use numa_fleet::{policy_by_name, Fleet};
use numa_iodev::NicOp;
use numa_obs::{buckets, Counter, FlightRecorder, Histogram, Obs};
use numa_sched::policy::{ActiveView, SchedContext};
use numa_sched::{ClassRanked, IoTask, Policy, TaskId};
use numa_topology::NodeId;
use numio_core::{DeviceSelector, IoModeler, IoPerfModel, Platform, StorageConfig, TransferMode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default drift tolerance before a cached key is evicted (10%, roughly
/// three times the paper's reported Eq. 1 prediction error).
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.10;

/// Histogram family every request's wall-clock latency lands in, labelled
/// `{op, backend, outcome}`.
pub const SERVE_SECONDS_METRIC: &str = "numio_serve_request_seconds";

/// Histogram family recording how many mixes each `predict_batch` request
/// carried, labelled `{backend}`.
pub const BATCH_SIZE_METRIC: &str = "numio_serve_batch_size";

/// Upper bound on `fleet_place` fleet size: generation characterizes
/// every host, so the cap keeps one request from monopolizing a worker.
pub const MAX_FLEET_HOSTS: usize = 64;

/// Upper bound on `fleet_place` workload size.
pub const MAX_FLEET_STREAMS: usize = 4096;

/// The active fault view plus its **precomputed** cache key. Deriving the
/// key costs a full topology serialization + FNV pass, which used to run
/// once per request; the view only changes on `set_faults`/`clear_faults`,
/// so the key is derived once per swap instead. `None` means derivation
/// failed — the per-request path then falls back to deriving it again (and
/// surfaces the typed error).
struct FaultState {
    kinds: Vec<FaultKind>,
    key: Option<CacheKey>,
}

/// Pre-resolved metric handles for the ops that dominate a warmed-up
/// server. A registry lookup is a shard lock + label sort per call; the
/// hot loop pays it once here (and once more per `with_obs` swap) instead
/// of once per request. Cold ops keep the lazy per-call lookup.
struct HotMetrics {
    predict_requests: Counter,
    predict_ok_seconds: Histogram,
    batch_requests: Counter,
    batch_ok_seconds: Histogram,
    batch_size: Histogram,
    classify_requests: Counter,
    classify_ok_seconds: Histogram,
}

impl HotMetrics {
    fn resolve(obs: &Obs, backend: &str) -> Self {
        let counter =
            |op| obs.counter("numio_serve_requests_total", &[("op", op), ("backend", backend)]);
        let ok_seconds = |op| {
            obs.histogram(
                SERVE_SECONDS_METRIC,
                &[("op", op), ("backend", backend), ("outcome", "ok")],
                buckets::SERVE_SECONDS,
            )
        };
        HotMetrics {
            predict_requests: counter("predict"),
            predict_ok_seconds: ok_seconds("predict"),
            batch_requests: counter("predict_batch"),
            batch_ok_seconds: ok_seconds("predict_batch"),
            batch_size: obs.histogram(
                BATCH_SIZE_METRIC,
                &[("backend", backend)],
                buckets::BATCH_SIZE,
            ),
            classify_requests: counter("classify"),
            classify_ok_seconds: ok_seconds("classify"),
        }
    }
}

/// A long-lived prediction service over one backend.
///
/// `handle` never panics: every failure becomes a typed [`ServeError`]
/// and, on the wire, an `error` reply. All state is interior-mutable so
/// one `Arc<ModelService<_>>` serves every connection thread.
pub struct ModelService<P: Platform> {
    platform: P,
    modeler: IoModeler,
    cache: CharacterizationCache,
    faults: RwLock<FaultState>,
    drift_threshold: f64,
    requests: AtomicU64,
    invalid: AtomicU64,
    errors: AtomicU64,
    /// Aggregate wall-clock latency over every request, independent of
    /// the registry (survives `with_obs` swaps, cheap to digest).
    latency: Histogram,
    flight: FlightRecorder,
    obs: Obs,
    hot: HotMetrics,
}

impl<P: Platform> ModelService<P> {
    /// Serve `platform` with the default modeler (the same probe plan
    /// `iomodel record` captures, so replay fixtures line up).
    pub fn new(platform: P) -> Self {
        let cache = CharacterizationCache::new();
        let key = cache.key_for(&platform, &[]).ok();
        let obs = Obs::new();
        let hot = HotMetrics::resolve(&obs, platform.backend_kind());
        ModelService {
            modeler: IoModeler::new(),
            cache,
            faults: RwLock::new(FaultState {
                kinds: Vec::new(),
                key,
            }),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            requests: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Histogram::with_buckets(buckets::SERVE_SECONDS),
            flight: FlightRecorder::default(),
            obs,
            hot,
            platform,
        }
    }

    /// Replace the modeler (probe reps, thread counts).
    pub fn with_modeler(mut self, modeler: IoModeler) -> Self {
        self.modeler = modeler;
        self
    }

    /// Set the drift tolerance used by [`Self::check_drift`].
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Resize the flight recorder (most recent `capacity` events kept).
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight = FlightRecorder::new(capacity);
        self
    }

    /// Share an obs pipeline: `serve_request` events plus the
    /// `numio_serve_*` counters (cache events ride the same handle).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self.cache = std::mem::take(&mut self.cache).with_obs(obs);
        self.hot = HotMetrics::resolve(&self.obs, self.platform.backend_kind());
        self
    }

    /// The backend answers come from.
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// The underlying cache (counters, targeted invalidation).
    pub fn cache(&self) -> &CharacterizationCache {
        &self.cache
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Unreadable request lines rejected so far.
    pub fn invalid_requests(&self) -> u64 {
        self.invalid.load(Ordering::Relaxed)
    }

    /// Error replies sent so far (bad requests, backend failures,
    /// unreadable lines, refused connections).
    pub fn error_replies(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// The bounded ring of recent events (dumped by the `dump` op).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The obs handle requests record into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Wall-clock latency digest over requests handled so far.
    pub fn latency_summary(&self) -> LatencySummary {
        let count = self.latency.count();
        let mean_s = if count == 0 {
            0.0
        } else {
            self.latency.sum() / count as f64
        };
        LatencySummary {
            count,
            mean_s,
            p50_s: self.latency.percentile(0.50).unwrap_or(0.0),
            p90_s: self.latency.percentile(0.90).unwrap_or(0.0),
            p99_s: self.latency.percentile(0.99).unwrap_or(0.0),
        }
    }

    /// The fault kinds currently applied to answers.
    pub fn fault_view(&self) -> Vec<FaultKind> {
        self.read_faults().kinds.clone()
    }

    /// Serve the full atlas for the current fault view (cold path
    /// characterizes whatever the view hasn't cached yet). Needs the
    /// backend to cover every `(target, mode)` — partial replay fixtures
    /// answer single-model ops but fail this one with a typed error.
    pub fn atlas(&self) -> Result<CacheLookup, ServeError> {
        let faults = self.fault_view();
        self.cache
            .get_or_characterize(&self.platform, &self.modeler, &faults)
    }

    /// Serve one `(target, mode)` model for the current fault view,
    /// characterizing exactly that model on the cold miss. This is what
    /// `predict`/`classify`/`place` run on, so a replay fixture recorded
    /// for a single target and direction still serves those requests.
    pub fn model_view(&self, target: u16, mode: WireMode) -> Result<ModelLookup, ServeError> {
        let nodes = self.platform.num_nodes() as u16;
        if target >= nodes {
            return Err(ServeError::BadRequest {
                reason: format!("target {target} out of range (backend has {nodes} nodes)"),
            });
        }
        let faults = self.fault_view();
        self.cache.get_or_model(
            &self.platform,
            &self.modeler,
            &faults,
            NodeId(target),
            TransferMode::from(mode),
        )
    }

    /// The warm-request model lookup: try the precomputed-view-key
    /// [`CharacterizationCache::peek_model`] first (no topology rehash, no
    /// stage span, no event — one shared-lock read), fall back to the
    /// fully traced [`Self::model_view`] cold path. Returns
    /// `(model, cached)`.
    fn model_fast(&self, target: u16, mode: WireMode) -> Result<(Arc<IoPerfModel>, bool), ServeError> {
        let nodes = self.platform.num_nodes() as u16;
        if target >= nodes {
            return Err(ServeError::BadRequest {
                reason: format!("target {target} out of range (backend has {nodes} nodes)"),
            });
        }
        {
            let state = self.read_faults();
            if let Some(key) = &state.key {
                if let Some(model) =
                    self.cache
                        .peek_model(key, NodeId(target), TransferMode::from(mode))
                {
                    return Ok((model, true));
                }
            }
        }
        let lookup = self.model_view(target, mode)?;
        Ok((lookup.model, lookup.hit))
    }

    /// Resolve the model a request addresses: the probe path model by
    /// default, or — when a `device` selector names the storage tier —
    /// the SSD model at the named operating point. With a storage
    /// selector the request's `target` is moot (the SSDs' attach node is
    /// the target by construction); unknown selectors are a
    /// [`ServeError::BadRequest`], and storage against a fabric-less
    /// backend surfaces the typed [`ServeError::Storage`] error.
    fn device_model(
        &self,
        target: u16,
        mode: WireMode,
        device: Option<&str>,
    ) -> Result<(Arc<IoPerfModel>, bool), ServeError> {
        let selector = match device {
            None => DeviceSelector::Probe,
            Some(s) => DeviceSelector::parse(s).ok_or_else(|| ServeError::BadRequest {
                reason: format!(
                    "unknown device '{s}' (expected 'probe', 'ssd0', or \
                     'ssd0:<engine>-<access>', e.g. 'ssd0:sync-buffered')"
                ),
            })?,
        };
        match selector {
            DeviceSelector::Probe => self.model_fast(target, mode),
            DeviceSelector::Ssd(cfg) => self.storage_fast(cfg, mode),
        }
    }

    /// The storage-tier [`Self::model_fast`]: peek the warm
    /// `(config, mode)` slot under the precomputed view key first, fall
    /// back to the fully traced cold path.
    fn storage_fast(
        &self,
        cfg: StorageConfig,
        mode: WireMode,
    ) -> Result<(Arc<IoPerfModel>, bool), ServeError> {
        let mode = TransferMode::from(mode);
        {
            let state = self.read_faults();
            if let Some(key) = &state.key {
                if let Some(model) = self.cache.peek_storage_model(key, cfg, mode) {
                    return Ok((model, true));
                }
            }
        }
        let faults = self.fault_view();
        let lookup =
            self.cache
                .get_or_storage_model(&self.platform, &self.modeler, &faults, cfg, mode)?;
        Ok((lookup.model, lookup.hit))
    }

    /// Arm a fault plan: answers now reflect the degraded view. The *old*
    /// view's cache key is invalidated — targeted, never a full flush.
    /// Returns `(active fault kinds, whether a key was evicted)`.
    pub fn set_fault_plan(&self, plan: &FaultPlan) -> Result<(usize, bool), ServeError> {
        plan.validate()?;
        self.swap_fault_view(canonical_kinds(&plan.kinds())?)
    }

    /// Drop the fault view (evicts the faulted key, keeps the base one).
    pub fn clear_faults(&self) -> Result<(usize, bool), ServeError> {
        self.swap_fault_view(Vec::new())
    }

    fn swap_fault_view(&self, new: Vec<FaultKind>) -> Result<(usize, bool), ServeError> {
        let new_key = self.cache.key_for(&self.platform, &new).ok();
        let old = {
            let mut guard = self.write_faults();
            if guard.kinds == new {
                return Ok((new.len(), false));
            }
            std::mem::replace(
                &mut *guard,
                FaultState {
                    kinds: new.clone(),
                    key: new_key,
                },
            )
        };
        // The old view's key was precomputed at the previous swap; only a
        // failed derivation falls back to deriving (and erroring) here.
        let old_key = match old.key {
            Some(key) => key,
            None => self.cache.key_for(&self.platform, &old.kinds)?,
        };
        let invalidated = self.cache.invalidate(&old_key);
        Ok((new.len(), invalidated))
    }

    /// Re-measure one model against the live backend; evict the current
    /// view's key if drift exceeds the configured threshold.
    pub fn check_drift(&self) -> Result<DriftOutcome, ServeError> {
        let faults = self.fault_view();
        self.cache
            .check_drift(&self.platform, &self.modeler, &faults, self.drift_threshold)
    }

    /// Answer one request. Infallible at this layer: errors become
    /// [`Response::Error`] so the connection survives bad input.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_on(req, 0)
    }

    /// Answer one raw wire line from connection `conn`: decode failures
    /// become a typed `error` reply counted under `op="invalid"`. The
    /// bool asks the caller to shut the server down.
    pub fn handle_line(&self, conn: u64, line: &str) -> (Response, bool) {
        match proto::decode_request(line) {
            Ok(req) => {
                let shutdown = matches!(req, Request::Shutdown);
                (self.handle_on(&req, conn), shutdown)
            }
            Err(e) => (self.reject(conn, e), false),
        }
    }

    /// Answer one raw wire line straight into `out` (appending the reply
    /// JSON plus the trailing newline). This is the worker loop's
    /// zero-allocation framing path: the request is decoded from the
    /// connection's read buffer slice and the reply is serialized into its
    /// reusable write buffer — no intermediate `String` per line in either
    /// direction. Returns the shutdown flag.
    pub fn handle_line_into(&self, conn: u64, line: &str, out: &mut Vec<u8>) -> bool {
        let (resp, shutdown) = self.handle_line(conn, line);
        write_response(&resp, out);
        shutdown
    }

    /// Reject input that never decoded into a request (a read error, a
    /// line that was not one). Counted under `op="invalid"`.
    pub fn note_unreadable(&self, conn: u64, reason: &str) -> Response {
        self.reject(
            conn,
            ServeError::Protocol {
                reason: format!("unreadable request line: {reason}"),
            },
        )
    }

    /// Refuse a connection over the configured limit: an `error` reply
    /// carrying [`ServeError::Overloaded`], plus an incident snapshot.
    pub fn note_overload(&self, conn: u64, limit: usize) -> Response {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.count_op("overload");
        self.obs.event(
            "serve_request",
            seq as f64,
            &[
                ("op", "overload".into()),
                ("backend", self.platform.label().as_str().into()),
                ("conn", conn.into()),
            ],
        );
        self.flight.record(
            "overload",
            seq as f64,
            &[("conn", conn.into()), ("limit", (limit as u64).into())],
        );
        self.flight
            .capture_incident(&format!("connection {conn} refused: limit {limit} reached"));
        Response::Error {
            message: ServeError::Overloaded { limit }.to_string(),
        }
    }

    /// Mint a request id, open the root trace span, run the request.
    fn handle_on(&self, req: &Request, conn: u64) -> Response {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let _root = self.obs.request_span(seq, seq as f64, "accept");
        let t0 = self.obs.clock_s();
        let op = req.op();
        self.count_op(op);
        self.obs.event(
            "serve_request",
            seq as f64,
            &[
                ("op", op.into()),
                ("backend", self.platform.label().as_str().into()),
                ("conn", conn.into()),
            ],
        );
        let result = {
            let _svc = self.obs.stage_span("service");
            self.dispatch(req, seq)
        };
        let outcome = if result.is_ok() { "ok" } else { "error" };
        self.record_latency(op, outcome, (self.obs.clock_s() - t0).max(0.0));
        self.flight.record(
            "req",
            seq as f64,
            &[("op", op.into()), ("outcome", outcome.into())],
        );
        result.unwrap_or_else(|e| {
            let message = e.to_string();
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.flight.record(
                "error",
                seq as f64,
                &[("op", op.into()), ("message", message.as_str().into())],
            );
            self.flight
                .capture_incident(&format!("error reply to request {seq} ({op})"));
            Response::Error { message }
        })
    }

    /// The `op="invalid"` path: input that never became a [`Request`].
    fn reject(&self, conn: u64, err: ServeError) -> Response {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let _root = self.obs.request_span(seq, seq as f64, "accept");
        let t0 = self.obs.clock_s();
        self.invalid.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.count_op("invalid");
        self.obs.event(
            "serve_request",
            seq as f64,
            &[
                ("op", "invalid".into()),
                ("backend", self.platform.label().as_str().into()),
                ("conn", conn.into()),
            ],
        );
        let message = err.to_string();
        self.record_latency("invalid", "error", (self.obs.clock_s() - t0).max(0.0));
        self.flight.record(
            "error",
            seq as f64,
            &[
                ("op", "invalid".into()),
                ("message", message.as_str().into()),
            ],
        );
        self.flight
            .capture_incident(&format!("unreadable request line on connection {conn}"));
        Response::Error { message }
    }

    fn count_op(&self, op: &str) {
        match op {
            "predict" => self.hot.predict_requests.inc(),
            "predict_batch" => self.hot.batch_requests.inc(),
            "classify" => self.hot.classify_requests.inc(),
            _ => self
                .obs
                .counter(
                    "numio_serve_requests_total",
                    &[("op", op), ("backend", self.platform.backend_kind())],
                )
                .inc(),
        }
    }

    fn record_latency(&self, op: &str, outcome: &str, dur_s: f64) {
        self.latency.observe(dur_s);
        let hot = match (op, outcome) {
            ("predict", "ok") => Some(&self.hot.predict_ok_seconds),
            ("predict_batch", "ok") => Some(&self.hot.batch_ok_seconds),
            ("classify", "ok") => Some(&self.hot.classify_ok_seconds),
            _ => None,
        };
        match hot {
            Some(h) => h.observe(dur_s),
            None => self
                .obs
                .histogram(
                    SERVE_SECONDS_METRIC,
                    &[
                        ("op", op),
                        ("backend", self.platform.backend_kind()),
                        ("outcome", outcome),
                    ],
                    buckets::SERVE_SECONDS,
                )
                .observe(dur_s),
        }
    }

    fn dispatch(&self, req: &Request, seq: u64) -> Result<Response, ServeError> {
        match req {
            Request::Ping => Ok(Response::Pong),
            Request::Shutdown => Ok(Response::ShuttingDown),
            Request::Stats => {
                let s = self.cache.stats();
                Ok(Response::Stats {
                    requests: seq,
                    invalid: self.invalid.load(Ordering::Relaxed),
                    errors: self.errors.load(Ordering::Relaxed),
                    hits: s.hits,
                    misses: s.misses,
                    invalidations: s.invalidations,
                    entries: s.entries,
                    series: self.obs.registry().len(),
                    backend: self.platform.label(),
                    active_faults: self.read_faults().kinds.len(),
                    latency: self.latency_summary(),
                    shards: self.cache.shard_stats(),
                })
            }
            Request::Dump => {
                let (reason, events) = match self.flight.incident() {
                    Some(inc) => (Some(inc.reason), inc.events),
                    None => (None, self.flight.events()),
                };
                Ok(Response::Dump {
                    reason,
                    events: events.iter().map(|e| e.to_json_line()).collect(),
                })
            }
            Request::Atlas => {
                let lookup = self.atlas()?;
                Ok(Response::Atlas {
                    atlas: (*lookup.atlas).clone(),
                    cached: lookup.hit,
                })
            }
            Request::Predict {
                target,
                mode,
                device,
                mix,
            } => {
                let (model, cached) = self.device_model(*target, *mode, device.as_deref())?;
                Ok(Response::Predict {
                    predicted_gbps: predict_pairs(&model, mix)?,
                    target: *target,
                    mode: *mode,
                    cached,
                })
            }
            Request::PredictBatch {
                target,
                mode,
                device,
                mixes,
            } => {
                if mixes.is_empty() {
                    return Err(ServeError::BadRequest {
                        reason: "empty batch".into(),
                    });
                }
                let (model, cached) = self.device_model(*target, *mode, device.as_deref())?;
                self.hot.batch_size.observe(mixes.len() as f64);
                let mut predicted = Vec::with_capacity(mixes.len());
                for (i, mix) in mixes.iter().enumerate() {
                    let p = predict_pairs(&model, mix).map_err(|e| match e {
                        ServeError::BadRequest { reason } => ServeError::BadRequest {
                            reason: format!("mix {i}: {reason}"),
                        },
                        other => other,
                    })?;
                    predicted.push(p);
                }
                Ok(Response::PredictBatch {
                    predicted_gbps: predicted,
                    target: *target,
                    mode: *mode,
                    cached,
                })
            }
            Request::Classify {
                node,
                target,
                mode,
                device,
            } => {
                let (model, cached) = self.device_model(*target, *mode, device.as_deref())?;
                let class =
                    model
                        .try_class_of(NodeId(*node))
                        .ok_or_else(|| ServeError::BadRequest {
                            reason: format!("node {node} is not covered by the model"),
                        })?;
                let c = &model.classes()[class];
                Ok(Response::Classify {
                    node: *node,
                    class,
                    classes: model.classes().len(),
                    class_nodes: c.nodes.iter().map(|n| n.0).collect(),
                    avg_gbps: c.avg_gbps,
                    cached,
                })
            }
            Request::Place {
                target,
                tasks,
                to_device,
            } => {
                let fabric = self.platform.fabric().ok_or_else(|| ServeError::NoFabric {
                    label: self.platform.label(),
                })?;
                if *tasks == 0 {
                    return Err(ServeError::BadRequest {
                        reason: "place needs at least one task".into(),
                    });
                }
                let (write_model, write_hit) = self.model_fast(*target, WireMode::Write)?;
                let (read_model, read_hit) = self.model_fast(*target, WireMode::Read)?;
                let mut policy = ClassRanked::from_models(&write_model, &read_model);
                let op = if *to_device {
                    NicOp::RdmaWrite
                } else {
                    NicOp::RdmaRead
                };
                let mut active: Vec<ActiveView> = Vec::with_capacity(*tasks as usize);
                let mut nodes = Vec::with_capacity(*tasks as usize);
                for i in 0..*tasks {
                    let task = IoTask::new(0.0, Workload::Nic(op), 1, 1.0);
                    let ctx = SchedContext {
                        fabric,
                        active: &active,
                    };
                    let node = policy.place(&task, &ctx);
                    active.push(ActiveView {
                        id: TaskId(i),
                        node,
                        streams: 1,
                        to_device: *to_device,
                    });
                    nodes.push(node.0);
                }
                Ok(Response::Place {
                    nodes,
                    cached: write_hit && read_hit,
                })
            }
            Request::Simulate { workload } => {
                let fabric = self.platform.fabric().ok_or_else(|| ServeError::NoFabric {
                    label: self.platform.label(),
                })?;
                let workload = numa_engine::Workload::parse(workload)
                    .map_err(|reason| ServeError::BadRequest { reason })?;
                // Simulation always runs against the healthy fabric: the
                // fault view degrades *characterizations*, while scenario
                // fault plans are armed by the caller inside the workload
                // spec's own world (CLI `run --faults`).
                let report = numa_engine::Scenario::on(fabric)
                    .workload(workload)
                    .run()
                    .map_err(|e| ServeError::BadRequest { reason: e.to_string() })?;
                let stats = report.fct_stats();
                Ok(Response::Simulate {
                    flows: report.flows.len(),
                    makespan_s: report.makespan_s,
                    aggregate_gbps: report.aggregate_gbps,
                    fct_p50_s: stats.p50_s,
                    fct_p99_s: stats.p99_s,
                    mean_slowdown: stats.mean_slowdown,
                    fct_digest: format!("{:016x}", report.fct_digest()),
                })
            }
            Request::FleetPlace {
                hosts,
                streams,
                policy,
                seed,
            } => {
                if *hosts == 0 || *hosts > MAX_FLEET_HOSTS {
                    return Err(ServeError::BadRequest {
                        reason: format!("hosts must be in 1..={MAX_FLEET_HOSTS}, got {hosts}"),
                    });
                }
                if *streams == 0 || *streams > MAX_FLEET_STREAMS {
                    return Err(ServeError::BadRequest {
                        reason: format!(
                            "streams must be in 1..={MAX_FLEET_STREAMS}, got {streams}"
                        ),
                    });
                }
                // Resolve the policy first: an unknown name must not pay
                // for fleet generation.
                let mut policy = policy_by_name(policy, *hosts)
                    .map_err(|e| ServeError::BadRequest { reason: e.to_string() })?;
                let fleet = Fleet::generate(*hosts, *seed)
                    .map_err(|e| ServeError::BadRequest { reason: e.to_string() })?;
                // Warm each generated host's write model under its own
                // cache shard: a same-seed repeat of this request turns
                // every shard's miss into a hit, which `fleet_stats`
                // (and the `stats` reply's `shards` block) surfaces.
                for host in fleet.hosts() {
                    self.cache.get_or_model_sharded(
                        host.platform(),
                        &self.modeler,
                        &[],
                        host.io_node(),
                        TransferMode::Write,
                        host.id as u64 + 1,
                    )?;
                }
                let report = numa_fleet::ClusterScheduler::new(&fleet)
                    .run(&numa_fleet::StreamSpec::workload(*streams, *seed), policy.as_mut())
                    .map_err(|e| ServeError::BadRequest { reason: e.to_string() })?;
                Ok(Response::FleetPlace {
                    policy: report.policy,
                    hosts: report.hosts,
                    streams: report.streams,
                    aggregate_gbps: report.aggregate_gbps,
                    jain_fairness: report.jain_fairness,
                    p99_slowdown: report.p99_slowdown,
                    fct_digest: format!("{:016x}", report.digest),
                })
            }
            Request::FleetStats => Ok(Response::FleetStats {
                shards: self.cache.shard_stats(),
            }),
            Request::SetFaults { plan } => {
                let (active, invalidated) = self.set_fault_plan(plan)?;
                Ok(Response::Faults {
                    active,
                    invalidated,
                })
            }
            Request::ClearFaults => {
                let (active, invalidated) = self.clear_faults()?;
                Ok(Response::Faults {
                    active,
                    invalidated,
                })
            }
        }
    }

    fn read_faults(&self) -> std::sync::RwLockReadGuard<'_, FaultState> {
        self.faults.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_faults(&self) -> std::sync::RwLockWriteGuard<'_, FaultState> {
        self.faults.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Serialize one reply into `out` as a JSONL line (terminated by `\n`).
/// Serializing a well-formed [`Response`] cannot fail; the guard mirrors
/// the transport's literal fallback anyway so a serializer bug becomes a
/// typed error line instead of a dropped reply.
pub fn write_response(resp: &Response, out: &mut Vec<u8>) {
    let start = out.len();
    if serde_json::to_writer(&mut *out, resp).is_err() {
        out.truncate(start);
        out.extend_from_slice(
            br#"{"reply":"error","message":"internal: reply serialization failed"}"#,
        );
    }
    out.push(b'\n');
}

/// Canonical order for a fault view: sorted by serialized form, deduped —
/// the same canonicalization [`crate::cache::fault_view_hash`] applies.
fn canonical_kinds(kinds: &[FaultKind]) -> Result<Vec<FaultKind>, ServeError> {
    let mut tagged: Vec<(String, FaultKind)> = kinds
        .iter()
        .map(|k| Ok((serde_json::to_string(k)?, *k)))
        .collect::<Result<_, ServeError>>()?;
    tagged.sort_by(|a, b| a.0.cmp(&b.0));
    tagged.dedup_by(|a, b| a.0 == b.0);
    Ok(tagged.into_iter().map(|(_, k)| k).collect())
}

/// Eq. 1 straight off the wire's `(node, count)` pairs — the same
/// validation (and error messages) the `WorkloadMix` path used, without
/// allocating a mix per request. The float-op order matches
/// [`numio_core::predict_for_mix`] exactly — `total` summed first, then
/// each entry adds `avg_gbps * count / total` in input order — so results
/// are bit-identical to the allocating path (pinned by a test below).
fn predict_pairs(model: &IoPerfModel, mix: &[(u16, u32)]) -> Result<f64, ServeError> {
    if mix.is_empty() {
        return Err(ServeError::BadRequest {
            reason: "empty mix".into(),
        });
    }
    let mut total: u32 = 0;
    for &(node, count) in mix {
        if count == 0 {
            return Err(ServeError::BadRequest {
                reason: format!("zero-count entry for node {node}"),
            });
        }
        if model.try_class_of(NodeId(node)).is_none() {
            return Err(ServeError::BadRequest {
                reason: format!("node {node} is not covered by the model"),
            });
        }
        total = total.wrapping_add(count);
    }
    let total = f64::from(total);
    let mut sum = 0.0;
    for &(node, count) in mix {
        let class = &model.classes()[model.class_of(NodeId(node))];
        sum += class.avg_gbps * f64::from(count) / total;
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WireMode;
    use numio_core::SimPlatform;

    fn service() -> ModelService<SimPlatform> {
        ModelService::new(SimPlatform::dl585()).with_modeler(IoModeler::new().reps(3))
    }

    #[test]
    fn classify_reproduces_table_iv_from_the_cache() {
        let svc = service();
        let cold = svc.handle(&Request::Classify {
            device: None,
            node: 2,
            target: 7,
            mode: WireMode::Write,
        });
        let warm = svc.handle(&Request::Classify {
            device: None,
            node: 2,
            target: 7,
            mode: WireMode::Write,
        });
        match (&cold, &warm) {
            (
                Response::Classify {
                    class: c0,
                    classes: n0,
                    class_nodes: k0,
                    cached: false,
                    ..
                },
                Response::Classify {
                    class: c1,
                    classes: n1,
                    class_nodes: k1,
                    cached: true,
                    ..
                },
            ) => {
                assert_eq!((c0, n0, k0), (c1, n1, k1));
                assert_eq!(*c0, 2, "Table IV: node 2 sits in the starved class");
                assert_eq!(*n0, 3);
                assert_eq!(k0, &vec![2, 3]);
            }
            other => panic!("unexpected replies: {other:?}"),
        }
    }

    #[test]
    fn classify_with_a_storage_device_reshapes_the_classes() {
        let svc = service();
        // Probe model: node 0 sits in the middle class {0, 1, 4, 5}?
        // No — in Table IV's probe partition node 0 is class 1 of 3; the
        // storage view keeps the same partition shape on the dl585, so
        // pin the storage-specific read view instead: node 4 alone at the
        // bottom (Table V analogue), which the probe read model does NOT
        // show as a singleton bottom class.
        let resp = svc.handle(&Request::Classify {
            node: 4,
            target: 7,
            mode: WireMode::Read,
            device: Some("ssd0".into()),
        });
        let Response::Classify {
            class,
            classes,
            class_nodes,
            cached: false,
            ..
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(class, classes - 1, "node 4 is the bottom storage class");
        assert_eq!(class_nodes, vec![4]);
        // Warm repeat serves from the storage slot.
        let resp = svc.handle(&Request::Classify {
            node: 4,
            target: 7,
            mode: WireMode::Read,
            device: Some("ssd0".into()),
        });
        assert!(
            matches!(resp, Response::Classify { cached: true, .. }),
            "{resp:?}"
        );
        // `device: "probe"` is the default path, bit-identical to None.
        let explicit = svc.handle(&Request::Predict {
            target: 7,
            mode: WireMode::Write,
            device: Some("probe".into()),
            mix: vec![(6, 1), (2, 1)],
        });
        let implicit = svc.handle(&Request::Predict {
            target: 7,
            mode: WireMode::Write,
            device: None,
            mix: vec![(6, 1), (2, 1)],
        });
        match (explicit, implicit) {
            (
                Response::Predict {
                    predicted_gbps: a, ..
                },
                Response::Predict {
                    predicted_gbps: b, ..
                },
            ) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("unexpected replies: {other:?}"),
        }
    }

    #[test]
    fn unknown_devices_are_error_replies() {
        let svc = service();
        for device in ["ssd9", "ssd0:warp9", "nvme0", ""] {
            let resp = svc.handle(&Request::Classify {
                node: 0,
                target: 7,
                mode: WireMode::Write,
                device: Some(device.into()),
            });
            let Response::Error { message } = resp else {
                panic!("device '{device}' should fail, got {resp:?}");
            };
            assert!(message.contains("unknown device"), "{message}");
        }
    }

    #[test]
    fn storage_predictions_follow_the_device_stall_view() {
        let svc = service();
        let mix = vec![(6u16, 1u32), (0, 1)];
        let base = svc.handle(&Request::Predict {
            target: 7,
            mode: WireMode::Write,
            device: Some("ssd0".into()),
            mix: mix.clone(),
        });
        let plan = FaultPlan::new(5).with(numa_faults::FaultWindow::permanent(
            FaultKind::DeviceStall {
                device: 1,
                factor: 0.5,
            },
        ));
        svc.handle(&Request::SetFaults { plan });
        let stalled = svc.handle(&Request::Predict {
            target: 7,
            mode: WireMode::Write,
            device: Some("ssd0".into()),
            mix,
        });
        match (base, stalled) {
            (
                Response::Predict {
                    predicted_gbps: b, ..
                },
                Response::Predict {
                    predicted_gbps: s, ..
                },
            ) => {
                let ratio = s / b;
                assert!((ratio - 0.75).abs() < 1e-9, "one of two cards at 50%: {ratio}");
            }
            other => panic!("unexpected replies: {other:?}"),
        }
    }

    #[test]
    fn simulate_answers_with_fct_stats_and_a_stable_digest() {
        let svc = service();
        let req = Request::Simulate {
            workload: "poisson:n=50,rate=100,seed=7".into(),
        };
        let a = svc.handle(&req);
        let b = svc.handle(&req);
        assert_eq!(a, b, "seeded simulation replies bit-identically");
        let Response::Simulate {
            flows,
            makespan_s,
            fct_p99_s,
            mean_slowdown,
            fct_digest,
            ..
        } = a
        else {
            panic!("unexpected reply: {a:?}");
        };
        assert_eq!(flows, 50);
        assert!(makespan_s > 0.0);
        assert!(fct_p99_s > 0.0);
        assert!(mean_slowdown >= 1.0 - 1e-9, "{mean_slowdown}");
        assert_eq!(fct_digest.len(), 16, "{fct_digest}");
        // A malformed spec is an error reply, not a panic.
        let bad = svc.handle(&Request::Simulate { workload: "uniform:n=1".into() });
        assert!(matches!(bad, Response::Error { .. }), "{bad:?}");
    }

    #[test]
    fn predict_is_bit_identical_and_cached_on_repeat() {
        let svc = service();
        let req = Request::Predict {
            device: None,
            target: 7,
            mode: WireMode::Read,
            mix: vec![(2, 2), (0, 2)],
        };
        let a = svc.handle(&req);
        let b = svc.handle(&req);
        match (a, b) {
            (
                Response::Predict {
                    predicted_gbps: p0,
                    cached: false,
                    ..
                },
                Response::Predict {
                    predicted_gbps: p1,
                    cached: true,
                    ..
                },
            ) => assert_eq!(p0.to_bits(), p1.to_bits()),
            other => panic!("unexpected replies: {other:?}"),
        }
        assert_eq!(svc.cache().stats().misses, 1);
    }

    #[test]
    fn predict_pairs_matches_the_workload_mix_path_bit_for_bit() {
        use numio_core::{predict_for_mix, WorkloadMix};
        let svc = service();
        let (model, _) = svc.model_fast(7, WireMode::Read).unwrap();
        for mix in [
            vec![(2u16, 2u32), (0, 2)],
            vec![(6, 1)],
            vec![(0, 3), (2, 1), (6, 2), (7, 4)],
            vec![(5, 1), (5, 2)],
        ] {
            let mut wl = WorkloadMix::new();
            for &(node, count) in &mix {
                wl = wl.from_node(NodeId(node), count);
            }
            assert_eq!(
                predict_pairs(&model, &mix).unwrap().to_bits(),
                predict_for_mix(&model, &wl).to_bits(),
                "{mix:?}"
            );
        }
    }

    #[test]
    fn predict_batch_is_bit_identical_to_sequential_predicts() {
        let svc = service();
        let mixes = vec![
            vec![(2u16, 2u32), (0, 2)],
            vec![(6, 1)],
            vec![(0, 1), (2, 1), (6, 2)],
        ];
        // Warm the (7, read) model so the batch reply reports cached=true.
        svc.handle(&Request::Predict {
            device: None,
            target: 7,
            mode: WireMode::Read,
            mix: mixes[0].clone(),
        });
        let resp = svc.handle(&Request::PredictBatch {
            device: None,
            target: 7,
            mode: WireMode::Read,
            mixes: mixes.clone(),
        });
        let Response::PredictBatch {
            predicted_gbps,
            cached: true,
            ..
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(predicted_gbps.len(), mixes.len());
        for (mix, batch_p) in mixes.iter().zip(&predicted_gbps) {
            let resp = svc.handle(&Request::Predict {
                device: None,
                target: 7,
                mode: WireMode::Read,
                mix: mix.clone(),
            });
            let Response::Predict { predicted_gbps: p, .. } = resp else {
                panic!("unexpected reply: {resp:?}");
            };
            assert_eq!(p.to_bits(), batch_p.to_bits(), "{mix:?}");
        }
        // One characterization served the whole batch.
        assert_eq!(svc.cache().stats().misses, 1);
    }

    #[test]
    fn predict_batch_rejects_bad_batches_with_the_mix_index() {
        let svc = service();
        let resp = svc.handle(&Request::PredictBatch {
            device: None,
            target: 7,
            mode: WireMode::Write,
            mixes: vec![],
        });
        let Response::Error { message } = resp else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(message.contains("empty batch"), "{message}");
        let resp = svc.handle(&Request::PredictBatch {
            device: None,
            target: 7,
            mode: WireMode::Write,
            mixes: vec![vec![(0, 1)], vec![(99, 1)]],
        });
        let Response::Error { message } = resp else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(
            message.contains("mix 1: node 99 is not covered"),
            "{message}"
        );
    }

    #[test]
    fn handle_line_into_frames_replies_without_intermediate_strings() {
        let svc = service();
        let mut out = Vec::new();
        let shutdown = svc.handle_line_into(1, r#"{"op":"ping"}"#, &mut out);
        assert!(!shutdown);
        let shutdown = svc.handle_line_into(1, "not json", &mut out);
        assert!(!shutdown);
        let shutdown = svc.handle_line_into(1, r#"{"op":"shutdown"}"#, &mut out);
        assert!(shutdown);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(lines[0], r#"{"reply":"pong"}"#);
        assert!(lines[1].contains(r#""reply":"error""#), "{text}");
        assert_eq!(lines[2], r#"{"reply":"shutting_down"}"#);
    }

    #[test]
    fn bad_requests_are_error_replies_not_panics() {
        let svc = service();
        for req in [
            Request::Predict {
                device: None,
                target: 7,
                mode: WireMode::Write,
                mix: vec![],
            },
            Request::Predict {
                device: None,
                target: 7,
                mode: WireMode::Write,
                mix: vec![(0, 0)],
            },
            Request::Predict {
                device: None,
                target: 7,
                mode: WireMode::Write,
                mix: vec![(99, 1)],
            },
            Request::Classify {
                device: None,
                node: 99,
                target: 7,
                mode: WireMode::Write,
            },
            Request::Classify {
                device: None,
                node: 0,
                target: 99,
                mode: WireMode::Write,
            },
            Request::Place {
                target: 7,
                tasks: 0,
                to_device: true,
            },
        ] {
            match svc.handle(&req) {
                Response::Error { .. } => {}
                other => panic!("{req:?} should fail, got {other:?}"),
            }
        }
    }

    #[test]
    fn place_spreads_across_the_top_classes() {
        let svc = service();
        let resp = svc.handle(&Request::Place {
            target: 7,
            tasks: 4,
            to_device: true,
        });
        let Response::Place { nodes, .. } = resp else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(nodes.len(), 4);
        // Table IV's top class is {6, 7}: the first placements stay there.
        assert!(
            nodes.iter().take(2).all(|n| *n == 6 || *n == 7),
            "{nodes:?}"
        );
    }

    #[test]
    fn fleet_place_is_deterministic_and_shards_the_cache() {
        let svc = service();
        let req = Request::FleetPlace {
            hosts: 2,
            streams: 8,
            policy: "class-ranked".into(),
            seed: 42,
        };
        let a = svc.handle(&req);
        let b = svc.handle(&req);
        assert_eq!(a, b, "same-seed fleet episodes reply bit-identically");
        let Response::FleetPlace {
            policy,
            hosts,
            streams,
            aggregate_gbps,
            jain_fairness,
            p99_slowdown,
            fct_digest,
        } = a
        else {
            panic!("unexpected reply: {a:?}");
        };
        assert_eq!(policy, "class-ranked");
        assert_eq!((hosts, streams), (2, 8));
        assert!(aggregate_gbps > 0.0);
        assert!((0.0..=1.0 + 1e-12).contains(&jain_fairness));
        assert!(p99_slowdown >= 1.0);
        assert_eq!(fct_digest.len(), 16, "{fct_digest}");
        // Each generated host warmed its own cache shard: a miss on the
        // first request, a hit on the repeat.
        let resp = svc.handle(&Request::FleetStats);
        let Response::FleetStats { shards } = resp else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(shards.iter().map(|s| s.host).collect::<Vec<_>>(), vec![1, 2]);
        for s in &shards {
            assert_eq!((s.hits, s.misses), (1, 1), "shard {}", s.host);
        }
        // The stats reply carries the same shard block.
        let resp = svc.handle(&Request::Stats);
        let Response::Stats { shards: in_stats, .. } = resp else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(in_stats, shards);
    }

    #[test]
    fn fleet_place_rejects_bad_parameters() {
        let svc = service();
        for req in [
            Request::FleetPlace {
                hosts: 0,
                streams: 8,
                policy: "class-ranked".into(),
                seed: 0,
            },
            Request::FleetPlace {
                hosts: MAX_FLEET_HOSTS + 1,
                streams: 8,
                policy: "class-ranked".into(),
                seed: 0,
            },
            Request::FleetPlace {
                hosts: 2,
                streams: 0,
                policy: "class-ranked".into(),
                seed: 0,
            },
            Request::FleetPlace {
                hosts: 2,
                streams: 8,
                policy: "mystery-policy".into(),
                seed: 0,
            },
        ] {
            match svc.handle(&req) {
                Response::Error { .. } => {}
                other => panic!("{req:?} should fail, got {other:?}"),
            }
        }
    }

    #[test]
    fn arming_faults_invalidates_only_the_old_view() {
        let svc = service();
        // Warm the base view.
        svc.handle(&Request::Atlas);
        let plan = FaultPlan::demo(42);
        let resp = svc.handle(&Request::SetFaults { plan: plan.clone() });
        let Response::Faults {
            active,
            invalidated,
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(active > 0);
        assert!(invalidated, "base key must be evicted on view change");
        // Same plan again: view unchanged, nothing else evicted.
        let resp = svc.handle(&Request::SetFaults { plan });
        assert_eq!(
            resp,
            Response::Faults {
                active,
                invalidated: false
            }
        );
        // The faulted view characterizes fresh (a miss), then hits.
        let cold = svc.handle(&Request::Atlas);
        let warm = svc.handle(&Request::Atlas);
        match (cold, warm) {
            (Response::Atlas { cached: false, .. }, Response::Atlas { cached: true, .. }) => {}
            other => panic!("unexpected replies: {other:?}"),
        }
    }

    #[test]
    fn stats_and_ping_round_out_the_surface() {
        let obs = Obs::new();
        let svc = ModelService::new(SimPlatform::dl585())
            .with_modeler(IoModeler::new().reps(3))
            .with_obs(&obs);
        assert_eq!(svc.handle(&Request::Ping), Response::Pong);
        svc.handle(&Request::Classify {
            device: None,
            node: 6,
            target: 7,
            mode: WireMode::Write,
        });
        let resp = svc.handle(&Request::Stats);
        let Response::Stats {
            requests,
            misses,
            backend,
            ..
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(requests, 3);
        assert_eq!(misses, 1);
        assert_eq!(backend, "sim:dl585-g7");
        assert_eq!(
            obs.counter(
                "numio_serve_requests_total",
                &[("op", "ping"), ("backend", "sim")]
            )
            .get(),
            1
        );
    }

    #[test]
    fn unreadable_lines_get_typed_errors_and_the_invalid_label() {
        let obs = Obs::new();
        let svc = ModelService::new(SimPlatform::dl585())
            .with_modeler(IoModeler::new().reps(3))
            .with_obs(&obs);
        let (resp, shutdown) = svc.handle_line(1, "this is not json");
        assert!(!shutdown);
        let Response::Error { message } = resp else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(message.starts_with("protocol:"), "{message}");
        svc.note_unreadable(1, "connection reset by peer");
        assert_eq!(svc.invalid_requests(), 2);
        assert_eq!(svc.error_replies(), 2);
        assert_eq!(
            obs.counter(
                "numio_serve_requests_total",
                &[("op", "invalid"), ("backend", "sim")]
            )
            .get(),
            2
        );
        // Well-formed lines still dispatch (and report the shutdown flag).
        let (resp, shutdown) = svc.handle_line(1, r#"{"op":"shutdown"}"#);
        assert_eq!(resp, Response::ShuttingDown);
        assert!(shutdown);
    }

    #[test]
    fn stats_is_a_one_shot_health_view() {
        let svc = service();
        svc.handle(&Request::Classify {
            device: None,
            node: 6,
            target: 7,
            mode: WireMode::Write,
        });
        svc.handle_line(3, "{broken");
        let resp = svc.handle(&Request::Stats);
        let Response::Stats {
            requests,
            invalid,
            errors,
            misses,
            entries,
            series,
            latency,
            ..
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(requests, 3);
        assert_eq!(invalid, 1);
        assert_eq!(errors, 1);
        assert_eq!(misses, 1);
        assert_eq!(entries, 1);
        // At least the request counter + latency families are registered.
        assert!(series >= 2, "{series}");
        // The in-flight stats request is not digested yet: 2 of 3.
        assert_eq!(latency.count, 2);
        assert!(latency.p50_s <= latency.p99_s);
    }

    #[test]
    fn error_replies_freeze_an_incident_for_dump() {
        let svc = service();
        svc.handle(&Request::Ping);
        // A live-ring dump first: no incident yet.
        let resp = svc.handle(&Request::Dump);
        let Response::Dump {
            reason: None,
            events,
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(
            events.iter().any(|l| l.contains(r#""op":"ping""#)),
            "{events:?}"
        );
        // Now an error reply captures the incident.
        svc.handle(&Request::Predict {
            device: None,
            target: 7,
            mode: WireMode::Write,
            mix: vec![],
        });
        let resp = svc.handle(&Request::Dump);
        let Response::Dump {
            reason: Some(reason),
            events,
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert!(
            reason.contains("error reply to request 3 (predict)"),
            "{reason}"
        );
        assert!(
            events.iter().any(|l| l.contains(r#""ev":"error""#)),
            "incident snapshot carries the error event: {events:?}"
        );
    }

    #[test]
    fn requests_emit_a_deterministic_span_tree() {
        use numa_obs::ManualClock;
        let run = || {
            let obs = Obs::with_clock(Box::new(ManualClock::new()));
            let svc = ModelService::new(SimPlatform::dl585())
                .with_modeler(IoModeler::new().reps(3))
                .with_obs(&obs);
            svc.handle(&Request::Classify {
                device: None,
                node: 2,
                target: 7,
                mode: WireMode::Write,
            });
            obs.jsonl()
        };
        let trace = run();
        // Root accept span, then service -> cache -> characterize.
        assert!(trace.contains(r#"{"t":1,"ev":"span_start","req":1,"span":0,"stage":"accept"}"#));
        assert!(trace.contains(
            r#"{"t":1,"ev":"span_start","req":1,"span":1,"parent":0,"stage":"service"}"#
        ));
        assert!(trace
            .contains(r#"{"t":1,"ev":"span_start","req":1,"span":2,"parent":1,"stage":"cache"}"#));
        assert!(trace.contains(
            r#"{"t":1,"ev":"span_start","req":1,"span":3,"parent":2,"stage":"characterize"}"#
        ));
        assert_eq!(
            trace.matches(r#""ev":"span_start""#).count(),
            trace.matches(r#""ev":"span_end""#).count()
        );
        // Same-seed reruns are byte-identical.
        assert_eq!(trace, run());
    }
}
