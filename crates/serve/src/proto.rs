//! The wire protocol: newline-delimited JSON (JSONL), one request per
//! line, one response per line, over a plain TCP stream.
//!
//! Requests are tagged with `"op"`, responses with `"reply"`:
//!
//! ```text
//! -> {"op":"classify","node":2}
//! <- {"reply":"classify","node":2,"class":2,"classes":3,...,"cached":true}
//! -> {"op":"predict","target":7,"mode":"read","mix":[[2,2],[0,2]]}
//! <- {"reply":"predict","predicted_gbps":20.017,...,"cached":true}
//! ```
//!
//! Every cache-touching reply carries `cached`: `false` exactly on the
//! cold request that paid the characterization. Failures come back as
//! `{"reply":"error","message":"..."}` — the connection stays usable.

use crate::cache::HostShardStats;
use crate::error::ServeError;
use numa_faults::FaultPlan;
use numio_core::{Atlas, TransferMode};
use serde::{Deserialize, Serialize};

/// Transfer direction, as spelled on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WireMode {
    /// Into the device (Table IV).
    #[default]
    Write,
    /// Out of the device (Table V).
    Read,
}

impl From<WireMode> for TransferMode {
    fn from(m: WireMode) -> Self {
        match m {
            WireMode::Write => TransferMode::Write,
            WireMode::Read => TransferMode::Read,
        }
    }
}

impl WireMode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            WireMode::Write => "write",
            WireMode::Read => "read",
        }
    }
}

fn default_target() -> u16 {
    7
}

fn default_tasks() -> u32 {
    1
}

fn default_to_device() -> bool {
    true
}

fn default_fleet_hosts() -> usize {
    4
}

fn default_fleet_streams() -> usize {
    16
}

fn default_fleet_policy() -> String {
    "class-ranked".into()
}

/// One client request. Unknown `op` tags decode to a protocol error (and
/// an `error` reply), never a panic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Eq. 1 aggregate bandwidth for a `(node, access count)` mix against
    /// the `target` device node's model.
    Predict {
        /// Device node whose model to predict against (default 7, the
        /// paper's NIC/SSD node).
        #[serde(default = "default_target")]
        target: u16,
        /// Direction (default write).
        #[serde(default)]
        mode: WireMode,
        /// Device view: absent/`"probe"` for the memcpy path model,
        /// `"ssd0"` (or `"ssd0:<engine>-<access>"`) for the storage
        /// tier. Absent in pre-storage clients, so old wire lines keep
        /// decoding.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        device: Option<String>,
        /// `(node, access count)` pairs.
        mix: Vec<(u16, u32)>,
    },
    /// Eq. 1 predictions for many mixes against **one** `(target, mode)`
    /// model, resolved from the cache once. The batch analogue of
    /// [`Request::Predict`]: result `i` is bit-identical to a sequential
    /// `predict` of `mixes[i]`, but the per-request overhead (wire round
    /// trip, cache lookup, span, latency sample) is paid once per batch.
    PredictBatch {
        /// Device node whose model to predict against (default 7).
        #[serde(default = "default_target")]
        target: u16,
        /// Direction (default write).
        #[serde(default)]
        mode: WireMode,
        /// Device view (see [`Request::Predict::device`]).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        device: Option<String>,
        /// One `(node, access count)` mix per prediction.
        mixes: Vec<Vec<(u16, u32)>>,
    },
    /// Performance class of one node in the `target` model.
    Classify {
        /// The node to classify.
        node: u16,
        /// Device node whose model to classify against (default 7).
        #[serde(default = "default_target")]
        target: u16,
        /// Direction (default write).
        #[serde(default)]
        mode: WireMode,
        /// Device view (see [`Request::Predict::device`]).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        device: Option<String>,
    },
    /// ClassRanked placement of `tasks` unit streams (needs a sim fabric).
    Place {
        /// Device node whose models rank the classes (default 7).
        #[serde(default = "default_target")]
        target: u16,
        /// How many single-stream tasks to place.
        #[serde(default = "default_tasks")]
        tasks: u32,
        /// Direction: into the device (default) or out of it.
        #[serde(default = "default_to_device")]
        to_device: bool,
    },
    /// Run a generated workload through the engine's `Scenario` builder
    /// and return FCT statistics (needs a sim fabric).
    Simulate {
        /// Workload spec in the shared grammar, e.g.
        /// `poisson:n=1000,rate=200,seed=42`.
        workload: String,
    },
    /// Generate a seeded heterogeneous fleet, place a seeded stream
    /// workload across it under one placement policy, and report the
    /// episode's aggregate metrics (needs a sim fabric). Each generated
    /// host's characterization lands in its own cache shard.
    FleetPlace {
        /// Fleet size (default 4 hosts).
        #[serde(default = "default_fleet_hosts")]
        hosts: usize,
        /// Streams in the seeded workload (default 16).
        #[serde(default = "default_fleet_streams")]
        streams: usize,
        /// Placement policy: `class-ranked`, `bandwidth-aware`, or
        /// `adaptive` (default `class-ranked`).
        #[serde(default = "default_fleet_policy")]
        policy: String,
        /// Seed for both the fleet and the workload (default 0).
        #[serde(default)]
        seed: u64,
    },
    /// Per-host-shard cache counters.
    FleetStats,
    /// The full cached atlas.
    Atlas,
    /// Service + cache counters and the latency summary.
    Stats,
    /// The flight recorder's recent events (or the frozen incident
    /// snapshot, when one was captured) for a post-mortem.
    Dump,
    /// Arm a fault plan: subsequent answers reflect the degraded view and
    /// the old view's cache key is invalidated (targeted, not a flush).
    SetFaults {
        /// The plan whose fault kinds form the new view.
        plan: FaultPlan,
    },
    /// Clear the fault view (targeted invalidation of the faulted key).
    ClearFaults,
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Short op label for metrics (`numio_serve_requests_total{op=...}`).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Predict { .. } => "predict",
            Request::PredictBatch { .. } => "predict_batch",
            Request::Classify { .. } => "classify",
            Request::Place { .. } => "place",
            Request::Simulate { .. } => "simulate",
            Request::FleetPlace { .. } => "fleet_place",
            Request::FleetStats => "fleet_stats",
            Request::Atlas => "atlas",
            Request::Stats => "stats",
            Request::Dump => "dump",
            Request::SetFaults { .. } => "set_faults",
            Request::ClearFaults => "clear_faults",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Wall-clock request-latency digest carried by the `stats` reply:
/// mean over every request, exact nearest-rank percentiles over the
/// most recent [`numa_obs::RECENT_SAMPLES`] requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests the digest covers.
    pub count: u64,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 90th-percentile latency, seconds.
    pub p90_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
}

/// One server reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
pub enum Response {
    /// The request failed; the connection stays open.
    Error {
        /// Human-readable cause (the typed error's `Display`).
        message: String,
    },
    /// Eq. 1 prediction.
    Predict {
        /// Predicted aggregate bandwidth, Gbit/s.
        predicted_gbps: f64,
        /// Echo of the device node.
        target: u16,
        /// Echo of the direction.
        mode: WireMode,
        /// Served from the characterization cache?
        cached: bool,
    },
    /// Eq. 1 predictions for a whole batch, in mix order.
    PredictBatch {
        /// `predicted_gbps[i]` answers `mixes[i]`, bit-identical to a
        /// sequential `predict` of that mix.
        predicted_gbps: Vec<f64>,
        /// Echo of the device node.
        target: u16,
        /// Echo of the direction.
        mode: WireMode,
        /// Served from the characterization cache?
        cached: bool,
    },
    /// Class membership of one node.
    Classify {
        /// Echo of the node.
        node: u16,
        /// Class index, 0 = best.
        class: usize,
        /// Total class count in the model.
        classes: usize,
        /// All nodes sharing the class.
        class_nodes: Vec<u16>,
        /// Class average bandwidth, Gbit/s.
        avg_gbps: f64,
        /// Served from the characterization cache?
        cached: bool,
    },
    /// Placement decision: binding node per task, in order.
    Place {
        /// Chosen nodes.
        nodes: Vec<u16>,
        /// Served from the characterization cache?
        cached: bool,
    },
    /// Workload simulation outcome.
    Simulate {
        /// Flows completed.
        flows: usize,
        /// Completion time of the last flow, seconds.
        makespan_s: f64,
        /// Total volume over makespan, Gbit/s.
        aggregate_gbps: f64,
        /// Median flow completion time, seconds.
        fct_p50_s: f64,
        /// 99th-percentile flow completion time, seconds.
        fct_p99_s: f64,
        /// Mean slowdown against each flow's isolated lower bound.
        mean_slowdown: f64,
        /// Hex-encoded order-sensitive digest of the exact FCT bit
        /// patterns — equal digests mean bit-identical runs.
        fct_digest: String,
    },
    /// Fleet placement episode outcome.
    FleetPlace {
        /// Policy that placed the episode.
        policy: String,
        /// Hosts in the generated fleet.
        hosts: usize,
        /// Streams placed.
        streams: usize,
        /// Fleet-aggregate bandwidth, Gbit/s.
        aggregate_gbps: f64,
        /// Jain fairness over per-stream rates, in `(0, 1]`.
        jain_fairness: f64,
        /// p99 of per-stream slowdowns.
        p99_slowdown: f64,
        /// Hex-encoded order-sensitive digest of the per-stream FCT bit
        /// patterns — equal digests mean bit-identical episodes.
        fct_digest: String,
    },
    /// Per-host-shard cache counters, sorted by shard id.
    FleetStats {
        /// One counter row per touched shard (0 = the service's own
        /// backend, `i + 1` = generated fleet host `i`).
        shards: Vec<HostShardStats>,
    },
    /// The full atlas.
    Atlas {
        /// Every (target, mode) model of the host.
        atlas: Atlas,
        /// Served from the characterization cache?
        cached: bool,
    },
    /// Service counters.
    Stats {
        /// Requests handled (including this one).
        requests: u64,
        /// Unreadable request lines answered with a typed error.
        #[serde(default)]
        invalid: u64,
        /// Error replies sent (bad requests, backend failures, overload).
        #[serde(default)]
        errors: u64,
        /// Cache hits so far.
        hits: u64,
        /// Cache misses so far.
        misses: u64,
        /// Cache invalidations so far.
        invalidations: u64,
        /// Characterizations currently cached.
        entries: usize,
        /// Metric series in the registry snapshot.
        #[serde(default)]
        series: usize,
        /// Backend label answers come from.
        backend: String,
        /// Fault kinds currently applied.
        active_faults: usize,
        /// Request latency distribution (zeroed before any request).
        #[serde(default)]
        latency: LatencySummary,
        /// Per-host-shard cache counters (empty before any lookup, and
        /// absent in pre-shard server replies).
        #[serde(default)]
        shards: Vec<HostShardStats>,
    },
    /// Flight recorder contents.
    Dump {
        /// Why an incident snapshot was frozen, when one was; `None`
        /// means the live ring is being dumped.
        reason: Option<String>,
        /// The recorded events as JSON lines, oldest first.
        events: Vec<String>,
    },
    /// Fault view updated.
    Faults {
        /// Fault kinds now applied.
        active: usize,
        /// Whether a cached key was evicted by the change.
        invalidated: bool,
    },
    /// Liveness answer.
    Pong,
    /// The server will stop accepting connections.
    ShuttingDown,
}

/// Encode any wire message as one JSONL line (no trailing newline —
/// the transport adds it). Compact JSON never contains raw newlines.
pub fn encode<T: Serialize>(msg: &T) -> Result<String, ServeError> {
    Ok(serde_json::to_string(msg)?)
}

/// Decode one request line.
pub fn decode_request(line: &str) -> Result<Request, ServeError> {
    Ok(serde_json::from_str(line.trim())?)
}

/// Decode one response line.
pub fn decode_response(line: &str) -> Result<Response, ServeError> {
    Ok(serde_json::from_str(line.trim())?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Predict {
                device: None,
                target: 7,
                mode: WireMode::Read,
                mix: vec![(2, 2), (0, 2)],
            },
            Request::PredictBatch {
                device: None,
                target: 7,
                mode: WireMode::Write,
                mixes: vec![vec![(2, 2), (0, 2)], vec![(6, 1)]],
            },
            Request::Classify {
                device: None,
                node: 2,
                target: 7,
                mode: WireMode::Write,
            },
            Request::Place {
                target: 7,
                tasks: 4,
                to_device: true,
            },
            Request::Simulate {
                workload: "poisson:n=100,rate=200,seed=42".into(),
            },
            Request::FleetPlace {
                hosts: 8,
                streams: 64,
                policy: "adaptive".into(),
                seed: 42,
            },
            Request::FleetStats,
            Request::Atlas,
            Request::Stats,
            Request::Dump,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = encode(&req).unwrap();
            assert!(
                !line.contains('\n'),
                "JSONL lines must be single-line: {line}"
            );
            assert_eq!(decode_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn device_selector_round_trips_and_stays_off_the_wire_when_absent() {
        // Absent device never serializes — old clients and old servers see
        // exactly the pre-storage wire format.
        let req = Request::Classify {
            device: None,
            node: 2,
            target: 7,
            mode: WireMode::Write,
        };
        let line = encode(&req).unwrap();
        assert!(!line.contains("device"), "{line}");
        // A storage selector round-trips verbatim.
        let req = Request::Predict {
            device: Some("ssd0:sync-buffered".into()),
            target: 7,
            mode: WireMode::Write,
            mix: vec![(6, 1)],
        };
        let line = encode(&req).unwrap();
        assert!(line.contains(r#""device":"ssd0:sync-buffered""#), "{line}");
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn sparse_requests_fill_paper_defaults() {
        let req = decode_request(r#"{"op":"predict","mix":[[0,1]]}"#).unwrap();
        assert_eq!(
            req,
            Request::Predict {
                device: None,
                target: 7,
                mode: WireMode::Write,
                mix: vec![(0, 1)]
            }
        );
        let req = decode_request(r#"{"op":"predict_batch","mixes":[[[0,1]],[[2,1],[3,2]]]}"#).unwrap();
        assert_eq!(
            req,
            Request::PredictBatch {
                device: None,
                target: 7,
                mode: WireMode::Write,
                mixes: vec![vec![(0, 1)], vec![(2, 1), (3, 2)]]
            }
        );
        let req = decode_request(r#"{"op":"classify","node":3}"#).unwrap();
        assert_eq!(
            req,
            Request::Classify {
                device: None,
                node: 3,
                target: 7,
                mode: WireMode::Write
            }
        );
        let req = decode_request(r#"{"op":"place"}"#).unwrap();
        assert_eq!(
            req,
            Request::Place {
                target: 7,
                tasks: 1,
                to_device: true
            }
        );
        let req = decode_request(r#"{"op":"fleet_place"}"#).unwrap();
        assert_eq!(
            req,
            Request::FleetPlace {
                hosts: 4,
                streams: 16,
                policy: "class-ranked".into(),
                seed: 0
            }
        );
    }

    #[test]
    fn unknown_ops_are_typed_errors() {
        let err = decode_request(r#"{"op":"mine_bitcoin"}"#).unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }), "{err:?}");
        let err = decode_request("not json").unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }));
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response::Classify {
            node: 2,
            class: 2,
            classes: 3,
            class_nodes: vec![2, 3],
            avg_gbps: 9.7,
            cached: true,
        };
        let line = encode(&resp).unwrap();
        assert_eq!(decode_response(&line).unwrap(), resp);
        let err = Response::Error {
            message: "bad request: empty mix".into(),
        };
        assert_eq!(decode_response(&encode(&err).unwrap()).unwrap(), err);
    }

    #[test]
    fn simulate_round_trips_both_ways() {
        let req = decode_request(r#"{"op":"simulate","workload":"batch:n=4"}"#).unwrap();
        assert_eq!(req, Request::Simulate { workload: "batch:n=4".into() });
        let resp = Response::Simulate {
            flows: 100,
            makespan_s: 2.5,
            aggregate_gbps: 40.0,
            fct_p50_s: 0.02,
            fct_p99_s: 0.4,
            mean_slowdown: 1.7,
            fct_digest: "cbf29ce484222325".into(),
        };
        assert_eq!(decode_response(&encode(&resp).unwrap()).unwrap(), resp);
    }

    #[test]
    fn op_labels_are_stable() {
        assert_eq!(Request::Atlas.op(), "atlas");
        assert_eq!(Request::Dump.op(), "dump");
        assert_eq!(Request::FleetStats.op(), "fleet_stats");
        assert_eq!(
            Request::FleetPlace {
                hosts: 4,
                streams: 16,
                policy: "class-ranked".into(),
                seed: 0
            }
            .op(),
            "fleet_place"
        );
        assert_eq!(Request::Simulate { workload: "batch:n=1".into() }.op(), "simulate");
        assert_eq!(
            Request::PredictBatch {
                device: None,
                target: 7,
                mode: WireMode::Write,
                mixes: vec![]
            }
            .op(),
            "predict_batch"
        );
        assert_eq!(
            Request::SetFaults {
                plan: FaultPlan::demo(1)
            }
            .op(),
            "set_faults"
        );
    }

    #[test]
    fn stats_and_dump_round_trip() {
        let stats = Response::Stats {
            requests: 9,
            invalid: 1,
            errors: 2,
            hits: 4,
            misses: 2,
            invalidations: 0,
            entries: 2,
            series: 12,
            backend: "sim:dl585-g7".into(),
            active_faults: 0,
            latency: LatencySummary {
                count: 9,
                mean_s: 0.001,
                p50_s: 0.0005,
                p90_s: 0.002,
                p99_s: 0.004,
            },
            shards: vec![HostShardStats {
                host: 0,
                hits: 4,
                misses: 2,
                invalidations: 0,
            }],
        };
        assert_eq!(decode_response(&encode(&stats).unwrap()).unwrap(), stats);
        let dump = Response::Dump {
            reason: Some("error reply to request 7 (predict)".into()),
            events: vec![r#"{"t":7,"ev":"req","op":"predict"}"#.into()],
        };
        assert_eq!(decode_response(&encode(&dump).unwrap()).unwrap(), dump);
    }

    #[test]
    fn old_stats_replies_still_decode() {
        // A pre-latency server's stats reply (no invalid/errors/series/
        // latency fields) must stay readable by new clients.
        let line = r#"{"reply":"stats","requests":3,"hits":1,"misses":1,"invalidations":0,"entries":1,"backend":"sim:dl585-g7","active_faults":0}"#;
        let resp = decode_response(line).unwrap();
        let Response::Stats {
            requests,
            latency,
            series,
            shards,
            ..
        } = resp
        else {
            panic!("unexpected reply: {resp:?}");
        };
        assert_eq!(requests, 3);
        assert_eq!(series, 0);
        assert_eq!(latency, LatencySummary::default());
        assert!(shards.is_empty(), "pre-shard replies decode to no shards");
    }

    #[test]
    fn fleet_replies_round_trip() {
        let place = Response::FleetPlace {
            policy: "bandwidth-aware".into(),
            hosts: 8,
            streams: 64,
            aggregate_gbps: 120.5,
            jain_fairness: 0.93,
            p99_slowdown: 2.4,
            fct_digest: "cbf29ce484222325".into(),
        };
        assert_eq!(decode_response(&encode(&place).unwrap()).unwrap(), place);
        let stats = Response::FleetStats {
            shards: vec![
                HostShardStats {
                    host: 1,
                    hits: 3,
                    misses: 1,
                    invalidations: 0,
                },
                HostShardStats {
                    host: 2,
                    hits: 0,
                    misses: 1,
                    invalidations: 1,
                },
            ],
        };
        assert_eq!(decode_response(&encode(&stats).unwrap()).unwrap(), stats);
    }
}
