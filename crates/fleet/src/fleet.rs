//! A seeded collection of heterogeneous hosts.

use crate::error::FleetError;
use crate::host::Host;

/// N heterogeneous NUMA hosts generated from one seed. Host `i` of fleet
/// seed `s` is always the same machine, so every experiment over a fleet is
/// reproducible bit-for-bit.
#[derive(Debug, Clone)]
pub struct Fleet {
    seed: u64,
    hosts: Vec<Host>,
}

impl Fleet {
    /// Generate `n` hosts from `seed`.
    pub fn generate(n: usize, seed: u64) -> Result<Fleet, FleetError> {
        if n == 0 {
            return Err(FleetError::EmptyFleet);
        }
        let hosts = (0..n).map(|id| Host::generate(id, seed)).collect::<Result<_, _>>()?;
        Ok(Fleet { seed, hosts })
    }

    /// Build a fleet from explicit hosts (ids must match positions).
    pub fn from_hosts(hosts: Vec<Host>) -> Result<Fleet, FleetError> {
        if hosts.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        Ok(Fleet { seed: 0, hosts })
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the fleet has no hosts (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// All hosts, id order.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// One host by id.
    pub fn host(&self, id: usize) -> &Host {
        &self.hosts[id]
    }

    /// Total NUMA nodes across the fleet.
    pub fn total_nodes(&self) -> usize {
        self.hosts.iter().map(Host::num_nodes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_rejects_empty() {
        assert_eq!(Fleet::generate(0, 1).unwrap_err(), FleetError::EmptyFleet);
        assert_eq!(Fleet::from_hosts(Vec::new()).unwrap_err(), FleetError::EmptyFleet);
    }

    #[test]
    fn fleet_is_reproducible_and_heterogeneous() {
        let a = Fleet::generate(4, 99).unwrap();
        let b = Fleet::generate(4, 99).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.seed(), 99);
        for (x, y) in a.hosts().iter().zip(b.hosts()) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.profile(), y.profile());
        }
        assert!(a.total_nodes() > 4, "hosts have multiple nodes");
        // Ids are positional.
        for (i, h) in a.hosts().iter().enumerate() {
            assert_eq!(h.id, i);
        }
    }
}
