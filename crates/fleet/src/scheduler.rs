//! The cluster scheduler: place streams across hosts and nodes, run each
//! host's round through the engine, and fold flow-completion records into
//! a per-policy report.

use crate::error::FleetError;
use crate::fleet::Fleet;
use crate::policy::{FleetLoad, Placement, PlacementPolicy, StreamSpec, POLICY_NAMES};
use crate::policy::policy_by_name;
use numa_engine::{fct_digest, FctStats, FlowResult, FlowSpec, Scenario};
use serde::{Deserialize, Serialize};

/// What one policy achieved on one episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Policy name.
    pub policy: String,
    /// Hosts in the fleet.
    pub hosts: usize,
    /// Streams placed.
    pub streams: usize,
    /// Scheduling rounds the episode ran in.
    pub rounds: usize,
    /// Total volume moved, Gbit.
    pub total_gbit: f64,
    /// Fleet-aggregate bandwidth: total volume over summed round makespans
    /// (rounds are sequential; hosts within a round run in parallel).
    pub aggregate_gbps: f64,
    /// Jain fairness index over per-stream mean rates, in `(0, 1]`.
    pub jain_fairness: f64,
    /// p99 of per-stream slowdowns.
    pub p99_slowdown: f64,
    /// Merged flow-completion statistics across the fleet.
    pub fct: FctStats,
    /// Streams per host, host order.
    pub per_host_streams: Vec<usize>,
    /// FNV digest over the per-stream FCTs in stream order — the
    /// bit-reproducibility anchor for `--check` gates.
    pub digest: u64,
}

impl FleetReport {
    /// One-line summary for CLI output.
    pub fn render(&self) -> String {
        format!(
            "{:<16} {:>8.2} Gbps  jain {:.4}  p99 slowdown {:.3}  ({} streams / {} hosts)",
            self.policy, self.aggregate_gbps, self.jain_fairness, self.p99_slowdown,
            self.streams, self.hosts
        )
    }
}

/// Runs placement episodes over a [`Fleet`].
///
/// An episode proceeds in rounds: the policy places the round's streams one
/// at a time (seeing the queue occupancy build up), every host then runs
/// its queued streams as one engine scenario, and the resulting
/// flow-completion records are fed back to the policy before the next
/// round — that feedback loop is what the adaptive policy learns from.
#[derive(Debug, Clone)]
pub struct ClusterScheduler<'f> {
    fleet: &'f Fleet,
    rounds: usize,
}

impl<'f> ClusterScheduler<'f> {
    /// A scheduler over `fleet` with the default 4 rounds.
    pub fn new(fleet: &'f Fleet) -> Self {
        ClusterScheduler { fleet, rounds: 4 }
    }

    /// Set the round count (at least 1).
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Run one episode of `streams` under `policy`.
    pub fn run(
        &self,
        streams: &[StreamSpec],
        policy: &mut dyn PlacementPolicy,
    ) -> Result<FleetReport, FleetError> {
        if streams.is_empty() {
            return Err(FleetError::NoStreams);
        }
        let n_hosts = self.fleet.len();
        let mut load = FleetLoad::new(self.fleet);
        let mut per_host_streams = vec![0usize; n_hosts];
        // Per-stream results, indexed by position in `streams`.
        let mut results: Vec<Option<FlowResult>> = vec![None; streams.len()];
        let mut makespan_s = 0.0f64;

        let per_round = streams.len().div_ceil(self.rounds);
        let mut rounds_run = 0;
        let mut offset = 0;
        for batch in streams.chunks(per_round) {
            rounds_run += 1;
            load.clear();
            // (position within `streams`, placement), queued per host.
            let mut queues: Vec<Vec<(usize, Placement)>> = vec![Vec::new(); n_hosts];
            for (i, s) in batch.iter().enumerate() {
                let p = policy.place(s, self.fleet, &load);
                load.add(p);
                per_host_streams[p.host] += 1;
                queues[p.host].push((offset + i, p));
            }
            let mut round_makespan = 0.0f64;
            for (host_id, queue) in queues.iter().enumerate() {
                if queue.is_empty() {
                    continue;
                }
                let host = self.fleet.host(host_id);
                let io = host.io_node();
                let report = Scenario::on(host.fabric())
                    .flows(queue.iter().map(|(pos, p)| {
                        FlowSpec::dma(p.node, io)
                            .gbytes(streams[*pos].gbytes)
                            .label(format!("s{}", streams[*pos].id))
                    }))
                    .run()
                    .map_err(|e| FleetError::scenario(host_id, e))?;
                round_makespan = round_makespan.max(report.makespan_s);
                // Flows come back in submission order.
                for ((pos, p), flow) in queue.iter().zip(report.flows) {
                    policy.observe(*p, flow.fct_s, flow.slowdown);
                    results[*pos] = Some(flow);
                }
            }
            makespan_s += round_makespan;
            offset += batch.len();
        }

        let flows: Vec<FlowResult> =
            results.into_iter().map(|r| r.expect("every stream ran")).collect();
        let total_gbit: f64 = flows.iter().map(|f| f.volume_gbit).sum();
        let rates: Vec<f64> = flows.iter().map(|f| f.mean_gbps).collect();
        let mut slowdowns: Vec<f64> = flows.iter().map(|f| f.slowdown).collect();
        slowdowns.sort_by(f64::total_cmp);
        Ok(FleetReport {
            policy: policy.name().to_string(),
            hosts: n_hosts,
            streams: streams.len(),
            rounds: rounds_run,
            total_gbit,
            aggregate_gbps: if makespan_s > 0.0 { total_gbit / makespan_s } else { 0.0 },
            jain_fairness: jain(&rates),
            p99_slowdown: nearest_rank(&slowdowns, 0.99),
            fct: FctStats::from_flows(&flows),
            per_host_streams,
            digest: fct_digest(&flows),
        })
    }

    /// Run the canonical three-policy comparison over one seeded workload.
    pub fn compare(
        &self,
        streams: &[StreamSpec],
    ) -> Result<Vec<FleetReport>, FleetError> {
        POLICY_NAMES
            .iter()
            .map(|name| {
                let mut policy = policy_by_name(name, self.fleet.len())?;
                self.run(streams, policy.as_mut())
            })
            .collect()
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 when all rates equal.
pub fn jain(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 0.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (rates.len() as f64 * sq)
}

/// Nearest-rank percentile over a sorted slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Fleet {
        Fleet::generate(3, 42).unwrap()
    }

    #[test]
    fn episode_covers_every_stream() {
        let fleet = fleet();
        let streams = StreamSpec::workload(24, 5);
        let mut policy = policy_by_name("class-ranked", fleet.len()).unwrap();
        let report =
            ClusterScheduler::new(&fleet).rounds(3).run(&streams, policy.as_mut()).unwrap();
        assert_eq!(report.streams, 24);
        assert_eq!(report.rounds, 3);
        assert_eq!(report.per_host_streams.iter().sum::<usize>(), 24);
        assert_eq!(report.fct.count, 24);
        assert!(report.aggregate_gbps > 0.0);
        assert!(report.total_gbit > 0.0);
        assert!((0.0..=1.0 + 1e-12).contains(&report.jain_fairness));
        assert!(report.p99_slowdown >= 1.0);
    }

    #[test]
    fn episodes_are_bit_reproducible() {
        let fleet = fleet();
        let streams = StreamSpec::workload(16, 9);
        let sched = ClusterScheduler::new(&fleet);
        for name in POLICY_NAMES {
            let mut p1 = policy_by_name(name, fleet.len()).unwrap();
            let mut p2 = policy_by_name(name, fleet.len()).unwrap();
            let a = sched.run(&streams, p1.as_mut()).unwrap();
            let b = sched.run(&streams, p2.as_mut()).unwrap();
            assert_eq!(a, b, "{name} not reproducible");
            assert_eq!(a.digest, b.digest);
        }
    }

    #[test]
    fn compare_runs_all_three_policies() {
        let fleet = fleet();
        let streams = StreamSpec::workload(12, 3);
        let reports = ClusterScheduler::new(&fleet).compare(&streams).unwrap();
        assert_eq!(reports.len(), 3);
        let names: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(names, POLICY_NAMES.to_vec());
        // Policies genuinely differ on this workload: at least two
        // distinct digests.
        let distinct: std::collections::HashSet<u64> =
            reports.iter().map(|r| r.digest).collect();
        assert!(distinct.len() >= 2, "all policies placed identically");
    }

    #[test]
    fn empty_streams_rejected() {
        let fleet = fleet();
        let mut policy = policy_by_name("adaptive", fleet.len()).unwrap();
        let e = ClusterScheduler::new(&fleet).run(&[], policy.as_mut()).unwrap_err();
        assert_eq!(e, FleetError::NoStreams);
    }

    #[test]
    fn jain_index_behaves() {
        assert_eq!(jain(&[]), 0.0);
        assert_eq!(jain(&[0.0, 0.0]), 0.0);
        assert!((jain(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = jain(&[10.0, 1.0, 1.0]);
        assert!(skewed < 0.6, "{skewed}");
    }

    #[test]
    fn report_renders_metrics() {
        let fleet = fleet();
        let streams = StreamSpec::workload(8, 1);
        let reports = ClusterScheduler::new(&fleet).compare(&streams).unwrap();
        let line = reports[0].render();
        assert!(line.contains("class-ranked"));
        assert!(line.contains("jain"));
        assert!(line.contains("8 streams / 3 hosts"));
    }

    #[test]
    fn report_serde_round_trips() {
        let fleet = fleet();
        let streams = StreamSpec::workload(6, 2);
        let report = ClusterScheduler::new(&fleet).compare(&streams).unwrap().remove(0);
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
