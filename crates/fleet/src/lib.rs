#![warn(missing_docs)]
//! # numa-fleet
//!
//! The fleet layer: from one characterized DL585 to N heterogeneous NUMA
//! hosts and cluster-level stream placement.
//!
//! The paper's methodology characterizes a single host's per-node I/O
//! bandwidth classes. At warehouse scale that characterization becomes a
//! *per-host profile* in a fleet-wide atlas, and placement becomes a
//! two-level decision — which host, then which node — exactly the setting
//! of MAO (arxiv 2411.01460) and of bandwidth-aware placement (arxiv
//! 2003.03304).
//!
//! ## Key types
//!
//! * [`Host`] — one generated machine: sampled
//!   [`HostSpec`](numa_topology::hostgen::HostSpec) topology, capacity-jittered
//!   fabric, characterized write/read [`HostProfile`].
//! * [`Fleet`] — N seeded hosts; `Fleet::generate(n, seed)` is
//!   bit-reproducible.
//! * [`PlacementPolicy`] — pluggable (host, node) selection:
//!   [`ClassRankedFleet`], [`BandwidthAware`], [`Adaptive`].
//! * [`ClusterScheduler`] — runs placement episodes in rounds through the
//!   engine's `Scenario` machinery and reports aggregate bandwidth, Jain
//!   fairness, and p99 slowdown per policy as a [`FleetReport`].
//!
//! ## Example
//!
//! ```
//! use numa_fleet::{ClusterScheduler, Fleet, StreamSpec};
//!
//! let fleet = Fleet::generate(2, 42).unwrap();
//! let streams = StreamSpec::workload(8, 7);
//! let reports = ClusterScheduler::new(&fleet).compare(&streams).unwrap();
//! assert_eq!(reports.len(), 3);
//! assert!(reports.iter().all(|r| r.aggregate_gbps > 0.0));
//! ```

pub mod error;
pub mod fleet;
pub mod host;
pub mod policy;
pub mod scheduler;

pub use error::FleetError;
pub use fleet::Fleet;
pub use host::{Host, HostProfile};
pub use policy::{
    policy_by_name, Adaptive, BandwidthAware, ClassRankedFleet, FleetLoad, Placement,
    PlacementPolicy, StreamSpec, POLICY_NAMES,
};
pub use scheduler::{jain, ClusterScheduler, FleetReport};
