//! Pluggable cluster placement policies.
//!
//! Three families, mirroring the comparison the fleet bench runs:
//!
//! * [`ClassRankedFleet`] — the paper's class-ranked placement lifted to two
//!   levels: pick the host whose best write class has the most per-stream
//!   headroom, then the best-class, least-loaded node on it.
//! * [`BandwidthAware`] — greedy on remaining per-node bandwidth headroom
//!   (modelled Gbit/s divided by queued streams), after the bandwidth-aware
//!   page placement argument of arxiv 2003.03304: rank by measured
//!   bandwidth value, not by class or hop distance.
//! * [`Adaptive`] — MAO-style (arxiv 2411.01460) online reweighting: starts
//!   from the bandwidth-aware score and multiplies in a per-host weight
//!   learned from observed flow slowdowns, so hosts that disappoint their
//!   model drift down the ranking between rounds.
//!
//! All scoring uses `f64::total_cmp` with id tie-breaks, so every policy is
//! fully deterministic for a given fleet and stream sequence.

use crate::error::FleetError;
use crate::fleet::Fleet;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// One stream to place: a device-bound transfer of `gbytes` from some node
/// (chosen by the policy) to the host's device node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Stable stream id (placement order).
    pub id: usize,
    /// Transfer volume in GBytes.
    pub gbytes: f64,
}

impl StreamSpec {
    /// A seeded open workload: `n` streams with volumes spread over
    /// `[1, 9)` GB via splitmix64 — deterministic for a given seed.
    pub fn workload(n: usize, seed: u64) -> Vec<StreamSpec> {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        (0..n)
            .map(|id| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
                StreamSpec { id, gbytes: 1.0 + 8.0 * unit }
            })
            .collect()
    }
}

/// Where a stream landed: host and source node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Host id within the fleet.
    pub host: usize,
    /// Source node on that host.
    pub node: NodeId,
}

/// Running occupancy the scheduler maintains and policies read: how many
/// streams are currently queued per host and per (host, node).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetLoad {
    per_host: Vec<usize>,
    per_node: Vec<Vec<usize>>,
}

impl FleetLoad {
    /// Empty load for a fleet.
    pub fn new(fleet: &Fleet) -> Self {
        FleetLoad {
            per_host: vec![0; fleet.len()],
            per_node: fleet.hosts().iter().map(|h| vec![0; h.num_nodes()]).collect(),
        }
    }

    /// Record one placement.
    pub fn add(&mut self, p: Placement) {
        self.per_host[p.host] += 1;
        self.per_node[p.host][p.node.index()] += 1;
    }

    /// Streams queued on a host.
    pub fn on_host(&self, host: usize) -> usize {
        self.per_host[host]
    }

    /// Streams queued on one node of a host.
    pub fn on_node(&self, host: usize, node: NodeId) -> usize {
        self.per_node[host][node.index()]
    }

    /// Per-host stream counts, id order.
    pub fn per_host(&self) -> &[usize] {
        &self.per_host
    }

    /// Reset all counts (between rounds the queues drain).
    pub fn clear(&mut self) {
        self.per_host.iter_mut().for_each(|c| *c = 0);
        self.per_node.iter_mut().for_each(|v| v.iter_mut().for_each(|c| *c = 0));
    }
}

/// A cluster placement policy: pick a (host, node) for each stream, and
/// optionally learn from the flow-completion records the scheduler feeds
/// back after each round.
pub trait PlacementPolicy {
    /// Stable policy name (reports, CLI, wire ops).
    fn name(&self) -> &'static str;

    /// Place one stream given the fleet and the current queue occupancy.
    fn place(&mut self, stream: &StreamSpec, fleet: &Fleet, load: &FleetLoad) -> Placement;

    /// Observe one completed flow (its placement, FCT seconds, slowdown).
    /// Default: stateless policies ignore feedback.
    fn observe(&mut self, placement: Placement, fct_s: f64, slowdown: f64) {
        let _ = (placement, fct_s, slowdown);
    }
}

/// The paper's class-ranked placement, applied at two levels.
#[derive(Debug, Clone, Default)]
pub struct ClassRankedFleet;

impl PlacementPolicy for ClassRankedFleet {
    fn name(&self) -> &'static str {
        "class-ranked"
    }

    fn place(&mut self, _stream: &StreamSpec, fleet: &Fleet, load: &FleetLoad) -> Placement {
        // Host level: best write class capacity divided by queued streams.
        let host = argmax(fleet.hosts().iter().map(|h| {
            let best = &h.profile().write.classes()[0];
            best.avg_gbps * best.nodes.len() as f64 / (1.0 + load.on_host(h.id) as f64)
        }));
        // Node level: best class first, least queued within a class.
        let h = fleet.host(host);
        let model = &h.profile().write;
        let node = h
            .platform()
            .topology()
            .expect("sim platform has a topology")
            .node_ids()
            .min_by(|&a, &b| {
                (model.class_of(a), load.on_node(host, a), a.index())
                    .cmp(&(model.class_of(b), load.on_node(host, b), b.index()))
            })
            .expect("host has nodes");
        Placement { host, node }
    }
}

/// Greedy on remaining per-node bandwidth headroom (arxiv 2003.03304).
#[derive(Debug, Clone, Default)]
pub struct BandwidthAware;

impl PlacementPolicy for BandwidthAware {
    fn name(&self) -> &'static str {
        "bandwidth-aware"
    }

    fn place(&mut self, _stream: &StreamSpec, fleet: &Fleet, load: &FleetLoad) -> Placement {
        best_by_headroom(fleet, load, |_| 1.0)
    }
}

/// MAO-style adaptive placement: bandwidth-aware scoring reweighted online
/// by each host's observed slowdowns.
#[derive(Debug, Clone)]
pub struct Adaptive {
    /// Per-host multiplicative weight, EWMA of inverse slowdown.
    weights: Vec<f64>,
    /// EWMA smoothing factor for new observations.
    alpha: f64,
}

impl Adaptive {
    /// Neutral weights for a fleet of `hosts`.
    pub fn new(hosts: usize) -> Self {
        Adaptive { weights: vec![1.0; hosts], alpha: 0.3 }
    }

    /// Current per-host weights (diagnostics).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl PlacementPolicy for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn place(&mut self, _stream: &StreamSpec, fleet: &Fleet, load: &FleetLoad) -> Placement {
        let weights = &self.weights;
        best_by_headroom(fleet, load, |host| weights[host])
    }

    fn observe(&mut self, placement: Placement, _fct_s: f64, slowdown: f64) {
        // A slowdown of 1.0 means the host delivered exactly what its model
        // promised; larger means contention the model did not capture.
        let reward = 1.0 / slowdown.max(1.0);
        let w = &mut self.weights[placement.host];
        *w = (1.0 - self.alpha) * *w + self.alpha * reward;
    }
}

/// Shared greedy core: maximize `host_weight * node_gbps / (1 + queued)`
/// over every (host, node), ties to the lowest (host, node).
fn best_by_headroom(
    fleet: &Fleet,
    load: &FleetLoad,
    host_weight: impl Fn(usize) -> f64,
) -> Placement {
    let mut best: Option<(f64, Placement)> = None;
    for h in fleet.hosts() {
        let w = host_weight(h.id);
        let model = &h.profile().write;
        for node in 0..h.num_nodes() {
            let node = NodeId::new(node);
            let score = w * model.node_gbps(node) / (1.0 + load.on_node(h.id, node) as f64);
            let better = match &best {
                None => true,
                Some((s, _)) => score > *s,
            };
            if better {
                best = Some((score, Placement { host: h.id, node }));
            }
        }
    }
    best.expect("fleet has hosts").1
}

/// Deterministic argmax over an iterator of scores (first max wins).
fn argmax(scores: impl Iterator<Item = f64>) -> usize {
    scores
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))
        .expect("non-empty")
        .0
}

/// Instantiate a policy by its wire/CLI name.
pub fn policy_by_name(name: &str, hosts: usize) -> Result<Box<dyn PlacementPolicy>, FleetError> {
    match name {
        "class-ranked" | "class_ranked" | "classranked" => Ok(Box::new(ClassRankedFleet)),
        "bandwidth-aware" | "bandwidth_aware" | "bandwidth" => Ok(Box::new(BandwidthAware)),
        "adaptive" | "mao" => Ok(Box::new(Adaptive::new(hosts))),
        other => Err(FleetError::UnknownPolicy { name: other.to_string() }),
    }
}

/// The canonical policy names, comparison order.
pub const POLICY_NAMES: [&str; 3] = ["class-ranked", "bandwidth-aware", "adaptive"];

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> Fleet {
        Fleet::generate(3, 42).unwrap()
    }

    #[test]
    fn workload_is_seeded_and_bounded() {
        let a = StreamSpec::workload(32, 7);
        let b = StreamSpec::workload(32, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|s| (1.0..9.0).contains(&s.gbytes)));
        assert!(StreamSpec::workload(32, 8) != a);
    }

    #[test]
    fn policies_place_within_bounds() {
        let fleet = small_fleet();
        let mut load = FleetLoad::new(&fleet);
        let streams = StreamSpec::workload(16, 1);
        let mut policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(ClassRankedFleet),
            Box::new(BandwidthAware),
            Box::new(Adaptive::new(fleet.len())),
        ];
        for p in &mut policies {
            load.clear();
            for s in &streams {
                let pl = p.place(s, &fleet, &load);
                assert!(pl.host < fleet.len());
                assert!(pl.node.index() < fleet.host(pl.host).num_nodes());
                load.add(pl);
            }
        }
    }

    #[test]
    fn load_spreads_under_all_policies() {
        // With per-stream headroom division, 32 streams cannot all pile
        // onto one node.
        let fleet = small_fleet();
        for name in POLICY_NAMES {
            let mut policy = policy_by_name(name, fleet.len()).unwrap();
            let mut load = FleetLoad::new(&fleet);
            for s in &StreamSpec::workload(32, 2) {
                load.add(policy.place(s, &fleet, &load));
            }
            let max_on_one_host = load.per_host().iter().copied().max().unwrap();
            assert!(max_on_one_host < 32, "{name} serialized everything");
        }
    }

    #[test]
    fn adaptive_downweights_slow_hosts() {
        let fleet = small_fleet();
        let mut a = Adaptive::new(fleet.len());
        let node = NodeId(0);
        for _ in 0..10 {
            a.observe(Placement { host: 0, node }, 1.0, 4.0);
            a.observe(Placement { host: 1, node }, 1.0, 1.0);
        }
        assert!(a.weights()[0] < a.weights()[1]);
        assert!(a.weights()[1] <= 1.0 + 1e-12);
    }

    #[test]
    fn policy_names_resolve() {
        for name in POLICY_NAMES {
            assert_eq!(policy_by_name(name, 2).unwrap().name(), name);
        }
        assert_eq!(policy_by_name("mao", 2).unwrap().name(), "adaptive");
        assert!(matches!(
            policy_by_name("nope", 2).unwrap_err(),
            FleetError::UnknownPolicy { .. }
        ));
    }
}
