//! Error type for fleet construction and cluster scheduling.

use numa_engine::ScenarioError;
use numa_topology::TopologyError;
use numio_core::PlatformError;
use std::fmt;

/// Everything that can go wrong while generating a fleet or running a
/// cluster placement episode.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A generated host spec failed topology validation.
    Topology(TopologyError),
    /// Per-host characterization failed.
    Platform(PlatformError),
    /// A per-host scenario run failed.
    Scenario {
        /// The host whose episode failed.
        host: usize,
        /// The underlying scenario error, rendered.
        reason: String,
    },
    /// A fleet needs at least one host.
    EmptyFleet,
    /// An episode needs at least one stream.
    NoStreams,
    /// A policy name the scheduler does not know.
    UnknownPolicy {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Topology(e) => write!(f, "host generation failed: {e}"),
            FleetError::Platform(e) => write!(f, "host characterization failed: {e}"),
            FleetError::Scenario { host, reason } => {
                write!(f, "scenario on host {host} failed: {reason}")
            }
            FleetError::EmptyFleet => write!(f, "fleet has no hosts"),
            FleetError::NoStreams => write!(f, "episode has no streams"),
            FleetError::UnknownPolicy { name } => write!(
                f,
                "unknown placement policy '{name}' (expected class-ranked, \
                 bandwidth-aware or adaptive)"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<TopologyError> for FleetError {
    fn from(e: TopologyError) -> Self {
        FleetError::Topology(e)
    }
}

impl From<PlatformError> for FleetError {
    fn from(e: PlatformError) -> Self {
        FleetError::Platform(e)
    }
}

impl FleetError {
    /// Wrap a per-host scenario failure.
    pub fn scenario(host: usize, e: ScenarioError) -> Self {
        FleetError::Scenario { host, reason: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FleetError::EmptyFleet.to_string().contains("no hosts"));
        let e = FleetError::UnknownPolicy { name: "magic".into() };
        assert!(e.to_string().contains("magic"));
        assert!(e.to_string().contains("class-ranked"));
        let e = FleetError::Scenario { host: 3, reason: "boom".into() };
        assert!(e.to_string().contains("host 3"));
    }

    #[test]
    fn conversions_wrap() {
        let e: FleetError = TopologyError::Empty.into();
        assert!(matches!(e, FleetError::Topology(_)));
        let e: FleetError = PlatformError::ZeroThreads.into();
        assert!(matches!(e, FleetError::Platform(_)));
    }
}
