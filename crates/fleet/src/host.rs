//! One fleet member: a generated topology, a jittered fabric, and its
//! characterized I/O profile.

use crate::error::FleetError;
use numa_fabric::Fabric;
use numa_topology::hostgen::{HostSpec, TopoGen};
use numa_topology::NodeId;
use numio_core::{
    characterize_storage, IoModeler, IoPerfModel, Platform, SimPlatform, StorageConfig,
    StorageError, TransferMode,
};

/// Probe repetitions for fleet-scale characterization. The paper runs 100
/// per cell on real hardware; against the deterministic simulator a handful
/// is enough and keeps 64-host fleets cheap.
const FLEET_REPS: u32 = 3;

/// The characterized I/O profile of one host: the write and read models of
/// its device node — the per-host "atlas slice" the placement policies
/// consume.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Device-write model (data flows node -> device).
    pub write: IoPerfModel,
    /// Device-read model (device -> node).
    pub read: IoPerfModel,
    /// Storage-tier write model at the paper operating point (libaio QD16,
    /// O_DIRECT), present when the generated host carries SSD cards.
    pub storage_write: Option<IoPerfModel>,
    /// Storage-tier read model at the paper operating point.
    pub storage_read: Option<IoPerfModel>,
}

/// One host of a [`crate::Fleet`]: generated topology + performance-jittered
/// fabric + characterized profile.
///
/// Heterogeneity comes from two seeded sources: the sampled [`HostSpec`]
/// (socket count, wiring, widths, attach points) and a per-host capacity
/// scale in `[0.85, 1.05)` applied to the fabric's DMA and copy ceilings —
/// same-model machines in a real fleet spread about that much from DIMM
/// population and firmware differences.
#[derive(Debug, Clone)]
pub struct Host {
    /// Position in the fleet (stable across runs).
    pub id: usize,
    /// The spec this host was generated from.
    pub spec: HostSpec,
    /// Per-host capacity scale applied to the fabric defaults.
    pub scale: f64,
    platform: SimPlatform,
    profile: HostProfile,
}

impl Host {
    /// Deterministically generate host `id` of a fleet seeded with
    /// `fleet_seed`: sample a spec, build the jittered fabric, and
    /// characterize the device node in both directions.
    pub fn generate(id: usize, fleet_seed: u64) -> Result<Host, FleetError> {
        let host_seed = mix(fleet_seed, id as u64);
        let gen = TopoGen::sample(format!("host-{id:02}"), host_seed);
        let spec = gen.spec().clone();
        let (topo, routes) = gen.build_routed()?;
        let scale = 0.85 + 0.20 * unit(host_seed ^ 0x5DEE_CE66_D1CE_5EED);
        let fabric = Fabric::builder(topo, routes)
            .dma_hop_decay(0.06)
            .dma_defaults(51.2 * scale, 44.0 * scale)
            .node_copy_caps(50.0 * scale)
            .build();
        let mut platform = SimPlatform::new(fabric);
        platform.seed = host_seed;
        Self::from_platform(id, spec, scale, platform)
    }

    /// Wrap an already-built platform (used by tests and by callers that
    /// want explicit specs instead of sampled ones). The spec's `io_node`
    /// must name the device node of the platform's topology.
    pub fn from_platform(
        id: usize,
        spec: HostSpec,
        scale: f64,
        platform: SimPlatform,
    ) -> Result<Host, FleetError> {
        let target = platform
            .io_nodes()
            .first()
            .copied()
            .unwrap_or_else(|| NodeId::new(platform.num_nodes() - 1));
        let modeler = IoModeler::new().reps(FLEET_REPS);
        let write = modeler.try_characterize(&platform, target, TransferMode::Write)?;
        let read = modeler.try_characterize(&platform, target, TransferMode::Read)?;
        // Storage tier: informational — SSD-less hosts simply carry None,
        // and the placement policies never read it, so its presence cannot
        // perturb the episode digests.
        let storage = |mode| match characterize_storage(&modeler, &platform, StorageConfig::paper(), mode) {
            Ok(m) => Ok(Some(m)),
            Err(StorageError::NoSsd { .. } | StorageError::NoFabric { .. }) => Ok(None),
            Err(StorageError::Probe(e)) => Err(FleetError::Platform(e)),
        };
        let storage_write = storage(TransferMode::Write)?;
        let storage_read = storage(TransferMode::Read)?;
        Ok(Host {
            id,
            spec,
            scale,
            platform,
            profile: HostProfile { write, read, storage_write, storage_read },
        })
    }

    /// The node holding the I/O hub — every stream's sink on this host.
    pub fn io_node(&self) -> NodeId {
        self.profile.write.target
    }

    /// NUMA node count.
    pub fn num_nodes(&self) -> usize {
        self.platform.num_nodes()
    }

    /// The simulator platform backing this host.
    pub fn platform(&self) -> &SimPlatform {
        &self.platform
    }

    /// The host's fabric (for scenario runs).
    pub fn fabric(&self) -> &Fabric {
        self.platform.fabric()
    }

    /// The characterized write/read profile.
    pub fn profile(&self) -> &HostProfile {
        &self.profile
    }

    /// How much of the probed write path the SSD subsystem can absorb:
    /// best storage-tier class level over best memcpy class level.
    /// `None` on SSD-less hosts.
    pub fn storage_headroom(&self) -> Option<f64> {
        let s = self.profile.storage_write.as_ref()?;
        let probe = self.profile.write.classes()[0].avg_gbps;
        if probe > 0.0 {
            Some(s.classes()[0].avg_gbps / probe)
        } else {
            None
        }
    }
}

/// splitmix64-style stream split: one well-mixed sub-seed per host.
fn mix(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a seed to `[0, 1)` deterministically.
fn unit(seed: u64) -> f64 {
    let mut s = seed;
    s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (s >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = Host::generate(3, 42).unwrap();
        let b = Host::generate(3, 42).unwrap();
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.scale, b.scale);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn different_ids_give_different_hosts() {
        let hosts: Vec<Host> = (0..6).map(|i| Host::generate(i, 42).unwrap()).collect();
        assert!(hosts.iter().any(|h| h.spec.sockets != hosts[0].spec.sockets
            || h.spec.wiring != hosts[0].spec.wiring
            || h.scale != hosts[0].scale));
    }

    #[test]
    fn scale_stays_in_band() {
        for id in 0..16 {
            let h = Host::generate(id, 7).unwrap();
            assert!((0.85..1.05).contains(&h.scale), "host {id}: {}", h.scale);
        }
    }

    #[test]
    fn profile_targets_the_io_node() {
        let h = Host::generate(0, 42).unwrap();
        assert_eq!(h.profile().write.target, h.io_node());
        assert_eq!(h.profile().read.target, h.io_node());
        assert_eq!(h.profile().write.mode, TransferMode::Write);
        assert_eq!(h.profile().read.mode, TransferMode::Read);
        assert!(h.platform().io_nodes().contains(&h.io_node()));
    }

    fn explicit_host(ssds: u16) -> Host {
        let gen = TopoGen::new("dev").io_node(7).nics(1).ssds(ssds);
        let spec = gen.spec().clone();
        let (topo, routes) = gen.build_routed().unwrap();
        let fabric = Fabric::builder(topo, routes)
            .dma_hop_decay(0.06)
            .dma_defaults(51.2, 44.0)
            .node_copy_caps(50.0)
            .build();
        Host::from_platform(0, spec, 1.0, SimPlatform::new(fabric)).unwrap()
    }

    #[test]
    fn storage_profile_tracks_the_ssd_count() {
        // An SSD-carrying host gets storage-tier models; an SSD-less one
        // carries None — no silent fallbacks either way.
        let with = explicit_host(2);
        assert!(with.profile().storage_write.is_some());
        assert!(with.profile().storage_read.is_some());
        let headroom = with.storage_headroom().unwrap();
        assert!(
            headroom > 0.0 && headroom < 1.0,
            "SSD ceilings sit below the memcpy path, got {headroom}"
        );
        let sw = with.profile().storage_write.as_ref().unwrap();
        assert_eq!(sw.target, with.io_node());
        assert!(sw.platform.contains("ssd0:"), "{}", sw.platform);

        let without = explicit_host(0);
        assert!(without.profile().storage_write.is_none());
        assert!(without.profile().storage_read.is_none());
        assert!(without.storage_headroom().is_none());

        // Sampled fleet hosts obey the same contract.
        for id in 0..6 {
            let h = Host::generate(id, 42).unwrap();
            let has_cards = h.spec.ssds > 0;
            assert_eq!(h.profile().storage_write.is_some(), has_cards, "host {id}");
            assert_eq!(h.storage_headroom().is_some(), has_cards, "host {id}");
        }
    }

    #[test]
    fn profile_covers_every_node() {
        let h = Host::generate(1, 42).unwrap();
        let classes: usize =
            h.profile().write.classes().iter().map(|c| c.nodes.len()).sum();
        assert_eq!(classes, h.num_nodes());
    }
}
