//! Property-based tests for the fio harness over random job mixes.

use numa_fabric::calibration::dl585_fabric;
use numa_fio::{run_jobs, steady_job_rates, JobSpec, Workload};
use numa_iodev::{IoEngine, NicModel, NicOp, SsdModel};
use numa_topology::NodeId;
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Nic(NicOp::TcpSend)),
        Just(Workload::Nic(NicOp::TcpRecv)),
        Just(Workload::Nic(NicOp::RdmaWrite)),
        Just(Workload::Nic(NicOp::RdmaRead)),
        Just(Workload::Ssd { write: true, engine: IoEngine::paper(), direct: true }),
        Just(Workload::Ssd { write: false, engine: IoEngine::paper(), direct: true }),
    ]
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    proptest::collection::vec(
        (arb_workload(), 0u16..8, 1u32..5, 2.0f64..20.0),
        1..6,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(wl, node, streams, gb)| {
                let mut j = match &wl {
                    Workload::Nic(op) => JobSpec::nic(*op, NodeId(node)),
                    Workload::Ssd { write, .. } => JobSpec::ssd(*write, NodeId(node)),
                };
                j.workload = wl;
                j.numjobs(streams).size_gbytes(gb)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_job_finishes_and_reports_align(jobs in arb_jobs()) {
        let fabric = dl585_fabric();
        let report = run_jobs(&fabric, &jobs).unwrap();
        prop_assert_eq!(report.jobs.len(), jobs.len());
        for (jr, job) in report.jobs.iter().zip(&jobs) {
            prop_assert_eq!(jr.per_stream_gbps.len(), job.numjobs as usize);
            prop_assert!(jr.makespan_s > 0.0);
            prop_assert!(jr.aggregate_gbps > 0.0);
            prop_assert!(jr.makespan_s <= report.makespan_s + 1e-9);
        }
    }

    #[test]
    fn no_job_exceeds_its_class_level(jobs in arb_jobs()) {
        let fabric = dl585_fabric();
        let nic = NicModel::paper();
        let ssd = SsdModel::paper();
        let report = run_jobs(&fabric, &jobs).unwrap();
        for (jr, job) in report.jobs.iter().zip(&jobs) {
            let level = match &job.workload {
                Workload::Nic(op) => nic.node_ceiling(*op, &fabric, job.buffer_node()),
                Workload::Ssd { write, engine, direct } => {
                    ssd.node_ceiling_with(*write, &fabric, job.buffer_node(), *engine, *direct)
                }
            };
            prop_assert!(
                jr.aggregate_gbps <= level + 1e-6,
                "{}: {} > class level {}", jr.describe, jr.aggregate_gbps, level
            );
        }
    }

    #[test]
    fn steady_rates_are_feasible_and_positive(jobs in arb_jobs()) {
        let fabric = dl585_fabric();
        let rates = steady_job_rates(&fabric, &jobs).unwrap();
        prop_assert_eq!(rates.len(), jobs.len());
        let nic = NicModel::paper();
        let ssd = SsdModel::paper();
        // Nothing beats its own device's ceiling: the NIC wire for network
        // jobs, the card aggregate for disk jobs.
        for (rate, job) in rates.iter().zip(&jobs) {
            prop_assert!(*rate > 0.0, "{}", job.describe());
            let device_cap = match &job.workload {
                Workload::Nic(_) => nic.pcie.effective_gbps(),
                Workload::Ssd { write, .. } => ssd.port_cap(*write),
            };
            prop_assert!(*rate <= device_cap + 1e-6, "{}: {rate} > {device_cap}", job.describe());
        }
    }

    #[test]
    fn runs_are_deterministic(jobs in arb_jobs()) {
        let fabric = dl585_fabric();
        let a = run_jobs(&fabric, &jobs).unwrap();
        let b = run_jobs(&fabric, &jobs).unwrap();
        prop_assert_eq!(a, b);
    }

    // NOTE: restricted to NIC workloads — SSD jobs with odd stream counts
    // leave one card with a straggler pair, and the straggler makespan
    // legitimately drops the fio-style aggregate (real fio shows the same
    // shape with numjobs not divisible by the card count).
    #[test]
    fn adding_nic_streams_never_reduces_a_lone_job_aggregate(
        op in prop_oneof![
            Just(NicOp::TcpSend),
            Just(NicOp::TcpRecv),
            Just(NicOp::RdmaWrite),
            Just(NicOp::RdmaRead),
        ],
        node in 0u16..8,
        streams in 1u32..4,
    ) {
        let fabric = dl585_fabric();
        let mk = |s: u32| JobSpec::nic(op, NodeId(node)).numjobs(s).size_gbytes(4.0);
        let few = run_jobs(&fabric, &[mk(streams)]).unwrap().aggregate_gbps;
        let more = run_jobs(&fabric, &[mk(streams + 1)]).unwrap().aggregate_gbps;
        prop_assert!(more >= few - 1e-6, "{op:?}@{node}: {more} < {few}");
    }

    #[test]
    fn ssd_stragglers_only_hurt_when_procs_do_not_divide_cards(
        write in any::<bool>(),
        node in 0u16..8,
    ) {
        // Even process counts per card keep the aggregate at the class
        // level; odd counts pay a straggler penalty but never drop below
        // 2/3 of it (2 cards, at most one imbalanced pair).
        let fabric = dl585_fabric();
        let mk = |s: u32| JobSpec::ssd(write, NodeId(node)).numjobs(s).size_gbytes(4.0);
        let even = run_jobs(&fabric, &[mk(2)]).unwrap().aggregate_gbps;
        let odd = run_jobs(&fabric, &[mk(3)]).unwrap().aggregate_gbps;
        let four = run_jobs(&fabric, &[mk(4)]).unwrap().aggregate_gbps;
        prop_assert!((four - even).abs() < 1e-6, "{four} vs {even}");
        prop_assert!(odd >= even * 2.0 / 3.0 - 1e-6, "{odd} vs {even}");
        prop_assert!(odd <= even + 1e-6);
    }
}
