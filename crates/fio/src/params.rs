//! Table III: parameters for the network I/O tests.

use serde::{Deserialize, Serialize};

/// The paper's network test configuration (applies to TCP and RDMA runs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetTestParams {
    /// Data requested by each test process, GBytes.
    pub data_per_process_gbytes: f64,
    /// TCP congestion control variant.
    pub tcp_variant: String,
    /// I/O block size, KiB.
    pub io_block_kib: u32,
    /// Ethernet frame size (jumbo frames).
    pub ethernet_frame_size: u32,
    /// Round-trip time between the two hosts, ms (§III-A: ~0.005 ms).
    pub rtt_ms: f64,
}

impl NetTestParams {
    /// Table III verbatim.
    pub fn paper() -> Self {
        NetTestParams {
            data_per_process_gbytes: 400.0,
            tcp_variant: "Cubic".to_string(),
            io_block_kib: 128,
            ethernet_frame_size: 9000,
            rtt_ms: 0.005,
        }
    }

    /// Render as the Table III rows.
    pub fn render(&self) -> String {
        format!(
            "Data size requested by each test process  {} GBytes\n\
             TCP Variant                               {}\n\
             IO block size                             {} KBytes\n\
             Ethernet frame size                       {}\n",
            self.data_per_process_gbytes, self.tcp_variant, self.io_block_kib,
            self.ethernet_frame_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let p = NetTestParams::paper();
        assert_eq!(p.data_per_process_gbytes, 400.0);
        assert_eq!(p.tcp_variant, "Cubic");
        assert_eq!(p.io_block_kib, 128);
        assert_eq!(p.ethernet_frame_size, 9000);
    }

    #[test]
    fn render_contains_rows() {
        let s = NetTestParams::paper().render();
        assert!(s.contains("400 GBytes"));
        assert!(s.contains("Cubic"));
        assert!(s.contains("9000"));
    }
}
