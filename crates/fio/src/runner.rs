//! Lower fio jobs onto the flow simulator and report aggregates.

use crate::job::{JobSpec, Workload};
use numa_engine::{
    FlowSpec, JitterCfg, ResourceKey, Scenario, ScenarioError, SimError, SimReport, Simulation,
};
use numa_fabric::Fabric;
use numa_iodev::{NicModel, NicOp, SsdModel};
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Harness failures.
#[derive(Debug, Clone, PartialEq)]
pub enum FioError {
    /// Empty job list.
    NoJobs,
    /// A NIC job was submitted but the host has no NIC.
    NoNic,
    /// An SSD job was submitted but the host has no SSDs.
    NoSsd,
    /// The underlying simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for FioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FioError::NoJobs => write!(f, "no jobs"),
            FioError::NoNic => write!(f, "host has no NIC"),
            FioError::NoSsd => write!(f, "host has no SSDs"),
            FioError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for FioError {}

/// Aggregate results of one job (all its streams).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// fio-style description line.
    pub describe: String,
    /// Sum of stream volumes / slowest stream finish, Gbit/s — fio's
    /// aggregate bandwidth for the job group.
    pub aggregate_gbps: f64,
    /// Mean rate of each stream.
    pub per_stream_gbps: Vec<f64>,
    /// Slowest stream finish, seconds.
    pub makespan_s: f64,
}

/// Results of a whole submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FioReport {
    /// Total volume across jobs divided by overall makespan.
    pub aggregate_gbps: f64,
    /// Overall makespan, seconds.
    pub makespan_s: f64,
    /// Per-job aggregates, in submission order.
    pub jobs: Vec<JobReport>,
    /// Raw simulator output.
    pub sim: SimReport,
}

/// Lower a job set onto a configured [`Simulation`]; returns the sim and
/// the owning job index of each flow. Shared by [`run_jobs`] (transfer to
/// completion) and [`steady_job_rates`] (instantaneous allocation, used by
/// the `numa-sched` online scheduler).
pub fn build_sim<'f>(
    fabric: &'f Fabric,
    jobs: &[JobSpec],
) -> Result<(Simulation<'f>, Vec<usize>), FioError> {
    build_sim_with(
        fabric,
        jobs,
        NicModel::for_fabric(fabric),
        SsdModel::for_fabric(fabric),
    )
}

/// [`build_sim`] with explicit device models — lets experiments ablate
/// device parameters (IRQ derating, mixed-class penalties, card counts)
/// without rebuilding the fabric.
pub fn build_sim_with<'f>(
    fabric: &'f Fabric,
    jobs: &[JobSpec],
    nic: Option<NicModel>,
    ssd: Option<SsdModel>,
) -> Result<(Simulation<'f>, Vec<usize>), FioError> {
    if jobs.is_empty() {
        return Err(FioError::NoJobs);
    }

    // Combined jitter: first non-disabled config wins.
    let jitter = jobs
        .iter()
        .map(|j| j.jitter)
        .find(|j| !j.is_none())
        .unwrap_or(JitterCfg::none());
    let mut sim = Simulation::new(fabric).with_jitter(jitter);

    // Run-level noise on device-side capacities (protocol engines, class
    // ceilings, card channels): real runs land anywhere inside the ranges
    // of Tables IV/V, and with heavy contention the few-percent class gaps
    // can invert ("sometimes the performance of node 5 appears to be the
    // best" — §IV-B1).
    use rand::{Rng, SeedableRng};
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(jitter.seed ^ 0xD1CE_F10E);
    let mut wobble = |cap: f64| -> f64 {
        if jitter.is_none() {
            cap
        } else {
            cap * (1.0 + run_rng.gen_range(-jitter.amplitude..=jitter.amplitude))
        }
    };

    // ---- Pass 1: per-stream class levels, for port mixtures and budgets.
    let mut nic_levels: HashMap<NicOp, Vec<f64>> = HashMap::new();
    let mut ssd_levels: HashMap<bool, Vec<f64>> = HashMap::new();
    let mut cpu_budget: HashMap<NodeId, f64> = HashMap::new();
    for job in jobs {
        match &job.workload {
            Workload::Nic(op) => {
                let nic = nic.as_ref().ok_or(FioError::NoNic)?;
                let level = nic.node_ceiling(*op, fabric, job.buffer_node());
                nic_levels
                    .entry(*op)
                    .or_default()
                    .extend(std::iter::repeat_n(level, job.numjobs as usize));
                if op.cpu_bound() {
                    let budget = nic.cpu_budget(*op, job.bind);
                    cpu_budget
                        .entry(job.bind)
                        .and_modify(|b| *b = b.min(budget))
                        .or_insert(budget);
                }
            }
            Workload::Ssd { write, engine, direct } => {
                let ssd = ssd.as_ref().ok_or(FioError::NoSsd)?;
                let level =
                    ssd.node_ceiling_with(*write, fabric, job.buffer_node(), *engine, *direct);
                ssd_levels
                    .entry(*write)
                    .or_default()
                    .extend(std::iter::repeat_n(level, job.numjobs as usize));
            }
        }
    }

    // ---- Pass 2: register shared resources.
    let mut custom_id = 0u32;
    let mut fresh_custom = || {
        custom_id += 1;
        ResourceKey::Custom(custom_id - 1)
    };

    // Per-op NIC protocol engine capacity (class mixture, Eq. 1 semantics).
    let mut nic_engine_res = HashMap::new();
    // Physical PCIe direction capacity shared by all ops moving that way.
    // Lowered at `base * derate` so a static `device_stall` what-if view
    // (`Fabric::device_derate`) produces exactly the capacity the dynamic
    // injector's `base * factor` event would.
    let mut nic_wire_res = HashMap::new();
    if let Some(nic) = &nic {
        let nic_dev = fabric
            .topology()
            .devices()
            .iter()
            .position(|d| d.kind == numa_topology::DeviceKind::Nic)
            .unwrap_or(0) as u16;
        for (&op, levels) in &nic_levels {
            let cap = wobble(nic.shared_port_cap(op, levels));
            nic_engine_res.insert(op, sim.register(fresh_custom(), cap));
            let dir = op.to_device();
            nic_wire_res.entry(dir).or_insert_with(|| {
                sim.register(
                    ResourceKey::DevicePort { dev: numa_topology::DeviceId(nic_dev), to_device: dir },
                    nic.pcie.effective_gbps() * fabric.device_derate(nic_dev),
                )
            });
        }
    }

    // SSD cards: one resource per (card, direction), capacity = the
    // direction's best per-card rate shaped by the class mixture. Each
    // card is a real `DevicePort` (the dl585 cards are topology devices 1
    // and 2), so `device_stall` faults reach it on both paths: statically
    // through the fabric derate folded in here, dynamically through the
    // injector throttling the registered port.
    let mut ssd_card_res: HashMap<(bool, u32), numa_engine::ResourceHandle> = HashMap::new();
    if let Some(ssd) = &ssd {
        for (&write, levels) in &ssd_levels {
            let mixture = levels.iter().sum::<f64>() / levels.len() as f64;
            let per_card = ssd.port_cap(write).min(mixture) / ssd.cards as f64;
            for card in 0..ssd.cards {
                let dev = ssd.device_id(card);
                let h = sim.register(
                    ResourceKey::DevicePort {
                        dev: numa_topology::DeviceId(dev),
                        to_device: write,
                    },
                    wobble(per_card) * fabric.device_derate(dev),
                );
                ssd_card_res.insert((write, card), h);
            }
        }
    }

    // Per-(op, node) class ceilings so one node's streams cannot exceed
    // their class level in aggregate.
    let mut class_res: HashMap<(u8, NodeId), numa_engine::ResourceHandle> = HashMap::new();

    // TCP CPU budgets.
    let mut cpu_res: HashMap<NodeId, numa_engine::ResourceHandle> = HashMap::new();
    for (&node, &budget) in &cpu_budget {
        if budget.is_finite() {
            let h = sim.register(ResourceKey::NodeCpu(node), budget);
            cpu_res.insert(node, h);
        }
    }

    // ---- Pass 3: emit flows.
    let mut flow_job: Vec<usize> = Vec::new();
    let mut ssd_rr: u32 = 0;
    for (ji, job) in jobs.iter().enumerate() {
        let buffer = job.buffer_node();
        for s in 0..job.numjobs {
            let label = format!("job{ji}.{s} {}", job.describe());
            let spec = match &job.workload {
                Workload::Nic(op) => {
                    let nic = nic.as_ref().ok_or(FioError::NoNic)?;
                    let (src, dst) =
                        if op.to_device() { (buffer, nic.node) } else { (nic.node, buffer) };
                    let level = nic.node_ceiling(*op, fabric, buffer);
                    let ceiling = if op.cpu_bound() {
                        nic.tcp_per_stream_gbps.min(level)
                    } else {
                        level
                    };
                    let mut f = FlowSpec::dma(src, dst)
                        .gbytes(job.size_gbytes)
                        .ceiling(ceiling)
                        .label(label)
                        .charge(nic_engine_res[op])
                        .charge(nic_wire_res[&op.to_device()]);
                    // The NIC endpoint is a device buffer: its DMA engine
                    // reads/writes host memory only on the *buffer* node.
                    f = if op.to_device() { f.device_dst() } else { f.device_src() };
                    let class_key = (op_tag(*op), buffer);
                    let class_handle = *class_res
                        .entry(class_key)
                        .or_insert_with(|| sim.register(fresh_custom(), wobble(level)));
                    f = f.charge(class_handle);
                    if op.cpu_bound() {
                        if let Some(&h) = cpu_res.get(&job.bind) {
                            f = f.charge(h);
                        }
                    }
                    f
                }
                Workload::Ssd { write, engine, direct } => {
                    let ssd = ssd.as_ref().ok_or(FioError::NoSsd)?;
                    let (src, dst) =
                        if *write { (buffer, ssd.node) } else { (ssd.node, buffer) };
                    let level =
                        ssd.node_ceiling_with(*write, fabric, buffer, *engine, *direct);
                    let card = ssd_rr % ssd.cards;
                    ssd_rr += 1;
                    let class_key = (ssd_tag(*write), buffer);
                    let class_handle = *class_res
                        .entry(class_key)
                        .or_insert_with(|| sim.register(fresh_custom(), wobble(level)));
                    let f = FlowSpec::dma(src, dst)
                        .gbytes(job.size_gbytes)
                        .ceiling(level / ssd.cards as f64)
                        .label(label)
                        .charge(ssd_card_res[&(*write, card)])
                        .charge(class_handle);
                    if *write { f.device_dst() } else { f.device_src() }
                }
            };
            sim.add_flow(spec.weight(job.weight));
            flow_job.push(ji);
        }
    }
    Ok((sim, flow_job))
}

impl FioReport {
    /// fio-style textual report: one line per job plus the group total.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, j) in self.jobs.iter().enumerate() {
            let _ = writeln!(
                out,
                "job{i}: {}\n  agg {:.2} Gbit/s over {:.1}s ({} streams: {})",
                j.describe,
                j.aggregate_gbps,
                j.makespan_s,
                j.per_stream_gbps.len(),
                j.per_stream_gbps
                    .iter()
                    .map(|r| format!("{r:.2}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        let _ = writeln!(
            out,
            "ALL: {:.2} Gbit/s over {:.1}s",
            self.aggregate_gbps, self.makespan_s
        );
        out
    }
}

/// Run a set of jobs concurrently to completion (the paper's multi-user
/// scenarios submit several pinned jobs at once).
pub fn run_jobs(fabric: &Fabric, jobs: &[JobSpec]) -> Result<FioReport, FioError> {
    run_jobs_with(fabric, jobs, NicModel::for_fabric(fabric), SsdModel::for_fabric(fabric))
}

/// [`run_jobs`] with explicit device models (ablation hook).
pub fn run_jobs_with(
    fabric: &Fabric,
    jobs: &[JobSpec],
    nic: Option<NicModel>,
    ssd: Option<SsdModel>,
) -> Result<FioReport, FioError> {
    let (sim, flow_job) = build_sim_with(fabric, jobs, nic, ssd)?;
    let report = sim.run().map_err(FioError::Sim)?;
    Ok(assemble_report(jobs, report, &flow_job))
}

/// [`run_jobs`] with an observability handle, routed through the engine's
/// unified [`Scenario`] builder. Engine-level events (allocation rounds,
/// flow completions) carry each flow's `job<i>.<stream> <describe>` label,
/// so the stream is already tagged with job metadata; on top of that, each
/// job's aggregate is emitted as a `job_finished` event at its makespan.
pub fn run_jobs_scenario(
    fabric: &Fabric,
    jobs: &[JobSpec],
    obs: &numa_obs::Obs,
) -> Result<FioReport, FioError> {
    let (sim, flow_job) = build_sim(fabric, jobs)?;
    let report = Scenario::from_simulation(sim)
        .observe(obs.clone())
        .run()
        .map_err(|e| match e {
            ScenarioError::Sim(s) => FioError::Sim(s),
            // No workloads or fault sources are attached here.
            ScenarioError::Faults { reason } => unreachable!("{reason}"),
        })?;
    let out = assemble_report(jobs, report, &flow_job);
    for (ji, j) in out.jobs.iter().enumerate() {
        obs.counter("numio_jobs_completed_total", &[("component", "fio")]).inc();
        obs.event(
            "job_finished",
            j.makespan_s,
            &[
                ("job", numa_obs::Value::from(ji)),
                ("describe", j.describe.as_str().into()),
                ("aggregate_gbps", numa_obs::Value::from(j.aggregate_gbps)),
                ("streams", numa_obs::Value::from(j.per_stream_gbps.len())),
            ],
        );
    }
    Ok(out)
}

/// Fold raw simulator output into per-job aggregates. Public so harnesses
/// that need the [`Simulation`] between [`build_sim`] and `run` (e.g. to
/// arm a fault injector) can still produce a standard [`FioReport`].
pub fn assemble_report(jobs: &[JobSpec], report: SimReport, flow_job: &[usize]) -> FioReport {
    let mut job_reports = Vec::with_capacity(jobs.len());
    for (ji, job) in jobs.iter().enumerate() {
        let streams: Vec<&numa_engine::FlowResult> = report
            .flows
            .iter()
            .zip(flow_job)
            .filter(|(_, &owner)| owner == ji)
            .map(|(f, _)| f)
            .collect();
        let volume: f64 = streams.iter().map(|f| f.volume_gbit).sum();
        let makespan = streams.iter().map(|f| f.finish_s).fold(0.0, f64::max);
        job_reports.push(JobReport {
            describe: job.describe(),
            aggregate_gbps: if makespan > 0.0 { volume / makespan } else { 0.0 },
            per_stream_gbps: streams.iter().map(|f| f.mean_gbps).collect(),
            makespan_s: makespan,
        });
    }

    FioReport {
        aggregate_gbps: report.aggregate_gbps,
        makespan_s: report.makespan_s,
        jobs: job_reports,
        sim: report,
    }
}

/// Instantaneous max-min aggregate rate of each job with every stream
/// active — what an online scheduler observes right after (re)placement.
pub fn steady_job_rates(fabric: &Fabric, jobs: &[JobSpec]) -> Result<Vec<f64>, FioError> {
    let (mut sim, flow_job) = build_sim(fabric, jobs)?;
    let rates = sim.steady_rates();
    let mut per_job = vec![0.0; jobs.len()];
    for (rate, &ji) in rates.iter().zip(&flow_job) {
        per_job[ji] += rate;
    }
    Ok(per_job)
}

/// Distinct tag per NIC op for class-resource keying.
fn op_tag(op: NicOp) -> u8 {
    match op {
        NicOp::TcpSend => 0,
        NicOp::TcpRecv => 1,
        NicOp::RdmaWrite => 2,
        NicOp::RdmaRead => 3,
        NicOp::SendRecv => 4,
    }
}

/// Distinct tag per SSD direction (offset past NIC ops).
fn ssd_tag(write: bool) -> u8 {
    if write { 10 } else { 11 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_fabric::calibration::{dl585_fabric, paper};
    use numa_iodev::IoEngine;

    fn fabric() -> Fabric {
        dl585_fabric()
    }

    #[test]
    fn empty_submission_rejected() {
        assert_eq!(run_jobs(&fabric(), &[]).unwrap_err(), FioError::NoJobs);
    }

    #[test]
    fn single_tcp_stream_is_cpu_capped() {
        let f = fabric();
        let job = JobSpec::nic(NicOp::TcpSend, NodeId(5)).size_gbytes(7.0);
        let r = run_jobs(&f, &[job]).unwrap();
        assert!((r.aggregate_gbps - 5.6).abs() < 1e-6, "{}", r.aggregate_gbps);
    }

    #[test]
    fn four_tcp_streams_reach_class_level() {
        let f = fabric();
        for (node, want) in [(6u16, 20.9), (5, 20.5), (2, 16.3)] {
            let job = JobSpec::nic(NicOp::TcpSend, NodeId(node)).numjobs(4).size_gbytes(10.0);
            let r = run_jobs(&f, &[job]).unwrap();
            assert!(
                (r.aggregate_gbps - want).abs() < 0.1,
                "node {node}: {} vs {want}",
                r.aggregate_gbps
            );
        }
    }

    #[test]
    fn node7_send_is_irq_penalized_below_node6() {
        let f = fabric();
        let at = |node: u16| {
            let job = JobSpec::nic(NicOp::TcpSend, NodeId(node)).numjobs(4).size_gbytes(10.0);
            run_jobs(&f, &[job]).unwrap().aggregate_gbps
        };
        let n7 = at(7);
        let n6 = at(6);
        assert!((n7 - 19.6).abs() < 0.1, "{n7}");
        assert!(n6 > n7 + 1.0, "neighbour beats local: {n6} vs {n7}");
    }

    #[test]
    fn rdma_write_single_stream_hits_class_level() {
        let f = fabric();
        for (node, want) in [(7u16, 23.3), (4, 23.3), (3, 17.05)] {
            let job = JobSpec::nic(NicOp::RdmaWrite, NodeId(node)).size_gbytes(10.0);
            let r = run_jobs(&f, &[job]).unwrap();
            assert!(
                (r.aggregate_gbps - want).abs() < 0.1,
                "node {node}: {} vs {want}",
                r.aggregate_gbps
            );
        }
    }

    #[test]
    fn rdma_read_class_levels() {
        let f = fabric();
        for (node, want) in [(2u16, paper::EQ1_CLASS2_BW), (0, paper::EQ1_CLASS3_BW), (4, 16.1)] {
            let job = JobSpec::nic(NicOp::RdmaRead, NodeId(node)).numjobs(2).size_gbytes(10.0);
            let r = run_jobs(&f, &[job]).unwrap();
            assert!(
                (r.aggregate_gbps - want).abs() < 0.05,
                "node {node}: {} vs {want}",
                r.aggregate_gbps
            );
        }
    }

    #[test]
    fn eq1_mixed_class_run_matches_measured_value() {
        // The paper's validation: 2 RDMA_READ procs on node 2 + 2 on node
        // 0 measure 19.415 Gbps aggregate.
        let f = fabric();
        let jobs = [
            JobSpec::nic(NicOp::RdmaRead, NodeId(2)).numjobs(2).size_gbytes(50.0),
            JobSpec::nic(NicOp::RdmaRead, NodeId(0)).numjobs(2).size_gbytes(50.0),
        ];
        let r = run_jobs(&f, &jobs).unwrap();
        let err = (r.aggregate_gbps - paper::EQ1_MEASURED).abs() / paper::EQ1_MEASURED;
        assert!(err < 0.02, "{} vs {}", r.aggregate_gbps, paper::EQ1_MEASURED);
    }

    #[test]
    fn ssd_write_two_procs_reach_table_iv() {
        let f = fabric();
        for (node, want) in [(7u16, 29.1), (0, 28.1), (3, 17.9)] {
            let job = JobSpec::ssd(true, NodeId(node)).numjobs(2).size_gbytes(20.0);
            let r = run_jobs(&f, &[job]).unwrap();
            assert!(
                (r.aggregate_gbps - want).abs() < 0.15,
                "node {node}: {} vs {want}",
                r.aggregate_gbps
            );
        }
    }

    #[test]
    fn ssd_single_proc_drives_one_card_only() {
        let f = fabric();
        let two = run_jobs(&f, &[JobSpec::ssd(false, NodeId(6)).numjobs(2).size_gbytes(20.0)])
            .unwrap()
            .aggregate_gbps;
        let one = run_jobs(&f, &[JobSpec::ssd(false, NodeId(6)).numjobs(1).size_gbytes(20.0)])
            .unwrap()
            .aggregate_gbps;
        assert!((one - two / 2.0).abs() < 0.1, "one={one} two={two}");
    }

    #[test]
    fn sync_buffered_ssd_is_slower() {
        let f = fabric();
        let fast = JobSpec::ssd(false, NodeId(6)).numjobs(2).size_gbytes(10.0);
        let mut slow = fast.clone();
        slow.workload = Workload::Ssd { write: false, engine: IoEngine::Sync, direct: false };
        let rf = run_jobs(&f, &[fast]).unwrap().aggregate_gbps;
        let rs = run_jobs(&f, &[slow]).unwrap().aggregate_gbps;
        assert!(rs < 0.3 * rf, "sync+buffered {rs} vs libaio+direct {rf}");
    }

    #[test]
    fn per_job_reports_split_streams() {
        let f = fabric();
        let jobs = [
            JobSpec::nic(NicOp::RdmaWrite, NodeId(6)).numjobs(2).size_gbytes(5.0),
            JobSpec::nic(NicOp::RdmaWrite, NodeId(3)).numjobs(1).size_gbytes(5.0),
        ];
        let r = run_jobs(&f, &jobs).unwrap();
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(r.jobs[0].per_stream_gbps.len(), 2);
        assert_eq!(r.jobs[1].per_stream_gbps.len(), 1);
        assert!(r.jobs[0].aggregate_gbps > r.jobs[1].aggregate_gbps);
    }

    #[test]
    fn observed_run_matches_plain_and_tags_jobs() {
        let f = fabric();
        let jobs = [
            JobSpec::nic(NicOp::RdmaWrite, NodeId(6)).numjobs(2).size_gbytes(5.0),
            JobSpec::nic(NicOp::RdmaWrite, NodeId(3)).numjobs(1).size_gbytes(5.0),
        ];
        let plain = run_jobs(&f, &jobs).unwrap();
        let obs = numa_obs::Obs::new();
        let observed = run_jobs_scenario(&f, &jobs, &obs).unwrap();
        assert_eq!(plain, observed);
        assert_eq!(obs.counter("numio_jobs_completed_total", &[("component", "fio")]).get(), 2);
        let jsonl = obs.jsonl();
        // Engine flow completions carry the job-tagged flow label...
        assert!(jsonl.contains("\"label\":\"job0.0 RdmaWrite"), "{jsonl}");
        // ...and job-level aggregates ride along as events.
        assert!(jsonl.contains("\"ev\":\"job_finished\""), "{jsonl}");
    }

    #[test]
    fn fio_report_renders_jobs_and_total() {
        let f = fabric();
        let jobs = [JobSpec::nic(NicOp::RdmaWrite, NodeId(6)).numjobs(2).size_gbytes(5.0)];
        let s = run_jobs(&f, &jobs).unwrap().render();
        assert!(s.contains("job0: RdmaWrite"));
        assert!(s.contains("2 streams"));
        assert!(s.contains("ALL: 23.30 Gbit/s"));
    }

    #[test]
    fn missing_devices_are_reported() {
        use numa_fabric::calibration::generic_fabric;
        let bare = generic_fabric(numa_topology::presets::fig1a());
        let err = run_jobs(&bare, &[JobSpec::nic(NicOp::TcpSend, NodeId(0))]).unwrap_err();
        assert_eq!(err, FioError::NoNic);
        let err = run_jobs(&bare, &[JobSpec::ssd(true, NodeId(0))]).unwrap_err();
        assert_eq!(err, FioError::NoSsd);
    }

    #[test]
    fn jobfile_naming_a_missing_device_is_a_typed_error() {
        // Regression for the pass-3 `nic/ssd.as_ref().unwrap()` sites:
        // a parsed jobfile whose jobs need devices the fabric does not
        // host must surface `FioError::{NoNic,NoSsd}` end to end, never
        // panic while emitting flows.
        use numa_fabric::calibration::generic_fabric;
        let bare = generic_fabric(numa_topology::presets::fig1a());
        let jobs = |text: &str| -> Vec<JobSpec> {
            crate::jobfile::parse(text)
                .unwrap()
                .into_iter()
                .map(|(_, job)| job)
                .collect()
        };
        let nic_jobs = jobs("[net]\nioengine=rdma\nverb=write\ncpunodebind=0\nsize=1g\n");
        assert_eq!(run_jobs(&bare, &nic_jobs).unwrap_err(), FioError::NoNic);
        let ssd_jobs = jobs("[disk]\nioengine=libaio\nrw=write\ncpunodebind=0\nsize=1g\n");
        assert_eq!(run_jobs(&bare, &ssd_jobs).unwrap_err(), FioError::NoSsd);
    }

    #[test]
    fn remote_buffers_change_the_class() {
        // Pin CPU to node 6 but buffers to node 3: the DMA path (and hence
        // the class) follows the buffers — the paper's central point that
        // data location, not thread location, drives DMA cost.
        use numa_memsys::MemPolicy;
        let f = fabric();
        let job = JobSpec::nic(NicOp::RdmaWrite, NodeId(6))
            .mem_policy(MemPolicy::bind(3))
            .size_gbytes(10.0);
        let r = run_jobs(&f, &[job]).unwrap();
        assert!((r.aggregate_gbps - 17.05).abs() < 0.1, "{}", r.aggregate_gbps);
    }
}
