//! Job specifications, fio-style.

use numa_engine::JitterCfg;
use numa_iodev::{IoEngine, NicOp};
use numa_memsys::MemPolicy;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// What a job exercises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// A network operation against the host NIC.
    Nic(NicOp),
    /// Disk I/O against the SSD cards.
    Ssd {
        /// `true` = write to the drives, `false` = read back.
        write: bool,
        /// fio I/O engine.
        engine: IoEngine,
        /// Kernel-bypass (O_DIRECT) vs buffered.
        direct: bool,
    },
}

/// One fio job: `numjobs` identical pinned processes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Device workload.
    pub workload: Workload,
    /// Parallel processes/streams spawned by this job.
    pub numjobs: u32,
    /// CPU node binding (`numactl --cpunodebind`).
    pub bind: NodeId,
    /// Buffer placement policy. The paper's default: "all test cases will
    /// allocate buffers in their local memory space" — local preferred.
    pub mem_policy: MemPolicy,
    /// Data volume per process, GBytes (paper: 400).
    pub size_gbytes: f64,
    /// Block size in KiB (paper: 128). Informational — the fluid model is
    /// block-size agnostic above ~64 KiB.
    pub block_kib: u32,
    /// Run-to-run noise.
    pub jitter: JitterCfg,
    /// QoS weight: this job's streams receive `weight x` the fair share of
    /// any contended resource (weighted max-min). 1.0 = best effort.
    pub weight: f64,
}

impl JobSpec {
    /// A NIC job with the paper's Table III defaults.
    pub fn nic(op: NicOp, bind: NodeId) -> Self {
        JobSpec {
            workload: Workload::Nic(op),
            numjobs: 1,
            bind,
            mem_policy: MemPolicy::LocalPreferred,
            size_gbytes: 400.0,
            block_kib: 128,
            jitter: JitterCfg::none(),
            weight: 1.0,
        }
    }

    /// An SSD job with the paper's §IV-B3 defaults: libaio, QD16, direct.
    pub fn ssd(write: bool, bind: NodeId) -> Self {
        JobSpec {
            workload: Workload::Ssd { write, engine: IoEngine::paper(), direct: true },
            ..JobSpec::nic(NicOp::TcpSend, bind)
        }
    }

    /// Set the number of parallel processes.
    pub fn numjobs(mut self, n: u32) -> Self {
        assert!(n >= 1, "numjobs must be at least 1");
        self.numjobs = n;
        self
    }

    /// Set the per-process volume in GBytes.
    pub fn size_gbytes(mut self, gb: f64) -> Self {
        self.size_gbytes = gb;
        self
    }

    /// Set the buffer policy.
    pub fn mem_policy(mut self, p: MemPolicy) -> Self {
        self.mem_policy = p;
        self
    }

    /// Enable jitter.
    pub fn jitter(mut self, j: JitterCfg) -> Self {
        self.jitter = j;
        self
    }

    /// Set the QoS weight (must be positive).
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "weight must be positive");
        self.weight = weight;
        self
    }

    /// The node the job's buffers land on: explicit bind target, else the
    /// CPU node (local-preferred with ample memory).
    pub fn buffer_node(&self) -> NodeId {
        match &self.mem_policy {
            MemPolicy::Bind(n) | MemPolicy::Preferred(n) => *n,
            MemPolicy::LocalPreferred => self.bind,
            MemPolicy::Interleave(nodes) => {
                // The fluid model needs one endpoint; take the first node
                // (full page-striping is a documented simplification).
                nodes[0]
            }
        }
    }

    /// fio-style one-line description.
    pub fn describe(&self) -> String {
        let wl = match &self.workload {
            Workload::Nic(op) => format!("{op:?}"),
            Workload::Ssd { write, engine, direct } => format!(
                "Ssd{}({engine:?}{})",
                if *write { "Write" } else { "Read" },
                if *direct { ",direct" } else { ",buffered" }
            ),
        };
        format!(
            "{wl} numjobs={} cpunode={} mem={} size={}G bs={}K",
            self.numjobs,
            self.bind,
            self.mem_policy.name(),
            self.size_gbytes,
            self.block_kib
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_defaults_match_table_iii() {
        let j = JobSpec::nic(NicOp::TcpSend, NodeId(5));
        assert_eq!(j.size_gbytes, 400.0);
        assert_eq!(j.block_kib, 128);
        assert_eq!(j.numjobs, 1);
        assert_eq!(j.buffer_node(), NodeId(5));
    }

    #[test]
    fn ssd_defaults_match_section_ivb3() {
        let j = JobSpec::ssd(true, NodeId(2));
        match j.workload {
            Workload::Ssd { write, engine, direct } => {
                assert!(write);
                assert!(direct);
                assert_eq!(engine, IoEngine::Libaio { iodepth: 16 });
            }
            _ => panic!("wrong workload"),
        }
    }

    #[test]
    fn buffer_node_follows_policy() {
        let j = JobSpec::nic(NicOp::TcpRecv, NodeId(4)).mem_policy(MemPolicy::bind(1));
        assert_eq!(j.buffer_node(), NodeId(1));
        let j = JobSpec::nic(NicOp::TcpRecv, NodeId(4))
            .mem_policy(MemPolicy::Interleave(vec![NodeId(2), NodeId(3)]));
        assert_eq!(j.buffer_node(), NodeId(2));
    }

    #[test]
    fn describe_mentions_key_fields() {
        let d = JobSpec::nic(NicOp::RdmaRead, NodeId(0)).numjobs(4).describe();
        assert!(d.contains("RdmaRead"));
        assert!(d.contains("numjobs=4"));
        assert!(d.contains("cpunode=0"));
    }

    #[test]
    #[should_panic(expected = "numjobs")]
    fn zero_jobs_rejected() {
        let _ = JobSpec::nic(NicOp::TcpSend, NodeId(0)).numjobs(0);
    }
}
