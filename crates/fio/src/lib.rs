#![warn(missing_docs)]
//! # numa-fio
//!
//! A Flexible-I/O-Tester-style benchmark harness over the simulated host.
//!
//! The paper drives all of its device measurements with `fio` (plus the
//! authors' RDMA engine extension [25]): N processes, each pinned with
//! `numactl`, each transferring 400 GBytes in 128 KiB blocks, reporting the
//! average aggregate bandwidth (§III-B2, Table III). This crate mirrors
//! that workflow: [`JobSpec`] describes a job the way an fio job file
//! would, [`run_jobs`] lowers jobs to simulator flows (with device ports,
//! CPU budgets, IRQ derating and class ceilings attached) and reports
//! aggregates, and [`sweep`] regenerates the multi-stream curves of
//! Figs. 5–7.
//!
//! ## Example
//!
//! ```
//! use numa_fio::{JobSpec, Workload, run_jobs};
//! use numa_iodev::NicOp;
//! use numa_fabric::calibration::dl585_fabric;
//! use numa_topology::NodeId;
//!
//! let fabric = dl585_fabric();
//! // 4 RDMA_WRITE streams pinned to node 3 — the starved Table IV class 3.
//! let job = JobSpec::nic(NicOp::RdmaWrite, NodeId(3)).numjobs(4).size_gbytes(4.0);
//! let report = run_jobs(&fabric, &[job]).unwrap();
//! assert!((report.aggregate_gbps - 17.05).abs() < 0.2);
//! ```

pub mod job;
pub mod jobfile;
pub mod params;
pub mod runner;
pub mod sweep;

pub use job::{JobSpec, Workload};
pub use jobfile::{parse as parse_jobfile, JobFileError};
pub use params::NetTestParams;
pub use runner::{
    assemble_report, build_sim, build_sim_with, run_jobs, run_jobs_scenario, run_jobs_with,
    steady_job_rates, FioError, FioReport, JobReport,
};
pub use sweep::{sweep, SweepPoint};
