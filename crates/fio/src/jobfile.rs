//! fio-style job files.
//!
//! The original tool is driven by INI-like job files; supporting the same
//! surface makes the simulated harness a drop-in for the paper's scripts.
//! Supported subset (everything the paper's experiments need):
//!
//! ```ini
//! [global]
//! size=400g
//! bs=128k
//! numjobs=4
//!
//! [send-node5]
//! ioengine=net        ; net|rdma|libaio|sync
//! rw=write            ; write|read (direction towards/from the device)
//! verb=tcp            ; net: tcp | rdma: write|read|send
//! cpunodebind=5
//! membind=5           ; optional; defaults to local-preferred
//! iodepth=16          ; libaio only
//! direct=1            ; O_DIRECT (kernel bypass)
//! ```
//!
//! Sections inherit `[global]` keys; later keys override earlier ones.

use crate::job::{JobSpec, Workload};
use numa_iodev::{IoEngine, NicOp};
use numa_memsys::MemPolicy;
use numa_topology::NodeId;
use std::collections::BTreeMap;

/// Parse failures, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFileError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JobFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JobFileError {}

fn err(line: usize, message: impl Into<String>) -> JobFileError {
    JobFileError { line, message: message.into() }
}

type KeyValues = BTreeMap<String, (usize, String)>;

/// Parse a job file into named job specs, in section order.
pub fn parse(text: &str) -> Result<Vec<(String, JobSpec)>, JobFileError> {
    let mut global: KeyValues = BTreeMap::new();
    let mut sections: Vec<(String, KeyValues)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        // Strip comments (';' and '#').
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim();
            if name.is_empty() {
                return Err(err(line_no, "empty section name"));
            }
            if name.eq_ignore_ascii_case("global") {
                sections.push(("global".into(), BTreeMap::new()));
            } else {
                sections.push((name.to_string(), BTreeMap::new()));
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("expected key=value, got '{line}'")))?;
        let entry = (line_no, value.trim().to_string());
        match sections.last_mut() {
            Some((name, map)) if name != "global" => {
                map.insert(key.trim().to_lowercase(), entry);
            }
            _ => {
                global.insert(key.trim().to_lowercase(), entry);
            }
        }
    }

    let mut jobs = Vec::new();
    for (name, map) in sections.into_iter().filter(|(n, _)| n != "global") {
        let mut merged = global.clone();
        merged.extend(map);
        jobs.push((name.clone(), build_job(&name, &merged)?));
    }
    Ok(jobs)
}

fn build_job(name: &str, kv: &KeyValues) -> Result<JobSpec, JobFileError> {
    let get = |k: &str| kv.get(k).map(|(l, v)| (*l, v.as_str()));
    let engine_str = get("ioengine").map(|(_, v)| v.to_lowercase()).unwrap_or_else(|| "net".into());
    let rw = get("rw").map(|(_, v)| v.to_lowercase()).unwrap_or_else(|| "write".into());
    let write = match rw.as_str() {
        "write" | "randwrite" => true,
        "read" | "randread" => false,
        other => {
            let line = get("rw").map(|(l, _)| l).unwrap_or(0);
            return Err(err(line, format!("unsupported rw '{other}'")));
        }
    };

    let workload = match engine_str.as_str() {
        "net" | "tcp" => Workload::Nic(if write { NicOp::TcpSend } else { NicOp::TcpRecv }),
        "rdma" => {
            let verb =
                get("verb").map(|(_, v)| v.to_lowercase()).unwrap_or_else(|| "write".into());
            let op = match verb.as_str() {
                "write" => NicOp::RdmaWrite,
                "read" => NicOp::RdmaRead,
                "send" => NicOp::SendRecv,
                other => {
                    let line = get("verb").map(|(l, _)| l).unwrap_or(0);
                    return Err(err(line, format!("unsupported rdma verb '{other}'")));
                }
            };
            Workload::Nic(op)
        }
        "libaio" | "sync" => {
            let engine = if engine_str == "sync" {
                IoEngine::Sync
            } else {
                let iodepth = match get("iodepth") {
                    None => 16,
                    Some((l, v)) => v
                        .parse::<u32>()
                        .map_err(|_| err(l, format!("bad iodepth '{v}'")))?,
                };
                IoEngine::Libaio { iodepth }
            };
            let direct = match get("direct") {
                None => true,
                Some((l, v)) => match v {
                    "1" | "true" => true,
                    "0" | "false" => false,
                    other => return Err(err(l, format!("bad direct flag '{other}'"))),
                },
            };
            Workload::Ssd { write, engine, direct }
        }
        other => {
            let line = get("ioengine").map(|(l, _)| l).unwrap_or(0);
            return Err(err(line, format!("unsupported ioengine '{other}'")));
        }
    };

    let bind = match get("cpunodebind") {
        None => return Err(err(0, format!("job '{name}': cpunodebind is required"))),
        Some((l, v)) => NodeId(
            v.parse::<u16>()
                .map_err(|_| err(l, format!("bad cpunodebind '{v}'")))?,
        ),
    };
    let mem_policy = match get("membind") {
        None => MemPolicy::LocalPreferred,
        Some((l, v)) => MemPolicy::Bind(NodeId(
            v.parse::<u16>().map_err(|_| err(l, format!("bad membind '{v}'")))?,
        )),
    };
    let numjobs = match get("numjobs") {
        None => 1,
        Some((l, v)) => {
            let n: u32 = v.parse().map_err(|_| err(l, format!("bad numjobs '{v}'")))?;
            if n == 0 {
                return Err(err(l, "numjobs must be at least 1"));
            }
            n
        }
    };
    let size_gbytes = match get("size") {
        None => 400.0,
        Some((l, v)) => parse_size_gbytes(v).ok_or_else(|| err(l, format!("bad size '{v}'")))?,
    };
    let block_kib = match get("bs") {
        None => 128,
        Some((l, v)) => parse_size_gbytes(v)
            .map(|gb| (gb * 1024.0 * 1024.0) as u32)
            .filter(|&k| k > 0)
            .ok_or_else(|| err(l, format!("bad bs '{v}'")))?,
    };

    let weight = match get("weight") {
        None => 1.0,
        Some((l, v)) => {
            let w: f64 = v.parse().map_err(|_| err(l, format!("bad weight '{v}'")))?;
            if w <= 0.0 {
                return Err(err(l, "weight must be positive"));
            }
            w
        }
    };

    let mut job = match workload {
        Workload::Nic(op) => JobSpec::nic(op, bind),
        Workload::Ssd { .. } => JobSpec::ssd(write, bind),
    };
    job.workload = workload;
    job = job
        .numjobs(numjobs)
        .size_gbytes(size_gbytes)
        .mem_policy(mem_policy)
        .weight(weight);
    job.block_kib = block_kib;
    Ok(job)
}

/// Parse fio size suffixes into GBytes: `400g`, `128k`, `1m`, `2t`, plain
/// bytes.
fn parse_size_gbytes(s: &str) -> Option<f64> {
    let s = s.trim().to_lowercase();
    let (num, mult) = match s.chars().last()? {
        'k' => (&s[..s.len() - 1], 1.0 / (1024.0 * 1024.0)),
        'm' => (&s[..s.len() - 1], 1.0 / 1024.0),
        'g' => (&s[..s.len() - 1], 1.0),
        't' => (&s[..s.len() - 1], 1024.0),
        c if c.is_ascii_digit() => (s.as_str(), 1.0 / (1024.0 * 1024.0 * 1024.0)),
        _ => return None,
    };
    let v: f64 = num.trim().parse().ok()?;
    if v < 0.0 {
        return None;
    }
    Some(v * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_FILE: &str = r"
; Table III network test, 4 TCP senders on node 5
[global]
size=400g
bs=128k

[tcp-send-n5]
ioengine=net
rw=write
cpunodebind=5
numjobs=4
";

    #[test]
    fn parses_the_paper_job() {
        let jobs = parse(PAPER_FILE).unwrap();
        assert_eq!(jobs.len(), 1);
        let (name, job) = &jobs[0];
        assert_eq!(name, "tcp-send-n5");
        assert_eq!(job.workload, Workload::Nic(NicOp::TcpSend));
        assert_eq!(job.bind, NodeId(5));
        assert_eq!(job.numjobs, 4);
        assert_eq!(job.size_gbytes, 400.0);
        assert_eq!(job.block_kib, 128);
    }

    #[test]
    fn rdma_and_ssd_sections() {
        let text = r"
[rdma-read]
ioengine=rdma
verb=read
rw=read
cpunodebind=2
numjobs=2

[disk]
ioengine=libaio
iodepth=16
direct=1
rw=read
cpunodebind=6
size=20g
";
        let jobs = parse(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].1.workload, Workload::Nic(NicOp::RdmaRead));
        match &jobs[1].1.workload {
            Workload::Ssd { write, engine, direct } => {
                assert!(!write);
                assert_eq!(*engine, IoEngine::Libaio { iodepth: 16 });
                assert!(direct);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(jobs[1].1.size_gbytes, 20.0);
    }

    #[test]
    fn global_inheritance_and_override() {
        let text = r"
[global]
numjobs=8
cpunodebind=1

[a]
ioengine=net

[b]
ioengine=net
numjobs=2
";
        let jobs = parse(text).unwrap();
        assert_eq!(jobs[0].1.numjobs, 8);
        assert_eq!(jobs[1].1.numjobs, 2);
        assert_eq!(jobs[1].1.bind, NodeId(1));
    }

    #[test]
    fn membind_overrides_local_preference() {
        let text = "[j]\nioengine=rdma\nverb=write\ncpunodebind=6\nmembind=3\n";
        let jobs = parse(text).unwrap();
        assert_eq!(jobs[0].1.mem_policy, MemPolicy::Bind(NodeId(3)));
        assert_eq!(jobs[0].1.buffer_node(), NodeId(3));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n[j] ; trailing\nioengine=net ; tcp\ncpunodebind=0\n";
        assert_eq!(parse(text).unwrap().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("[j]\nioengine=floppy\ncpunodebind=0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("floppy"));

        let e = parse("[j]\nioengine=net\n").unwrap_err();
        assert!(e.message.contains("cpunodebind is required"));

        let e = parse("[j]\nnonsense-line\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("[j]\nioengine=net\ncpunodebind=0\nnumjobs=0\n").unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn weight_key_parses_and_validates() {
        let jobs =
            parse("[j]\nioengine=rdma\nverb=write\ncpunodebind=6\nweight=2.5\n").unwrap();
        assert_eq!(jobs[0].1.weight, 2.5);
        let e = parse("[j]\nioengine=net\ncpunodebind=0\nweight=-1\n").unwrap_err();
        assert!(e.message.contains("positive"));
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size_gbytes("400g"), Some(400.0));
        assert_eq!(parse_size_gbytes("1t"), Some(1024.0));
        assert_eq!(parse_size_gbytes("512m"), Some(0.5));
        assert!((parse_size_gbytes("128k").unwrap() - 128.0 / 1024.0 / 1024.0).abs() < 1e-12);
        assert_eq!(parse_size_gbytes("-3g"), None);
        assert_eq!(parse_size_gbytes("banana"), None);
    }

    #[test]
    fn parsed_jobs_run_on_the_simulator() {
        let fabric = numa_fabric::calibration::dl585_fabric();
        let text = "[j]\nioengine=rdma\nverb=write\ncpunodebind=3\nsize=5g\nnumjobs=2\n";
        let jobs: Vec<JobSpec> = parse(text).unwrap().into_iter().map(|(_, j)| j).collect();
        let report = crate::run_jobs(&fabric, &jobs).unwrap();
        // Node 3 RDMA_WRITE: the Table IV class-3 level.
        assert!((report.aggregate_gbps - 17.05).abs() < 0.1, "{}", report.aggregate_gbps);
    }
}
