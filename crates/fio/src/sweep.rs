//! Parameter sweeps: the stream-count x binding-node grids of Figs. 5–7.

use crate::job::{JobSpec, Workload};
use crate::runner::{run_jobs, FioError};
use numa_engine::JitterCfg;
use numa_fabric::Fabric;
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Binding node (CPU + local buffers, the paper's protocol).
    pub node: NodeId,
    /// Concurrent streams/processes.
    pub streams: u32,
    /// Aggregate bandwidth, Gbit/s.
    pub aggregate_gbps: f64,
}

/// Run a full sweep of one workload over `nodes x stream_counts`.
///
/// Jitter seeds mix in the node and stream count so that contention noise
/// differs across configurations (the paper: with 8–16 streams "sometimes
/// the performance of node 5 appears to be the best").
///
/// Grid points run in parallel ([`numa_par::map_indexed`]) — every point
/// is seeded purely from `(base_seed, node, streams)`, so the output is
/// byte-identical to the historical serial row-major loop, including
/// which error surfaces when several points fail (the first in row-major
/// order).
pub fn sweep(
    fabric: &Fabric,
    workload: &Workload,
    nodes: &[NodeId],
    stream_counts: &[u32],
    size_gbytes: f64,
    base_seed: u64,
) -> Result<Vec<SweepPoint>, FioError> {
    let grid: Vec<(NodeId, u32)> = nodes
        .iter()
        .flat_map(|&node| stream_counts.iter().map(move |&streams| (node, streams)))
        .collect();
    let points = numa_par::map_indexed(grid.len(), |k| {
        let (node, streams) = grid[k];
        let mut job = match workload {
            Workload::Nic(op) => JobSpec::nic(*op, node),
            Workload::Ssd { write, engine, direct } => {
                let mut j = JobSpec::ssd(*write, node);
                j.workload = Workload::Ssd { write: *write, engine: *engine, direct: *direct };
                j
            }
        }
        .numjobs(streams)
        .size_gbytes(size_gbytes);
        // Contention noise beyond the per-node core count, mild
        // measurement noise below it.
        let cores = fabric.topology().node(node).cores;
        let seed = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((u64::from(node.0) << 8) | u64::from(streams));
        job = job.jitter(if streams > cores {
            JitterCfg::contention(seed)
        } else {
            JitterCfg::measurement(seed)
        });
        let report = run_jobs(fabric, &[job])?;
        Ok(SweepPoint { node, streams, aggregate_gbps: report.aggregate_gbps })
    });
    points.into_iter().collect()
}

/// Extract one node's curve from sweep output (ordered by stream count).
pub fn curve(points: &[SweepPoint], node: NodeId) -> Vec<(u32, f64)> {
    let mut c: Vec<(u32, f64)> = points
        .iter()
        .filter(|p| p.node == node)
        .map(|p| (p.streams, p.aggregate_gbps))
        .collect();
    c.sort_by_key(|&(s, _)| s);
    c
}

/// Render a sweep as a text table: rows = stream counts, columns = nodes.
pub fn render_table(points: &[SweepPoint], nodes: &[NodeId], stream_counts: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:>8}", "streams");
    for n in nodes {
        let _ = write!(out, "{:>9}", format!("node{n}"));
    }
    let _ = writeln!(out);
    for &s in stream_counts {
        let _ = write!(out, "{s:>8}");
        for &n in nodes {
            let v = points
                .iter()
                .find(|p| p.node == n && p.streams == s)
                .map_or(f64::NAN, |p| p.aggregate_gbps);
            let _ = write!(out, "{v:>9.2}");
        }
        let _ = writeln!(out);
    }
    out
}

/// The node bindings the paper plots in Figs. 5–7 (a selection spanning
/// all classes).
pub fn paper_nodes() -> Vec<NodeId> {
    (0..8).map(NodeId).collect()
}

/// The stream counts of Fig. 5.
pub const PAPER_STREAM_COUNTS: [u32; 5] = [1, 2, 4, 8, 16];

#[cfg(test)]
mod tests {
    use super::*;
    use numa_fabric::calibration::dl585_fabric;
    use numa_iodev::NicOp;

    #[test]
    fn tcp_send_sweep_grows_until_four_streams() {
        let f = dl585_fabric();
        let pts = sweep(
            &f,
            &Workload::Nic(NicOp::TcpSend),
            &[NodeId(6)],
            &[1, 2, 4, 8],
            4.0,
            1,
        )
        .unwrap();
        let c = curve(&pts, NodeId(6));
        assert_eq!(c.len(), 4);
        assert!(c[1].1 > 1.8 * c[0].1, "2 streams nearly double: {c:?}");
        assert!(c[2].1 > 1.7 * c[1].1, "4 streams keep growing: {c:?}");
        // Saturation: 8 streams gain little over 4.
        assert!(c[3].1 < 1.15 * c[2].1, "{c:?}");
    }

    #[test]
    fn class3_nodes_saturate_lower() {
        let f = dl585_fabric();
        let pts = sweep(
            &f,
            &Workload::Nic(NicOp::TcpSend),
            &[NodeId(2), NodeId(5)],
            &[4],
            4.0,
            1,
        )
        .unwrap();
        let n2 = curve(&pts, NodeId(2))[0].1;
        let n5 = curve(&pts, NodeId(5))[0].1;
        assert!(n2 < 0.85 * n5, "{n2} vs {n5}");
    }

    #[test]
    fn heavy_contention_shuffles_orderings_sometimes() {
        // With 16 streams the class 1/2 gap (±few %) drowns in noise for
        // some seeds — reproducing the paper's "sometimes node 5 appears
        // to be the best".
        let f = dl585_fabric();
        let mut node5_won = false;
        for seed in 0..12 {
            let pts = sweep(
                &f,
                &Workload::Nic(NicOp::TcpSend),
                &[NodeId(5), NodeId(6)],
                &[16],
                4.0,
                seed,
            )
            .unwrap();
            let n5 = curve(&pts, NodeId(5))[0].1;
            let n6 = curve(&pts, NodeId(6))[0].1;
            if n5 > n6 {
                node5_won = true;
                break;
            }
        }
        assert!(node5_won, "node 5 should win under some contention seed");
    }

    #[test]
    fn render_table_is_complete() {
        let f = dl585_fabric();
        let nodes = [NodeId(0), NodeId(7)];
        let pts = sweep(&f, &Workload::Nic(NicOp::RdmaWrite), &nodes, &[1, 2], 2.0, 3).unwrap();
        let s = render_table(&pts, &nodes, &[1, 2]);
        assert!(s.contains("node0"));
        assert!(s.contains("node7"));
        assert_eq!(s.lines().count(), 3);
        assert!(!s.contains("NaN"));
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let f = dl585_fabric();
        let args = (&Workload::Nic(NicOp::RdmaRead), [NodeId(4)], [2u32], 2.0);
        let a = sweep(&f, args.0, &args.1, &args.2, args.3, 9).unwrap();
        let b = sweep(&f, args.0, &args.1, &args.2, args.3, 9).unwrap();
        assert_eq!(a, b);
    }
}
