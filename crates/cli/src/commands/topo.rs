//! `topo` and `sysfs`: structural machine description.

use crate::opts::Opts;
use numa_topology::{distance, render};
use std::fmt::Write as _;

pub(crate) fn cmd_topo(opts: &Opts) -> Result<String, String> {
    let topo = opts.preset()?;
    let mut out = String::new();
    if opts.flag("dot") {
        out.push_str(&render::render_dot(&topo));
        return Ok(out);
    }
    out.push_str(&render::render_tree(&topo));
    out.push_str("\nhop distances:\n");
    out.push_str(&render::render_matrix("from", "to", &distance::hop_matrix(&topo)));
    out.push_str("\nSLIT (ideal):\n");
    out.push_str(&render::render_matrix("from", "to", &distance::slit_matrix(&topo)));
    Ok(out)
}

/// Discover the machine from a Linux sysfs node directory (default
/// `/sys/devices/system/node`) — the hwloc role, honest about the SLIT's
/// limits.
pub(crate) fn cmd_sysfs(opts: &Opts) -> Result<String, String> {
    let root = opts.get("root").unwrap_or("/sys/devices/system/node");
    let d = numa_topology::sysfs::discover_from_root(std::path::Path::new(root), &[])
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "discovered from {root}:");
    out.push_str(&render::render_tree(&d.topology));
    let _ = writeln!(out, "\nfirmware SLIT:");
    out.push_str(&render::render_matrix("from", "to", &d.slit));
    if d.slit_was_flat {
        let _ = writeln!(
            out,
            "\nWARNING: flat SLIT — firmware reports one distance for every\n\
             remote node (the 'often inaccurate' case, ref [18]); the link\n\
             graph below is a full mesh because nothing better is knowable.\n\
             Run the memcpy methodology to recover the real structure."
        );
    } else {
        let _ = writeln!(
            out,
            "\nnote: links are SLIT-tier approximations; real wiring is not\n\
             exposed by sysfs (the paper's hwloc observation, §II-B)."
        );
    }
    Ok(out)
}
