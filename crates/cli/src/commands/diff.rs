//! `diff`: drift detection between two persisted models.

use crate::opts::Opts;
use std::fmt::Write as _;

pub(crate) fn cmd_diff(opts: &Opts) -> Result<String, String> {
    let a = opts.get("old").ok_or("--old <model.json> required")?;
    let b = opts.get("new").ok_or("--new <model.json> required")?;
    let tolerance: f64 = opts.num("tolerance", 0.05)?;
    let read = |p: &str| -> Result<numio_core::IoPerfModel, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        numio_core::IoPerfModel::from_json(&text).map_err(|e| format!("{p}: {e}"))
    };
    let old = read(a)?;
    let new = read(b)?;
    let d = numio_core::diff_models(&old, &new).map_err(|e| e.to_string())?;
    let mut out = d.render();
    let _ = writeln!(
        out,
        "verdict: {}",
        if d.is_stable(tolerance) { "STABLE (model still valid)" } else { "DRIFTED (re-characterize)" }
    );
    Ok(out)
}
