//! `iomodel faults <demo|validate|run>` — the fault-injection subsystem.

use crate::backend;
use crate::opts::Opts;

/// Parse a fault plan JSON file into a validated [`numa_faults::FaultPlan`].
pub(crate) fn load_fault_plan(path: &str) -> Result<numa_faults::FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    numa_faults::FaultPlan::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// * `demo [--seed N] [--check]` — run the canonical seeded scenario
///   (link throttle on the 6->7 hop plus an IRQ storm on node 7) against
///   the Table IV workload; `--check` asserts the run degrades and is
///   deterministic, printing one OK line (the CI smoke test).
/// * `validate --plan p.json` — parse and validate a plan file.
/// * `run --plan p.json [--seed N]` — run an explicit plan file against
///   the demo workload.
pub(crate) fn cmd_faults(args: &[String], obs: &numa_obs::Obs) -> Result<String, String> {
    let (action, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (a.as_str(), &args[1..]),
        _ => ("demo", args),
    };
    let opts = Opts::parse(rest)?;
    let fabric = backend::fabric_for(&opts)?;
    match action {
        "demo" => {
            let seed: u64 = opts.num("seed", 42)?;
            let report =
                numa_faults::run_demo(&fabric, seed, Some(obs)).map_err(|e| e.to_string())?;
            if opts.flag("check") {
                let again =
                    numa_faults::run_demo(&fabric, seed, None).map_err(|e| e.to_string())?;
                if again.render() != report.render() {
                    return Err("fault demo is not deterministic across runs".into());
                }
                if report.degradation() <= 0.0 {
                    return Err("fault demo produced no degradation".into());
                }
                Ok(format!(
                    "fault demo OK: seed {seed}, {:.1}% aggregate degradation, deterministic\n",
                    100.0 * report.degradation()
                ))
            } else {
                Ok(report.render())
            }
        }
        "validate" => {
            let path = opts.get("plan").ok_or("--plan <plan.json> required")?;
            let plan = load_fault_plan(path)?;
            Ok(format!("{path}: OK ({} faults, seed {})\n", plan.faults.len(), plan.seed))
        }
        "run" => {
            let path = opts.get("plan").ok_or("--plan <plan.json> required")?;
            let plan = load_fault_plan(path)?;
            let report =
                numa_faults::run_plan(&fabric, &plan, Some(obs)).map_err(|e| e.to_string())?;
            Ok(report.render())
        }
        other => Err(format!("faults: unknown action '{other}' (want demo|validate|run)")),
    }
}
