//! Job execution: `run` (fio-style jobfile, optional fault plan) and
//! `sweep` (the paper's stream-count sweep).

use crate::backend;
use crate::opts::Opts;
use numa_fio::{sweep as fio_sweep, Workload};
use std::fmt::Write as _;

pub(crate) fn cmd_run(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let path = opts.get("jobfile").ok_or("--jobfile <path> required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let named = numa_fio::parse_jobfile(&text).map_err(|e| e.to_string())?;
    if named.is_empty() {
        return Err("job file defines no jobs".into());
    }
    let jobs: Vec<numa_fio::JobSpec> = named.iter().map(|(_, j)| j.clone()).collect();
    let fabric = backend::fabric_for(opts)?;
    let report = if let Some(plan_path) = opts.get("faults") {
        // Arm the fault plan between lowering and running, then fold the
        // raw simulator output into the standard per-job report.
        let plan = super::faults::load_fault_plan(plan_path)?;
        let (sim, flow_job) = numa_fio::build_sim(&fabric, &jobs).map_err(|e| e.to_string())?;
        let raw = numa_engine::Scenario::from_simulation(sim)
            .observe(obs.clone())
            .faults(plan)
            .run()
            .map_err(|e| e.to_string())?;
        numa_fio::assemble_report(&jobs, raw, &flow_job)
    } else {
        numa_fio::run_jobs_scenario(&fabric, &jobs, obs).map_err(|e| e.to_string())?
    };
    let mut out = String::new();
    for ((name, _), jr) in named.iter().zip(&report.jobs) {
        let _ = writeln!(
            out,
            "{name}: {} -> {:.2} Gbit/s aggregate ({} streams, {:.1}s)",
            jr.describe,
            jr.aggregate_gbps,
            jr.per_stream_gbps.len(),
            jr.makespan_s
        );
    }
    let _ = writeln!(
        out,
        "TOTAL: {:.2} Gbit/s over {:.1}s",
        report.aggregate_gbps, report.makespan_s
    );
    Ok(out)
}

pub(crate) fn cmd_sweep(opts: &Opts) -> Result<String, String> {
    let op = opts.nic_op()?;
    let size: f64 = opts.num("size", 4.0)?;
    let seed: u64 = opts.num("seed", 42)?;
    let streams: Vec<u32> = match opts.get("streams") {
        None => vec![1, 2, 4, 8, 16],
        Some(s) => s
            .split(',')
            .map(|x| x.parse::<u32>().map_err(|_| format!("bad stream count '{x}'")))
            .collect::<Result<_, _>>()?,
    };
    let fabric = backend::fabric_for(opts)?;
    let nodes = fio_sweep::paper_nodes();
    let points = fio_sweep::sweep(&fabric, &Workload::Nic(op), &nodes, &streams, size, seed)
        .map_err(|e| e.to_string())?;
    let mut out = format!("{op:?} aggregate bandwidth (Gbit/s):\n");
    out.push_str(&fio_sweep::render_table(&points, &nodes, &streams));
    Ok(out)
}
