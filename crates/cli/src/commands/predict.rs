//! `predict` (Eq. 1 aggregate prediction vs measurement) and `advise`
//! (model-driven placement advice).

use crate::backend;
use crate::opts::Opts;
use numa_fio::JobSpec;
use numa_iodev::NicModel;
use numa_topology::NodeId;
use numio_core::{predict_aggregate, IoModeler, ScheduleAdvisor, TransferMode};
use std::fmt::Write as _;

pub(crate) fn cmd_predict(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let op = opts.nic_op()?;
    let mix_str = opts.get("mix").ok_or("--mix node:count,node:count required")?;
    let mut mix: Vec<(NodeId, u32)> = Vec::new();
    for part in mix_str.split(',') {
        let (n, c) = part
            .split_once(':')
            .ok_or_else(|| format!("bad mix entry '{part}' (want node:count)"))?;
        let node: u16 = n.parse().map_err(|_| format!("bad node '{n}'"))?;
        let count: u32 = c.parse().map_err(|_| format!("bad count '{c}'"))?;
        mix.push((NodeId(node), count));
    }
    if mix.is_empty() {
        return Err("--mix must contain at least one node:count".into());
    }

    let platform = backend::platform_for(opts)?;
    let mode = if op.to_device() { TransferMode::Write } else { TransferMode::Read };
    let model = IoModeler::new()
        .try_characterize(&platform, target, mode)
        .map_err(|e| e.to_string())?;
    let nic = NicModel::paper();
    let total: u32 = mix.iter().map(|(_, c)| *c).sum();
    let terms: Vec<(f64, f64)> = mix
        .iter()
        .map(|&(node, count)| {
            let class = &model.classes()[model.class_of(node)];
            (nic.map(op).eval(class.avg_gbps), count as f64 / total as f64)
        })
        .collect();
    let predicted = predict_aggregate(&terms);

    let jobs: Vec<JobSpec> = mix
        .iter()
        .map(|&(node, count)| JobSpec::nic(op, node).numjobs(count).size_gbytes(50.0))
        .collect();
    let measured = numa_backend::run_jobs(&platform, &jobs)
        .map_err(|e| e.to_string())?
        .aggregate_gbps;
    let err = numio_core::relative_error(predicted, measured);
    let mut out = String::new();
    let _ = writeln!(out, "workload: {op:?} mix {mix_str} against node {target}");
    for (i, ((bw, share), (node, count))) in terms.iter().zip(&mix).enumerate() {
        let _ = writeln!(
            out,
            "  term {i}: node {node} x{count} -> class {} @ {bw:.3} Gbps, share {share:.2}",
            model.class_of(*node) + 1
        );
    }
    let _ = writeln!(out, "predicted (Eq.1): {predicted:.3} Gbps");
    let _ = writeln!(out, "measured  (sim) : {measured:.3} Gbps");
    let _ = writeln!(out, "relative error  : {:.1}%", err * 100.0);
    Ok(out)
}

pub(crate) fn cmd_advise(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let tasks: usize = opts.num("tasks", 8)?;
    let tolerance: f64 = opts.num("tolerance", 0.15)?;
    let mode = opts.mode()?;
    let platform = backend::platform_for(opts)?;
    let model = IoModeler::new()
        .try_characterize(&platform, target, mode)
        .map_err(|e| e.to_string())?;
    let advisor = ScheduleAdvisor { equivalence_tolerance: tolerance, avoid_irq_node: true };
    let placement = advisor.place(&model, tasks);
    let naive = advisor.naive_local(&model, tasks);
    let mut out = String::new();
    let _ = writeln!(out, "model classes:");
    for (i, c) in model.classes().iter().enumerate() {
        let nodes: Vec<String> = c.nodes.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(out, "  class {}: {{{}}} avg {:.1}", i + 1, nodes.join(","), c.avg_gbps);
    }
    let _ = writeln!(out, "eligible nodes: {:?}", advisor.eligible_nodes(&model));
    let _ = writeln!(out, "advised placement ({tasks} tasks): {:?}", placement.histogram());
    let _ = writeln!(out, "naive local placement:             {:?}", naive.histogram());
    let _ = writeln!(
        out,
        "max per-node load: advised {} vs naive {}",
        placement.max_load(),
        naive.max_load()
    );
    Ok(out)
}
