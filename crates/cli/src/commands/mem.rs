//! Memory-subsystem demonstrations: `stream`, `numastat`, `numademo`,
//! `latency`.

use crate::backend;
use crate::opts::Opts;
use numa_memsys::{MemPolicy, MemoryState, StreamBench};
use numa_topology::{presets, render, NodeId};
use std::fmt::Write as _;

pub(crate) fn cmd_stream(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let fabric = backend::fabric_for(opts)?;
    let bench = StreamBench::paper();
    let mut out = String::new();
    let _ = writeln!(out, "STREAM Copy, 4 threads, max of 100 runs (Gbit/s):");
    out.push_str(&render::render_bw_matrix("cpu", "mem", &bench.matrix(&fabric)));
    let _ = writeln!(out, "\nCPU-centric model of node {target} (threads on {target}):");
    for (i, v) in bench.cpu_centric(&fabric, target).iter().enumerate() {
        let _ = writeln!(out, "  mem {i}: {v:.2}");
    }
    let _ = writeln!(out, "\nMemory-centric model of node {target} (data on {target}):");
    for (i, v) in bench.mem_centric(&fabric, target).iter().enumerate() {
        let _ = writeln!(out, "  cpu {i}: {v:.2}");
    }
    Ok(out)
}

pub(crate) fn cmd_numastat(_opts: &Opts) -> Result<String, String> {
    let topo = presets::dl585_testbed();
    let mut mem = MemoryState::dl585_idle(&topo);
    // Reproduce the paper's §IV-A demonstration: an idle system already
    // shows node 0 drained, then a local-preferred allocation spills.
    let mut out = String::new();
    out.push_str("numactl --hardware (idle system):\n");
    out.push_str(&mem.render_hardware());
    let _ = mem
        .allocate(NodeId(0), &MemPolicy::LocalPreferred, 2000)
        .map_err(|e| e.to_string())?;
    out.push_str("\nafter a 2000 MiB local-preferred allocation on node 0:\n");
    out.push_str(&mem.render_hardware());
    out.push_str("\nnumastat:\n");
    out.push_str(&mem.stats().render());
    Ok(out)
}

pub(crate) fn cmd_numademo(opts: &Opts) -> Result<String, String> {
    let cpu = opts.node("cpu", 0)?;
    let remote = opts.node("remote", 7)?;
    let fabric = backend::fabric_for(opts)?;
    let results = numa_memsys::numademo::run_all(&fabric, cpu, remote);
    let mut out = format!(
        "numademo work-alike: threads on node {cpu}, remote = node {remote} (Gbit/s)\n"
    );
    out.push_str(&numa_memsys::numademo::render(&results));
    Ok(out)
}

pub(crate) fn cmd_latency(opts: &Opts) -> Result<String, String> {
    let cpu = opts.node("cpu", 0)?;
    let topo = presets::dl585_testbed();
    let bench = numa_memsys::LatencyBench::paper();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pointer-chase latency staircase (lat_mem_rd style), threads on node {cpu}:"
    );
    let _ = writeln!(out, "{:>12} {:>12} {:>12} {:>12}", "working set", "local", "neighbour", "remote(n4)");
    let neighbour = NodeId(cpu.0 ^ 1);
    for point in bench.curve(&topo, cpu, cpu, 256 << 20) {
        let nb = bench.latency_ns(&topo, cpu, neighbour, point.bytes);
        let far = bench.latency_ns(&topo, cpu, NodeId(4), point.bytes);
        let label = if point.bytes >= 1 << 20 {
            format!("{} MiB", point.bytes >> 20)
        } else {
            format!("{} KiB", point.bytes >> 10)
        };
        let _ = writeln!(out, "{label:>12} {:>10.1}ns {nb:>10.1}ns {far:>10.1}ns", point.ns);
    }
    let _ = writeln!(
        out,
        "
measured NUMA factor (DRAM plateaus): {:.2} (Table I row 2: 2.7)",
        bench.measured_numa_factor(&topo)
    );
    Ok(out)
}
