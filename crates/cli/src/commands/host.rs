//! Real-host measurement: `host` (a live characterization), `probe`
//! (one raw memcpy probe for `numactl` scripting), `emit-script`, and
//! `import` (CSV -> model).

use crate::opts::Opts;
use numa_topology::{presets, NodeId};
use numio_core::{render_model, HostPlatform, IoModeler, Platform, TransferMode};
use std::fmt::Write as _;

pub(crate) fn cmd_host(opts: &Opts) -> Result<String, String> {
    let nodes: usize = opts.num("nodes", 4)?;
    let reps: u32 = opts.num("reps", 5)?;
    let platform = HostPlatform::new(nodes);
    let topo = match nodes {
        8 => presets::amd_4s8n(),
        4 => presets::intel_4s4n(),
        n => {
            return Err(format!(
                "--nodes must be 4 or 8 for the built-in topologies, got {n}"
            ))
        }
    };
    let modeler = IoModeler {
        reps,
        bytes_per_thread: 16 << 20,
        threads: Some(platform.cores_per_node(NodeId(0))),
        ..IoModeler::new()
    };
    let model = modeler
        .try_characterize_with_topo(&platform, &topo, NodeId(0), TransferMode::Write)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "real-host memcpy probe (no pinning; run under numactl on a NUMA box):"
    );
    out.push_str(&render_model(&model));
    Ok(out)
}

/// One raw memcpy probe, intended to run under `numactl` on a real NUMA
/// host (see `emit-script`). Prints a CSV line: `node,gbps` per repetition.
pub(crate) fn cmd_probe(opts: &Opts) -> Result<String, String> {
    let node: u16 = opts.num("node", 0)?;
    let threads: u32 = opts.num("threads", 4)?;
    let reps: u32 = opts.num("reps", 20)?;
    let mib: u64 = opts.num("mib", 64)?;
    let platform = HostPlatform::with_shape(1, threads);
    let samples = platform
        .try_run_copy(&numio_core::CopySpec {
            bind: NodeId(0),
            src: NodeId(0),
            dst: NodeId(0),
            threads,
            bytes_per_thread: mib << 20,
            reps,
        })
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    for s in samples {
        let _ = writeln!(out, "{node},{s:.4}");
    }
    Ok(out)
}

/// Emit a shell script that reproduces Algorithm 1 on a real NUMA host by
/// wrapping `iomodel probe` in `numactl`. Single `--membind` per probe is
/// the standard approximation without libnuma: it measures the node-i <->
/// node-k path component (both buffers on i, copiers on k). Collect the
/// CSV and feed it back through `iomodel import`.
pub(crate) fn cmd_emit_script(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let nodes: usize = opts.num("nodes", 8)?;
    let reps: u32 = opts.num("reps", 20)?;
    let mut out = String::new();
    let _ = writeln!(out, "#!/bin/sh");
    let _ = writeln!(out, "# Algorithm 1 probes for target node {target} on a real NUMA host.");
    let _ = writeln!(out, "# Requires numactl and the iomodel binary on PATH.");
    let _ = writeln!(out, "set -e");
    let _ = writeln!(out, "OUT=iomodel_probes.csv");
    let _ = writeln!(out, ": > \"$OUT\"");
    for i in 0..nodes {
        let _ = writeln!(
            out,
            "numactl --cpunodebind={target} --membind={i} \\\n  iomodel probe --node {i} --reps {reps} >> \"$OUT\""
        );
    }
    let _ = writeln!(
        out,
        "echo \"done; build the model with: iomodel import --csv $OUT --target {target} --mode write\""
    );
    Ok(out)
}

/// Build a performance model from probe CSV (`node,gbps` lines, multiple
/// samples per node) and print/persist it.
pub(crate) fn cmd_import(opts: &Opts) -> Result<String, String> {
    let path = opts.get("csv").ok_or("--csv <file> required")?;
    let target = opts.node("target", 7)?;
    let mode = opts.mode()?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let topo = presets::dl585_testbed();
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); topo.num_nodes()];
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (n, v) = line
            .split_once(',')
            .ok_or_else(|| format!("{path}:{}: expected node,gbps", lineno + 1))?;
        let n: usize = n.trim().parse().map_err(|_| format!("{path}:{}: bad node", lineno + 1))?;
        let v: f64 = v.trim().parse().map_err(|_| format!("{path}:{}: bad gbps", lineno + 1))?;
        if n >= samples.len() {
            return Err(format!("{path}:{}: node {n} out of range", lineno + 1));
        }
        samples[n].push(v);
    }
    if samples.iter().any(|s| s.is_empty()) {
        let missing: Vec<usize> =
            samples.iter().enumerate().filter(|(_, s)| s.is_empty()).map(|(i, _)| i).collect();
        return Err(format!("no samples for nodes {missing:?}"));
    }
    let per_node: Vec<numa_engine::Summary> =
        samples.iter().map(|s| numa_engine::Summary::from(s)).collect();
    let means: Vec<f64> = per_node.iter().map(|s| s.mean).collect();
    let classes = numio_core::classify(
        &topo,
        target,
        &means,
        numio_core::ClassifyParams::default(),
    );
    let model = numio_core::IoPerfModel::new(
        target,
        mode,
        per_node,
        classes,
        format!("imported:{path}"),
    );
    if opts.flag("json") {
        Ok(model.to_json())
    } else {
        Ok(render_model(&model))
    }
}
