//! `netpath`: end-to-end two-host NIC path bandwidth matrix.

use crate::backend;
use crate::opts::Opts;
use std::fmt::Write as _;

pub(crate) fn cmd_netpath(opts: &Opts) -> Result<String, String> {
    let op = opts.nic_op()?;
    let rtt: f64 = opts.num("rtt", 0.005)?;
    let local = backend::fabric_for(opts)?;
    let remote = local.clone();
    let mut path = numa_iodev::TwoHostPath::paper();
    path.rtt_ms = rtt;
    let m = path.matrix(op, &local, &remote);
    let mut out = format!(
        "end-to-end {op:?} between two testbed hosts (RTT {rtt} ms), Gbit/s:\n"
    );
    let _ = write!(out, "{:>8}", "tx\\rx");
    for r in 0..8 {
        let _ = write!(out, "{r:>8}");
    }
    let _ = writeln!(out);
    for (l, row) in m.iter().enumerate() {
        let _ = write!(out, "{l:>8}");
        for v in row {
            let _ = write!(out, "{v:>8.2}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "window/RTT cap: {:.2} Gbit/s", path.window_cap_gbps());
    Ok(out)
}
