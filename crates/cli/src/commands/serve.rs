//! `iomodel serve` / `iomodel client` — the long-running prediction
//! service over any measurement backend, plus its scripted smoke client.

use crate::backend;
use crate::opts::Opts;
use numa_serve::{Client, ModelService, Request, Response};
use numio_core::IoModeler;
use std::fmt::Write as _;
use std::sync::Arc;

/// Default service port (no registered meaning; stays out of the
/// well-known range).
const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// `iomodel serve --backend <spec> --addr <host:port>`: bind, announce,
/// and block until a wire-side `{"op":"shutdown"}` stops the server.
///
/// `--reps N` sets the characterization probe count (default 100, the
/// same plan `iomodel record` captures, so replay fixtures line up);
/// `--drift-threshold F` tunes cache eviction; `--port-file <path>`
/// writes the actually-bound address (useful with `--addr host:0`);
/// `--flight-recorder-size N` bounds the post-mortem event ring dumped
/// by the `dump` op; `--max-connections N` refuses connections over the
/// limit with a typed overload reply (0 = unlimited, the default);
/// `--workers N` sizes the worker pool multiplexing connections (0 =
/// `min(cores, 8)`, the default) and `--queue-depth N` caps the
/// registered connections per worker (0 = 128, the default) — past
/// `workers x queue-depth` live connections the server answers with the
/// same typed overload reply instead of growing threads.
pub(crate) fn cmd_serve(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let addr = opts.get("addr").unwrap_or(DEFAULT_ADDR).to_string();
    let reps: u32 = opts.num("reps", 100)?;
    let threshold: f64 = opts.num("drift-threshold", numa_serve::DEFAULT_DRIFT_THRESHOLD)?;
    let flight: usize = opts.num("flight-recorder-size", numa_obs::DEFAULT_FLIGHT_CAPACITY)?;
    let max_connections: usize = opts.num("max-connections", 0)?;
    let workers: usize = opts.num("workers", 0)?;
    let queue_depth: usize = opts.num("queue-depth", 0)?;
    let platform = backend::platform_for(opts)?;
    let label = numio_core::Platform::label(&platform);
    let service = Arc::new(
        ModelService::new(platform)
            .with_modeler(IoModeler::new().reps(reps))
            .with_drift_threshold(threshold)
            .with_flight_capacity(flight)
            .with_obs(obs),
    );
    let server = numa_serve::spawn_with(
        service,
        &addr,
        numa_serve::ServeConfig {
            max_connections,
            workers,
            queue_depth,
        },
    )
    .map_err(|e| format!("serve: {e}"))?;
    let bound = server.addr();
    let pool = server.workers();
    if let Some(path) = opts.get("port-file") {
        std::fs::write(path, bound.to_string()).map_err(|e| format!("--port-file {path}: {e}"))?;
    }
    // Announce before blocking so a foreground user sees liveness; the
    // final summary only prints after shutdown.
    println!(
        "iomodel serve: listening on {bound} (backend {label}, reps {reps}, {pool} workers)"
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    Ok(format!("iomodel serve: {bound} shut down"))
}

/// `iomodel client --addr <host:port>`: scripted smoke requests.
///
/// Default script pings and prints stats. `--check` gates the answers:
/// a Table-IV-consistent `classify` (node 2 in the starved class {2,3}
/// of 3), a repeated `predict` answered bit-identically with the second
/// reply a cache hit, and a hit count ≥ 1 in `stats`. `--stats` renders
/// a one-shot health view (requests, errors, cache counters, latency
/// percentiles); `--dump` prints the server's flight-recorder events
/// (or the frozen incident snapshot); `--batch N` sends one
/// `predict_batch` of N deterministic mixes and gates it bit-exactly
/// against the same N mixes as sequential predicts. `--shutdown` stops
/// the server afterwards.
pub(crate) fn cmd_client(opts: &Opts) -> Result<String, String> {
    let addr = opts.get("addr").unwrap_or(DEFAULT_ADDR);
    let batch: usize = opts.num("batch", 0)?;
    let mut client = connect_with_retry(addr)?;
    let mut out = String::new();
    if opts.flag("check") {
        run_check(&mut client, &mut out)?;
    } else if batch > 0 {
        run_batch(&mut client, batch, &mut out)?;
    } else if opts.flag("stats") || opts.flag("dump") {
        if opts.flag("stats") {
            render_health(&mut client, &mut out)?;
        }
        if opts.flag("dump") {
            render_dump(&mut client, &mut out)?;
        }
    } else {
        let pong = client.call(&Request::Ping).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "ping -> {pong:?}");
        let stats = client.call(&Request::Stats).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "stats -> {stats:?}");
    }
    if opts.flag("shutdown") {
        match client.call(&Request::Shutdown).map_err(|e| e.to_string())? {
            Response::ShuttingDown => {
                let _ = writeln!(out, "server shutting down");
            }
            other => return Err(format!("shutdown refused: {other:?}")),
        }
    }
    Ok(out)
}

/// One-shot health view from a single `stats` round trip — no Prometheus
/// scrape needed.
fn render_health(client: &mut Client, out: &mut String) -> Result<(), String> {
    let resp = client.call(&Request::Stats).map_err(|e| e.to_string())?;
    let Response::Stats {
        requests,
        invalid,
        errors,
        hits,
        misses,
        invalidations,
        entries,
        series,
        backend,
        active_faults,
        latency,
        shards,
    } = resp
    else {
        return Err(format!("stats failed: {resp:?}"));
    };
    let _ = writeln!(out, "backend          {backend}");
    let _ = writeln!(
        out,
        "requests         {requests} ({invalid} invalid, {errors} errors)"
    );
    let _ = writeln!(
        out,
        "cache            {hits} hits / {misses} misses / {invalidations} invalidations, \
         {entries} views cached"
    );
    let _ = writeln!(out, "metric series    {series}");
    let _ = writeln!(out, "active faults    {active_faults}");
    let _ = writeln!(
        out,
        "latency          n={} mean {:.1} us, p50 {:.1} us, p90 {:.1} us, p99 {:.1} us",
        latency.count,
        latency.mean_s * 1e6,
        latency.p50_s * 1e6,
        latency.p90_s * 1e6,
        latency.p99_s * 1e6,
    );
    // Per-host cache shards: shard 0 is the server's own backend, shard
    // i+1 is generated fleet host i (populated by `fleet_place`). Old
    // servers send no shard block; print nothing rather than zeros.
    for s in &shards {
        let who = if s.host == 0 {
            "local".to_string()
        } else {
            format!("host {:02}", s.host - 1)
        };
        let _ = writeln!(
            out,
            "cache shard {who:<8} {} hits / {} misses / {} invalidations",
            s.hits, s.misses, s.invalidations
        );
    }
    Ok(())
}

/// Print the server's flight-recorder events (incident snapshot first
/// when one is frozen).
fn render_dump(client: &mut Client, out: &mut String) -> Result<(), String> {
    let resp = client.call(&Request::Dump).map_err(|e| e.to_string())?;
    let Response::Dump { reason, events } = resp else {
        return Err(format!("dump failed: {resp:?}"));
    };
    match &reason {
        Some(r) => {
            let _ = writeln!(out, "incident: {r} ({} events at capture)", events.len());
        }
        None => {
            let _ = writeln!(
                out,
                "flight recorder: {} recent events (no incident)",
                events.len()
            );
        }
    }
    for line in &events {
        let _ = writeln!(out, "{line}");
    }
    Ok(())
}

/// The served answers change with the backend's machine, but the CI smoke
/// runs against the DL585 fixture — so the gate checks the paper's
/// Table IV partition exactly.
fn run_check(client: &mut Client, out: &mut String) -> Result<(), String> {
    // 1. Table-IV-consistent classify: node 2 sits in the starved class
    //    {2,3}, the third of three write classes.
    let classify = Request::Classify {
        device: None,
        node: 2,
        target: 7,
        mode: numa_serve::WireMode::Write,
    };
    match client.call(&classify).map_err(|e| e.to_string())? {
        Response::Classify {
            class,
            classes,
            class_nodes,
            ..
        } => {
            if classes != 3 || class != 2 || class_nodes != vec![2, 3] {
                return Err(format!(
                    "classify drifted from Table IV: class {class} of {classes}, \
                     nodes {class_nodes:?} (want class 2 of 3, nodes [2, 3])"
                ));
            }
            let _ = writeln!(out, "classify OK: node 2 in class 3/3 {{2,3}} (Table IV)");
        }
        other => return Err(format!("classify failed: {other:?}")),
    }
    // 2. Repeated predict: bit-identical lines, second reply a cache hit.
    let predict = numa_serve::encode(&Request::Predict {
        device: None,
        target: 7,
        mode: numa_serve::WireMode::Write,
        mix: vec![(6, 1), (2, 1)],
    })
    .map_err(|e| e.to_string())?;
    let first = client.call_raw(&predict).map_err(|e| e.to_string())?;
    let second = client.call_raw(&predict).map_err(|e| e.to_string())?;
    if first != second {
        return Err(format!(
            "repeated predict not bit-identical:\n  {first}\n  {second}"
        ));
    }
    match numa_serve::decode_response(&second).map_err(|e| e.to_string())? {
        Response::Predict {
            cached: true,
            predicted_gbps,
            ..
        } => {
            let _ = writeln!(
                out,
                "predict OK: {predicted_gbps:.3} Gbit/s, bit-identical, second request a cache hit"
            );
        }
        other => return Err(format!("second predict was not a cache hit: {other:?}")),
    }
    // 3. The hit is visible in the counters.
    match client.call(&Request::Stats).map_err(|e| e.to_string())? {
        Response::Stats { hits, misses, .. } if hits >= 1 => {
            let _ = writeln!(out, "stats OK: {hits} hits / {misses} misses");
        }
        other => return Err(format!("stats show no cache hit: {other:?}")),
    }
    let _ = writeln!(out, "serve check OK");
    Ok(())
}

/// `--batch N`: one `predict_batch` of N deterministic mixes answered in
/// a single round trip, gated bit-exactly against the same N mixes as
/// sequential `predict`s — the wire-level proof that batching changes
/// throughput, never answers.
fn run_batch(client: &mut Client, n: usize, out: &mut String) -> Result<(), String> {
    let mut state = 0x00c0_ffee_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mixes: Vec<Vec<(u16, u32)>> = (0..n)
        .map(|_| {
            let entries = 1 + (next() % 3) as usize;
            let mut mix: Vec<(u16, u32)> = (0..entries)
                .map(|_| ((next() % 8) as u16, 1 + (next() % 4) as u32))
                .collect();
            mix.sort();
            mix.dedup_by_key(|e| e.0);
            mix
        })
        .collect();
    let mode = numa_serve::WireMode::Write;
    let batched = client
        .predict_batch(7, mode, &mixes)
        .map_err(|e| e.to_string())?;
    if batched.len() != n {
        return Err(format!(
            "predict_batch answered {} mixes, sent {n}",
            batched.len()
        ));
    }
    for (i, mix) in mixes.iter().enumerate() {
        let req = Request::Predict {
            device: None,
            target: 7,
            mode,
            mix: mix.clone(),
        };
        match client.call(&req).map_err(|e| e.to_string())? {
            Response::Predict { predicted_gbps, .. } => {
                if predicted_gbps.to_bits() != batched[i].to_bits() {
                    return Err(format!(
                        "mix {i}: batch said {} Gbit/s, sequential said {} — must be bit-identical",
                        batched[i], predicted_gbps
                    ));
                }
            }
            other => return Err(format!("sequential predict {i} failed: {other:?}")),
        }
    }
    let _ = writeln!(
        out,
        "predict_batch OK: {n} mixes in one round trip, bit-identical to sequential predicts"
    );
    Ok(())
}

/// The server may still be binding when a scripted client starts (CI
/// backgrounds `iomodel serve`); retry briefly before giving up.
fn connect_with_retry(addr: &str) -> Result<Client, String> {
    let mut last = String::new();
    for _ in 0..25 {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    Err(format!("client: cannot connect to {addr}: {last}"))
}
