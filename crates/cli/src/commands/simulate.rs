//! `simulate`: run a generated workload through the engine's unified
//! [`Scenario`](numa_engine::Scenario) builder and report FCT statistics.

use crate::backend;
use crate::opts::Opts;
use numa_engine::{Scenario, Workload};
use std::fmt::Write as _;

pub(crate) fn cmd_simulate(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let spec = opts.get("workload").ok_or(
        "--workload <spec> required, e.g. poisson:n=1000,rate=200,seed=42 \
         | pareto:n=500,alpha=1.5 | batch:n=16",
    )?;
    let workload = Workload::parse(spec)?;
    let fabric = backend::fabric_for(opts)?;
    let run = || {
        Scenario::on(&fabric)
            .workload(workload.clone())
            .observe(obs.clone())
            .run()
            .map_err(|e| e.to_string())
    };
    let report = run()?;
    let digest = report.fct_digest();

    if opts.flag("check") {
        // The CI smoke gate: the same seeded workload must reproduce the
        // identical flow-completion-time vector, bit for bit.
        let again = run()?;
        if again.fct_digest() != digest {
            return Err(format!(
                "simulate check FAILED: fct digest {:016x} != {digest:016x}",
                again.fct_digest()
            ));
        }
        return Ok(format!(
            "simulate check OK: {} flows, fct digest {digest:016x} bit-identical across reruns\n",
            report.flows.len()
        ));
    }

    let stats = report.fct_stats();
    let mut out = String::new();
    let _ = writeln!(out, "workload {spec} on {}:", fabric.topology().name());
    let _ = writeln!(
        out,
        "  {} flows over {:.3}s, aggregate {:.2} Gbit/s",
        report.flows.len(),
        report.makespan_s,
        report.aggregate_gbps
    );
    let _ = writeln!(out, "  {}", stats.render());
    let _ = writeln!(out, "  fct digest: {digest:016x}");
    Ok(out)
}
