//! One module per subcommand family; all share [`crate::backend`] for
//! measurement-backend construction and [`crate::opts::Opts`] for parsing.

pub(crate) mod characterize;
pub(crate) mod diff;
pub(crate) mod faults;
pub(crate) mod fleet;
pub(crate) mod host;
pub(crate) mod jobs;
pub(crate) mod mem;
pub(crate) mod netpath;
pub(crate) mod predict;
pub(crate) mod sched;
pub(crate) mod serve;
pub(crate) mod simulate;
pub(crate) mod topo;
