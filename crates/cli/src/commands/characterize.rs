//! The characterization family: `characterize`, `classes`, `atlas`, and
//! the fixture-producing `record`. All run over the backend selected by
//! the global `--backend` flag.

use crate::backend;
use crate::opts::Opts;
use numa_backend::RecordingPlatform;
use numa_iodev::{NicModel, NicOp};
use numa_topology::NodeId;
use numio_core::{
    characterize_storage, render_comparison_table, render_model, DeviceSelector, IoModeler,
    Platform, PlatformError, StorageConfig, TransferMode,
};
use std::fmt::Write as _;

pub(crate) fn cmd_characterize(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let reps: u32 = opts.num("reps", 100)?;
    let mode = opts.mode()?;
    let platform = backend::platform_for(opts)?.with_obs(obs.clone());
    if let DeviceSelector::Ssd(cfg) = opts.device()? {
        return characterize_ssd(opts, &platform, cfg, mode, reps);
    }
    let topo = Platform::topology(&platform)
        .ok_or_else(|| PlatformError::NoTopology { label: platform.label() }.to_string())?;
    let modeler = IoModeler::new().reps(reps);
    let model = modeler
        .try_characterize_observed(&platform, topo, target, mode, obs)
        .map_err(|e| e.to_string())?;
    if opts.flag("check") {
        // Re-run and require a bit-identical model: the replay-smoke gate
        // (and a determinism check for the seeded simulator).
        let again = modeler
            .try_characterize_with_topo(&platform, topo, target, mode)
            .map_err(|e| e.to_string())?;
        if again != model {
            return Err(format!(
                "characterization over backend '{}' is not reproducible",
                platform.label()
            ));
        }
        let mut out = format!(
            "characterize check OK: backend {}, target {target}, {} classes, two runs bit-identical\n",
            platform.label(),
            model.classes().len()
        );
        if mode == TransferMode::Write
            && target == NodeId(7)
            && platform.label().ends_with("dl585-g7")
        {
            let partition: Vec<Vec<u16>> = model
                .classes()
                .iter()
                .map(|c| c.nodes.iter().map(|n| n.0).collect())
                .collect();
            let want: Vec<Vec<u16>> = vec![vec![6, 7], vec![0, 1, 4, 5], vec![2, 3]];
            if partition != want {
                return Err(format!(
                    "class partition {partition:?} does not match Table IV {want:?}"
                ));
            }
            out.push_str("class partition matches Table IV: {6,7} > {0,1,4,5} > {2,3}\n");
        }
        return Ok(out);
    }
    if opts.flag("json") {
        Ok(model.to_json())
    } else {
        Ok(render_model(&model))
    }
}

/// The storage-tier arm of `characterize`: the same memcpy probes mapped
/// through the calibrated SSD curves (Table IV/V analogues). The target
/// node is fixed by the SSD cards' attach point, so `--target` is ignored.
fn characterize_ssd<P: Platform>(
    opts: &Opts,
    platform: &P,
    cfg: StorageConfig,
    mode: TransferMode,
    reps: u32,
) -> Result<String, String> {
    let modeler = IoModeler::new().reps(reps);
    let model = characterize_storage(&modeler, platform, cfg, mode).map_err(|e| e.to_string())?;
    if opts.flag("check") {
        let again =
            characterize_storage(&modeler, platform, cfg, mode).map_err(|e| e.to_string())?;
        if again != model {
            return Err(format!(
                "storage characterization over backend '{}' is not reproducible",
                platform.label()
            ));
        }
        let mut out = format!(
            "characterize check OK: backend {}, device ssd0:{}, {} classes, two runs bit-identical\n",
            platform.label(),
            cfg.tag(),
            model.classes().len()
        );
        if mode == TransferMode::Write && platform.label().ends_with("dl585-g7") {
            let partition: Vec<Vec<u16>> = model
                .classes()
                .iter()
                .map(|c| c.nodes.iter().map(|n| n.0).collect())
                .collect();
            let want: Vec<Vec<u16>> = vec![vec![6, 7], vec![0, 1, 4, 5], vec![2, 3]];
            if partition != want {
                return Err(format!(
                    "storage class partition {partition:?} does not match the Table IV analogue {want:?}"
                ));
            }
            out.push_str(
                "storage class partition matches the Table IV analogue: {6,7} > {0,1,4,5} > {2,3}\n",
            );
        }
        return Ok(out);
    }
    if opts.flag("json") {
        Ok(model.to_json())
    } else {
        Ok(render_model(&model))
    }
}

/// Capture every probe a characterization makes into a JSONL fixture that
/// `--backend replay:<file>` can re-execute bit-identically. Records the
/// full-host atlas by default; `--target`/`--mode` narrow it to one model.
pub(crate) fn cmd_record(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let out_path = opts.get("out").ok_or("--out <fixture.jsonl> required")?;
    let reps: u32 = opts.num("reps", 100)?;
    let inner = backend::platform_for(opts)?;
    let rec = RecordingPlatform::new(inner).with_obs(obs.clone());
    let modeler = IoModeler::new().reps(reps);
    let models = if opts.get("target").is_some() || opts.get("mode").is_some() {
        let target = opts.node("target", 7)?;
        let mode = opts.mode()?;
        vec![modeler.try_characterize(&rec, target, mode).map_err(|e| e.to_string())?]
    } else {
        modeler.characterize_full_host(&rec)
    };
    let fixture = rec.fixture();
    fixture.write_to(out_path).map_err(|e| e.to_string())?;
    Ok(format!(
        "recorded {} probes ({} models) from backend '{}' into {out_path}\n",
        fixture.probes.len(),
        models.len(),
        fixture.header.platform,
    ))
}

pub(crate) fn cmd_classes(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let platform = backend::platform_for(opts)?;
    let fabric = backend::fabric_of(&platform)?;
    let nic = NicModel::paper();
    let ssd = numa_iodev::SsdModel::paper();
    let mut out = String::new();
    for mode in TransferMode::ALL {
        let model = IoModeler::new()
            .try_characterize(&platform, target, mode)
            .map_err(|e| e.to_string())?;
        let (label, ops): (&str, Vec<(&str, Vec<f64>)>) = match mode {
            TransferMode::Write => (
                "DEVICE WRITE model (Table IV)",
                vec![
                    ("memcpy", model.means()),
                    (
                        "TCP sender",
                        (0..8)
                            .map(|n| nic.node_ceiling(NicOp::TcpSend, &fabric, NodeId(n)))
                            .collect(),
                    ),
                    (
                        "RDMA_WRITE",
                        (0..8)
                            .map(|n| nic.node_ceiling(NicOp::RdmaWrite, &fabric, NodeId(n)))
                            .collect(),
                    ),
                    (
                        "SSD write",
                        (0..8).map(|n| ssd.node_ceiling(true, &fabric, NodeId(n))).collect(),
                    ),
                ],
            ),
            TransferMode::Read => (
                "DEVICE READ model (Table V)",
                vec![
                    ("memcpy", model.means()),
                    (
                        "TCP receiver",
                        (0..8)
                            .map(|n| nic.node_ceiling(NicOp::TcpRecv, &fabric, NodeId(n)))
                            .collect(),
                    ),
                    (
                        "RDMA_READ",
                        (0..8)
                            .map(|n| nic.node_ceiling(NicOp::RdmaRead, &fabric, NodeId(n)))
                            .collect(),
                    ),
                    (
                        "SSD read",
                        (0..8).map(|n| ssd.node_ceiling(false, &fabric, NodeId(n))).collect(),
                    ),
                ],
            ),
        };
        let _ = writeln!(out, "== {label} ==");
        out.push_str(&render_comparison_table(&model, &ops));
        out.push('\n');
    }
    Ok(out)
}

/// Characterize every node of the backend as a hypothetical device site
/// (both directions, in parallel) — the full-host atlas.
pub(crate) fn cmd_atlas(opts: &Opts) -> Result<String, String> {
    let reps: u32 = opts.num("reps", 20)?;
    let platform = backend::platform_for(opts)?;
    if opts.flag("json") {
        let atlas = numio_core::Atlas::characterize(&platform, &IoModeler::new().reps(reps))
            .map_err(|e| e.to_string())?;
        return atlas.to_json().map_err(|e| e.to_string());
    }
    let atlas = IoModeler::new().reps(reps).characterize_full_host(&platform);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "full-host atlas: {} models ({} nodes x write/read)\n",
        atlas.len(),
        platform.num_nodes()
    );
    for model in &atlas {
        let dir = match model.mode {
            TransferMode::Write => "write",
            TransferMode::Read => "read ",
        };
        let classes: Vec<String> = model
            .classes()
            .iter()
            .map(|c| {
                format!(
                    "{{{}}}@{:.1}",
                    c.nodes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(","),
                    c.avg_gbps
                )
            })
            .collect();
        let _ = writeln!(out, "node {} {dir}: {}", model.target, classes.join(" > "));
    }
    Ok(out)
}
