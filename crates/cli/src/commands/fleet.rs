//! `iomodel fleet <gen|place|compare>` — the fleet layer: seeded
//! heterogeneous host generation, per-host characterization profiles, and
//! the cluster-level placement policy bench.

use crate::opts::Opts;
use numa_fleet::{policy_by_name, ClusterScheduler, Fleet, FleetReport, StreamSpec};
use std::fmt::Write as _;

/// Matches the serve layer's `MAX_FLEET_HOSTS`: generation characterizes
/// every host, so the cap keeps a typo'd `--hosts` from hanging the CLI.
const MAX_HOSTS: usize = 64;

/// * `gen [--hosts N] [--seed N]` — generate a fleet and print each
///   host's sampled shape, capacity scale, and best I/O class.
/// * `place [--hosts N] [--streams N] [--policy P] [--rounds N] [--seed N]`
///   — run one placement episode under one policy.
/// * `compare [--hosts N] [--streams N] [--rounds N] [--seed N] [--check]`
///   — run all three policies on the same seeded workload; `--check`
///   reruns the comparison and fails unless every report is
///   bit-identical (the CI smoke gate).
pub(crate) fn cmd_fleet(args: &[String], obs: &numa_obs::Obs) -> Result<String, String> {
    let (action, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (a.as_str(), &args[1..]),
        _ => ("compare", args),
    };
    let opts = Opts::parse(rest)?;
    let hosts: usize = opts.num("hosts", 4)?;
    let seed: u64 = opts.num("seed", 42)?;
    if hosts == 0 || hosts > MAX_HOSTS {
        return Err(format!("--hosts must be in 1..={MAX_HOSTS}, got {hosts}"));
    }
    let fleet = Fleet::generate(hosts, seed).map_err(|e| e.to_string())?;
    match action {
        "gen" => render_gen(&fleet),
        "place" => {
            let policy = opts.get("policy").unwrap_or("class-ranked");
            let report = run_episode(&fleet, &opts, policy, obs)?;
            let mut out = render_header(&fleet);
            out.push_str(&report.render());
            out.push('\n');
            let _ = writeln!(
                out,
                "per-host streams: {:?}  fct digest: {:016x}",
                report.per_host_streams, report.digest
            );
            Ok(out)
        }
        "compare" => render_compare(&fleet, &opts, obs),
        other => Err(format!("fleet: unknown action '{other}' (want gen|place|compare)")),
    }
}

fn render_header(fleet: &Fleet) -> String {
    format!(
        "fleet (seed {}): {} hosts, {} NUMA nodes\n",
        fleet.seed(),
        fleet.len(),
        fleet.total_nodes()
    )
}

fn render_gen(fleet: &Fleet) -> Result<String, String> {
    let mut out = render_header(fleet);
    for h in fleet.hosts() {
        let best = &h.profile().write.classes()[0];
        let nodes: Vec<u16> = best.nodes.iter().map(|n| n.0).collect();
        let storage = match (&h.profile().storage_write, h.storage_headroom()) {
            (Some(sw), Some(headroom)) => format!(
                "  ssd x{} @ {:.1} Gbit/s (headroom {:.2})",
                h.spec.ssds,
                sw.classes()[0].avg_gbps,
                headroom
            ),
            _ => "  no ssd".to_string(),
        };
        let _ = writeln!(
            out,
            "host {:02}  {}s x{}  ({:2} nodes)  {:<11} io node {}  scale {:.3}  \
             best class {:?} @ {:.1} Gbit/s{storage}",
            h.id,
            h.spec.sockets,
            h.spec.nodes_per_socket,
            h.num_nodes(),
            h.spec.wiring.label(),
            h.io_node().0,
            h.scale,
            nodes,
            best.avg_gbps,
        );
    }
    Ok(out)
}

fn run_episode(
    fleet: &Fleet,
    opts: &Opts,
    policy: &str,
    obs: &numa_obs::Obs,
) -> Result<FleetReport, String> {
    let streams: usize = opts.num("streams", 32)?;
    let rounds: usize = opts.num("rounds", 4)?;
    let workload = StreamSpec::workload(streams, fleet.seed());
    let mut policy = policy_by_name(policy, fleet.len()).map_err(|e| e.to_string())?;
    let report = ClusterScheduler::new(fleet)
        .rounds(rounds)
        .run(&workload, policy.as_mut())
        .map_err(|e| e.to_string())?;
    obs.event(
        "fleet_episode",
        0.0,
        &[
            ("policy", report.policy.as_str().into()),
            ("hosts", report.hosts.into()),
            ("streams", report.streams.into()),
            ("aggregate_gbps", report.aggregate_gbps.into()),
        ],
    );
    Ok(report)
}

fn render_compare(fleet: &Fleet, opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let run = || -> Result<Vec<FleetReport>, String> {
        ["class-ranked", "bandwidth-aware", "adaptive"]
            .iter()
            .map(|name| run_episode(fleet, opts, name, obs))
            .collect()
    };
    let reports = run()?;
    let mut out = render_header(fleet);
    for r in &reports {
        out.push_str(&r.render());
        out.push('\n');
    }
    let best = reports
        .iter()
        .max_by(|a, b| a.aggregate_gbps.total_cmp(&b.aggregate_gbps))
        .expect("three reports");
    let _ = writeln!(
        out,
        "best aggregate: {} ({:.2} Gbit/s)",
        best.policy, best.aggregate_gbps
    );
    if opts.flag("check") {
        let again = run()?;
        if again != reports {
            return Err("fleet compare is not deterministic across runs".into());
        }
        let digests: Vec<String> =
            reports.iter().map(|r| format!("{:016x}", r.digest)).collect();
        let _ = writeln!(
            out,
            "fleet compare check OK: {} hosts, 3 policies, bit-identical reruns \
             (digests {})",
            fleet.len(),
            digests.join(" ")
        );
    }
    Ok(out)
}
