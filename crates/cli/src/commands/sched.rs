//! `sched`: the episode scheduler compared across placement policies,
//! over whatever backend exposes a fabric.

use crate::backend;
use crate::opts::Opts;
use numa_sched::policy::{HopGreedy, LocalOnly, ModelDriven, ModelDrivenMigrating, SpreadAll};
use numa_sched::{metrics, trace, Scheduler};

pub(crate) fn cmd_sched(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let tasks_n: usize = opts.num("tasks", 12)?;
    let gap: f64 = opts.num("gap", 1.0)?;
    let seed: u64 = opts.num("seed", 42)?;
    let mix = match opts.get("mix").unwrap_or("ingest") {
        "ingest" => trace::MixProfile::Ingest,
        "serve" => trace::MixProfile::Serve,
        "uniform" => trace::MixProfile::Uniform,
        other => return Err(format!("--mix must be ingest|serve|uniform, got '{other}'")),
    };
    let platform = backend::platform_for(opts)?;
    // Fabric-less backends fail here with a typed explanation before any
    // policy is characterized.
    let scheduler = Scheduler::for_backend(&platform)
        .map_err(|e| e.to_string())?
        .observe(obs.clone());
    let tasks = if opts.flag("premium") {
        trace::premium_burst(tasks_n, mix, seed)
    } else if opts.flag("burst") {
        trace::burst(tasks_n, mix, seed)
    } else {
        trace::poisson(tasks_n, gap, mix, seed)
    };
    let reports = vec![
        scheduler
            .run(tasks.clone(), LocalOnly::new())
            .map_err(|e| e.to_string())?,
        scheduler
            .run(tasks.clone(), HopGreedy::new())
            .map_err(|e| e.to_string())?,
        scheduler
            .run(tasks.clone(), SpreadAll::new())
            .map_err(|e| e.to_string())?,
        scheduler
            .run(tasks.clone(), ModelDriven::from_platform(&platform))
            .map_err(|e| e.to_string())?,
        scheduler
            .run(
                tasks,
                ModelDrivenMigrating::new(ModelDriven::from_platform(&platform), 2.0, 3),
            )
            .map_err(|e| e.to_string())?,
    ];
    Ok(metrics::render_comparison(&reports))
}
