#![warn(missing_docs)]
//! # numio-cli
//!
//! The `iomodel` command-line tool — the paper's characterization software
//! (its `iomodel` module for `numademo`, §V-B) as a standalone binary over
//! the simulated testbed, the real host, or a recorded fixture.
//!
//! ```text
//! iomodel topo        [--preset dl585|fig1a..fig1d|intel4|amd8|blade32] [--dot]
//! iomodel stream      [--target N]
//! iomodel characterize [--target N] [--mode write|read] [--reps N] [--json] [--check]
//!                      [--device probe|ssd0|ssd0:<engine>-<access>]
//! iomodel record      --out fixture.jsonl [--target N] [--mode write|read] [--reps N]
//! iomodel classes     [--target N]
//! iomodel predict     --op rdma_read --mix 2:2,0:2 [--target N]
//! iomodel advise      --tasks N [--mode write|read] [--tolerance F]
//! iomodel sweep       --op tcp_send [--streams 1,2,4,8,16] [--size GB]
//! iomodel host        [--nodes N] [--reps N]
//! iomodel numastat
//! iomodel run         --jobfile job.fio [--faults plan.json]
//! iomodel simulate    --workload poisson:n=1000,rate=200,seed=42 [--check]
//! iomodel faults      demo [--seed N] [--check]
//! iomodel faults      validate --plan plan.json
//! iomodel faults      run --plan plan.json
//! iomodel serve       [--addr host:port] [--reps N] [--drift-threshold F] [--port-file p]
//!                     [--flight-recorder-size N] [--max-connections N]
//!                     [--workers N] [--queue-depth N]
//! iomodel client      [--addr host:port] [--check] [--stats] [--dump] [--batch N] [--shutdown]
//! ```
//!
//! Every subcommand accepts the global measurement-backend flag:
//!
//! ```text
//! --backend sim            the calibrated DL585 simulator (default;
//!                          --fabric dl585|split picks the machine)
//! --backend host[:N]       real memcpy on this machine, N NUMA nodes
//! --backend replay:<file>  a recorded JSONL probe fixture, replayed
//!                          bit-identically
//! ```
//!
//! `record` wraps whatever backend is selected in a recorder and writes
//! every probe it issues to a fixture; `characterize --check` re-runs the
//! characterization and fails unless the two models are bit-identical
//! (the CI replay-smoke gate). Commands that run *flows* rather than
//! probes (`run`, `sweep`, `sched`, `faults`, `numademo`, `stream`,
//! `netpath`, `predict`) need the simulator's fabric and report a typed
//! error on fabric-less backends.
//!
//! Every subcommand additionally accepts the global observability flags:
//!
//! ```text
//! --trace <path>     write the structured event stream as JSON lines
//! --metrics <path>   write a Prometheus text snapshot of all metrics
//! --profile          enable wall-clock self-profiling spans and append
//!                    the metrics table to the output
//! ```
//!
//! Traces and metrics are timestamped with *simulation* time, so a seeded
//! run writes byte-identical files every time (`--profile` adds wall-clock
//! `numio_op_seconds` series and is therefore not reproducible).

mod backend;
mod commands;
mod opts;

use opts::Opts;

/// Run the CLI against an argument list (excluding argv[0]); returns the
/// rendered output or a usage error.
///
/// Extracts the global observability flags (`--trace <path>`,
/// `--metrics <path>`, `--profile`) before subcommand parsing, runs the
/// command through [`dispatch`], then writes the requested exports.
pub fn run(args: &[String]) -> Result<String, String> {
    let (core_args, trace_path, metrics_path, profile) = extract_global(args)?;
    let obs = numa_obs::Obs::new();
    obs.set_profiling(profile);
    let mut out = dispatch(&core_args, &obs)?;
    if let Some(path) = trace_path {
        std::fs::write(&path, obs.jsonl()).map_err(|e| format!("--trace {path}: {e}"))?;
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, obs.prometheus()).map_err(|e| format!("--metrics {path}: {e}"))?;
    }
    if profile {
        out.push('\n');
        out.push_str(&obs.report());
    }
    Ok(out)
}

/// Run the CLI recording into a caller-supplied [`numa_obs::Obs`] handle.
/// Every invocation emits a `cli_invoked` event and bumps
/// `numio_cli_invocations_total{cmd=...}`, so even read-only subcommands
/// produce a non-empty trace.
pub fn dispatch(args: &[String], obs: &numa_obs::Obs) -> Result<String, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let rest: Vec<String> = it.cloned().collect();
    obs.counter("numio_cli_invocations_total", &[("cmd", cmd.as_str())])
        .inc();
    obs.event("cli_invoked", 0.0, &[("cmd", cmd.as_str().into())]);
    let _span = obs.span("cli.command");
    if cmd == "faults" {
        // `faults` takes a positional action before the --key options.
        return commands::faults::cmd_faults(&rest, obs);
    }
    if cmd == "fleet" {
        // Likewise positional: `fleet <gen|place|compare> [--opts]`.
        return commands::fleet::cmd_fleet(&rest, obs);
    }
    let opts = Opts::parse(&rest)?;
    match cmd.as_str() {
        "topo" => commands::topo::cmd_topo(&opts),
        "stream" => commands::mem::cmd_stream(&opts),
        "characterize" => commands::characterize::cmd_characterize(&opts, obs),
        "record" => commands::characterize::cmd_record(&opts, obs),
        "classes" => commands::characterize::cmd_classes(&opts),
        "predict" => commands::predict::cmd_predict(&opts),
        "advise" => commands::predict::cmd_advise(&opts),
        "sweep" => commands::jobs::cmd_sweep(&opts),
        "host" => commands::host::cmd_host(&opts),
        "numastat" => commands::mem::cmd_numastat(&opts),
        "numademo" => commands::mem::cmd_numademo(&opts),
        "run" => commands::jobs::cmd_run(&opts, obs),
        "simulate" => commands::simulate::cmd_simulate(&opts, obs),
        "diff" => commands::diff::cmd_diff(&opts),
        "sched" => commands::sched::cmd_sched(&opts, obs),
        "latency" => commands::mem::cmd_latency(&opts),
        "probe" => commands::host::cmd_probe(&opts),
        "emit-script" => commands::host::cmd_emit_script(&opts),
        "import" => commands::host::cmd_import(&opts),
        "netpath" => commands::netpath::cmd_netpath(&opts),
        "atlas" => commands::characterize::cmd_atlas(&opts),
        "serve" => commands::serve::cmd_serve(&opts, obs),
        "client" => commands::serve::cmd_client(&opts),
        "sysfs" => commands::topo::cmd_sysfs(&opts),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

/// Split the global observability flags out of the raw argument list so
/// they work uniformly on every subcommand.
fn extract_global(
    args: &[String],
) -> Result<(Vec<String>, Option<String>, Option<String>, bool), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut trace = None;
    let mut metrics = None;
    let mut profile = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            key @ ("--trace" | "--metrics") => {
                let v = args
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("{key} requires a file path"))?;
                if key == "--trace" {
                    trace = Some(v.clone());
                } else {
                    metrics = Some(v.clone());
                }
                i += 2;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    Ok((rest, trace, metrics, profile))
}

fn usage() -> String {
    "usage: iomodel <topo|stream|characterize|record|classes|predict|advise|sweep|host|numastat|numademo|run|simulate|diff|sched|faults|fleet|latency|netpath|probe|emit-script|import|atlas|serve|client|sysfs> [options]\n\
     faults: iomodel faults demo [--seed N] [--check] | validate --plan p.json | run --plan p.json\n\
     fleet:  iomodel fleet gen [--hosts N] [--seed N] | place [--policy P] [--streams N] [--rounds N]\n\
             | compare [--hosts N] [--streams N] [--rounds N] [--seed N] [--check]\n\
     characterize: iomodel characterize [--device probe|ssd0|ssd0:<engine>-<access>] [--check]\n\
     run:    iomodel run --jobfile job.fio [--faults plan.json]\n\
     simulate: iomodel simulate --workload poisson:n=1000,rate=200,seed=42|pareto:...|batch:... [--check]\n\
     record: iomodel record --out fixture.jsonl [--target N] [--mode write|read]\n\
     serve:  iomodel serve [--addr host:port] [--reps N] [--drift-threshold F] [--port-file p]\n\
             [--flight-recorder-size N] [--max-connections N] [--workers N] [--queue-depth N]\n\
     client: iomodel client [--addr host:port] [--check] [--stats] [--dump] [--batch N] [--shutdown]\n\
     global flags: --backend sim|host[:N]|replay:<file> (measurement backend, default sim)\n\
                   --trace <path> (JSONL events)  --metrics <path> (Prometheus snapshot)  --profile (wall-clock spans)\n\
     run `iomodel help` for the full option list (see crate docs)"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::NodeId;

    fn run_str(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn no_args_is_usage_error() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn unknown_command_reports() {
        let e = run_str(&["bogus"]).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_str(&["help"]).unwrap().contains("usage"));
    }

    #[test]
    fn fleet_gen_lists_every_host() {
        let out = run_str(&["fleet", "gen", "--hosts", "3", "--seed", "7"]).unwrap();
        assert!(out.contains("fleet (seed 7): 3 hosts"), "{out}");
        assert!(out.contains("host 00"), "{out}");
        assert!(out.contains("host 02"), "{out}");
        assert!(out.contains("best class"), "{out}");
    }

    #[test]
    fn fleet_place_reports_and_is_deterministic() {
        let args = ["fleet", "place", "--hosts", "2", "--streams", "8", "--policy", "adaptive"];
        let a = run_str(&args).unwrap();
        let b = run_str(&args).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("adaptive"), "{a}");
        assert!(a.contains("jain"), "{a}");
        assert!(a.contains("fct digest"), "{a}");
    }

    #[test]
    fn fleet_compare_check_gates_bit_identity() {
        let out =
            run_str(&["fleet", "compare", "--hosts", "2", "--streams", "8", "--check"]).unwrap();
        assert!(out.contains("class-ranked"), "{out}");
        assert!(out.contains("bandwidth-aware"), "{out}");
        assert!(out.contains("adaptive"), "{out}");
        assert!(out.contains("best aggregate:"), "{out}");
        assert!(out.contains("fleet compare check OK"), "{out}");
        // Default action is compare.
        let bare = run_str(&["fleet", "--hosts", "2", "--streams", "8"]).unwrap();
        assert!(bare.contains("best aggregate:"), "{bare}");
    }

    #[test]
    fn fleet_rejects_bad_arguments() {
        assert!(run_str(&["fleet", "gen", "--hosts", "0"]).is_err());
        assert!(run_str(&["fleet", "gen", "--hosts", "65"]).is_err());
        assert!(run_str(&["fleet", "place", "--policy", "bogus"]).is_err());
        assert!(run_str(&["fleet", "teleport"]).unwrap_err().contains("unknown action"));
    }

    #[test]
    fn topo_lists_hops_and_devices() {
        let out = run_str(&["topo"]).unwrap();
        assert!(out.contains("dl585-g7"));
        assert!(out.contains("hop distances"));
        assert!(out.contains("SLIT"));
    }

    #[test]
    fn topo_dot_and_presets() {
        let out = run_str(&["topo", "--preset", "fig1b", "--dot"]).unwrap();
        assert!(out.starts_with("graph"));
        assert!(run_str(&["topo", "--preset", "nope"]).is_err());
    }

    #[test]
    fn stream_prints_matrix_and_models() {
        let out = run_str(&["stream"]).unwrap();
        assert!(out.contains("CPU-centric model of node 7"));
        assert!(out.contains("Memory-centric"));
        assert!(out.contains("21.")); // the 21.34 anchor, modulo noise
    }

    #[test]
    fn characterize_text_and_json() {
        let out = run_str(&["characterize", "--reps", "5"]).unwrap();
        assert!(out.contains("class 1: nodes {6, 7}"));
        let json = run_str(&["characterize", "--reps", "5", "--json"]).unwrap();
        let model = numio_core::IoPerfModel::from_json(&json).unwrap();
        assert_eq!(model.target, NodeId(7));
    }

    #[test]
    fn characterize_split_fabric_targets_node3() {
        let out = run_str(&[
            "characterize",
            "--reps",
            "3",
            "--fabric",
            "split",
            "--target",
            "3",
        ])
        .unwrap();
        assert!(out.contains("target node 3"));
        assert!(out.contains("class 1: nodes {2, 3}"), "{out}");
        assert!(run_str(&["characterize", "--fabric", "moon"]).is_err());
    }

    #[test]
    fn characterize_read_mode() {
        let out = run_str(&["characterize", "--reps", "5", "--mode", "read"]).unwrap();
        assert!(out.contains("device read"));
        assert!(out.contains("class 4"), "{out}");
    }

    #[test]
    fn characterize_check_verifies_sim_determinism() {
        let out = run_str(&["characterize", "--reps", "3", "--check"]).unwrap();
        assert!(out.contains("characterize check OK"), "{out}");
        assert!(out.contains("bit-identical"), "{out}");
        assert!(out.contains("class partition matches Table IV"), "{out}");
    }

    #[test]
    fn characterize_ssd_device_renders_the_storage_tier() {
        let out = run_str(&["characterize", "--reps", "5", "--device", "ssd0"]).unwrap();
        // Same partition shape as Table IV, at SSD-ceiling levels.
        assert!(out.contains("class 1: nodes {6, 7}"), "{out}");
        assert!(out.contains("ssd0:libaio16-direct"), "{out}");
        let json =
            run_str(&["characterize", "--reps", "5", "--device", "ssd0", "--json"]).unwrap();
        let model = numio_core::IoPerfModel::from_json(&json).unwrap();
        assert!(model.platform.ends_with("ssd0:libaio16-direct"), "{}", model.platform);
        // An explicit operating point scales the whole table down.
        let slow = run_str(&[
            "characterize",
            "--reps",
            "5",
            "--device",
            "ssd0:sync-buffered",
            "--json",
        ])
        .unwrap();
        let slow = numio_core::IoPerfModel::from_json(&slow).unwrap();
        assert!(
            slow.means().iter().zip(model.means()).all(|(s, f)| *s < f),
            "sync+buffered must sit below libaio+direct everywhere"
        );
        // `--device probe` is the default memcpy path.
        let probe = run_str(&["characterize", "--reps", "5", "--device", "probe"]).unwrap();
        let default = run_str(&["characterize", "--reps", "5"]).unwrap();
        assert_eq!(probe, default);
    }

    #[test]
    fn characterize_ssd_check_gates_the_storage_partition() {
        let out =
            run_str(&["characterize", "--reps", "3", "--device", "ssd0", "--check"]).unwrap();
        assert!(out.contains("characterize check OK"), "{out}");
        assert!(out.contains("device ssd0:libaio16-direct"), "{out}");
        assert!(out.contains("bit-identical"), "{out}");
        assert!(out.contains("storage class partition matches"), "{out}");
    }

    #[test]
    fn characterize_device_errors_are_typed() {
        let e = run_str(&["characterize", "--device", "ssd9"]).unwrap_err();
        assert!(e.contains("--device must be"), "{e}");
        // Storage needs a fabric: host backends carry none.
        let e =
            run_str(&["characterize", "--backend", "host:2", "--device", "ssd0"]).unwrap_err();
        assert!(e.contains("exposes no fabric"), "{e}");
    }

    #[test]
    fn record_then_replay_through_the_cli() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let fix = dir.join("recorded.jsonl");
        let out = run_str(&[
            "record",
            "--out",
            fix.to_str().unwrap(),
            "--reps",
            "3",
            "--target",
            "7",
        ])
        .unwrap();
        assert!(out.contains("recorded 8 probes (1 models)"), "{out}");
        let spec = format!("replay:{}", fix.display());
        // Replay renders exactly what the live simulator run rendered.
        let live = run_str(&["characterize", "--reps", "3"]).unwrap();
        let replayed = run_str(&["characterize", "--backend", &spec, "--reps", "3"]).unwrap();
        assert_eq!(
            live, replayed,
            "replay must be bit-identical to the live run"
        );
        let checked =
            run_str(&["characterize", "--backend", &spec, "--reps", "3", "--check"]).unwrap();
        assert!(checked.contains("characterize check OK"), "{checked}");
        assert!(checked.contains("backend sim:dl585-g7"), "{checked}");
        // A probe the fixture does not cover is a typed error, not a panic.
        let e = run_str(&["characterize", "--backend", &spec, "--reps", "4"]).unwrap_err();
        assert!(e.contains("no recorded probe"), "{e}");
    }

    #[test]
    fn shipped_fixture_replays_with_check() {
        let fixture = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/fixtures/dl585.jsonl"
        );
        let spec = format!("replay:{fixture}");
        let out = run_str(&["characterize", "--backend", &spec, "--check"]).unwrap();
        assert!(out.contains("characterize check OK"), "{out}");
        assert!(out.contains("class partition matches Table IV"), "{out}");
    }

    #[test]
    fn backend_flag_rejects_unknown_specs() {
        let e = run_str(&["characterize", "--backend", "quantum"]).unwrap_err();
        assert!(e.contains("unknown backend"), "{e}");
        let e = run_str(&["characterize", "--backend", "replay:/no/such.jsonl"]).unwrap_err();
        assert!(e.contains("/no/such.jsonl"), "{e}");
    }

    #[test]
    fn fabricless_backends_error_clearly() {
        // Flow-running commands need the simulator fabric.
        let e = run_str(&["sweep", "--backend", "host:2"]).unwrap_err();
        assert!(e.contains("exposes no simulator fabric"), "{e}");
        let e = run_str(&["sched", "--backend", "host:2"]).unwrap_err();
        assert!(e.contains("no fabric to schedule over"), "{e}");
        // Probe-running commands need a topology.
        let e = run_str(&["characterize", "--backend", "host:2", "--reps", "1"]).unwrap_err();
        assert!(e.contains("carries no topology"), "{e}");
        // record without a destination is a usage error.
        assert!(run_str(&["record", "--reps", "1"]).is_err());
    }

    #[test]
    fn record_and_replay_emit_probe_events() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let fix = dir.join("events.jsonl");
        let obs = numa_obs::Obs::new();
        let args: Vec<String> = [
            "record",
            "--out",
            fix.to_str().unwrap(),
            "--reps",
            "2",
            "--target",
            "7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&args, &obs).unwrap();
        assert!(
            obs.jsonl().contains("\"ev\":\"probe_recorded\""),
            "{}",
            obs.jsonl()
        );
        assert_eq!(
            obs.counter("numio_probes_recorded_total", &[("backend", "sim")])
                .get(),
            8
        );
        let obs2 = numa_obs::Obs::new();
        let spec = format!("replay:{}", fix.display());
        let args: Vec<String> = ["characterize", "--backend", &spec, "--reps", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        dispatch(&args, &obs2).unwrap();
        assert!(
            obs2.jsonl().contains("\"ev\":\"probe_replayed\""),
            "{}",
            obs2.jsonl()
        );
        assert_eq!(
            obs2.counter("numio_probes_replayed_total", &[("backend", "replay")])
                .get(),
            8
        );
        assert_eq!(
            obs2.counter(
                "numio_probes_total",
                &[("node", "N7"), ("backend", "replay")]
            )
            .get(),
            2
        );
    }

    #[test]
    fn classes_prints_both_tables() {
        let out = run_str(&["classes"]).unwrap();
        assert!(out.contains("Table IV"));
        assert!(out.contains("Table V"));
        assert!(out.contains("RDMA_WRITE"));
        assert!(out.contains("SSD read"));
    }

    #[test]
    fn predict_reproduces_eq1_example() {
        let out = run_str(&["predict", "--op", "rdma_read", "--mix", "2:2,0:2"]).unwrap();
        assert!(out.contains("predicted (Eq.1): 20."), "{out}");
        assert!(out.contains("measured"), "{out}");
        // error a few percent
        let err_line = out.lines().find(|l| l.contains("relative error")).unwrap();
        assert!(err_line.contains('%'));
    }

    #[test]
    fn predict_requires_mix() {
        assert!(run_str(&["predict", "--op", "rdma_read"]).is_err());
        assert!(run_str(&["predict", "--op", "rdma_read", "--mix", "2-3"]).is_err());
    }

    #[test]
    fn advise_spreads_load() {
        let out = run_str(&["advise", "--tasks", "6"]).unwrap();
        assert!(out.contains("advised placement"));
        assert!(out.contains("max per-node load"));
    }

    #[test]
    fn sweep_renders_table() {
        let out = run_str(&[
            "sweep",
            "--op",
            "rdma_write",
            "--streams",
            "1,2",
            "--size",
            "2",
        ])
        .unwrap();
        assert!(out.contains("RdmaWrite"));
        assert!(out.contains("node7"));
    }

    #[test]
    fn host_runs_quickly_with_small_reps() {
        let out = run_str(&["host", "--nodes", "4", "--reps", "1"]).unwrap();
        assert!(out.contains("real-host memcpy probe"));
        assert!(run_str(&["host", "--nodes", "5"]).is_err());
    }

    #[test]
    fn numastat_shows_node0_drain() {
        let out = run_str(&["numastat"]).unwrap();
        assert!(out.contains("node 0 free: 1440 MB"));
        assert!(out.contains("numa_hit"));
    }

    #[test]
    fn atlas_json_is_a_loadable_atlas() {
        let out = run_str(&["atlas", "--reps", "2", "--json"]).unwrap();
        let atlas = numio_core::Atlas::from_json(&out).unwrap();
        assert_eq!(atlas.models().len(), 16);
    }

    #[test]
    fn atlas_covers_every_node_both_ways() {
        let out = run_str(&["atlas", "--reps", "2"]).unwrap();
        assert!(out.contains("16 models"));
        for n in 0..8 {
            assert!(out.contains(&format!("node {n} write:")), "{out}");
            assert!(out.contains(&format!("node {n} read :")), "{out}");
        }
    }

    #[test]
    fn sysfs_discovery_command_runs_when_sysfs_exists() {
        if std::path::Path::new("/sys/devices/system/node").exists() {
            let out = run_str(&["sysfs"]).unwrap();
            assert!(out.contains("discovered from"));
            assert!(out.contains("SLIT"));
        }
        assert!(run_str(&["sysfs", "--root", "/no/such/dir"]).is_err());
    }

    #[test]
    fn numademo_renders_grid() {
        let out = run_str(&["numademo", "--cpu", "3", "--remote", "7"]).unwrap();
        assert!(out.contains("memset"));
        assert!(out.contains("interleave"));
    }

    #[test]
    fn run_executes_a_jobfile() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.fio");
        std::fs::write(
            &path,
            "[j]\nioengine=rdma\nverb=write\ncpunodebind=3\nsize=4g\n",
        )
        .unwrap();
        let out = run_str(&["run", "--jobfile", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("TOTAL"), "{out}");
        assert!(out.contains("17.0"), "node 3 class level: {out}");
        assert!(run_str(&["run", "--jobfile", "/no/such/file"]).is_err());
        assert!(run_str(&["run"]).is_err());
    }

    #[test]
    fn run_executes_a_mixed_nic_and_ssd_jobfile() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.fio");
        std::fs::write(
            &path,
            "[net]\nioengine=rdma\nverb=write\ncpunodebind=6\nsize=4g\n\n\
             [disk]\nioengine=libaio\nrw=write\niodepth=16\ndirect=1\ncpunodebind=7\nsize=4g\n",
        )
        .unwrap();
        let a = run_str(&["run", "--jobfile", path.to_str().unwrap()]).unwrap();
        assert!(a.contains("TOTAL"), "{a}");
        assert!(a.contains("net:"), "{a}");
        assert!(a.contains("disk:"), "{a}");
        assert!(a.contains("Ssd"), "{a}");
        // Seeded contention run: bit-identical on rerun.
        let b = run_str(&["run", "--jobfile", path.to_str().unwrap()]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn simulate_runs_workloads_and_checks_determinism() {
        let out = run_str(&["simulate", "--workload", "poisson:n=50,rate=100,seed=7"]).unwrap();
        assert!(out.contains("50 flows"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("fct digest:"), "{out}");
        // Bit-identical reruns: the digest line matches across invocations.
        let again = run_str(&["simulate", "--workload", "poisson:n=50,rate=100,seed=7"]).unwrap();
        assert_eq!(out, again);
        let checked =
            run_str(&["simulate", "--workload", "pareto:n=20,alpha=1.5,seed=3", "--check"])
                .unwrap();
        assert!(checked.contains("simulate check OK"), "{checked}");
        assert!(checked.contains("bit-identical"), "{checked}");
        // Usage and parse errors are typed strings, not panics.
        assert!(run_str(&["simulate"]).is_err());
        assert!(run_str(&["simulate", "--workload", "burst:n=3"]).is_err());
        assert!(run_str(&["simulate", "--workload", "poisson:n=1", "--backend", "host:2"])
            .is_err());
    }

    #[test]
    fn faults_demo_renders_and_is_deterministic() {
        let a = run_str(&["faults", "demo", "--seed", "11"]).unwrap();
        let b = run_str(&["faults", "demo", "--seed", "11"]).unwrap();
        assert_eq!(a, b, "seeded demo must render bit-identically");
        assert!(a.contains("fault plan (seed 11)"), "{a}");
        assert!(a.contains("BASELINE"));
        assert!(a.contains("FAULTED"));
        assert!(a.contains("degradation:"));
        // Bare `faults` defaults to the demo action.
        assert!(run_str(&["faults", "--seed", "11"])
            .unwrap()
            .contains("FAULTED"));
    }

    #[test]
    fn faults_demo_check_is_the_smoke_test() {
        let out = run_str(&["faults", "demo", "--check"]).unwrap();
        assert!(out.contains("fault demo OK"), "{out}");
        assert!(out.contains("deterministic"), "{out}");
    }

    #[test]
    fn faults_validate_and_run_accept_a_plan_file() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        std::fs::write(&path, numa_faults::FaultPlan::demo(5).to_json()).unwrap();
        let ok = run_str(&["faults", "validate", "--plan", path.to_str().unwrap()]).unwrap();
        assert!(ok.contains("OK (2 faults, seed 5)"), "{ok}");
        let run = run_str(&["faults", "run", "--plan", path.to_str().unwrap()]).unwrap();
        assert!(run.contains("degradation:"), "{run}");
        // Malformed plan files are reported with the offending path.
        let bad = dir.join("bad.json");
        std::fs::write(
            &bad,
            "{\"seed\": 1, \"faults\": [{\"kind\": \"gremlins\"}]}",
        )
        .unwrap();
        let e = run_str(&["faults", "validate", "--plan", bad.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("malformed fault plan"), "{e}");
        assert!(run_str(&["faults", "validate"]).is_err());
        assert!(run_str(&["faults", "sabotage"]).is_err());
    }

    #[test]
    fn run_with_faults_degrades_the_jobfile_total() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let job = dir.join("faulted.fio");
        std::fs::write(
            &job,
            "[j]\nioengine=rdma\nverb=write\ncpunodebind=6\nsize=4g\n",
        )
        .unwrap();
        let plan = dir.join("halve.json");
        std::fs::write(
            &plan,
            "{\"seed\": 0, \"faults\": [{\"kind\": \"link_degrade\", \"from\": 6, \"to\": 7, \"factor\": 0.1, \"start_s\": 0.0}]}",
        )
        .unwrap();
        let healthy = run_str(&["run", "--jobfile", job.to_str().unwrap()]).unwrap();
        let faulted = run_str(&[
            "run",
            "--jobfile",
            job.to_str().unwrap(),
            "--faults",
            plan.to_str().unwrap(),
        ])
        .unwrap();
        let total = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("TOTAL:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            total(&faulted) < total(&healthy) * 0.5,
            "faulted {faulted} vs healthy {healthy}"
        );
        assert!(run_str(&[
            "run",
            "--jobfile",
            job.to_str().unwrap(),
            "--faults",
            "/no/plan"
        ])
        .is_err());
    }

    #[test]
    fn diff_detects_stability() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let model = run_str(&["characterize", "--reps", "3", "--json"]).unwrap();
        std::fs::write(&a, &model).unwrap();
        let out = run_str(&[
            "diff",
            "--old",
            a.to_str().unwrap(),
            "--new",
            a.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("STABLE"));
        assert!(run_str(&["diff", "--old", a.to_str().unwrap()]).is_err());
    }

    #[test]
    fn global_trace_and_metrics_flags_write_files() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("sched_trace.jsonl");
        let metrics = dir.join("sched_metrics.prom");
        let out = run_str(&[
            "sched",
            "--tasks",
            "4",
            "--burst",
            "--seed",
            "7",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("best mean latency"));
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"ev\":\"cli_invoked\""), "{t}");
        assert!(t.contains("\"ev\":\"alloc_round\""), "{t}");
        assert!(t.contains("\"ev\":\"task_finished\""), "{t}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            m.contains("numio_alloc_rounds_total{component=\"sched\"}"),
            "{m}"
        );
        assert!(
            m.contains("numio_flow_completions_total{component=\"sched\"}"),
            "{m}"
        );
        assert!(m.contains("numio_episode_latency_seconds_bucket"), "{m}");
        // No wall-clock series without --profile: exports stay reproducible.
        assert!(!m.contains("numio_op_seconds"), "{m}");
    }

    #[test]
    fn seeded_runs_write_identical_traces() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let go = |name: &str| {
            let trace = dir.join(name);
            run_str(&[
                "sched",
                "--tasks",
                "4",
                "--seed",
                "9",
                "--trace",
                trace.to_str().unwrap(),
            ])
            .unwrap();
            std::fs::read(&trace).unwrap()
        };
        let a = go("det_a.jsonl");
        let b = go("det_b.jsonl");
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn every_subcommand_produces_a_nonempty_trace() {
        let obs = numa_obs::Obs::new();
        let args: Vec<String> = ["topo"].iter().map(|s| s.to_string()).collect();
        dispatch(&args, &obs).unwrap();
        assert!(obs.jsonl().contains("\"cmd\":\"topo\""));
        assert_eq!(
            obs.counter("numio_cli_invocations_total", &[("cmd", "topo")])
                .get(),
            1
        );
    }

    #[test]
    fn characterize_records_probe_metrics() {
        let obs = numa_obs::Obs::new();
        let args: Vec<String> = ["characterize", "--reps", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        dispatch(&args, &obs).unwrap();
        assert_eq!(
            obs.counter("numio_probes_total", &[("node", "N7"), ("backend", "sim")])
                .get(),
            3
        );
        assert!(obs.prometheus().contains("numio_probe_gbps_bucket"));
    }

    #[test]
    fn profile_flag_appends_report_and_times_ops() {
        let out = run_str(&["sched", "--tasks", "3", "--burst", "--profile"]).unwrap();
        assert!(out.contains("numio_op_seconds"), "{out}");
        assert!(out.contains("sched.alloc_round"), "{out}");
    }

    #[test]
    fn trace_flag_requires_a_path() {
        let e = run_str(&["topo", "--trace"]).unwrap_err();
        assert!(e.contains("requires a file path"), "{e}");
    }

    #[test]
    fn sched_compares_policies() {
        let out = run_str(&["sched", "--tasks", "4", "--burst", "--mix", "ingest"]).unwrap();
        assert!(out.contains("local-only"));
        assert!(out.contains("model-driven"));
        assert!(out.contains("best mean latency"));
        assert!(run_str(&["sched", "--mix", "chaos"]).is_err());
    }

    #[test]
    fn probe_emits_csv() {
        let out = run_str(&["probe", "--node", "3", "--reps", "2", "--mib", "1"]).unwrap();
        let lines: Vec<&str> = out.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("3,"));
        let v: f64 = lines[0].split(',').nth(1).unwrap().parse().unwrap();
        assert!(v > 0.0);
    }

    #[test]
    fn emit_script_wraps_numactl() {
        let out = run_str(&["emit-script", "--target", "7", "--nodes", "8"]).unwrap();
        assert!(out.starts_with("#!/bin/sh"));
        assert_eq!(out.matches("numactl --cpunodebind=7").count(), 8);
        assert!(out.contains("--membind=0"));
        assert!(out.contains("iomodel import"));
    }

    #[test]
    fn import_round_trips_through_csv() {
        // Fabricate a CSV with the Table IV write-direction means.
        let means = [42.9, 44.6, 27.3, 26.0, 46.5, 45.0, 46.5, 53.5];
        let mut csv = String::from("# node,gbps\n");
        for (n, m) in means.iter().enumerate() {
            for k in 0..3 {
                csv.push_str(&format!("{n},{}\n", m + k as f64 * 0.01));
            }
        }
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probes.csv");
        std::fs::write(&path, csv).unwrap();
        let out = run_str(&["import", "--csv", path.to_str().unwrap(), "--target", "7"]).unwrap();
        assert!(out.contains("class 1: nodes {6, 7}"), "{out}");
        assert!(out.contains("class 3: nodes {2, 3}"), "{out}");
        // Missing nodes are reported.
        std::fs::write(&path, "0,10.0\n").unwrap();
        let e = run_str(&["import", "--csv", path.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("no samples"), "{e}");
    }

    #[test]
    fn latency_staircase_renders() {
        let out = run_str(&["latency", "--cpu", "2"]).unwrap();
        assert!(out.contains("working set"));
        assert!(out.contains("MiB"));
        assert!(out.contains("NUMA factor"));
    }

    #[test]
    fn netpath_matrix_renders() {
        let out = run_str(&["netpath", "--op", "tcp_send"]).unwrap();
        assert!(out.contains("end-to-end TcpSend"));
        assert!(out.contains("window/RTT"));
        let wan = run_str(&["netpath", "--op", "rdma_write", "--rtt", "50"]).unwrap();
        assert!(wan.contains("0.67"), "window-limited WAN: {wan}");
    }

    #[test]
    fn serve_and_client_smoke_over_loopback() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("serve.addr");
        let _ = std::fs::remove_file(&port_file);
        let pf = port_file.to_str().unwrap().to_string();
        // `serve` blocks until a wire shutdown; run it on its own thread
        // with an OS-assigned port published through --port-file.
        let server = std::thread::spawn({
            let pf = pf.clone();
            move || {
                run_str(&[
                    "serve",
                    "--addr",
                    "127.0.0.1:0",
                    "--reps",
                    "2",
                    "--workers",
                    "2",
                    "--queue-depth",
                    "8",
                    "--port-file",
                    &pf,
                ])
            }
        });
        let mut addr = String::new();
        for _ in 0..50 {
            if let Ok(a) = std::fs::read_to_string(&port_file) {
                if !a.is_empty() {
                    addr = a;
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        assert!(!addr.is_empty(), "serve never published its address");
        let out = run_str(&["client", "--addr", &addr, "--check"]).unwrap();
        assert!(out.contains("classify OK"), "{out}");
        assert!(out.contains("Table IV"), "{out}");
        assert!(out.contains("cache hit"), "{out}");
        assert!(out.contains("serve check OK"), "{out}");
        // One predict_batch round trip, gated against sequential predicts.
        let out = run_str(&["client", "--addr", &addr, "--batch", "32"]).unwrap();
        assert!(out.contains("predict_batch OK: 32 mixes"), "{out}");
        // One-shot health view + flight-recorder dump, then shut down.
        let out = run_str(&["client", "--addr", &addr, "--stats", "--dump", "--shutdown"]).unwrap();
        assert!(out.contains("requests"), "{out}");
        assert!(out.contains("hits"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(out.contains(r#""ev":"req""#), "{out}");
        assert!(out.contains("server shutting down"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("shut down"), "{served}");
    }

    #[test]
    fn client_without_a_server_is_a_clear_error() {
        // Port 1 on loopback refuses immediately, so the retry loop
        // exhausts quickly into its final error.
        let e = run_str(&["client", "--addr", "127.0.0.1:1"]).unwrap_err();
        assert!(e.contains("cannot connect"), "{e}");
    }

    #[test]
    fn bad_option_values_error() {
        assert!(run_str(&["characterize", "--target", "banana"]).is_err());
        assert!(run_str(&["characterize", "--mode", "sideways"]).is_err());
        assert!(run_str(&["sweep", "--op", "carrier-pigeon"]).is_err());
        assert!(run_str(&["topo", "stray"]).is_err());
    }
}
