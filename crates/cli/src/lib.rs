#![warn(missing_docs)]
//! # numio-cli
//!
//! The `iomodel` command-line tool — the paper's characterization software
//! (its `iomodel` module for `numademo`, §V-B) as a standalone binary over
//! the simulated testbed or the real host.
//!
//! ```text
//! iomodel topo        [--preset dl585|fig1a..fig1d|intel4|amd8|blade32] [--dot]
//! iomodel stream      [--target N]
//! iomodel characterize [--target N] [--mode write|read] [--reps N] [--json]
//! iomodel classes     [--target N]
//! iomodel predict     --op rdma_read --mix 2:2,0:2 [--target N]
//! iomodel advise      --tasks N [--mode write|read] [--tolerance F]
//! iomodel sweep       --op tcp_send [--streams 1,2,4,8,16] [--size GB]
//! iomodel host        [--nodes N] [--reps N]
//! iomodel numastat
//! iomodel run         --jobfile job.fio [--faults plan.json]
//! iomodel faults      demo [--seed N] [--check]
//! iomodel faults      validate --plan plan.json
//! iomodel faults      run --plan plan.json
//! ```
//!
//! Every subcommand additionally accepts the global observability flags:
//!
//! ```text
//! --trace <path>     write the structured event stream as JSON lines
//! --metrics <path>   write a Prometheus text snapshot of all metrics
//! --profile          enable wall-clock self-profiling spans and append
//!                    the metrics table to the output
//! ```
//!
//! Traces and metrics are timestamped with *simulation* time, so a seeded
//! run writes byte-identical files every time (`--profile` adds wall-clock
//! `numio_op_seconds` series and is therefore not reproducible).

use numa_fabric::calibration::dl585_fabric;
use numa_fio::{sweep as fio_sweep, JobSpec, Workload};
use numa_iodev::{NicModel, NicOp};
use numa_memsys::{MemPolicy, MemoryState, StreamBench};
use numa_topology::{distance, presets, render, NodeId, Topology};
use numio_core::{
    predict_aggregate, render_comparison_table, render_model, HostPlatform, IoModeler,
    Platform, ScheduleAdvisor, SimPlatform, TransferMode,
};
use std::fmt::Write as _;

/// Run the CLI against an argument list (excluding argv[0]); returns the
/// rendered output or a usage error.
///
/// Extracts the global observability flags (`--trace <path>`,
/// `--metrics <path>`, `--profile`) before subcommand parsing, runs the
/// command through [`run_observed`], then writes the requested exports.
pub fn run(args: &[String]) -> Result<String, String> {
    let (core_args, trace_path, metrics_path, profile) = extract_global(args)?;
    let obs = numa_obs::Obs::new();
    obs.set_profiling(profile);
    let mut out = run_observed(&core_args, &obs)?;
    if let Some(path) = trace_path {
        std::fs::write(&path, obs.jsonl()).map_err(|e| format!("--trace {path}: {e}"))?;
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, obs.prometheus()).map_err(|e| format!("--metrics {path}: {e}"))?;
    }
    if profile {
        out.push('\n');
        out.push_str(&obs.report());
    }
    Ok(out)
}

/// Run the CLI recording into a caller-supplied [`numa_obs::Obs`] handle.
/// Every invocation emits a `cli_invoked` event and bumps
/// `numio_cli_invocations_total{cmd=...}`, so even read-only subcommands
/// produce a non-empty trace.
pub fn run_observed(args: &[String], obs: &numa_obs::Obs) -> Result<String, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let rest: Vec<String> = it.cloned().collect();
    obs.counter("numio_cli_invocations_total", &[("cmd", cmd.as_str())]).inc();
    obs.event("cli_invoked", 0.0, &[("cmd", cmd.as_str().into())]);
    let _span = obs.span("cli.command");
    if cmd == "faults" {
        // `faults` takes a positional action before the --key options.
        return cmd_faults(&rest, obs);
    }
    let opts = Opts::parse(&rest)?;
    match cmd.as_str() {
        "topo" => cmd_topo(&opts),
        "stream" => cmd_stream(&opts),
        "characterize" => cmd_characterize(&opts, obs),
        "classes" => cmd_classes(&opts),
        "predict" => cmd_predict(&opts),
        "advise" => cmd_advise(&opts),
        "sweep" => cmd_sweep(&opts),
        "host" => cmd_host(&opts),
        "numastat" => cmd_numastat(&opts),
        "numademo" => cmd_numademo(&opts),
        "run" => cmd_run(&opts, obs),
        "diff" => cmd_diff(&opts),
        "sched" => cmd_sched(&opts, obs),
        "latency" => cmd_latency(&opts),
        "probe" => cmd_probe(&opts),
        "emit-script" => cmd_emit_script(&opts),
        "import" => cmd_import(&opts),
        "netpath" => cmd_netpath(&opts),
        "atlas" => cmd_atlas(&opts),
        "sysfs" => cmd_sysfs(&opts),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

/// Split the global observability flags out of the raw argument list so
/// they work uniformly on every subcommand.
fn extract_global(
    args: &[String],
) -> Result<(Vec<String>, Option<String>, Option<String>, bool), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut trace = None;
    let mut metrics = None;
    let mut profile = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            key @ ("--trace" | "--metrics") => {
                let v = args
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("{key} requires a file path"))?;
                if key == "--trace" {
                    trace = Some(v.clone());
                } else {
                    metrics = Some(v.clone());
                }
                i += 2;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    Ok((rest, trace, metrics, profile))
}

fn usage() -> String {
    "usage: iomodel <topo|stream|characterize|classes|predict|advise|sweep|host|numastat|numademo|run|diff|sched|faults|latency|netpath|probe|emit-script|import|atlas|sysfs> [options]\n\
     faults: iomodel faults demo [--seed N] [--check] | validate --plan p.json | run --plan p.json\n\
     run:    iomodel run --jobfile job.fio [--faults plan.json]\n\
     global flags: --trace <path> (JSONL events)  --metrics <path> (Prometheus snapshot)  --profile (wall-clock spans)\n\
     run `iomodel help` for the full option list (see crate docs)"
        .to_string()
}

/// Parsed `--key value` / `--flag` options.
struct Opts {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if !a.starts_with("--") {
                return Err(format!("unexpected argument '{a}'"));
            }
            let key = a.trim_start_matches("--").to_string();
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                pairs.push((key, args[i + 1].clone()));
                i += 2;
            } else {
                flags.push(key);
                i += 1;
            }
        }
        Ok(Opts { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn node(&self, key: &str, default: u16) -> Result<NodeId, String> {
        match self.get(key) {
            None => Ok(NodeId(default)),
            Some(v) => v
                .parse::<u16>()
                .map(NodeId)
                .map_err(|_| format!("--{key} expects a node id, got '{v}'")),
        }
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn mode(&self) -> Result<TransferMode, String> {
        match self.get("mode").unwrap_or("write") {
            "write" | "w" => Ok(TransferMode::Write),
            "read" | "r" => Ok(TransferMode::Read),
            other => Err(format!("--mode must be write|read, got '{other}'")),
        }
    }

    fn nic_op(&self) -> Result<NicOp, String> {
        match self.get("op").unwrap_or("rdma_read") {
            "tcp_send" => Ok(NicOp::TcpSend),
            "tcp_recv" => Ok(NicOp::TcpRecv),
            "rdma_write" => Ok(NicOp::RdmaWrite),
            "rdma_read" => Ok(NicOp::RdmaRead),
            "send_recv" => Ok(NicOp::SendRecv),
            other => Err(format!(
                "--op must be tcp_send|tcp_recv|rdma_write|rdma_read|send_recv, got '{other}'"
            )),
        }
    }

    fn preset(&self) -> Result<Topology, String> {
        match self.get("preset").unwrap_or("dl585") {
            "dl585" => Ok(presets::dl585_testbed()),
            "fig1a" => Ok(presets::fig1a()),
            "fig1b" => Ok(presets::fig1b()),
            "fig1c" => Ok(presets::fig1c()),
            "fig1d" => Ok(presets::fig1d()),
            "intel4" => Ok(presets::intel_4s4n()),
            "amd8" => Ok(presets::amd_8s8n()),
            "blade32" => Ok(presets::blade32()),
            other => Err(format!("unknown preset '{other}'")),
        }
    }
}

fn cmd_topo(opts: &Opts) -> Result<String, String> {
    let topo = opts.preset()?;
    let mut out = String::new();
    if opts.flag("dot") {
        out.push_str(&render::render_dot(&topo));
        return Ok(out);
    }
    out.push_str(&render::render_tree(&topo));
    out.push_str("\nhop distances:\n");
    out.push_str(&render::render_matrix("from", "to", &distance::hop_matrix(&topo)));
    out.push_str("\nSLIT (ideal):\n");
    out.push_str(&render::render_matrix("from", "to", &distance::slit_matrix(&topo)));
    Ok(out)
}

fn cmd_stream(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let fabric = dl585_fabric();
    let bench = StreamBench::paper();
    let mut out = String::new();
    let _ = writeln!(out, "STREAM Copy, 4 threads, max of 100 runs (Gbit/s):");
    out.push_str(&render::render_bw_matrix("cpu", "mem", &bench.matrix(&fabric)));
    let _ = writeln!(out, "\nCPU-centric model of node {target} (threads on {target}):");
    for (i, v) in bench.cpu_centric(&fabric, target).iter().enumerate() {
        let _ = writeln!(out, "  mem {i}: {v:.2}");
    }
    let _ = writeln!(out, "\nMemory-centric model of node {target} (data on {target}):");
    for (i, v) in bench.mem_centric(&fabric, target).iter().enumerate() {
        let _ = writeln!(out, "  cpu {i}: {v:.2}");
    }
    Ok(out)
}

/// Which calibrated machine a command runs against.
fn platform_for(opts: &Opts) -> Result<SimPlatform, String> {
    match opts.get("fabric").unwrap_or("dl585") {
        "dl585" => Ok(SimPlatform::dl585()),
        "split" => Ok(SimPlatform::new(
            numa_fabric::calibration::dl585_split_io_fabric(),
        )),
        other => Err(format!("--fabric must be dl585|split, got '{other}'")),
    }
}

fn cmd_characterize(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let reps: u32 = opts.num("reps", 100)?;
    let mode = opts.mode()?;
    let platform = platform_for(opts)?;
    let model = IoModeler::new().reps(reps).characterize_observed(
        &platform,
        platform.fabric().topology(),
        target,
        mode,
        obs,
    );
    if opts.flag("json") {
        Ok(model.to_json())
    } else {
        Ok(render_model(&model))
    }
}

fn cmd_classes(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let platform = SimPlatform::dl585();
    let fabric = platform.fabric().clone();
    let nic = NicModel::paper();
    let ssd = numa_iodev::SsdModel::paper();
    let mut out = String::new();
    for mode in TransferMode::ALL {
        let model = IoModeler::new().characterize(&platform, target, mode);
        let (label, ops): (&str, Vec<(&str, Vec<f64>)>) = match mode {
            TransferMode::Write => (
                "DEVICE WRITE model (Table IV)",
                vec![
                    ("memcpy", model.means()),
                    (
                        "TCP sender",
                        (0..8)
                            .map(|n| nic.node_ceiling(NicOp::TcpSend, &fabric, NodeId(n)))
                            .collect(),
                    ),
                    (
                        "RDMA_WRITE",
                        (0..8)
                            .map(|n| nic.node_ceiling(NicOp::RdmaWrite, &fabric, NodeId(n)))
                            .collect(),
                    ),
                    (
                        "SSD write",
                        (0..8).map(|n| ssd.node_ceiling(true, &fabric, NodeId(n))).collect(),
                    ),
                ],
            ),
            TransferMode::Read => (
                "DEVICE READ model (Table V)",
                vec![
                    ("memcpy", model.means()),
                    (
                        "TCP receiver",
                        (0..8)
                            .map(|n| nic.node_ceiling(NicOp::TcpRecv, &fabric, NodeId(n)))
                            .collect(),
                    ),
                    (
                        "RDMA_READ",
                        (0..8)
                            .map(|n| nic.node_ceiling(NicOp::RdmaRead, &fabric, NodeId(n)))
                            .collect(),
                    ),
                    (
                        "SSD read",
                        (0..8).map(|n| ssd.node_ceiling(false, &fabric, NodeId(n))).collect(),
                    ),
                ],
            ),
        };
        let _ = writeln!(out, "== {label} ==");
        out.push_str(&render_comparison_table(&model, &ops));
        out.push('\n');
    }
    Ok(out)
}

fn cmd_predict(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let op = opts.nic_op()?;
    let mix_str = opts.get("mix").ok_or("--mix node:count,node:count required")?;
    let mut mix: Vec<(NodeId, u32)> = Vec::new();
    for part in mix_str.split(',') {
        let (n, c) = part
            .split_once(':')
            .ok_or_else(|| format!("bad mix entry '{part}' (want node:count)"))?;
        let node: u16 = n.parse().map_err(|_| format!("bad node '{n}'"))?;
        let count: u32 = c.parse().map_err(|_| format!("bad count '{c}'"))?;
        mix.push((NodeId(node), count));
    }
    if mix.is_empty() {
        return Err("--mix must contain at least one node:count".into());
    }

    let platform = SimPlatform::dl585();
    let mode = if op.to_device() { TransferMode::Write } else { TransferMode::Read };
    let model = IoModeler::new().characterize(&platform, target, mode);
    let nic = NicModel::paper();
    let total: u32 = mix.iter().map(|(_, c)| *c).sum();
    let terms: Vec<(f64, f64)> = mix
        .iter()
        .map(|&(node, count)| {
            let class = &model.classes()[model.class_of(node)];
            (nic.map(op).eval(class.avg_gbps), count as f64 / total as f64)
        })
        .collect();
    let predicted = predict_aggregate(&terms);

    let jobs: Vec<JobSpec> = mix
        .iter()
        .map(|&(node, count)| JobSpec::nic(op, node).numjobs(count).size_gbytes(50.0))
        .collect();
    let measured = numa_fio::run_jobs(platform.fabric(), &jobs)
        .map_err(|e| e.to_string())?
        .aggregate_gbps;
    let err = numio_core::relative_error(predicted, measured);
    let mut out = String::new();
    let _ = writeln!(out, "workload: {op:?} mix {mix_str} against node {target}");
    for (i, ((bw, share), (node, count))) in terms.iter().zip(&mix).enumerate() {
        let _ = writeln!(
            out,
            "  term {i}: node {node} x{count} -> class {} @ {bw:.3} Gbps, share {share:.2}",
            model.class_of(*node) + 1
        );
    }
    let _ = writeln!(out, "predicted (Eq.1): {predicted:.3} Gbps");
    let _ = writeln!(out, "measured  (sim) : {measured:.3} Gbps");
    let _ = writeln!(out, "relative error  : {:.1}%", err * 100.0);
    Ok(out)
}

fn cmd_advise(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let tasks: usize = opts.num("tasks", 8)?;
    let tolerance: f64 = opts.num("tolerance", 0.15)?;
    let mode = opts.mode()?;
    let platform = SimPlatform::dl585();
    let model = IoModeler::new().characterize(&platform, target, mode);
    let advisor = ScheduleAdvisor { equivalence_tolerance: tolerance, avoid_irq_node: true };
    let placement = advisor.place(&model, tasks);
    let naive = advisor.naive_local(&model, tasks);
    let mut out = String::new();
    let _ = writeln!(out, "model classes:");
    for (i, c) in model.classes().iter().enumerate() {
        let nodes: Vec<String> = c.nodes.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(out, "  class {}: {{{}}} avg {:.1}", i + 1, nodes.join(","), c.avg_gbps);
    }
    let _ = writeln!(out, "eligible nodes: {:?}", advisor.eligible_nodes(&model));
    let _ = writeln!(out, "advised placement ({tasks} tasks): {:?}", placement.histogram());
    let _ = writeln!(out, "naive local placement:             {:?}", naive.histogram());
    let _ = writeln!(
        out,
        "max per-node load: advised {} vs naive {}",
        placement.max_load(),
        naive.max_load()
    );
    Ok(out)
}

fn cmd_sweep(opts: &Opts) -> Result<String, String> {
    let op = opts.nic_op()?;
    let size: f64 = opts.num("size", 4.0)?;
    let seed: u64 = opts.num("seed", 42)?;
    let streams: Vec<u32> = match opts.get("streams") {
        None => vec![1, 2, 4, 8, 16],
        Some(s) => s
            .split(',')
            .map(|x| x.parse::<u32>().map_err(|_| format!("bad stream count '{x}'")))
            .collect::<Result<_, _>>()?,
    };
    let fabric = dl585_fabric();
    let nodes = fio_sweep::paper_nodes();
    let points = fio_sweep::sweep(&fabric, &Workload::Nic(op), &nodes, &streams, size, seed)
        .map_err(|e| e.to_string())?;
    let mut out = format!("{op:?} aggregate bandwidth (Gbit/s):\n");
    out.push_str(&fio_sweep::render_table(&points, &nodes, &streams));
    Ok(out)
}

fn cmd_host(opts: &Opts) -> Result<String, String> {
    let nodes: usize = opts.num("nodes", 4)?;
    let reps: u32 = opts.num("reps", 5)?;
    let platform = HostPlatform::new(nodes);
    let topo = match nodes {
        8 => presets::amd_4s8n(),
        4 => presets::intel_4s4n(),
        n => {
            return Err(format!(
                "--nodes must be 4 or 8 for the built-in topologies, got {n}"
            ))
        }
    };
    let modeler = IoModeler {
        reps,
        bytes_per_thread: 16 << 20,
        threads: Some(platform.cores_per_node(NodeId(0))),
        ..IoModeler::new()
    };
    let model =
        modeler.characterize_with_topo(&platform, &topo, NodeId(0), TransferMode::Write);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "real-host memcpy probe (no pinning; run under numactl on a NUMA box):"
    );
    out.push_str(&render_model(&model));
    Ok(out)
}

fn cmd_numastat(_opts: &Opts) -> Result<String, String> {
    let topo = presets::dl585_testbed();
    let mut mem = MemoryState::dl585_idle(&topo);
    // Reproduce the paper's §IV-A demonstration: an idle system already
    // shows node 0 drained, then a local-preferred allocation spills.
    let mut out = String::new();
    out.push_str("numactl --hardware (idle system):\n");
    out.push_str(&mem.render_hardware());
    let _ = mem
        .allocate(NodeId(0), &MemPolicy::LocalPreferred, 2000)
        .map_err(|e| e.to_string())?;
    out.push_str("\nafter a 2000 MiB local-preferred allocation on node 0:\n");
    out.push_str(&mem.render_hardware());
    out.push_str("\nnumastat:\n");
    out.push_str(&mem.stats().render());
    Ok(out)
}

/// Characterize every node of the testbed as a hypothetical device site
/// (both directions, in parallel) — the full-host atlas.
fn cmd_atlas(opts: &Opts) -> Result<String, String> {
    let reps: u32 = opts.num("reps", 20)?;
    let platform = SimPlatform::dl585();
    if opts.flag("json") {
        let atlas = numio_core::Atlas::characterize(&platform, &IoModeler::new().reps(reps));
        return Ok(atlas.to_json());
    }
    let atlas = IoModeler::new().reps(reps).characterize_full_host(&platform);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "full-host atlas: {} models ({} nodes x write/read)\n",
        atlas.len(),
        platform.num_nodes()
    );
    for model in &atlas {
        let dir = match model.mode {
            TransferMode::Write => "write",
            TransferMode::Read => "read ",
        };
        let classes: Vec<String> = model
            .classes()
            .iter()
            .map(|c| {
                format!(
                    "{{{}}}@{:.1}",
                    c.nodes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(","),
                    c.avg_gbps
                )
            })
            .collect();
        let _ = writeln!(out, "node {} {dir}: {}", model.target, classes.join(" > "));
    }
    Ok(out)
}

/// Discover the machine from a Linux sysfs node directory (default
/// `/sys/devices/system/node`) — the hwloc role, honest about the SLIT's
/// limits.
fn cmd_sysfs(opts: &Opts) -> Result<String, String> {
    let root = opts.get("root").unwrap_or("/sys/devices/system/node");
    let d = numa_topology::sysfs::discover_from_root(std::path::Path::new(root), &[])
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "discovered from {root}:");
    out.push_str(&render::render_tree(&d.topology));
    let _ = writeln!(out, "\nfirmware SLIT:");
    out.push_str(&render::render_matrix("from", "to", &d.slit));
    if d.slit_was_flat {
        let _ = writeln!(
            out,
            "\nWARNING: flat SLIT — firmware reports one distance for every\n\
             remote node (the 'often inaccurate' case, ref [18]); the link\n\
             graph below is a full mesh because nothing better is knowable.\n\
             Run the memcpy methodology to recover the real structure."
        );
    } else {
        let _ = writeln!(
            out,
            "\nnote: links are SLIT-tier approximations; real wiring is not\n\
             exposed by sysfs (the paper's hwloc observation, §II-B)."
        );
    }
    Ok(out)
}

fn cmd_numademo(opts: &Opts) -> Result<String, String> {
    let cpu = opts.node("cpu", 0)?;
    let remote = opts.node("remote", 7)?;
    let fabric = dl585_fabric();
    let results = numa_memsys::numademo::run_all(&fabric, cpu, remote);
    let mut out = format!(
        "numademo work-alike: threads on node {cpu}, remote = node {remote} (Gbit/s)\n"
    );
    out.push_str(&numa_memsys::numademo::render(&results));
    Ok(out)
}

/// Parse a fault plan JSON file into a validated [`numa_faults::FaultPlan`].
fn load_fault_plan(path: &str) -> Result<numa_faults::FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    numa_faults::FaultPlan::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// `iomodel faults <demo|validate|run>` — the fault-injection subsystem.
///
/// * `demo [--seed N] [--check]` — run the canonical seeded scenario
///   (link throttle on the 6->7 hop plus an IRQ storm on node 7) against
///   the Table IV workload; `--check` asserts the run degrades and is
///   deterministic, printing one OK line (the CI smoke test).
/// * `validate --plan p.json` — parse and validate a plan file.
/// * `run --plan p.json [--seed N]` — run an explicit plan file against
///   the demo workload.
fn cmd_faults(args: &[String], obs: &numa_obs::Obs) -> Result<String, String> {
    let (action, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (a.as_str(), &args[1..]),
        _ => ("demo", args),
    };
    let opts = Opts::parse(rest)?;
    let fabric = dl585_fabric();
    match action {
        "demo" => {
            let seed: u64 = opts.num("seed", 42)?;
            let report =
                numa_faults::run_demo(&fabric, seed, Some(obs)).map_err(|e| e.to_string())?;
            if opts.flag("check") {
                let again =
                    numa_faults::run_demo(&fabric, seed, None).map_err(|e| e.to_string())?;
                if again.render() != report.render() {
                    return Err("fault demo is not deterministic across runs".into());
                }
                if report.degradation() <= 0.0 {
                    return Err("fault demo produced no degradation".into());
                }
                Ok(format!(
                    "fault demo OK: seed {seed}, {:.1}% aggregate degradation, deterministic\n",
                    100.0 * report.degradation()
                ))
            } else {
                Ok(report.render())
            }
        }
        "validate" => {
            let path = opts.get("plan").ok_or("--plan <plan.json> required")?;
            let plan = load_fault_plan(path)?;
            Ok(format!("{path}: OK ({} faults, seed {})\n", plan.faults.len(), plan.seed))
        }
        "run" => {
            let path = opts.get("plan").ok_or("--plan <plan.json> required")?;
            let plan = load_fault_plan(path)?;
            let report =
                numa_faults::run_plan(&fabric, &plan, Some(obs)).map_err(|e| e.to_string())?;
            Ok(report.render())
        }
        other => Err(format!("faults: unknown action '{other}' (want demo|validate|run)")),
    }
}

fn cmd_run(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    let path = opts.get("jobfile").ok_or("--jobfile <path> required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let named = numa_fio::parse_jobfile(&text).map_err(|e| e.to_string())?;
    if named.is_empty() {
        return Err("job file defines no jobs".into());
    }
    let jobs: Vec<numa_fio::JobSpec> = named.iter().map(|(_, j)| j.clone()).collect();
    let fabric = dl585_fabric();
    let report = if let Some(plan_path) = opts.get("faults") {
        // Arm the fault plan between lowering and running, then fold the
        // raw simulator output into the standard per-job report.
        let plan = load_fault_plan(plan_path)?;
        let (sim, flow_job) = numa_fio::build_sim(&fabric, &jobs).map_err(|e| e.to_string())?;
        let mut sim = sim.with_obs(obs.clone());
        numa_faults::FaultInjector::new(plan)
            .arm(&mut sim, &fabric)
            .map_err(|e| e.to_string())?;
        let raw = sim.run().map_err(|e| e.to_string())?;
        numa_fio::assemble_report(&jobs, raw, &flow_job)
    } else {
        numa_fio::run_jobs_observed(&fabric, &jobs, obs).map_err(|e| e.to_string())?
    };
    let mut out = String::new();
    for ((name, _), jr) in named.iter().zip(&report.jobs) {
        let _ = writeln!(
            out,
            "{name}: {} -> {:.2} Gbit/s aggregate ({} streams, {:.1}s)",
            jr.describe,
            jr.aggregate_gbps,
            jr.per_stream_gbps.len(),
            jr.makespan_s
        );
    }
    let _ = writeln!(
        out,
        "TOTAL: {:.2} Gbit/s over {:.1}s",
        report.aggregate_gbps, report.makespan_s
    );
    Ok(out)
}

fn cmd_diff(opts: &Opts) -> Result<String, String> {
    let a = opts.get("old").ok_or("--old <model.json> required")?;
    let b = opts.get("new").ok_or("--new <model.json> required")?;
    let tolerance: f64 = opts.num("tolerance", 0.05)?;
    let read = |p: &str| -> Result<numio_core::IoPerfModel, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        numio_core::IoPerfModel::from_json(&text).map_err(|e| format!("{p}: {e}"))
    };
    let old = read(a)?;
    let new = read(b)?;
    let d = numio_core::diff_models(&old, &new).map_err(|e| e.to_string())?;
    let mut out = d.render();
    let _ = writeln!(
        out,
        "verdict: {}",
        if d.is_stable(tolerance) { "STABLE (model still valid)" } else { "DRIFTED (re-characterize)" }
    );
    Ok(out)
}

fn cmd_sched(opts: &Opts, obs: &numa_obs::Obs) -> Result<String, String> {
    use numa_sched::policy::{HopGreedy, LocalOnly, ModelDriven, ModelDrivenMigrating, SpreadAll};
    use numa_sched::{metrics, trace, Scheduler};
    let tasks_n: usize = opts.num("tasks", 12)?;
    let gap: f64 = opts.num("gap", 1.0)?;
    let seed: u64 = opts.num("seed", 42)?;
    let mix = match opts.get("mix").unwrap_or("ingest") {
        "ingest" => trace::MixProfile::Ingest,
        "serve" => trace::MixProfile::Serve,
        "uniform" => trace::MixProfile::Uniform,
        other => return Err(format!("--mix must be ingest|serve|uniform, got '{other}'")),
    };
    let platform = SimPlatform::dl585();
    let tasks = if opts.flag("premium") {
        trace::premium_burst(tasks_n, mix, seed)
    } else if opts.flag("burst") {
        trace::burst(tasks_n, mix, seed)
    } else {
        trace::poisson(tasks_n, gap, mix, seed)
    };
    let scheduler = Scheduler::new(&platform);
    let reports = vec![
        scheduler
            .run_observed(tasks.clone(), LocalOnly::new(), obs)
            .map_err(|e| e.to_string())?,
        scheduler
            .run_observed(tasks.clone(), HopGreedy::new(), obs)
            .map_err(|e| e.to_string())?,
        scheduler
            .run_observed(tasks.clone(), SpreadAll::new(), obs)
            .map_err(|e| e.to_string())?,
        scheduler
            .run_observed(tasks.clone(), ModelDriven::from_platform(&platform), obs)
            .map_err(|e| e.to_string())?,
        scheduler
            .run_observed(
                tasks,
                ModelDrivenMigrating::new(ModelDriven::from_platform(&platform), 2.0, 3),
                obs,
            )
            .map_err(|e| e.to_string())?,
    ];
    Ok(metrics::render_comparison(&reports))
}

/// One raw memcpy probe, intended to run under `numactl` on a real NUMA
/// host (see `emit-script`). Prints a CSV line: `node,gbps` per repetition.
fn cmd_probe(opts: &Opts) -> Result<String, String> {
    let node: u16 = opts.num("node", 0)?;
    let threads: u32 = opts.num("threads", 4)?;
    let reps: u32 = opts.num("reps", 20)?;
    let mib: u64 = opts.num("mib", 64)?;
    let platform = HostPlatform { nodes: 1, cores_per_node: threads };
    let samples = platform.run_copy(&numio_core::CopySpec {
        bind: NodeId(0),
        src: NodeId(0),
        dst: NodeId(0),
        threads,
        bytes_per_thread: mib << 20,
        reps,
    });
    let mut out = String::new();
    for s in samples {
        let _ = writeln!(out, "{node},{s:.4}");
    }
    Ok(out)
}

/// Emit a shell script that reproduces Algorithm 1 on a real NUMA host by
/// wrapping `iomodel probe` in `numactl`. Single `--membind` per probe is
/// the standard approximation without libnuma: it measures the node-i <->
/// node-k path component (both buffers on i, copiers on k). Collect the
/// CSV and feed it back through `iomodel import`.
fn cmd_emit_script(opts: &Opts) -> Result<String, String> {
    let target = opts.node("target", 7)?;
    let nodes: usize = opts.num("nodes", 8)?;
    let reps: u32 = opts.num("reps", 20)?;
    let mut out = String::new();
    let _ = writeln!(out, "#!/bin/sh");
    let _ = writeln!(out, "# Algorithm 1 probes for target node {target} on a real NUMA host.");
    let _ = writeln!(out, "# Requires numactl and the iomodel binary on PATH.");
    let _ = writeln!(out, "set -e");
    let _ = writeln!(out, "OUT=iomodel_probes.csv");
    let _ = writeln!(out, ": > \"$OUT\"");
    for i in 0..nodes {
        let _ = writeln!(
            out,
            "numactl --cpunodebind={target} --membind={i} \\\n  iomodel probe --node {i} --reps {reps} >> \"$OUT\""
        );
    }
    let _ = writeln!(
        out,
        "echo \"done; build the model with: iomodel import --csv $OUT --target {target} --mode write\""
    );
    Ok(out)
}

/// Build a performance model from probe CSV (`node,gbps` lines, multiple
/// samples per node) and print/persist it.
fn cmd_import(opts: &Opts) -> Result<String, String> {
    let path = opts.get("csv").ok_or("--csv <file> required")?;
    let target = opts.node("target", 7)?;
    let mode = opts.mode()?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let topo = presets::dl585_testbed();
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); topo.num_nodes()];
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (n, v) = line
            .split_once(',')
            .ok_or_else(|| format!("{path}:{}: expected node,gbps", lineno + 1))?;
        let n: usize = n.trim().parse().map_err(|_| format!("{path}:{}: bad node", lineno + 1))?;
        let v: f64 = v.trim().parse().map_err(|_| format!("{path}:{}: bad gbps", lineno + 1))?;
        if n >= samples.len() {
            return Err(format!("{path}:{}: node {n} out of range", lineno + 1));
        }
        samples[n].push(v);
    }
    if samples.iter().any(|s| s.is_empty()) {
        let missing: Vec<usize> =
            samples.iter().enumerate().filter(|(_, s)| s.is_empty()).map(|(i, _)| i).collect();
        return Err(format!("no samples for nodes {missing:?}"));
    }
    let per_node: Vec<numa_engine::Summary> =
        samples.iter().map(|s| numa_engine::Summary::from(s)).collect();
    let means: Vec<f64> = per_node.iter().map(|s| s.mean).collect();
    let classes = numio_core::classify(
        &topo,
        target,
        &means,
        numio_core::ClassifyParams::default(),
    );
    let model = numio_core::IoPerfModel::new(
        target,
        mode,
        per_node,
        classes,
        format!("imported:{path}"),
    );
    if opts.flag("json") {
        Ok(model.to_json())
    } else {
        Ok(render_model(&model))
    }
}

fn cmd_latency(opts: &Opts) -> Result<String, String> {
    let cpu = opts.node("cpu", 0)?;
    let topo = presets::dl585_testbed();
    let bench = numa_memsys::LatencyBench::paper();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pointer-chase latency staircase (lat_mem_rd style), threads on node {cpu}:"
    );
    let _ = writeln!(out, "{:>12} {:>12} {:>12} {:>12}", "working set", "local", "neighbour", "remote(n4)");
    let neighbour = NodeId(cpu.0 ^ 1);
    for point in bench.curve(&topo, cpu, cpu, 256 << 20) {
        let nb = bench.latency_ns(&topo, cpu, neighbour, point.bytes);
        let far = bench.latency_ns(&topo, cpu, NodeId(4), point.bytes);
        let label = if point.bytes >= 1 << 20 {
            format!("{} MiB", point.bytes >> 20)
        } else {
            format!("{} KiB", point.bytes >> 10)
        };
        let _ = writeln!(out, "{label:>12} {:>10.1}ns {nb:>10.1}ns {far:>10.1}ns", point.ns);
    }
    let _ = writeln!(
        out,
        "
measured NUMA factor (DRAM plateaus): {:.2} (Table I row 2: 2.7)",
        bench.measured_numa_factor(&topo)
    );
    Ok(out)
}

fn cmd_netpath(opts: &Opts) -> Result<String, String> {
    let op = opts.nic_op()?;
    let rtt: f64 = opts.num("rtt", 0.005)?;
    let local = dl585_fabric();
    let remote = dl585_fabric();
    let mut path = numa_iodev::TwoHostPath::paper();
    path.rtt_ms = rtt;
    let m = path.matrix(op, &local, &remote);
    let mut out = format!(
        "end-to-end {op:?} between two testbed hosts (RTT {rtt} ms), Gbit/s:\n"
    );
    let _ = write!(out, "{:>8}", "tx\\rx");
    for r in 0..8 {
        let _ = write!(out, "{r:>8}");
    }
    let _ = writeln!(out);
    for (l, row) in m.iter().enumerate() {
        let _ = write!(out, "{l:>8}");
        for v in row {
            let _ = write!(out, "{v:>8.2}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "window/RTT cap: {:.2} Gbit/s", path.window_cap_gbps());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn no_args_is_usage_error() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn unknown_command_reports() {
        let e = run_str(&["bogus"]).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_str(&["help"]).unwrap().contains("usage"));
    }

    #[test]
    fn topo_lists_hops_and_devices() {
        let out = run_str(&["topo"]).unwrap();
        assert!(out.contains("dl585-g7"));
        assert!(out.contains("hop distances"));
        assert!(out.contains("SLIT"));
    }

    #[test]
    fn topo_dot_and_presets() {
        let out = run_str(&["topo", "--preset", "fig1b", "--dot"]).unwrap();
        assert!(out.starts_with("graph"));
        assert!(run_str(&["topo", "--preset", "nope"]).is_err());
    }

    #[test]
    fn stream_prints_matrix_and_models() {
        let out = run_str(&["stream"]).unwrap();
        assert!(out.contains("CPU-centric model of node 7"));
        assert!(out.contains("Memory-centric"));
        assert!(out.contains("21.")); // the 21.34 anchor, modulo noise
    }

    #[test]
    fn characterize_text_and_json() {
        let out = run_str(&["characterize", "--reps", "5"]).unwrap();
        assert!(out.contains("class 1: nodes {6, 7}"));
        let json = run_str(&["characterize", "--reps", "5", "--json"]).unwrap();
        let model = numio_core::IoPerfModel::from_json(&json).unwrap();
        assert_eq!(model.target, NodeId(7));
    }

    #[test]
    fn characterize_split_fabric_targets_node3() {
        let out =
            run_str(&["characterize", "--reps", "3", "--fabric", "split", "--target", "3"])
                .unwrap();
        assert!(out.contains("target node 3"));
        assert!(out.contains("class 1: nodes {2, 3}"), "{out}");
        assert!(run_str(&["characterize", "--fabric", "moon"]).is_err());
    }

    #[test]
    fn characterize_read_mode() {
        let out = run_str(&["characterize", "--reps", "5", "--mode", "read"]).unwrap();
        assert!(out.contains("device read"));
        assert!(out.contains("class 4"), "{out}");
    }

    #[test]
    fn classes_prints_both_tables() {
        let out = run_str(&["classes"]).unwrap();
        assert!(out.contains("Table IV"));
        assert!(out.contains("Table V"));
        assert!(out.contains("RDMA_WRITE"));
        assert!(out.contains("SSD read"));
    }

    #[test]
    fn predict_reproduces_eq1_example() {
        let out = run_str(&["predict", "--op", "rdma_read", "--mix", "2:2,0:2"]).unwrap();
        assert!(out.contains("predicted (Eq.1): 20."), "{out}");
        assert!(out.contains("measured"), "{out}");
        // error a few percent
        let err_line = out.lines().find(|l| l.contains("relative error")).unwrap();
        assert!(err_line.contains('%'));
    }

    #[test]
    fn predict_requires_mix() {
        assert!(run_str(&["predict", "--op", "rdma_read"]).is_err());
        assert!(run_str(&["predict", "--op", "rdma_read", "--mix", "2-3"]).is_err());
    }

    #[test]
    fn advise_spreads_load() {
        let out = run_str(&["advise", "--tasks", "6"]).unwrap();
        assert!(out.contains("advised placement"));
        assert!(out.contains("max per-node load"));
    }

    #[test]
    fn sweep_renders_table() {
        let out = run_str(&["sweep", "--op", "rdma_write", "--streams", "1,2", "--size", "2"])
            .unwrap();
        assert!(out.contains("RdmaWrite"));
        assert!(out.contains("node7"));
    }

    #[test]
    fn host_runs_quickly_with_small_reps() {
        let out = run_str(&["host", "--nodes", "4", "--reps", "1"]).unwrap();
        assert!(out.contains("real-host memcpy probe"));
        assert!(run_str(&["host", "--nodes", "5"]).is_err());
    }

    #[test]
    fn numastat_shows_node0_drain() {
        let out = run_str(&["numastat"]).unwrap();
        assert!(out.contains("node 0 free: 1440 MB"));
        assert!(out.contains("numa_hit"));
    }

    #[test]
    fn atlas_json_is_a_loadable_atlas() {
        let out = run_str(&["atlas", "--reps", "2", "--json"]).unwrap();
        let atlas = numio_core::Atlas::from_json(&out).unwrap();
        assert_eq!(atlas.models().len(), 16);
    }

    #[test]
    fn atlas_covers_every_node_both_ways() {
        let out = run_str(&["atlas", "--reps", "2"]).unwrap();
        assert!(out.contains("16 models"));
        for n in 0..8 {
            assert!(out.contains(&format!("node {n} write:")), "{out}");
            assert!(out.contains(&format!("node {n} read :")), "{out}");
        }
    }

    #[test]
    fn sysfs_discovery_command_runs_when_sysfs_exists() {
        if std::path::Path::new("/sys/devices/system/node").exists() {
            let out = run_str(&["sysfs"]).unwrap();
            assert!(out.contains("discovered from"));
            assert!(out.contains("SLIT"));
        }
        assert!(run_str(&["sysfs", "--root", "/no/such/dir"]).is_err());
    }

    #[test]
    fn numademo_renders_grid() {
        let out = run_str(&["numademo", "--cpu", "3", "--remote", "7"]).unwrap();
        assert!(out.contains("memset"));
        assert!(out.contains("interleave"));
    }

    #[test]
    fn run_executes_a_jobfile() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.fio");
        std::fs::write(&path, "[j]\nioengine=rdma\nverb=write\ncpunodebind=3\nsize=4g\n")
            .unwrap();
        let out = run_str(&["run", "--jobfile", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("TOTAL"), "{out}");
        assert!(out.contains("17.0"), "node 3 class level: {out}");
        assert!(run_str(&["run", "--jobfile", "/no/such/file"]).is_err());
        assert!(run_str(&["run"]).is_err());
    }

    #[test]
    fn faults_demo_renders_and_is_deterministic() {
        let a = run_str(&["faults", "demo", "--seed", "11"]).unwrap();
        let b = run_str(&["faults", "demo", "--seed", "11"]).unwrap();
        assert_eq!(a, b, "seeded demo must render bit-identically");
        assert!(a.contains("fault plan (seed 11)"), "{a}");
        assert!(a.contains("BASELINE"));
        assert!(a.contains("FAULTED"));
        assert!(a.contains("degradation:"));
        // Bare `faults` defaults to the demo action.
        assert!(run_str(&["faults", "--seed", "11"]).unwrap().contains("FAULTED"));
    }

    #[test]
    fn faults_demo_check_is_the_smoke_test() {
        let out = run_str(&["faults", "demo", "--check"]).unwrap();
        assert!(out.contains("fault demo OK"), "{out}");
        assert!(out.contains("deterministic"), "{out}");
    }

    #[test]
    fn faults_validate_and_run_accept_a_plan_file() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        std::fs::write(&path, numa_faults::FaultPlan::demo(5).to_json()).unwrap();
        let ok = run_str(&["faults", "validate", "--plan", path.to_str().unwrap()]).unwrap();
        assert!(ok.contains("OK (2 faults, seed 5)"), "{ok}");
        let run = run_str(&["faults", "run", "--plan", path.to_str().unwrap()]).unwrap();
        assert!(run.contains("degradation:"), "{run}");
        // Malformed plan files are reported with the offending path.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"seed\": 1, \"faults\": [{\"kind\": \"gremlins\"}]}").unwrap();
        let e = run_str(&["faults", "validate", "--plan", bad.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("malformed fault plan"), "{e}");
        assert!(run_str(&["faults", "validate"]).is_err());
        assert!(run_str(&["faults", "sabotage"]).is_err());
    }

    #[test]
    fn run_with_faults_degrades_the_jobfile_total() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let job = dir.join("faulted.fio");
        std::fs::write(&job, "[j]\nioengine=rdma\nverb=write\ncpunodebind=6\nsize=4g\n")
            .unwrap();
        let plan = dir.join("halve.json");
        std::fs::write(
            &plan,
            "{\"seed\": 0, \"faults\": [{\"kind\": \"link_degrade\", \"from\": 6, \"to\": 7, \"factor\": 0.1, \"start_s\": 0.0}]}",
        )
        .unwrap();
        let healthy = run_str(&["run", "--jobfile", job.to_str().unwrap()]).unwrap();
        let faulted = run_str(&[
            "run",
            "--jobfile",
            job.to_str().unwrap(),
            "--faults",
            plan.to_str().unwrap(),
        ])
        .unwrap();
        let total = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("TOTAL:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            total(&faulted) < total(&healthy) * 0.5,
            "faulted {faulted} vs healthy {healthy}"
        );
        assert!(run_str(&["run", "--jobfile", job.to_str().unwrap(), "--faults", "/no/plan"])
            .is_err());
    }

    #[test]
    fn diff_detects_stability() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let model = run_str(&["characterize", "--reps", "3", "--json"]).unwrap();
        std::fs::write(&a, &model).unwrap();
        let out = run_str(&[
            "diff",
            "--old",
            a.to_str().unwrap(),
            "--new",
            a.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("STABLE"));
        assert!(run_str(&["diff", "--old", a.to_str().unwrap()]).is_err());
    }

    #[test]
    fn global_trace_and_metrics_flags_write_files() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("sched_trace.jsonl");
        let metrics = dir.join("sched_metrics.prom");
        let out = run_str(&[
            "sched",
            "--tasks",
            "4",
            "--burst",
            "--seed",
            "7",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("best mean latency"));
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"ev\":\"cli_invoked\""), "{t}");
        assert!(t.contains("\"ev\":\"alloc_round\""), "{t}");
        assert!(t.contains("\"ev\":\"task_finished\""), "{t}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("numio_alloc_rounds_total{component=\"sched\"}"), "{m}");
        assert!(m.contains("numio_flow_completions_total{component=\"sched\"}"), "{m}");
        assert!(m.contains("numio_episode_latency_seconds_bucket"), "{m}");
        // No wall-clock series without --profile: exports stay reproducible.
        assert!(!m.contains("numio_op_seconds"), "{m}");
    }

    #[test]
    fn seeded_runs_write_identical_traces() {
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let go = |name: &str| {
            let trace = dir.join(name);
            run_str(&["sched", "--tasks", "4", "--seed", "9", "--trace", trace.to_str().unwrap()])
                .unwrap();
            std::fs::read(&trace).unwrap()
        };
        let a = go("det_a.jsonl");
        let b = go("det_b.jsonl");
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn every_subcommand_produces_a_nonempty_trace() {
        let obs = numa_obs::Obs::new();
        let args: Vec<String> = ["topo"].iter().map(|s| s.to_string()).collect();
        run_observed(&args, &obs).unwrap();
        assert!(obs.jsonl().contains("\"cmd\":\"topo\""));
        assert_eq!(obs.counter("numio_cli_invocations_total", &[("cmd", "topo")]).get(), 1);
    }

    #[test]
    fn characterize_records_probe_metrics() {
        let obs = numa_obs::Obs::new();
        let args: Vec<String> =
            ["characterize", "--reps", "3"].iter().map(|s| s.to_string()).collect();
        run_observed(&args, &obs).unwrap();
        assert_eq!(obs.counter("numio_probes_total", &[("node", "N7")]).get(), 3);
        assert!(obs.prometheus().contains("numio_probe_gbps_bucket"));
    }

    #[test]
    fn profile_flag_appends_report_and_times_ops() {
        let out = run_str(&["sched", "--tasks", "3", "--burst", "--profile"]).unwrap();
        assert!(out.contains("numio_op_seconds"), "{out}");
        assert!(out.contains("sched.alloc_round"), "{out}");
    }

    #[test]
    fn trace_flag_requires_a_path() {
        let e = run_str(&["topo", "--trace"]).unwrap_err();
        assert!(e.contains("requires a file path"), "{e}");
    }

    #[test]
    fn sched_compares_policies() {
        let out = run_str(&["sched", "--tasks", "4", "--burst", "--mix", "ingest"]).unwrap();
        assert!(out.contains("local-only"));
        assert!(out.contains("model-driven"));
        assert!(out.contains("best mean latency"));
        assert!(run_str(&["sched", "--mix", "chaos"]).is_err());
    }

    #[test]
    fn probe_emits_csv() {
        let out = run_str(&["probe", "--node", "3", "--reps", "2", "--mib", "1"]).unwrap();
        let lines: Vec<&str> = out.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("3,"));
        let v: f64 = lines[0].split(',').nth(1).unwrap().parse().unwrap();
        assert!(v > 0.0);
    }

    #[test]
    fn emit_script_wraps_numactl() {
        let out = run_str(&["emit-script", "--target", "7", "--nodes", "8"]).unwrap();
        assert!(out.starts_with("#!/bin/sh"));
        assert_eq!(out.matches("numactl --cpunodebind=7").count(), 8);
        assert!(out.contains("--membind=0"));
        assert!(out.contains("iomodel import"));
    }

    #[test]
    fn import_round_trips_through_csv() {
        // Fabricate a CSV with the Table IV write-direction means.
        let means = [42.9, 44.6, 27.3, 26.0, 46.5, 45.0, 46.5, 53.5];
        let mut csv = String::from("# node,gbps\n");
        for (n, m) in means.iter().enumerate() {
            for k in 0..3 {
                csv.push_str(&format!("{n},{}\n", m + k as f64 * 0.01));
            }
        }
        let dir = std::env::temp_dir().join("numio-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probes.csv");
        std::fs::write(&path, csv).unwrap();
        let out = run_str(&["import", "--csv", path.to_str().unwrap(), "--target", "7"]).unwrap();
        assert!(out.contains("class 1: nodes {6, 7}"), "{out}");
        assert!(out.contains("class 3: nodes {2, 3}"), "{out}");
        // Missing nodes are reported.
        std::fs::write(&path, "0,10.0\n").unwrap();
        let e = run_str(&["import", "--csv", path.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("no samples"), "{e}");
    }

    #[test]
    fn latency_staircase_renders() {
        let out = run_str(&["latency", "--cpu", "2"]).unwrap();
        assert!(out.contains("working set"));
        assert!(out.contains("MiB"));
        assert!(out.contains("NUMA factor"));
    }

    #[test]
    fn netpath_matrix_renders() {
        let out = run_str(&["netpath", "--op", "tcp_send"]).unwrap();
        assert!(out.contains("end-to-end TcpSend"));
        assert!(out.contains("window/RTT"));
        let wan = run_str(&["netpath", "--op", "rdma_write", "--rtt", "50"]).unwrap();
        assert!(wan.contains("0.67"), "window-limited WAN: {wan}");
    }

    #[test]
    fn bad_option_values_error() {
        assert!(run_str(&["characterize", "--target", "banana"]).is_err());
        assert!(run_str(&["characterize", "--mode", "sideways"]).is_err());
        assert!(run_str(&["sweep", "--op", "carrier-pigeon"]).is_err());
        assert!(run_str(&["topo", "stray"]).is_err());
    }
}
