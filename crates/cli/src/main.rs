//! `iomodel` — NUMA I/O bandwidth characterization tool.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match numio_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("iomodel: {e}");
            std::process::exit(2);
        }
    }
}
