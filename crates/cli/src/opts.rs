//! `--key value` / `--flag` option parsing shared by every subcommand.

use numa_iodev::NicOp;
use numa_topology::{presets, NodeId, Topology};
use numio_core::{DeviceSelector, TransferMode};

/// Parsed `--key value` / `--flag` options.
pub(crate) struct Opts {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    pub(crate) fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if !a.starts_with("--") {
                return Err(format!("unexpected argument '{a}'"));
            }
            let key = a.trim_start_matches("--").to_string();
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                pairs.push((key, args[i + 1].clone()));
                i += 2;
            } else {
                flags.push(key);
                i += 1;
            }
        }
        Ok(Opts { pairs, flags })
    }

    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub(crate) fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    pub(crate) fn node(&self, key: &str, default: u16) -> Result<NodeId, String> {
        match self.get(key) {
            None => Ok(NodeId(default)),
            Some(v) => v
                .parse::<u16>()
                .map(NodeId)
                .map_err(|_| format!("--{key} expects a node id, got '{v}'")),
        }
    }

    pub(crate) fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    pub(crate) fn mode(&self) -> Result<TransferMode, String> {
        match self.get("mode").unwrap_or("write") {
            "write" | "w" => Ok(TransferMode::Write),
            "read" | "r" => Ok(TransferMode::Read),
            other => Err(format!("--mode must be write|read, got '{other}'")),
        }
    }

    pub(crate) fn device(&self) -> Result<DeviceSelector, String> {
        match self.get("device") {
            None => Ok(DeviceSelector::Probe),
            Some(v) => DeviceSelector::parse(v).ok_or_else(|| {
                format!(
                    "--device must be probe|ssd0|ssd0:<engine>-<access> \
                     (e.g. ssd0:sync-buffered), got '{v}'"
                )
            }),
        }
    }

    pub(crate) fn nic_op(&self) -> Result<NicOp, String> {
        match self.get("op").unwrap_or("rdma_read") {
            "tcp_send" => Ok(NicOp::TcpSend),
            "tcp_recv" => Ok(NicOp::TcpRecv),
            "rdma_write" => Ok(NicOp::RdmaWrite),
            "rdma_read" => Ok(NicOp::RdmaRead),
            "send_recv" => Ok(NicOp::SendRecv),
            other => Err(format!(
                "--op must be tcp_send|tcp_recv|rdma_write|rdma_read|send_recv, got '{other}'"
            )),
        }
    }

    pub(crate) fn preset(&self) -> Result<Topology, String> {
        match self.get("preset").unwrap_or("dl585") {
            "dl585" => Ok(presets::dl585_testbed()),
            "fig1a" => Ok(presets::fig1a()),
            "fig1b" => Ok(presets::fig1b()),
            "fig1c" => Ok(presets::fig1c()),
            "fig1d" => Ok(presets::fig1d()),
            "intel4" => Ok(presets::intel_4s4n()),
            "amd8" => Ok(presets::amd_8s8n()),
            "blade32" => Ok(presets::blade32()),
            other => Err(format!("unknown preset '{other}'")),
        }
    }
}
