//! The one backend-construction helper every subcommand shares: resolves
//! the global `--backend sim|host|host:<n>|replay:<file>` flag (and, for
//! the simulator, `--fabric dl585|split`) into an
//! [`AnyPlatform`](numa_backend::AnyPlatform).

use crate::opts::Opts;
use numa_backend::AnyPlatform;
use numa_fabric::Fabric;
use numio_core::{Platform, SimPlatform};

/// Which measurement backend a command runs against.
pub(crate) fn platform_for(opts: &Opts) -> Result<AnyPlatform, String> {
    match opts.get("backend").unwrap_or("sim") {
        "sim" => Ok(AnyPlatform::Sim(sim_platform_for(opts)?)),
        spec => AnyPlatform::from_spec(spec).map_err(|e| e.to_string()),
    }
}

/// Which calibrated simulated machine `--fabric` selects.
pub(crate) fn sim_platform_for(opts: &Opts) -> Result<SimPlatform, String> {
    match opts.get("fabric").unwrap_or("dl585") {
        "dl585" => Ok(SimPlatform::dl585()),
        "split" => Ok(SimPlatform::new(
            numa_fabric::calibration::dl585_split_io_fabric(),
        )),
        other => Err(format!("--fabric must be dl585|split, got '{other}'")),
    }
}

/// The backend's simulator fabric, for commands that run jobs or episodes
/// rather than probes. Fabric-less backends (real host, replay) are a
/// clear error instead of a panic.
pub(crate) fn fabric_for(opts: &Opts) -> Result<Fabric, String> {
    let platform = platform_for(opts)?;
    fabric_of(&platform)
}

/// Pull an owned fabric out of an already-built backend.
pub(crate) fn fabric_of(platform: &AnyPlatform) -> Result<Fabric, String> {
    Platform::fabric(platform).cloned().ok_or_else(|| {
        format!(
            "backend '{}' exposes no simulator fabric; this command needs --backend sim",
            platform.label()
        )
    })
}
