//! Property-based tests: allocation state machine and STREAM invariants.

use numa_memsys::{MemPolicy, MemoryState, StreamBench, StreamOp};
use numa_fabric::calibration::dl585_fabric;
use numa_topology::{presets, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { task: u16, policy: u8, target: u16, mib: u64 },
    FreeOldest,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..8, 0u8..4, 0u16..8, 1u64..2000).prop_map(|(task, policy, target, mib)| {
                Op::Alloc { task, policy, target, mib }
            }),
            Just(Op::FreeOldest),
        ],
        1..40,
    )
}

fn policy_of(code: u8, target: u16) -> MemPolicy {
    match code {
        0 => MemPolicy::LocalPreferred,
        1 => MemPolicy::Bind(NodeId(target)),
        2 => MemPolicy::Preferred(NodeId(target)),
        _ => MemPolicy::interleave_all(8),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocation_state_machine_conserves_memory(ops in arb_ops()) {
        let topo = presets::dl585_testbed();
        let mut mem = MemoryState::new(&topo);
        let initial_free: u64 = (0..8).map(|i| mem.free_mib(NodeId(i))).sum();
        let mut live: Vec<Vec<(NodeId, u64)>> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc { task, policy, target, mib } => {
                    let p = policy_of(policy, target);
                    if let Ok(placement) = mem.allocate(NodeId(task), &p, mib) {
                        // The placement sums to exactly the request.
                        let placed: u64 = placement.iter().map(|&(_, m)| m).sum();
                        prop_assert_eq!(placed, mib);
                        // Bind placements land only on the bound node.
                        if let MemPolicy::Bind(n) = p {
                            prop_assert!(placement.iter().all(|&(m, _)| m == n));
                        }
                        live.push(placement);
                    }
                }
                Op::FreeOldest => {
                    if !live.is_empty() {
                        let placement = live.remove(0);
                        mem.free(&placement);
                    }
                }
            }
            // Free memory never exceeds totals and never goes negative
            // (u64 underflow would wrap loudly).
            for i in 0..8u16 {
                prop_assert!(mem.free_mib(NodeId(i)) <= mem.total_mib(NodeId(i)));
            }
        }
        // Conservation: free + live == initial free.
        let live_total: u64 = live.iter().flatten().map(|&(_, m)| m).sum();
        let free_total: u64 = (0..8).map(|i| mem.free_mib(NodeId(i))).sum();
        prop_assert_eq!(free_total + live_total, initial_free);
    }

    #[test]
    fn numastat_hits_and_misses_account_for_every_page(ops in arb_ops()) {
        let topo = presets::dl585_testbed();
        let mut mem = MemoryState::new(&topo);
        let mut allocated: u64 = 0;
        for op in ops {
            if let Op::Alloc { task, policy, target, mib } = op {
                if mem.allocate(NodeId(task), &policy_of(policy, target), mib).is_ok() {
                    allocated += mib;
                }
            }
        }
        let stats = mem.stats();
        prop_assert_eq!(stats.total_hits() + stats.total_misses(), allocated);
        // Misses and foreigns pair up globally.
        let foreign: u64 = (0..8).map(|i| stats.node(NodeId(i)).numa_foreign).sum();
        prop_assert_eq!(stats.total_misses(), foreign);
    }

    #[test]
    fn stream_max_never_exceeds_the_ideal(
        cpu in 0u16..8,
        mem in 0u16..8,
        reps in 1u32..50,
        noise in 0.0f64..0.2,
    ) {
        let fabric = dl585_fabric();
        let bench = StreamBench { reps, noise, ..StreamBench::paper() };
        let r = bench.run(&fabric, NodeId(cpu), NodeId(mem));
        let ideal = fabric.pio_bandwidth(NodeId(cpu), NodeId(mem));
        prop_assert!(r.max_gbps <= ideal + 1e-9);
        prop_assert!(r.summary.min >= ideal * (1.0 - noise) - 1e-9);
        prop_assert!(r.cache_valid);
    }

    #[test]
    fn stream_kernels_stay_within_seven_percent(cpu in 0u16..8, mem in 0u16..8) {
        let fabric = dl585_fabric();
        let values: Vec<f64> = StreamOp::ALL
            .iter()
            .map(|&op| {
                StreamBench { op, noise: 0.0, ..StreamBench::paper() }
                    .run(&fabric, NodeId(cpu), NodeId(mem))
                    .max_gbps
            })
            .collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0_f64, f64::max);
        prop_assert!(max / min < 1.07, "{values:?}");
    }
}
