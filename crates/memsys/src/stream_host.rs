//! Real STREAM kernels on the host: the four array operations executed on
//! actual memory with actual threads, McCalpin-style.
//!
//! This is the measurement half of the real-host story: `HostPlatform`
//! (in `numio-core`) runs memcpy probes for Algorithm 1; this module runs
//! the classic STREAM benchmark itself — Copy / Scale / Add / Triad over
//! `f64` arrays, one slice per worker thread, best-of-N reporting, with
//! the paper's ≥4× LLC sizing rule checkable against the machine you are
//! on. Pin externally with `numactl` exactly as the paper did (§IV-A).

use crate::error::MemsysError;
use crate::stream::StreamOp;
use std::time::Instant;

/// Configuration for a real STREAM run.
#[derive(Debug, Clone, PartialEq)]
pub struct RealStream {
    /// Elements per array (`f64`s). The paper's rule: at least 4× the LLC
    /// (2,621,440 elements for a 5 MiB cache).
    pub elems: usize,
    /// Worker threads; each owns a contiguous slice.
    pub threads: usize,
    /// Repetitions; the maximum is reported (the paper's protocol).
    pub reps: u32,
}

impl Default for RealStream {
    fn default() -> Self {
        RealStream { elems: 2_621_440, threads: 4, reps: 10 }
    }
}

/// One real measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RealStreamResult {
    /// The kernel.
    pub op: StreamOp,
    /// Best observed rate, Gbit/s (counting the kernel's bytes-per-element
    /// exactly as STREAM does: 16 for Copy/Scale, 24 for Add/Triad).
    pub max_gbps: f64,
    /// All samples.
    pub samples: Vec<f64>,
    /// Checksum of the destination array (keeps the optimizer honest and
    /// lets tests verify the arithmetic).
    pub checksum: f64,
}

/// Bytes moved per element per iteration, per the STREAM counting rules.
pub fn bytes_per_elem(op: StreamOp) -> u64 {
    match op {
        StreamOp::Copy | StreamOp::Scale => 16,
        StreamOp::Add | StreamOp::Triad => 24,
    }
}

impl RealStream {
    /// Check the configuration without measuring anything.
    pub fn validate(&self) -> Result<(), MemsysError> {
        if self.threads < 1 {
            return Err(MemsysError::InvalidConfig {
                reason: "at least one worker thread".to_string(),
            });
        }
        if self.reps < 1 {
            return Err(MemsysError::InvalidConfig {
                reason: "at least one repetition".to_string(),
            });
        }
        if self.elems < self.threads {
            return Err(MemsysError::InvalidConfig {
                reason: format!(
                    "arrays must cover every thread: {} elems < {} threads",
                    self.elems, self.threads
                ),
            });
        }
        Ok(())
    }

    /// Run one kernel for real, panicking on a bad configuration or a
    /// failed thread spawn. Use [`try_run`](Self::try_run) when the
    /// configuration comes from user input; the panic message is the
    /// typed error's `Display`.
    pub fn run(&self, op: StreamOp) -> RealStreamResult {
        self.try_run(op).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run one kernel for real. Returns a typed [`MemsysError`] instead of
    /// panicking (or, as an older revision did, silently reporting zero
    /// bandwidth) when the configuration is unusable or the OS refuses to
    /// spawn a worker.
    pub fn try_run(&self, op: StreamOp) -> Result<RealStreamResult, MemsysError> {
        self.validate()?;
        const Q: f64 = 3.0; // STREAM's scalar
        let n = self.elems;
        let mut a = vec![1.0_f64; n];
        let mut b = vec![2.0_f64; n];
        let mut c = vec![0.0_f64; n];

        let mut samples = Vec::with_capacity(self.reps as usize);
        for _ in 0..self.reps {
            let start = Instant::now();
            // Split all three arrays into matching per-thread chunks.
            let chunk = n.div_ceil(self.threads);
            let mut spawn_err = None;
            std::thread::scope(|s| {
                let mut az: &mut [f64] = &mut a;
                let mut bz: &mut [f64] = &mut b;
                let mut cz: &mut [f64] = &mut c;
                let mut idx = 0usize;
                while !az.is_empty() {
                    let take = chunk.min(az.len());
                    let (ah, at) = az.split_at_mut(take);
                    let (bh, bt) = bz.split_at_mut(take);
                    let (ch, ct) = cz.split_at_mut(take);
                    az = at;
                    bz = bt;
                    cz = ct;
                    let spawned = std::thread::Builder::new()
                        .name(format!("stream-{op:?}-{idx}"))
                        .spawn_scoped(s, move || match op {
                            StreamOp::Copy => {
                                ch.copy_from_slice(ah);
                            }
                            StreamOp::Scale => {
                                for (bi, ci) in bh.iter_mut().zip(ch.iter()) {
                                    *bi = Q * ci;
                                }
                            }
                            StreamOp::Add => {
                                for ((ci, ai), bi) in ch.iter_mut().zip(ah.iter()).zip(bh.iter()) {
                                    *ci = ai + bi;
                                }
                            }
                            StreamOp::Triad => {
                                for ((ai, bi), ci) in ah.iter_mut().zip(bh.iter()).zip(ch.iter()) {
                                    *ai = bi + Q * ci;
                                }
                            }
                        });
                    if let Err(e) = spawned {
                        spawn_err = Some(MemsysError::SpawnFailed {
                            thread: idx,
                            reason: e.to_string(),
                        });
                        break; // already-spawned workers join at scope end
                    }
                    idx += 1;
                }
            });
            if let Some(e) = spawn_err {
                return Err(e);
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            let gbits = (n as u64 * bytes_per_elem(op)) as f64 * 8.0 / 1e9;
            samples.push(gbits / secs);
        }
        let max_gbps = samples.iter().cloned().fold(0.0, f64::max);
        let checksum = match op {
            StreamOp::Copy | StreamOp::Add => c.iter().sum(),
            StreamOp::Scale => b.iter().sum(),
            StreamOp::Triad => a.iter().sum(),
        };
        Ok(RealStreamResult { op, max_gbps, samples, checksum })
    }

    /// Run all four kernels (the classic STREAM report order), panicking
    /// on failure; see [`try_run_all`](Self::try_run_all).
    pub fn run_all(&self) -> Vec<RealStreamResult> {
        self.try_run_all().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run all four kernels, stopping at the first failure.
    pub fn try_run_all(&self) -> Result<Vec<RealStreamResult>, MemsysError> {
        StreamOp::ALL.iter().map(|&op| self.try_run(op)).collect()
    }

    /// Does this configuration defeat a cache of `llc_bytes` (the paper's
    /// 4x rule)?
    pub fn defeats_cache(&self, llc_bytes: u64) -> bool {
        (self.elems as u64) * 8 >= 4 * llc_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RealStream {
        // Small arrays: CI-friendly; correctness is what we verify here.
        RealStream { elems: 64 * 1024, threads: 2, reps: 3 }
    }

    #[test]
    fn copy_produces_expected_checksum() {
        let r = small().run(StreamOp::Copy);
        // c[i] = a[i] = 1.0 for all i.
        assert_eq!(r.checksum, 64.0 * 1024.0);
        assert!(r.max_gbps > 0.0);
        assert_eq!(r.samples.len(), 3);
    }

    #[test]
    fn scale_produces_expected_checksum() {
        // After Copy is skipped, c stays 0 => b = 3*c = 0.
        let r = small().run(StreamOp::Scale);
        assert_eq!(r.checksum, 0.0);
    }

    #[test]
    fn add_produces_expected_checksum() {
        // c = a + b = 1 + 2 = 3 per element.
        let r = small().run(StreamOp::Add);
        assert_eq!(r.checksum, 3.0 * 64.0 * 1024.0);
    }

    #[test]
    fn triad_produces_expected_checksum() {
        // a = b + 3*c = 2 + 0 = 2 per element (c untouched in this run).
        let r = small().run(StreamOp::Triad);
        assert_eq!(r.checksum, 2.0 * 64.0 * 1024.0);
    }

    #[test]
    fn byte_counting_follows_stream_rules() {
        assert_eq!(bytes_per_elem(StreamOp::Copy), 16);
        assert_eq!(bytes_per_elem(StreamOp::Scale), 16);
        assert_eq!(bytes_per_elem(StreamOp::Add), 24);
        assert_eq!(bytes_per_elem(StreamOp::Triad), 24);
    }

    #[test]
    fn cache_rule_matches_paper_constant() {
        let paper = RealStream::default();
        assert!(paper.defeats_cache(5 * 1024 * 1024));
        assert!(!small().defeats_cache(5 * 1024 * 1024));
    }

    #[test]
    fn all_kernels_run_and_report() {
        let results = small().run_all();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.max_gbps > 0.0, "{:?}", r.op);
            assert!(r.max_gbps.is_finite());
        }
    }

    #[test]
    fn bad_configs_surface_typed_errors() {
        let no_threads = RealStream { threads: 0, ..small() };
        assert_eq!(
            no_threads.try_run(StreamOp::Copy),
            Err(MemsysError::InvalidConfig { reason: "at least one worker thread".to_string() })
        );
        let no_reps = RealStream { reps: 0, ..small() };
        assert!(no_reps.try_run_all().is_err());
        let undersized = RealStream { elems: 1, threads: 2, reps: 1 };
        let e = undersized.validate().unwrap_err();
        assert!(e.to_string().contains("arrays must cover every thread"), "{e}");
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn panicking_run_reports_the_typed_message() {
        let _ = RealStream { threads: 0, ..small() }.run(StreamOp::Copy);
    }

    #[test]
    fn try_run_matches_run_checksums() {
        let r = small().try_run(StreamOp::Add).unwrap();
        assert_eq!(r.checksum, 3.0 * 64.0 * 1024.0);
    }

    #[test]
    fn odd_sizes_and_single_thread_work() {
        let cfg = RealStream { elems: 12_345, threads: 3, reps: 1 };
        let r = cfg.run(StreamOp::Add);
        assert_eq!(r.checksum, 3.0 * 12_345.0);
        let cfg = RealStream { elems: 1000, threads: 1, reps: 1 };
        assert!(cfg.run(StreamOp::Copy).max_gbps > 0.0);
    }
}
