//! Linux NUMA memory policies (§II-B of the paper).

use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Where an allocation's pages may land. Mirrors `set_mempolicy(2)` /
/// `numactl` modes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemPolicy {
    /// The Linux 2.6 default: allocate on the requesting task's node if
    /// space is available, otherwise fall back to the nearest node with
    /// free memory. ("the default memory policy in Linux kernel 2.6 is
    /// *local preferred*").
    LocalPreferred,
    /// `numactl --membind`: allocate **only** on the given node; fail when
    /// it is full. This is what the paper uses to pin STREAM arrays and
    /// fio buffers.
    Bind(NodeId),
    /// `numactl --preferred`: try the given node first, then fall back
    /// anywhere.
    Preferred(NodeId),
    /// `numactl --interleave`: round-robin pages across the node set.
    Interleave(Vec<NodeId>),
}

impl MemPolicy {
    /// Bind to a node (convenience).
    pub fn bind(n: u16) -> Self {
        MemPolicy::Bind(NodeId(n))
    }

    /// Interleave over all nodes `0..n`.
    pub fn interleave_all(n: usize) -> Self {
        MemPolicy::Interleave((0..n).map(NodeId::new).collect())
    }

    /// Human-readable name matching `numactl` flags.
    pub fn name(&self) -> String {
        match self {
            MemPolicy::LocalPreferred => "default(local)".to_string(),
            MemPolicy::Bind(n) => format!("--membind={n}"),
            MemPolicy::Preferred(n) => format!("--preferred={n}"),
            MemPolicy::Interleave(ns) => {
                let list: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
                format!("--interleave={}", list.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_numactl() {
        assert_eq!(MemPolicy::LocalPreferred.name(), "default(local)");
        assert_eq!(MemPolicy::bind(7).name(), "--membind=7");
        assert_eq!(MemPolicy::Preferred(NodeId(3)).name(), "--preferred=3");
        assert_eq!(MemPolicy::interleave_all(3).name(), "--interleave=0,1,2");
    }

    #[test]
    fn interleave_all_covers_every_node() {
        if let MemPolicy::Interleave(ns) = MemPolicy::interleave_all(8) {
            assert_eq!(ns.len(), 8);
            assert_eq!(ns[7], NodeId(7));
        } else {
            panic!("wrong variant");
        }
    }
}
