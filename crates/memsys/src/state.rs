//! Per-node memory accounting with policy-driven allocation.

use crate::numastat::NumastatTable;
use crate::policy::MemPolicy;
use numa_topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// A `Bind` policy targeted a node without enough free memory.
    BindNodeFull {
        /// The bound node.
        node: NodeId,
        /// Free MiB at failure time.
        free_mib: u64,
        /// Requested MiB.
        requested_mib: u64,
    },
    /// The whole host is out of memory.
    HostFull {
        /// Requested MiB.
        requested_mib: u64,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::BindNodeFull { node, free_mib, requested_mib } => write!(
                f,
                "bind target {node:?} has {free_mib} MiB free, {requested_mib} requested"
            ),
            AllocError::HostFull { requested_mib } => {
                write!(f, "host cannot satisfy {requested_mib} MiB")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// MiB the OS image occupies on its home node at idle. Calibrated to the
/// paper's `numactl --hardware` observation: ~1.5 GiB free of 4 GiB on
/// node 0 while the others show almost 4 GiB (§IV-A).
pub const OS_HOME_RESERVED_MIB: u64 = 2560;
/// Small per-node kernel overhead on every node.
pub const PER_NODE_RESERVED_MIB: u64 = 96;

/// Mutable memory state of a host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryState {
    total_mib: Vec<u64>,
    free_mib: Vec<u64>,
    /// hop-distance fallback order per node (nearest first, then id order)
    fallback: Vec<Vec<NodeId>>,
    /// round-robin cursor for interleaving
    interleave_cursor: usize,
    /// numastat counters
    stats: NumastatTable,
}

impl MemoryState {
    /// Fresh state: every node fully free minus the per-node kernel
    /// overhead, and the OS reservation on the topology's `os_home` node.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        let total_mib: Vec<u64> = topo.node_ids().map(|i| topo.node(i).dram_mib).collect();
        let mut free_mib = total_mib.clone();
        for (i, f) in free_mib.iter_mut().enumerate() {
            let mut reserved = PER_NODE_RESERVED_MIB;
            if topo.node(NodeId::new(i)).os_home {
                reserved += OS_HOME_RESERVED_MIB;
            }
            *f = f.saturating_sub(reserved);
        }
        let fallback = (0..n)
            .map(|i| {
                let me = NodeId::new(i);
                let mut order: Vec<NodeId> = topo.node_ids().collect();
                order.sort_by_key(|&other| (topo.hop_distance(me, other), other));
                order
            })
            .collect();
        MemoryState {
            total_mib,
            free_mib,
            fallback,
            interleave_cursor: 0,
            stats: NumastatTable::new(n),
        }
    }

    /// The paper's idle DL585: node 0 visibly drained by the OS image.
    pub fn dl585_idle(topo: &Topology) -> Self {
        Self::new(topo)
    }

    /// Free MiB on a node.
    pub fn free_mib(&self, n: NodeId) -> u64 {
        self.free_mib[n.index()]
    }

    /// Total MiB on a node.
    pub fn total_mib(&self, n: NodeId) -> u64 {
        self.total_mib[n.index()]
    }

    /// numastat counters.
    pub fn stats(&self) -> &NumastatTable {
        &self.stats
    }

    /// Render the `numactl --hardware` free-memory listing that the paper
    /// uses to demonstrate the node-0 reservation.
    pub fn render_hardware(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "available: {} nodes (0-{})", self.total_mib.len(), self.total_mib.len() - 1);
        for i in 0..self.total_mib.len() {
            let _ = writeln!(
                out,
                "node {i} size: {} MB   node {i} free: {} MB",
                self.total_mib[i], self.free_mib[i]
            );
        }
        out
    }

    /// Allocate `mib` under `policy` for a task running on `task_node`.
    /// Returns the placement as `(node, mib)` chunks (multiple entries when
    /// an allocation spills or interleaves).
    pub fn allocate(
        &mut self,
        task_node: NodeId,
        policy: &MemPolicy,
        mib: u64,
    ) -> Result<Vec<(NodeId, u64)>, AllocError> {
        match policy {
            MemPolicy::Bind(node) => {
                let free = self.free_mib[node.index()];
                if free < mib {
                    return Err(AllocError::BindNodeFull {
                        node: *node,
                        free_mib: free,
                        requested_mib: mib,
                    });
                }
                self.take(task_node, *node, *node, mib);
                Ok(vec![(*node, mib)])
            }
            MemPolicy::LocalPreferred => self.spill_from(task_node, task_node, mib),
            MemPolicy::Preferred(node) => self.spill_from(task_node, *node, mib),
            MemPolicy::Interleave(nodes) => {
                assert!(!nodes.is_empty(), "interleave set must be non-empty");
                let free_total: u64 = nodes.iter().map(|n| self.free_mib[n.index()]).sum();
                if free_total < mib {
                    return Err(AllocError::HostFull { requested_mib: mib });
                }
                // Round-robin 1 MiB "pages" across the set, skipping full
                // nodes; coalesce into chunks for the report.
                let mut placed: Vec<(NodeId, u64)> = Vec::new();
                let mut left = mib;
                while left > 0 {
                    let node = nodes[self.interleave_cursor % nodes.len()];
                    self.interleave_cursor += 1;
                    if self.free_mib[node.index()] == 0 {
                        continue;
                    }
                    let chunk = 1.min(left).min(self.free_mib[node.index()]);
                    self.take(task_node, node, node, chunk);
                    self.stats.record_interleave_hit(node, chunk);
                    match placed.iter_mut().find(|(n, _)| *n == node) {
                        Some((_, amount)) => *amount += chunk,
                        None => placed.push((node, chunk)),
                    }
                    left -= chunk;
                }
                Ok(placed)
            }
        }
    }

    /// Release memory back to its nodes.
    pub fn free(&mut self, placement: &[(NodeId, u64)]) {
        for &(node, mib) in placement {
            let f = &mut self.free_mib[node.index()];
            *f = (*f + mib).min(self.total_mib[node.index()]);
        }
    }

    fn spill_from(
        &mut self,
        task_node: NodeId,
        intended: NodeId,
        mib: u64,
    ) -> Result<Vec<(NodeId, u64)>, AllocError> {
        let host_free: u64 = self.free_mib.iter().sum();
        if host_free < mib {
            return Err(AllocError::HostFull { requested_mib: mib });
        }
        let mut placed = Vec::new();
        let mut left = mib;
        // Nearest-first fallback starting from the *intended* node, which
        // is how the kernel's zonelists are ordered.
        let order = self.fallback[intended.index()].clone();
        for node in order {
            if left == 0 {
                break;
            }
            let chunk = left.min(self.free_mib[node.index()]);
            if chunk > 0 {
                self.take(task_node, intended, node, chunk);
                placed.push((node, chunk));
                left -= chunk;
            }
        }
        debug_assert_eq!(left, 0);
        Ok(placed)
    }

    fn take(&mut self, task_node: NodeId, intended: NodeId, actual: NodeId, mib: u64) {
        self.free_mib[actual.index()] -= mib;
        self.stats.record(task_node, intended, actual, mib);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets;

    fn state() -> MemoryState {
        MemoryState::new(&presets::dl585_testbed())
    }

    #[test]
    fn idle_state_matches_paper_observation() {
        let m = state();
        // node 0: ~1.4 GiB free; others ~3.9 GiB.
        assert_eq!(m.free_mib(NodeId(0)), 4096 - 2560 - 96);
        for i in 1..8 {
            assert_eq!(m.free_mib(NodeId(i)), 4096 - 96);
        }
        let s = m.render_hardware();
        assert!(s.contains("node 0 free: 1440 MB"));
    }

    #[test]
    fn bind_allocates_or_fails_loudly() {
        let mut m = state();
        let p = m.allocate(NodeId(2), &MemPolicy::bind(7), 1000).unwrap();
        assert_eq!(p, vec![(NodeId(7), 1000)]);
        assert_eq!(m.free_mib(NodeId(7)), 3000);
        let err = m.allocate(NodeId(2), &MemPolicy::bind(7), 4000).unwrap_err();
        assert!(matches!(err, AllocError::BindNodeFull { node: NodeId(7), .. }));
    }

    #[test]
    fn local_preferred_stays_local_when_possible() {
        let mut m = state();
        let p = m
            .allocate(NodeId(5), &MemPolicy::LocalPreferred, 2048)
            .unwrap();
        assert_eq!(p, vec![(NodeId(5), 2048)]);
        assert_eq!(m.stats().node(NodeId(5)).numa_hit, 2048);
        assert_eq!(m.stats().node(NodeId(5)).local_node, 2048);
    }

    #[test]
    fn local_preferred_spills_to_nearest() {
        let mut m = state();
        // Drain node 5, then ask for more than it has.
        let _ = m.allocate(NodeId(5), &MemPolicy::bind(5), 4000).unwrap();
        let p = m
            .allocate(NodeId(5), &MemPolicy::LocalPreferred, 1000)
            .unwrap();
        // Nearest fallback: node 4 (neighbour, 1 hop) before 1/7 (1 hop,
        // higher... ties break by id: distance-1 set is {1,4,7}).
        assert_eq!(p[0].0, NodeId(1).min(NodeId(4)).min(NodeId(7)));
        // Counters: miss on receiving node, foreign on node 5.
        assert!(m.stats().node(NodeId(5)).numa_foreign >= 1000);
        assert_eq!(m.stats().total_misses(), m.stats().node(p[0].0).numa_miss);
    }

    #[test]
    fn preferred_falls_back_from_target() {
        let mut m = state();
        let _ = m.allocate(NodeId(0), &MemPolicy::bind(7), 4000).unwrap();
        let p = m
            .allocate(NodeId(0), &MemPolicy::Preferred(NodeId(7)), 500)
            .unwrap();
        // Fallback order starts from node 7's neighbours, not node 0's.
        assert_ne!(p[0].0, NodeId(7));
        assert!(m.stats().node(NodeId(7)).numa_foreign >= 500);
    }

    #[test]
    fn interleave_spreads_evenly() {
        let mut m = state();
        let p = m
            .allocate(NodeId(0), &MemPolicy::interleave_all(8), 800)
            .unwrap();
        assert_eq!(p.len(), 8);
        for &(_, mib) in &p {
            assert_eq!(mib, 100);
        }
        let hits: u64 = (0..8).map(|i| m.stats().node(NodeId(i)).interleave_hit).sum();
        assert_eq!(hits, 800);
    }

    #[test]
    fn interleave_skips_full_nodes() {
        let mut m = state();
        let _ = m.allocate(NodeId(3), &MemPolicy::bind(3), 4000).unwrap();
        let p = m
            .allocate(NodeId(0), &MemPolicy::Interleave(vec![NodeId(2), NodeId(3)]), 100)
            .unwrap();
        assert_eq!(p, vec![(NodeId(2), 100)]);
    }

    #[test]
    fn host_full_reported() {
        let mut m = state();
        let total_free: u64 = (0..8).map(|i| m.free_mib(NodeId(i))).sum();
        let err = m
            .allocate(NodeId(0), &MemPolicy::LocalPreferred, total_free + 1)
            .unwrap_err();
        assert!(matches!(err, AllocError::HostFull { .. }));
    }

    #[test]
    fn free_returns_memory() {
        let mut m = state();
        let before = m.free_mib(NodeId(6));
        let p = m.allocate(NodeId(6), &MemPolicy::bind(6), 512).unwrap();
        assert_eq!(m.free_mib(NodeId(6)), before - 512);
        m.free(&p);
        assert_eq!(m.free_mib(NodeId(6)), before);
    }

    #[test]
    fn free_never_exceeds_total() {
        let mut m = state();
        m.free(&[(NodeId(1), 99999)]);
        assert_eq!(m.free_mib(NodeId(1)), m.total_mib(NodeId(1)));
    }
}
