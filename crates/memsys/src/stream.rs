//! STREAM benchmark simulation (§III-B1 / §IV-A of the paper).
//!
//! Reproduces how the paper drives McCalpin's STREAM:
//!
//! * four worker threads — one per core of the pinned node;
//! * arrays at least **4x the largest cache** (5 MiB LLC => 2,621,440
//!   8-byte elements), enforced here: undersized arrays are simulated with
//!   cache inflation and flagged invalid;
//! * `numactl` pinning of CPU node and memory node;
//! * **100 repetitions reporting the maximum** observed bandwidth;
//! * the *Copy* kernel as the headline (no arithmetic, closest to I/O).
//!
//! Bandwidth comes from the fabric's PIO model (CPU load/store traffic,
//! source and sink on the same memory node — Fig. 8a), scaled by thread
//! count, kernel, and seeded run-to-run noise.

use numa_engine::Summary;
use numa_fabric::Fabric;
use numa_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The four STREAM kernels. They "exhibit a similar performance on modern
/// machines"; the small factors below reflect their arithmetic intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamOp {
    /// `c[i] = a[i]` — the paper's choice: "no computation ... similar to
    /// I/O data transfer behavior".
    Copy,
    /// `b[i] = q*c[i]`.
    Scale,
    /// `c[i] = a[i] + b[i]`.
    Add,
    /// `a[i] = b[i] + q*c[i]`.
    Triad,
}

impl StreamOp {
    /// All kernels.
    pub const ALL: [StreamOp; 4] = [StreamOp::Copy, StreamOp::Scale, StreamOp::Add, StreamOp::Triad];

    /// Throughput factor relative to Copy.
    pub fn factor(self) -> f64 {
        match self {
            StreamOp::Copy => 1.00,
            StreamOp::Scale => 0.98,
            StreamOp::Add => 1.04,
            StreamOp::Triad => 1.03,
        }
    }
}

/// Result of one pinned STREAM run (N repetitions of one kernel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamResult {
    /// CPU node the threads were pinned to.
    pub cpu: NodeId,
    /// Memory node the arrays were bound to.
    pub mem: NodeId,
    /// Kernel.
    pub op: StreamOp,
    /// The paper's headline number: the maximum over repetitions, Gbit/s.
    pub max_gbps: f64,
    /// Distribution of all repetitions.
    pub summary: Summary,
    /// Whether the array size defeated the LLC (undersized arrays produce
    /// cache-inflated nonsense, flagged here).
    pub cache_valid: bool,
}

/// Configurable STREAM driver over a fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamBench {
    /// Worker threads (paper: 4, the cores of one node).
    pub threads: u32,
    /// Array length in 8-byte elements.
    pub array_elems: u64,
    /// Repetitions (paper: 100).
    pub reps: u32,
    /// Kernel to run.
    pub op: StreamOp,
    /// Relative run-to-run noise amplitude (samples are drawn in
    /// `[1 - amplitude, 1]` of the ideal rate; the max estimates the peak).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamBench {
    fn default() -> Self {
        StreamBench {
            threads: 4,
            array_elems: 2_621_440, // 20 MiB of doubles = 4 x 5 MiB LLC
            reps: 100,
            op: StreamOp::Copy,
            noise: 0.03,
            seed: 0x5eed,
        }
    }
}

impl StreamBench {
    /// The paper's exact configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Cache-inflation multiplier applied when arrays fit in cache.
    pub const CACHE_INFLATION: f64 = 2.6;

    /// Run one pinned (cpu, mem) test.
    pub fn run(&self, fabric: &Fabric, cpu: NodeId, mem: NodeId) -> StreamResult {
        assert!(self.threads >= 1, "at least one thread");
        assert!(self.reps >= 1, "at least one repetition");
        let cores = fabric.topology().node(cpu).cores;
        let thread_scale = (self.threads as f64 / cores as f64).min(1.0);
        let llc = fabric.topology().node(cpu).llc_bytes;
        let cache_valid = self.array_elems * 8 >= 4 * llc;

        let mut ideal = fabric.pio_bandwidth(cpu, mem) * thread_scale * self.op.factor();
        if !cache_valid {
            // Arrays resident in LLC: the "bandwidth" measured is cache
            // bandwidth, not memory bandwidth.
            ideal *= Self::CACHE_INFLATION;
        }

        // Distinct seeds per (cpu, mem, op) so matrices are not trivially
        // correlated cell-to-cell, while staying fully reproducible.
        let cell_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((cpu.index() as u64) << 32)
            .wrapping_add((mem.index() as u64) << 16)
            .wrapping_add(self.op as u64);
        let mut rng = StdRng::seed_from_u64(cell_seed);
        let samples: Vec<f64> = (0..self.reps)
            .map(|_| ideal * (1.0 - rng.gen_range(0.0..=self.noise)))
            .collect();
        let summary = Summary::from(&samples);
        StreamResult {
            cpu,
            mem,
            op: self.op,
            max_gbps: summary.max,
            summary,
            cache_valid,
        }
    }

    /// The full Fig. 3 matrix: `matrix[cpu][mem] = max bandwidth`.
    pub fn matrix(&self, fabric: &Fabric) -> Vec<Vec<f64>> {
        let n = fabric.num_nodes();
        (0..n)
            .map(|c| {
                (0..n)
                    .map(|m| self.run(fabric, NodeId::new(c), NodeId::new(m)).max_gbps)
                    .collect()
            })
            .collect()
    }

    /// Fig. 4(a): the "CPU centric" model of `target` — threads pinned to
    /// `target`, data on each node in turn.
    pub fn cpu_centric(&self, fabric: &Fabric, target: NodeId) -> Vec<f64> {
        (0..fabric.num_nodes())
            .map(|m| self.run(fabric, target, NodeId::new(m)).max_gbps)
            .collect()
    }

    /// Fig. 4(b): the "memory centric" model of `target` — data pinned to
    /// `target`, threads on each node in turn.
    pub fn mem_centric(&self, fabric: &Fabric, target: NodeId) -> Vec<f64> {
        (0..fabric.num_nodes())
            .map(|c| self.run(fabric, NodeId::new(c), target).max_gbps)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_fabric::calibration::{dl585_fabric, paper};

    #[test]
    fn paper_config_matches_section_iii() {
        let b = StreamBench::paper();
        assert_eq!(b.threads, 4);
        assert_eq!(b.reps, 100);
        assert_eq!(b.array_elems, 2_621_440);
        assert_eq!(b.op, StreamOp::Copy);
    }

    #[test]
    fn max_of_many_reps_approaches_ideal() {
        let f = dl585_fabric();
        let r = StreamBench::paper().run(&f, NodeId(7), NodeId(4));
        // ideal is the calibrated 21.34; max over 100 noisy reps within 1%.
        assert!(r.max_gbps <= paper::STREAM_CPU7_MEM4 + 1e-9);
        assert!(r.max_gbps > paper::STREAM_CPU7_MEM4 * 0.99, "{}", r.max_gbps);
        assert!(r.cache_valid);
        assert!(r.summary.min < r.summary.max);
    }

    #[test]
    fn asymmetric_anchor_pair_reproduces() {
        let f = dl585_fabric();
        let b = StreamBench::paper();
        let fwd = b.run(&f, NodeId(7), NodeId(4)).max_gbps;
        let rev = b.run(&f, NodeId(4), NodeId(7)).max_gbps;
        assert!(fwd > rev, "{} vs {}", fwd, rev);
        assert!((fwd - 21.34).abs() < 0.25);
        assert!((rev - 18.45).abs() < 0.25);
    }

    #[test]
    fn fewer_threads_scale_down() {
        let f = dl585_fabric();
        let mut b = StreamBench::paper();
        b.noise = 0.0;
        let four = b.run(&f, NodeId(6), NodeId(6)).max_gbps;
        b.threads = 2;
        let two = b.run(&f, NodeId(6), NodeId(6)).max_gbps;
        assert!((two - four / 2.0).abs() < 1e-9);
        // More threads than cores do not help.
        b.threads = 16;
        let many = b.run(&f, NodeId(6), NodeId(6)).max_gbps;
        assert_eq!(many, four);
    }

    #[test]
    fn undersized_arrays_are_flagged_and_inflated() {
        let f = dl585_fabric();
        let mut b = StreamBench::paper();
        b.noise = 0.0;
        let good = b.run(&f, NodeId(2), NodeId(2));
        b.array_elems = 100_000; // < 4 x LLC
        let bad = b.run(&f, NodeId(2), NodeId(2));
        assert!(good.cache_valid);
        assert!(!bad.cache_valid);
        assert!(bad.max_gbps > 2.0 * good.max_gbps);
    }

    #[test]
    fn kernels_are_similar_but_not_identical() {
        let f = dl585_fabric();
        let mut results = Vec::new();
        for op in StreamOp::ALL {
            let b = StreamBench { op, noise: 0.0, ..StreamBench::paper() };
            results.push(b.run(&f, NodeId(5), NodeId(5)).max_gbps);
        }
        let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = results.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.07, "kernels should be within ~6%: {results:?}");
        assert!(max > min);
    }

    #[test]
    fn matrix_shape_and_determinism() {
        let f = dl585_fabric();
        let b = StreamBench::paper();
        let m1 = b.matrix(&f);
        let m2 = b.matrix(&f);
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), 8);
        assert_eq!(m1[0].len(), 8);
    }

    #[test]
    fn centric_views_match_matrix_rows_and_cols() {
        let f = dl585_fabric();
        let b = StreamBench::paper();
        let m = b.matrix(&f);
        let row7 = b.cpu_centric(&f, NodeId(7));
        let col7 = b.mem_centric(&f, NodeId(7));
        for i in 0..8 {
            assert_eq!(row7[i], m[7][i]);
            assert_eq!(col7[i], m[i][7]);
        }
    }

    #[test]
    fn node0_local_advantage_survives_noise() {
        let f = dl585_fabric();
        let m = StreamBench::paper().matrix(&f);
        for i in 1..8 {
            assert!(m[0][0] > m[i][i], "node {i}");
        }
    }
}
