//! Typed errors for the real-measurement half of this crate.
//!
//! The simulated benchmarks cannot fail at runtime, but the host-side
//! kernels ([`RealStream`](crate::RealStream), [`CopyProbe`](crate::CopyProbe))
//! drive real OS threads: spawning can fail under resource pressure and a
//! bad configuration used to either `assert!` or silently measure nothing.
//! Both now surface here, and `numio::Error` wraps this as its `Memsys`
//! variant.

/// A real measurement could not be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemsysError {
    /// The OS refused to spawn a worker thread (resource exhaustion,
    /// ulimits, ...). Previously this panicked mid-measurement or, worse,
    /// produced a zero-bandwidth sample.
    SpawnFailed {
        /// Index of the worker that failed to start.
        thread: usize,
        /// The OS error, in `std::io::Error` words.
        reason: String,
    },
    /// The measurement configuration cannot produce a meaningful sample.
    InvalidConfig {
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for MemsysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemsysError::SpawnFailed { thread, reason } => {
                write!(f, "could not spawn measurement worker {thread}: {reason}")
            }
            MemsysError::InvalidConfig { reason } => {
                write!(f, "invalid measurement config: {reason}")
            }
        }
    }
}

impl std::error::Error for MemsysError {}
